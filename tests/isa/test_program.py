"""Unit tests for the Program container."""

import pytest

from repro.isa import INST_SIZE, TEXT_BASE, assemble
from repro.isa.instructions import Instruction, Op
from repro.isa.program import Program


class TestProgram:
    def test_pc_index_roundtrip(self):
        program = Program([Instruction(Op.NOP)] * 10)
        for index in range(10):
            pc = program.pc_of(index)
            assert pc == TEXT_BASE + index * INST_SIZE
            assert program.index_of(pc) == index

    def test_index_of_rejects_out_of_text(self):
        program = Program([Instruction(Op.NOP)] * 2)
        with pytest.raises(ValueError):
            program.index_of(TEXT_BASE - INST_SIZE)
        with pytest.raises(ValueError):
            program.index_of(TEXT_BASE + 2 * INST_SIZE)

    def test_index_of_rejects_misaligned(self):
        program = Program([Instruction(Op.NOP)] * 2)
        with pytest.raises(ValueError):
            program.index_of(TEXT_BASE + 1)

    def test_in_text(self):
        program = Program([Instruction(Op.NOP)] * 3)
        assert program.in_text(0) and program.in_text(2)
        assert not program.in_text(-1)
        assert not program.in_text(3)

    def test_label_lookup(self):
        program = assemble("x: nop\ny: halt")
        assert program.label("y") == 1
        with pytest.raises(KeyError):
            program.label("z")

    def test_iteration_and_indexing(self):
        program = assemble("nop\nhalt")
        ops = [inst.op for inst in program]
        assert ops == [Op.NOP, Op.HALT]
        assert program[1].op is Op.HALT
        assert len(program) == 2
