"""Workload characterisation from dynamic traces.

The REESE result depends on workload *character* — idle capacity,
burstiness, dependence structure — more than on instruction count, so
this module quantifies the properties the proxies were calibrated to:

* instruction-class mix (see also :func:`repro.workloads.suite.mix_report`);
* **register dependence distances** (producer→consumer gap in dynamic
  instructions) — short distances mean serial code, long ones ILP;
* an **ideal-ILP estimate**: the critical-path length of the trace's
  data-dependence graph under infinite resources and unit latencies,
  giving IPC_inf = instructions / critical path;
* **branch statistics**: taken rate, per-static-branch direction
  entropy (a predictability proxy that needs no predictor model);
* **working-set sizes**: distinct data bytes and instruction lines.

Used by the Table 2 bench, workload regression tests, and anyone
porting the suite to a new simulator.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.trace import Trace
from ..isa.instructions import INST_SIZE


@dataclass
class BranchProfile:
    """Conditional-branch behaviour of a trace."""

    conditional: int = 0
    taken: int = 0
    #: mean per-static-branch direction entropy, in bits (0 = fully
    #: biased, 1 = coin flip); weighted by execution count.
    mean_entropy: float = 0.0

    @property
    def taken_rate(self) -> float:
        return self.taken / self.conditional if self.conditional else 0.0


@dataclass
class TraceProfile:
    """Full characterisation of one dynamic trace."""

    instructions: int
    critical_path: int
    dep_distances: Counter = field(default_factory=Counter)
    branch: BranchProfile = field(default_factory=BranchProfile)
    data_bytes_touched: int = 0
    inst_lines_touched: int = 0

    @property
    def ideal_ipc(self) -> float:
        """IPC with infinite resources and unit latencies."""
        return (
            self.instructions / self.critical_path
            if self.critical_path
            else 0.0
        )

    @property
    def mean_dep_distance(self) -> float:
        total = sum(self.dep_distances.values())
        if not total:
            return 0.0
        weighted = sum(d * c for d, c in self.dep_distances.items())
        return weighted / total

    def report(self) -> str:
        lines = [
            f"instructions:        {self.instructions}",
            f"critical path:       {self.critical_path} "
            f"(ideal IPC {self.ideal_ipc:.2f})",
            f"mean dep distance:   {self.mean_dep_distance:.1f} insts",
            f"cond branches:       {self.branch.conditional} "
            f"(taken {self.branch.taken_rate:.0%}, "
            f"entropy {self.branch.mean_entropy:.2f} bits)",
            f"data working set:    {self.data_bytes_touched} bytes",
            f"inst working set:    {self.inst_lines_touched} lines",
        ]
        return "\n".join(lines)


def _entropy(taken: int, total: int) -> float:
    if total == 0 or taken in (0, total):
        return 0.0
    p = taken / total
    return -(p * math.log2(p) + (1 - p) * math.log2(1 - p))


def windowed_ilp(trace: Trace, window: int = 64) -> List[float]:
    """Ideal ILP of each consecutive ``window``-instruction slice.

    Dependences are evaluated *within* each window (a fresh dependence
    graph per slice), giving the local parallelism the machine sees at
    window granularity.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    ilps: List[float] = []
    for start in range(0, len(trace), window):
        chunk = trace[start:start + window]
        if len(chunk) < 2:
            continue
        last_writer: Dict[int, int] = {}
        depth_of: Dict[int, int] = {}
        critical = 1
        for position, dyn in enumerate(chunk):
            depth = 0
            for src in dyn.srcs:
                producer = last_writer.get(src)
                if producer is not None:
                    depth = max(depth, depth_of[producer])
            depth += 1
            depth_of[position] = depth
            if depth > critical:
                critical = depth
            if dyn.dst >= 0:
                last_writer[dyn.dst] = position
        ilps.append(len(chunk) / critical)
    return ilps


def burstiness(trace: Trace, window: int = 64) -> float:
    """Coefficient of variation of windowed ILP (0 = steady, >0.3 bursty).

    The REESE overhead mechanism depends on this property: steady
    workloads let the R stream ride permanent idle capacity, while
    bursts larger than the R-stream Queue throttle the P stream — which
    is why the proxy workloads carry explicit ILP bursts (DESIGN.md).
    """
    ilps = windowed_ilp(trace, window)
    if len(ilps) < 2:
        return 0.0
    mean = sum(ilps) / len(ilps)
    if mean == 0:
        return 0.0
    variance = sum((value - mean) ** 2 for value in ilps) / len(ilps)
    return math.sqrt(variance) / mean


def analyze_trace(trace: Trace, line_size: int = 32) -> TraceProfile:
    """Characterise a dynamic trace (single pass, O(n))."""
    last_writer: Dict[int, int] = {}
    depth_of: Dict[int, int] = {}   # seq -> dependence depth
    critical = 0
    distances: Counter = Counter()
    branch_outcomes: Dict[int, List[int]] = defaultdict(lambda: [0, 0])
    data_lines = set()
    inst_lines = set()
    cond = taken_count = 0

    for position, dyn in enumerate(trace):
        inst_lines.add(dyn.pc // (line_size // INST_SIZE * INST_SIZE))
        depth = 0
        for src in dyn.srcs:
            producer = last_writer.get(src)
            if producer is not None:
                distances[position - producer] += 1
                depth = max(depth, depth_of.get(producer, 0))
        depth += 1
        depth_of[position] = depth
        if depth > critical:
            critical = depth
        if dyn.dst >= 0:
            last_writer[dyn.dst] = position
        if dyn.ea is not None:
            data_lines.add(dyn.ea // line_size)
        if dyn.is_cond_branch:
            cond += 1
            stats = branch_outcomes[dyn.static_index]
            if dyn.taken:
                taken_count += 1
                stats[0] += 1
            stats[1] += 1

    weighted_entropy = 0.0
    if cond:
        for taken, total in branch_outcomes.values():
            weighted_entropy += _entropy(taken, total) * total
        weighted_entropy /= cond

    profile = TraceProfile(
        instructions=len(trace),
        critical_path=critical,
        dep_distances=distances,
        data_bytes_touched=len(data_lines) * line_size,
        inst_lines_touched=len(inst_lines),
    )
    profile.branch = BranchProfile(
        conditional=cond, taken=taken_count, mean_entropy=weighted_entropy
    )
    return profile
