"""Additional harness-surface tests: bar charts on figures, summary path."""

import pytest

from repro.harness import run_figure
from repro.harness.experiments import figure7_specs
from repro.harness.reporting import figure_bar_chart, figure_report


@pytest.fixture(scope="module")
def fig7_small():
    spec = figure7_specs()[0]
    small = spec.__class__(
        spec.figure_id, spec.title, spec.series,
        benchmarks=("go", "vortex"), averages_only=True,
    )
    return run_figure(small, scale=1000)


class TestAveragesOnlyFigures:
    def test_rows_show_only_average(self, fig7_small):
        rows = fig7_small.rows()
        assert len(rows) == 2  # header + AVG
        assert rows[1][0] == "AV."

    def test_bar_chart_has_only_avg_group(self, fig7_small):
        chart = figure_bar_chart(fig7_small)
        assert "AV.:" in chart
        assert "go:" not in chart

    def test_report_includes_bars(self, fig7_small):
        report = figure_report(fig7_small)
        assert "#" in report
        assert "ruu64" in report

    def test_gap_computable(self, fig7_small):
        assert -0.5 < fig7_small.gap("REESE") < 0.8
