"""Parameter-sweep driver for design-space exploration.

Used by the spare-capacity example, the ablation benches and the
sensitivity studies in EXPERIMENTS.md: run a grid of configuration
transformations against the benchmark suite and collect average IPC
(plus any other stat) per grid point.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..uarch.config import MachineConfig
from ..uarch.sampling import SamplingSpec
from ..uarch.stats import Stats
from ..workloads.suite import BENCHMARK_ORDER
from .parallel import ParallelRunner, SimJob, resolve_runner, run_sampled_jobs
from .runner import bench_scale


@dataclass
class SweepPoint:
    """One grid point: a label, its config, and per-benchmark stats.

    ``stats`` values are :class:`~repro.uarch.stats.Stats` for full
    runs or :class:`~repro.uarch.sampling.SampledResult` for sampled
    sweeps; both expose ``.ipc`` (use a sampled result's ``.stats`` for
    raw counters in :meth:`average` metrics).
    """

    label: str
    config: MachineConfig
    stats: Dict[str, Stats]

    @property
    def average_ipc(self) -> float:
        values = [s.ipc for s in self.stats.values()]
        return sum(values) / len(values) if values else 0.0

    def average(self, metric: Callable[[Stats], float]) -> float:
        values = [metric(s) for s in self.stats.values()]
        return sum(values) / len(values) if values else 0.0


def run_sweep(
    points: Sequence,
    benchmarks: Optional[Iterable[str]] = None,
    scale: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: bool = False,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[ParallelRunner] = None,
    sampling: Optional[SamplingSpec] = None,
) -> List[SweepPoint]:
    """Run a list of (label, config) pairs over the benchmark suite.

    The (point x benchmark) grid is executed through
    :class:`~repro.harness.parallel.ParallelRunner`; results are
    bit-identical for any ``jobs`` value.  ``jobs=None`` runs
    sequentially; pass ``runner`` to share a cache/telemetry context
    across several drivers.  With ``sampling`` set, every grid cell
    uses the sampled engine (interval-level fan-out) and ``stats``
    holds :class:`~repro.uarch.sampling.SampledResult` values.
    """
    benchmarks = list(benchmarks or BENCHMARK_ORDER)
    scale = scale or bench_scale()
    runner = resolve_runner(runner, jobs, cache, cache_dir)
    sim_jobs = [
        SimJob(bench, config, scale, sampling=sampling)
        for _, config in points
        for bench in benchmarks
    ]
    if sampling is not None:
        all_stats: Sequence = run_sampled_jobs(sim_jobs, runner)
    else:
        all_stats = runner.run(sim_jobs)
    results: List[SweepPoint] = []
    cursor = 0
    for label, config in points:
        stats = {
            bench: all_stats[cursor + offset]
            for offset, bench in enumerate(benchmarks)
        }
        cursor += len(benchmarks)
        results.append(SweepPoint(label, config, stats))
    return results


def spare_capacity_grid(
    base: MachineConfig,
    max_alu: int = 4,
    max_mult: int = 2,
) -> List:
    """The paper's central design question as a grid.

    "How much spare hardware is needed to decrease the fault-tolerance
    overhead to zero?" — every (spare ALU, spare mult) combination of a
    REESE machine, preceded by the baseline.
    """
    points = [("baseline", base.without_reese())]
    for alu in range(max_alu + 1):
        for mult in range(max_mult + 1):
            label = f"reese+{alu}alu+{mult}mult"
            points.append((label, base.with_spares(alu, mult).with_reese()))
    return points
