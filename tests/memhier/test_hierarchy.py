"""Unit tests for the assembled memory hierarchy and TLB."""

import pytest

from repro.memhier import MemHierParams, MemoryHierarchy, TLB
from repro.memhier.cache import CacheParams


class TestTable1Defaults:
    def test_l1_caches_match_table1(self):
        params = MemHierParams()
        assert params.l1d.size == 32 * 1024
        assert params.l1d.assoc == 2
        assert params.l1d.hit_latency == 2
        assert params.l1i.size == 32 * 1024
        assert params.l1i.hit_latency == 2

    def test_l2_matches_table1(self):
        params = MemHierParams()
        assert params.l2.size == 512 * 1024
        assert params.l2.assoc == 4
        assert params.l2.hit_latency == 12


class TestHierarchy:
    def test_l2_shared_between_i_and_d(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.l1i.next_level is hierarchy.l2
        assert hierarchy.l1d.next_level is hierarchy.l2

    def test_ifetch_warms_l2_for_data(self):
        hierarchy = MemoryHierarchy()
        hierarchy.ifetch(0x4000)               # pulls line into L1I and L2
        # Same line via the D side: L1D misses, L2 hits (plus a cold TLB
        # translation, which is orthogonal to the cache contents).
        latency = hierarchy.daccess(0x4000)
        assert latency <= hierarchy.params.tlb_miss_penalty + 2 + 12

    def test_daccess_includes_tlb_penalty(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.daccess(0x10000)
        second = hierarchy.daccess(0x10000)
        assert first - second >= hierarchy.params.tlb_miss_penalty

    def test_tlb_disabled(self):
        hierarchy = MemoryHierarchy(MemHierParams(use_tlb=False))
        assert hierarchy.dtlb is None
        cold = hierarchy.daccess(0x10000)
        assert cold == 2 + 12 + hierarchy.params.memory_latency

    def test_r_stream_hit_latency(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.l1d_hit_latency() == 2

    def test_stat_dict_structure(self):
        hierarchy = MemoryHierarchy()
        hierarchy.daccess(0x1000)
        stats = hierarchy.stat_dict()
        assert stats["l1d"]["misses"] == 1
        assert "dtlb" in stats


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=8, assoc=2, page_size=4096, miss_penalty=30)
        assert tlb.access(0x1000) == 30
        assert tlb.access(0x1FFF) == 0   # same page
        assert tlb.access(0x2000) == 30  # next page

    def test_lru_within_set(self):
        tlb = TLB(entries=2, assoc=2, page_size=4096, miss_penalty=30)
        pages = [0x1000, 0x2000, 0x3000]
        tlb.access(pages[0])
        tlb.access(pages[1])
        tlb.access(pages[0])      # refresh page 0
        tlb.access(pages[2])      # evicts page 1
        assert tlb.access(pages[0]) == 0
        assert tlb.access(pages[1]) == 30

    def test_miss_rate(self):
        tlb = TLB()
        tlb.access(0x1000)
        tlb.access(0x1000)
        assert tlb.miss_rate == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(entries=6, assoc=4),      # not divisible
            dict(page_size=3000),          # not pow2
            dict(entries=24, assoc=2),     # 12 sets: not pow2
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TLB(**kwargs)
