"""Unit tests for the register-file definitions."""

import pytest

from repro.isa.registers import (
    FP_BASE,
    NO_REG,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    REG_RA,
    REG_SP,
    REG_ZERO,
    is_fp_reg,
    parse_reg,
    reg_name,
)


class TestConstants:
    def test_table1_register_counts(self):
        # Table 1: "32 GP, 32 FP".
        assert NUM_INT_REGS == 32
        assert NUM_FP_REGS == 32
        assert NUM_REGS == 64

    def test_fp_base_follows_int_regs(self):
        assert FP_BASE == NUM_INT_REGS

    def test_conventional_registers(self):
        assert REG_ZERO == 0
        assert REG_SP == 29
        assert REG_RA == 31


class TestRegName:
    def test_int_names(self):
        assert reg_name(0) == "r0"
        assert reg_name(31) == "r31"

    def test_fp_names(self):
        assert reg_name(32) == "f0"
        assert reg_name(63) == "f31"

    def test_no_reg_placeholder(self):
        assert reg_name(NO_REG) == "-"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            reg_name(64)
        with pytest.raises(ValueError):
            reg_name(-2)


class TestParseReg:
    def test_int_parse(self):
        assert parse_reg("r0") == 0
        assert parse_reg("r31") == 31

    def test_fp_parse(self):
        assert parse_reg("f0") == 32
        assert parse_reg("f31") == 63

    def test_aliases(self):
        assert parse_reg("zero") == REG_ZERO
        assert parse_reg("sp") == REG_SP
        assert parse_reg("ra") == REG_RA
        assert parse_reg("fp") == 30

    def test_case_and_whitespace_insensitive(self):
        assert parse_reg(" R7 ") == 7
        assert parse_reg("F3") == 35

    @pytest.mark.parametrize("bad", ["r32", "f32", "x1", "r-1", "r", "", "r1a"])
    def test_invalid_names_raise(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)

    def test_roundtrip_every_register(self):
        for index in range(NUM_REGS):
            assert parse_reg(reg_name(index)) == index


class TestIsFpReg:
    def test_boundaries(self):
        assert not is_fp_reg(0)
        assert not is_fp_reg(31)
        assert is_fp_reg(32)
        assert is_fp_reg(63)
        assert not is_fp_reg(64)
