"""Unit tests for binary instruction encoding."""

import pytest

from repro.isa import NO_REG, decode, encode
from repro.isa.instructions import Instruction, Op


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        assert decode(encode(inst)) == inst

    def test_roundtrip_negative_immediate(self):
        inst = Instruction(Op.ADDI, rd=1, rs1=2, imm=-12345)
        assert decode(encode(inst)) == inst

    def test_roundtrip_extreme_immediates(self):
        for imm in (-(2**31), 2**31 - 1, 0, -1):
            inst = Instruction(Op.LUI, rd=5, imm=imm)
            assert decode(encode(inst)).imm == imm

    def test_roundtrip_no_reg_slots(self):
        inst = Instruction(Op.J, imm=42)
        decoded = decode(encode(inst))
        assert decoded.rd == NO_REG
        assert decoded.rs1 == NO_REG
        assert decoded == inst

    def test_roundtrip_fp_registers(self):
        inst = Instruction(Op.FADD, rd=40, rs1=33, rs2=63)
        assert decode(encode(inst)) == inst

    def test_encoding_fits_64_bits(self):
        inst = Instruction(Op.SW, rs1=63, rs2=63, imm=-1)
        word = encode(inst)
        assert 0 <= word < 2**64

    def test_opcode_in_high_byte(self):
        word = encode(Instruction(Op.HALT))
        assert (word >> 56) == int(Op.HALT)


class TestValidation:
    def test_immediate_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction(Op.ADDI, rd=1, rs1=2, imm=2**31))

    def test_register_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction(Op.ADD, rd=64, rs1=1, rs2=2))

    def test_decode_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            decode(0xFF << 56)

    def test_decode_oversized_word_rejected(self):
        with pytest.raises(ValueError):
            decode(2**64)
        with pytest.raises(ValueError):
            decode(-1)
