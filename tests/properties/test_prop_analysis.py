"""Static analysis vs. the functional emulator on generated workloads.

The analyzer's deadness verdicts must be *sound* with respect to every
dynamic execution: these properties run the same generated programs the
ILP-profile suite uses through both the static passes and the emulator
and check the static claims against the observed trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_program
from repro.analysis.cfg import build_cfg, call_return_points, \
    instruction_successors
from repro.arch import emulate
from repro.workloads.generator import PROFILES, generate_program

profiles = st.sampled_from(sorted(PROFILES))
seeds = st.integers(min_value=0, max_value=10_000)


def _generated(profile_name, seed):
    program = generate_program(
        PROFILES[profile_name], n_dynamic=1500, seed=seed
    )
    run = emulate(program, max_instructions=100_000)
    assert run.halted, "generated workloads must terminate"
    return program, run


class TestStaticDynamicAgreement:
    @settings(max_examples=10, deadline=None)
    @given(profiles, seeds)
    def test_directly_dead_values_never_read(self, profile_name, seed):
        """A statically dead-at-definition value is never read at runtime.

        ``(i, r)`` in ``directly_dead`` claims the value written by
        instruction ``i`` into register ``r`` is redefined before any
        read on *every* path; the trace is one such path, so any
        dynamic read of the pending value refutes the claim.
        """
        program, run = _generated(profile_name, seed)
        analysis = analyze_program(program, use_cache=False)
        pending = {}  # register -> static index of the last write
        for dyn in run.trace:
            for reg in dyn.srcs:
                writer = pending.get(reg)
                assert writer is None or \
                    (writer, reg) not in analysis.directly_dead, (
                        f"dead site ({writer}, r{reg}) read at "
                        f"#{dyn.seq} ({dyn.op.name})"
                    )
            if dyn.dst >= 0:
                pending[dyn.dst] = dyn.static_index
        # Stores read their data through srcs as well; nothing else to do.

    @settings(max_examples=10, deadline=None)
    @given(profiles, seeds)
    def test_every_executed_write_has_a_site(self, profile_name, seed):
        """Every dynamic register write maps to a classified site."""
        program, run = _generated(profile_name, seed)
        analysis = analyze_program(program, use_cache=False)
        for dyn in run.trace:
            if dyn.dst >= 0:
                assert (dyn.static_index, dyn.dst) in analysis.site_classes

    @settings(max_examples=10, deadline=None)
    @given(profiles, seeds)
    def test_trace_stays_on_cfg_edges(self, profile_name, seed):
        """Observed control flow is a subset of the recovered CFG.

        For every consecutive trace pair, the successor's static index
        must be among the static successors of the predecessor — the
        over-approximation direction that keeps ``dead`` sound.
        """
        program, run = _generated(profile_name, seed)
        return_points = call_return_points(program)
        for dyn in run.trace[:-1]:
            succs = instruction_successors(
                program, dyn.static_index, return_points
            )
            assert dyn.next_index in succs, (
                f"dynamic edge {dyn.static_index}->{dyn.next_index} "
                f"missing from static successors {succs}"
            )

    @settings(max_examples=6, deadline=None)
    @given(profiles, seeds)
    def test_analysis_is_deterministic(self, profile_name, seed):
        """Same program, same verdicts — no iteration-order leakage."""
        program, _run = _generated(profile_name, seed)
        first = analyze_program(program, use_cache=False)
        second = analyze_program(program, use_cache=False)
        assert first.site_classes == second.site_classes
        assert first.findings == second.findings
        assert first.fingerprint == second.fingerprint
