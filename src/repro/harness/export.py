"""Machine-readable result export (JSON / CSV).

Everything the text reports show can also be exported for downstream
plotting or archival:

* :func:`stats_to_dict` — one simulation's counters and derived metrics
  (plain JSON-serialisable types only);
* :func:`figure_to_dict` / :func:`figure_to_json` — a full figure's
  IPC grid with averages and gaps;
* :func:`figure_to_csv` — the same grid as CSV rows;
* :func:`write_figure` — convenience writer used by the CLI's
  ``export`` subcommand;
* :func:`analysis_to_dict` — a program's static analysis (structure
  summary, per-class fault-site counts, lint findings);
* :func:`site_campaign_to_dict` / :func:`site_campaign_to_csv` /
  :func:`write_site_campaign` — a site-level oracle campaign's
  per-class outcome grid and any mismatches.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Dict

from ..analysis import AnalysisResult, CLASSES
from ..uarch.sampling import SampledResult
from ..uarch.stats import Stats
from .campaign import OUTCOMES, SiteCampaignResult
from .experiments import FigureResult, SERIES_BASELINE


def stats_to_dict(stats: Stats) -> Dict[str, Any]:
    """A JSON-safe dict of one run's statistics.

    Accepts a :class:`~repro.uarch.sampling.SampledResult` too (cells
    of sampled figures): the merged interval counters are exported with
    ``ipc`` replaced by the sampled estimate, plus a ``sampled`` block
    recording how the estimate was produced.
    """
    if isinstance(stats, SampledResult):
        out = stats_to_dict(stats.stats)
        out["ipc"] = stats.ipc
        out["sampled"] = {
            "intervals": len(stats.intervals),
            "interval_length": stats.spec.interval_length,
            "total_instructions": stats.total_instructions,
            "detail_fraction": stats.detail_fraction,
            "ipc_ci": stats.ipc_ci,
        }
        return out
    out = stats.to_dict()
    # Everything is already int/float/bool/str/dict; make sure of it.
    for key, value in list(out.items()):
        if isinstance(value, dict):
            out[key] = {str(k): v for k, v in value.items()}
    return out


def figure_to_dict(result: FigureResult) -> Dict[str, Any]:
    """A figure's full result grid as a JSON-safe dict."""
    spec = result.spec
    cells = {
        bench: {
            label: stats_to_dict(result.cells[bench][label])
            for label in spec.series_labels
        }
        for bench in spec.benchmarks
    }
    averages = {
        label: result.average_ipc(label) for label in spec.series_labels
    }
    gaps = {
        label: result.gap(label)
        for label in spec.series_labels
        if label != SERIES_BASELINE
    }
    return {
        "figure": spec.figure_id,
        "title": spec.title,
        "scale": result.scale,
        "series": list(spec.series_labels),
        "benchmarks": list(spec.benchmarks),
        "average_ipc": averages,
        "gap_vs_baseline": gaps,
        "cells": cells,
    }


def figure_to_json(result: FigureResult, indent: int = 2) -> str:
    """The figure grid as a JSON document."""
    return json.dumps(figure_to_dict(result), indent=indent, sort_keys=True)


def figure_to_csv(result: FigureResult) -> str:
    """The figure's IPC grid as CSV (benchmark rows, series columns)."""
    spec = result.spec
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark"] + list(spec.series_labels))
    for bench in spec.benchmarks:
        writer.writerow(
            [bench]
            + [f"{result.ipc(bench, label):.4f}"
               for label in spec.series_labels]
        )
    writer.writerow(
        ["AVG"]
        + [f"{result.average_ipc(label):.4f}"
           for label in spec.series_labels]
    )
    return buffer.getvalue()


def analysis_to_dict(result: AnalysisResult) -> Dict[str, Any]:
    """A program's static analysis as a JSON-safe dict."""
    payload = result.to_payload()
    payload["fingerprint"] = result.fingerprint
    payload["from_cache"] = result.from_cache
    payload["clean"] = result.clean
    payload["class_counts"] = {
        klass: result.class_counts.get(klass, 0) for klass in CLASSES
    }
    return payload


def site_campaign_to_dict(result: SiteCampaignResult) -> Dict[str, Any]:
    """A site campaign's per-class outcome grid as a JSON-safe dict."""
    return {
        "program": result.program_name,
        "runs": result.runs,
        "seed": result.seed,
        "emulations": result.emulations,
        "skipped_dead": result.skipped_dead,
        "analysis_from_cache": result.analysis_from_cache,
        "site_pool": {
            klass: result.site_pool.get(klass, 0) for klass in CLASSES
        },
        "by_class": {
            klass: {
                outcome: result.by_class.get(klass, {}).get(outcome, 0)
                for outcome in OUTCOMES
            }
            for klass in CLASSES
        },
        "visible": {
            klass: result.visible(klass) for klass in CLASSES
        },
        "mismatches": [
            {
                "index": record.index,
                "reg": record.reg,
                "class": record.klass,
                "occurrence": record.occurrence,
                "bit": record.bit,
                "outcome": record.outcome,
                "instruction": record.instruction,
            }
            for record in result.mismatches
        ],
    }


def site_campaign_to_json(result: SiteCampaignResult, indent: int = 2) -> str:
    """The site campaign as a JSON document."""
    return json.dumps(
        site_campaign_to_dict(result), indent=indent, sort_keys=True
    )


def site_campaign_to_csv(result: SiteCampaignResult) -> str:
    """The per-class outcome grid as CSV (class rows, outcome columns)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["class", "pool"] + list(OUTCOMES) + ["visible"])
    for klass in CLASSES:
        counter = result.by_class.get(klass, {})
        writer.writerow(
            [klass, result.site_pool.get(klass, 0)]
            + [counter.get(outcome, 0) for outcome in OUTCOMES]
            + [result.visible(klass)]
        )
    return buffer.getvalue()


def write_site_campaign(
    result: SiteCampaignResult,
    directory: str,
    formats: tuple = ("json", "csv"),
) -> Dict[str, str]:
    """Write a site campaign's results; returns path per format."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"sites_{result.program_name}"
    written: Dict[str, str] = {}
    for fmt in formats:
        path = out_dir / f"{stem}.{fmt}"
        if fmt == "json":
            path.write_text(site_campaign_to_json(result))
        elif fmt == "csv":
            path.write_text(site_campaign_to_csv(result))
        else:
            raise ValueError(f"unknown export format: {fmt!r}")
        written[fmt] = str(path)
    return written


def write_figure(
    result: FigureResult,
    directory: str,
    formats: tuple = ("json", "csv"),
) -> Dict[str, str]:
    """Write a figure's results to ``directory``; returns path per format."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}
    for fmt in formats:
        path = out_dir / f"{result.spec.figure_id}.{fmt}"
        if fmt == "json":
            path.write_text(figure_to_json(result))
        elif fmt == "csv":
            path.write_text(figure_to_csv(result))
        else:
            raise ValueError(f"unknown export format: {fmt!r}")
        written[fmt] = str(path)
    return written
