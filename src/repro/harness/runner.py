"""Model runner: one simulation = (workload, machine config) -> Stats.

This is the narrow waist between the workloads, the timing models and
the experiment definitions.  All figure experiments run through
:func:`run_benchmark`, which

* memoises the workload trace (shared across the 4-5 machine models of
  a figure),
* enables cache and predictor warm-up (the paper's 100 M-instruction
  runs are effectively warm; see DESIGN.md §5), and
* honours the ``REPRO_BENCH_INSTRUCTIONS`` environment variable so the
  whole figure suite can be scaled to the machine it runs on.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from ..arch.trace import Trace
from ..isa.program import Program
from ..reese.faults import FaultModel, NoFaults
from ..uarch.config import MachineConfig
from ..uarch.observe import ObserveConfig, build_observability
from ..uarch.pipeline import Pipeline
from ..uarch.stats import Stats

# DEFAULT_SCALE is re-exported here for backward compatibility; the
# single source of truth lives with the workload builders so the suite
# and the harness can never disagree on "the default trace" again.
from ..workloads.suite import DEFAULT_SCALE, trace_for


def bench_scale() -> int:
    """Dynamic instructions per benchmark (env-overridable).

    Precedence: an explicit ``scale`` argument (e.g. the CLI's
    ``--scale``) beats ``REPRO_BENCH_INSTRUCTIONS``, which beats
    :data:`DEFAULT_SCALE`.  A malformed or non-positive env value (e.g.
    ``"2e4"``, ``"20k"``, ``"-5"``) warns and falls back to the default
    instead of silently running every experiment at the wrong scale.
    """
    value = os.environ.get("REPRO_BENCH_INSTRUCTIONS", "")
    if not value:
        return DEFAULT_SCALE
    try:
        parsed = int(value)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_BENCH_INSTRUCTIONS={value!r} "
            f"(expected a positive integer); using {DEFAULT_SCALE}",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_SCALE
    if parsed <= 0:
        warnings.warn(
            f"REPRO_BENCH_INSTRUCTIONS={value!r} is not positive; "
            f"using {DEFAULT_SCALE}",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_SCALE
    return parsed


def _env_observe(fault_model: Optional[FaultModel]) -> Optional[ObserveConfig]:
    """The ``REPRO_CHECK_INVARIANTS`` smoke gate.

    When the variable is set (to anything but ``0``/empty), every
    harness-driven simulation runs under the runtime invariant checker
    — except fault-injected ones, whose whole point is to commit
    corrupted values the checker would (correctly) reject.  This is how
    CI runs the tier-1 suite with invariant checking on without every
    test opting in individually.
    """
    if os.environ.get("REPRO_CHECK_INVARIANTS", "") in ("", "0"):
        return None
    if fault_model is not None and not isinstance(fault_model, NoFaults):
        return None
    return ObserveConfig(check_invariants=True)


def run_model(
    program: Program,
    trace: Trace,
    config: MachineConfig,
    fault_model: Optional[FaultModel] = None,
    warm: bool = True,
    max_cycles: Optional[int] = None,
    observe: Optional[ObserveConfig] = None,
) -> Stats:
    """Simulate one program trace on one machine configuration.

    Args:
        observe: optional observability attachment (event trace,
            per-stage metrics, invariant checker); ``None`` keeps the
            observer-free fast path unless ``REPRO_CHECK_INVARIANTS``
            is set in the environment (see :func:`_env_observe`).
    """
    if observe is None:
        observe = _env_observe(fault_model)
    pipeline = Pipeline(
        program,
        trace,
        config,
        fault_model=fault_model,
        warm_caches=warm,
        warm_predictor=warm,
        observer=build_observability(observe),
    )
    return pipeline.run(max_cycles=max_cycles)


def run_benchmark(
    name: str,
    config: MachineConfig,
    scale: Optional[int] = None,
    seed: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    warm: bool = True,
    observe: Optional[ObserveConfig] = None,
) -> Stats:
    """Simulate one named benchmark on one machine configuration."""
    program, trace = trace_for(name, scale or bench_scale(), seed)
    return run_model(program, trace, config, fault_model=fault_model,
                     warm=warm, observe=observe)
