"""Cycle-level out-of-order superscalar core with optional REESE.

The model mirrors SimpleScalar 2.0's ``sim-outorder`` organisation
(paper §5.1): a fetch queue feeds dispatch/rename into a **Register
Update Unit** — a circular queue combining reservation stations and a
reorder buffer — with a parallel **load/store queue**; instructions
issue out of order to functional-unit pools and commit in order from
the RUU head.  Stage processing runs in reverse pipeline order each
cycle (commit, writeback, issue, dispatch, fetch), as in sim-outorder.

Execution is driven by the functional emulator's dynamic trace along
the correct path; mispredicted branches switch fetch onto the *static*
program's wrong path, whose instructions occupy the fetch queue, RUU,
LSQ and functional units until the branch resolves at writeback and
squashes them.

With ``config.reese.enabled`` the commit stage implements the REESE
protocol (paper §4):

1. completed P-stream instructions leave the RUU into the
   **R-stream Queue** (freeing their RUU/LSQ entries) instead of
   committing — from the head in program order, or from anywhere in the
   window when ``early_remove`` is on;
2. R-stream instructions issue from the queue into functional-unit
   slots left idle by the P stream (P has priority; a high-water mark
   forces R priority to avoid overflow livelock);
3. when an entry's R execution completes, the commit stage compares the
   P and R results in program order and only then updates architectural
   state (stores write the D-cache here);
4. a mismatch flushes the pipeline *and* the R-stream Queue and
   refetches from the faulting instruction; an instruction that keeps
   failing stops the machine (:class:`~repro.reese.recovery.UnrecoverableFaultError`).

Soft errors are injected by a :class:`~repro.reese.faults.FaultModel`
that corrupts execution results at completion time; in the baseline
model corrupted results commit silently (counted as SDC), while REESE
detects any P/R mismatch.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional

from ..arch.trace import DynInst, Trace
from ..bpred import BTB, PerfectPredictor, ReturnAddressStack, make_predictor
from ..isa.instructions import FUClass, Op, OPINFO
from ..isa.program import Program, TEXT_BASE
from ..isa.registers import REG_RA
from ..isa.instructions import INST_SIZE
from ..memhier.hierarchy import MemoryHierarchy
from ..reese.comparator import p_value as reese_p_value
from ..reese.comparator import reexecute as reese_reexecute
from ..reese.comparator import values_equal
from ..reese.faults import FaultModel, NoFaults, corrupt_value
from ..reese.recovery import RetryTracker, UnrecoverableFaultError
from ..reese.rqueue import R_DONE, R_WAITING, REntry, RStreamQueue
from .config import MachineConfig
from .funits import FUPool
from .stats import Stats


class SimulationDeadlockError(Exception):
    """The pipeline made no commit progress for an implausible interval."""


class SimulationTimeoutError(Exception):
    """The cycle cap expired before every trace instruction committed.

    Carries the partial :class:`~repro.uarch.stats.Stats` as
    :attr:`stats` for diagnosis; the harness must never cache or report
    such a truncated result as if the run had finished.
    """

    def __init__(self, cap: int, committed: int, total: int, stats) -> None:
        self.cap = cap
        self.committed = committed
        self.total = total
        self.stats = stats
        super().__init__(
            f"cycle cap {cap} exhausted with {committed}/{total} "
            f"instructions committed"
        )


def warm_caches_over(mem: MemoryHierarchy, trace, line_shift: int) -> None:
    """Architecturally touch every I-line, data address and TLB page.

    One functional pass over ``trace`` (any iterable of
    :class:`~repro.arch.trace.DynInst`): instruction lines are fetched
    once per line run, loads/stores touch the data side.  Shared by the
    full-run warm-up (:meth:`Pipeline._warm_up`) and the sampled engine
    (:mod:`repro.uarch.sampling`), whose fast-forward between
    measurement intervals is exactly this pass over the skipped region.
    The caller resets cache statistics afterwards when the pass is
    warm-up rather than measurement.
    """
    # Hoisted bound methods: this loop is the sampled engine's
    # fast-forward path, run over most of the trace per sampled run.
    ifetch = mem.ifetch
    daccess = mem.daccess
    last_line = -1
    for dyn in trace:
        pc = dyn.pc
        line = pc >> line_shift
        if line != last_line:
            ifetch(pc)
            last_line = line
        ea = dyn.ea
        if ea is not None:
            daccess(ea, is_write=dyn.is_store)


def warm_predictor_over(predictor, trace) -> None:
    """Pre-train the direction predictor on a branch stream.

    The counterpart of :func:`warm_caches_over` for the predictor: one
    predict/update pass over every conditional branch in ``trace``.
    The caller zeroes ``predictor.lookups``/``correct`` afterwards when
    the pass is warm-up rather than measurement.
    """
    predict = predictor.predict
    update = predictor.update
    for dyn in trace:
        if dyn.is_cond_branch:
            pc = dyn.pc
            predict(pc)
            update(pc, dyn.taken)


class _Entry:
    """One in-flight instruction (fetch queue / RUU / LSQ resident)."""

    __slots__ = (
        "seq",            # dispatch-order id, unique across refetches
        "dyn",            # DynInst for correct-path, None for wrong path
        "trace_seq",      # dyn.seq, or -1 for wrong path
        "static_index",
        "op",
        "fu",
        "is_load",
        "is_store",
        "is_mem",
        "is_branch",
        "is_halt",
        "wrong_path",
        "srcs",
        "dst",
        "deps",
        "consumers",
        "issued",
        "completed",
        "squashed",
        "mispredicted",
        "recover_cursor",  # trace cursor to resume at after recovery
        "skip_r",          # REESE: this instruction is not re-executed
        "p_fault_bit",     # fault bit flipped in the P result, or None
        "is_shadow",       # dispatch-dup: the duplicate copy
        "shadow",          # dispatch-dup: original -> its duplicate
    )

    def __init__(self) -> None:
        self.seq = 0
        self.dyn: Optional[DynInst] = None
        self.trace_seq = -1
        self.static_index = 0
        self.op = Op.NOP
        self.fu = FUClass.NONE
        self.is_load = False
        self.is_store = False
        self.is_mem = False
        self.is_branch = False
        self.is_halt = False
        self.wrong_path = False
        self.srcs = ()
        self.dst = -1
        self.deps = 0
        self.consumers: List["_Entry"] = []
        self.issued = False
        self.completed = False
        self.squashed = False
        self.mispredicted = False
        self.recover_cursor = -1
        self.skip_r = False
        self.p_fault_bit: Optional[int] = None
        self.is_shadow = False
        self.shadow: Optional["_Entry"] = None


class Pipeline:
    """One simulated machine executing one program trace."""

    #: Cycles without a commit before declaring deadlock.
    DEADLOCK_WINDOW = 20_000

    def __init__(
        self,
        program: Program,
        trace: Trace,
        config: MachineConfig,
        fault_model: Optional[FaultModel] = None,
        warm_caches: bool = False,
        warm_predictor: bool = False,
        observer=None,
        warm_state=None,
        measure_from: Optional[int] = None,
        stop_after: Optional[int] = None,
        accountant=None,
    ) -> None:
        """
        Args:
            program: the static program (wrong-path fetch walks it).
            trace: dynamic trace from the functional emulator.
            config: machine configuration (Table 1 preset or variant).
            fault_model: optional soft-error injector.
            warm_caches: pre-touch every I-line, data address and TLB
                page of the trace before timing starts, then zero the
                cache statistics.  The paper simulates 100 M instructions
                per benchmark, so its caches run warm; our runs are 10⁴-
                10⁵ instructions and would otherwise be dominated by
                compulsory misses.  The experiment harness enables this.
            warm_predictor: likewise pre-train the direction predictor
                on one pass of the branch stream.
            observer: optional stage-event observer (e.g.
                :class:`repro.uarch.ptrace.PipeTrace` or
                :class:`repro.uarch.observe.Observability`); its
                ``notify`` method is called at fetch/dispatch/issue/
                complete/commit/squash/R-stream/compare/flush events.
                Optional observer hooks, resolved once here so an
                absent hook costs nothing per cycle: ``bind(pipeline)``
                at construction, ``on_cycle(pipeline)`` at the end of
                every simulated cycle, ``finalize(stats)`` after the
                run.
            warm_state: optional pre-warmed architectural state (an
                object with ``mem``, ``predictor``, ``btb`` and ``ras``
                attributes, e.g. :class:`repro.uarch.sampling.WarmState`).
                When given, the pipeline adopts those structures instead
                of building cold ones and the ``warm_caches`` /
                ``warm_predictor`` flags are ignored — the sampled
                engine hands every measurement interval a state that was
                functionally fast-forwarded to the interval start.
            measure_from: trace seq whose commit opens the measurement
                window — all statistics (including cache/predictor/FU
                counters) are reset the moment it reaches commit, so
                the returned Stats cover only instructions from this
                seq on.  The sampled engine uses it to run detailed
                warm-up instructions ahead of a measurement interval
                without polluting its numbers.  ``None`` measures the
                whole run.
            accountant: optional
                :class:`repro.uarch.accounting.CycleAccountant`; when
                given, every stage reports issue/stall facts to it and
                the end of every cycle settles the top-down slot/cycle
                attribution cascade.  ``None`` (the default) keeps the
                profiler-free fast path: every hook site is a single
                ``is not None`` test.
            stop_after: trace seq whose commit ends the run — younger
                trace instructions are fetched/executed (keeping the
                machine realistically busy behind the measured window)
                but never commit.  The sampled engine's drain padding:
                without it a measurement interval's tail could not
                overlap with successor work the way it does in a full
                run.  ``None`` runs the trace to completion.
        """
        self.program = program
        self.trace = trace
        self.config = config
        self.fault_model = fault_model or NoFaults()
        self.warm_caches = warm_caches
        self.warm_predictor = warm_predictor
        self.observer = observer
        self._on_cycle = getattr(observer, "on_cycle", None)
        bind = getattr(observer, "bind", None)
        if bind is not None:
            bind(self)
        self.stats = Stats()

        self.fupool = FUPool(config)
        self.accountant = accountant
        if accountant is not None:
            accountant.bind(self)
            self.fupool.track_streams = True
        if warm_state is not None:
            self.warm_caches = False
            self.warm_predictor = False
            self.mem = warm_state.mem
            self.predictor = warm_state.predictor
            self.btb = warm_state.btb
            self.ras = warm_state.ras
        else:
            self.mem = MemoryHierarchy(config.mem)
            self.predictor = make_predictor(
                config.predictor, **config.predictor_kwargs
            )
            self.btb = BTB(config.btb_entries)
            self.ras = ReturnAddressStack(config.ras_depth)

        self.cycle = 0
        self._done = False
        self._next_seq = 0
        self._event_tie = 0
        self._measure_from = measure_from
        self._stop_after = stop_after

        # Front end.
        self.ifq: Deque[_Entry] = deque()
        self.fetch_cursor = 0          # next trace index to fetch
        self.wp_active = False
        self.wp_index = -1             # static index for wrong-path fetch
        self.fetch_blocked_until = 0
        self._last_fetch_line = -1
        self._line_shift = config.mem.l1i.line_size.bit_length() - 1
        self._l1i_hit = config.mem.l1i.hit_latency
        self._l1d_hit = config.mem.l1d.hit_latency

        # Window.
        self.ruu: List[_Entry] = []
        self.lsq: List[_Entry] = []
        self.ready: List[_Entry] = []
        self.create: Dict[int, _Entry] = {}

        # Completion events: (cycle, tie, kind, payload, epoch)
        self._events: List = []

        # Architectural progress.
        self.commit_seq = 0            # next trace seq expected to commit

        # REESE.  Zero-valued knobs are "auto": the R-stream Queue scales
        # with the RUU (paper §7 sizes it at "slightly more area than the
        # RUU") and R dispatch is bound by issue slots / functional units
        # rather than dedicated dequeue ports.
        reese = config.reese
        self.reese_on = reese.enabled
        rqueue_size = reese.rqueue_size or max(32, config.ruu_size)
        self.rqueue = RStreamQueue(rqueue_size) if self.reese_on else None
        self.rq_epoch = 0
        self.retry = RetryTracker(reese.max_retry)
        self._r_high_water = rqueue_size - min(
            reese.high_water_margin, rqueue_size - 1
        )
        self._r_issue_width = reese.r_issue_width or config.issue_width

        # Dispatch-duplication comparison scheme (related work, §3).
        self.dup_on = config.dispatch_dup
        # Duty cycle: re-execute one instruction in every _duty_period.
        self._duty_period = max(1, round(1.0 / reese.r_duty_cycle))

    # ==================================================================
    # driver
    # ==================================================================

    def run(self, max_cycles: Optional[int] = None) -> Stats:
        """Simulate until every trace instruction has committed.

        Args:
            max_cycles: optional hard cap (for tests); the default cap
                scales with trace length as a runaway backstop.

        Returns:
            The populated :class:`~repro.uarch.stats.Stats`.

        Raises:
            SimulationDeadlockError: if no instruction commits for
                :data:`DEADLOCK_WINDOW` cycles.
            SimulationTimeoutError: the cycle cap ran out before every
                trace instruction committed.  Truncated runs used to
                return partial Stats silently, so a too-small cap
                quietly produced figures computed over a prefix of the
                workload; exhaustion is now an explicit error carrying
                the partial Stats.
            UnrecoverableFaultError: REESE retry budget exhausted.
        """
        total = len(self.trace)
        if total == 0:
            return self._finalize()
        if self.warm_caches or self.warm_predictor:
            self._warm_up()
        cap = max_cycles if max_cycles is not None else 400 * total + 100_000
        last_commit_cycle = 0
        last_committed = 0
        on_cycle = self._on_cycle  # hoisted: fixed for the whole run
        acct = self.accountant     # hoisted: fixed for the whole run

        while not self._done and self.cycle < cap:
            self._commit()
            self._writeback()
            self._issue()
            self._dispatch()
            self._fetch()
            if on_cycle is not None:
                on_cycle(self)  # end-of-cycle state, pre-increment
            if acct is not None:
                acct.on_cycle(self)  # settle the attribution cascade
            self.cycle += 1
            self.stats.cycles += 1
            if self.reese_on:
                occ = len(self.rqueue)
                self.stats.rqueue_occ_sum += occ
                if occ > self.stats.rqueue_occ_max:
                    self.stats.rqueue_occ_max = occ
            if not self.ifq and not self.ruu:
                if self.commit_seq >= total:
                    self._done = True
            if self.stats.committed != last_committed:
                last_committed = self.stats.committed
                last_commit_cycle = self.cycle
            elif self.cycle - last_commit_cycle > self.DEADLOCK_WINDOW:
                raise SimulationDeadlockError(
                    f"no commit for {self.DEADLOCK_WINDOW} cycles at cycle "
                    f"{self.cycle} (commit_seq={self.commit_seq}/{total}, "
                    f"ruu={len(self.ruu)}, ifq={len(self.ifq)}, "
                    f"rqueue={len(self.rqueue) if self.rqueue else 0})"
                )
        if not self._done:
            raise SimulationTimeoutError(
                cap, self.stats.committed, total, self._finalize()
            )
        return self._finalize()

    def _warm_up(self) -> None:
        """One architectural pass over the trace to warm caches/predictor."""
        if self.warm_caches:
            warm_caches_over(self.mem, self.trace, self._line_shift)
            self.mem.l1i.reset_stats()
            self.mem.l1d.reset_stats()
            self.mem.l2.reset_stats()
        if self.warm_predictor:
            warm_predictor_over(self.predictor, self.trace)
            self.predictor.lookups = 0
            self.predictor.correct = 0

    def _begin_measurement(self) -> None:
        """Open the measurement window: zero every statistic in place.

        Fires once, when the ``measure_from`` instruction reaches
        commit.  Machine state (caches, predictor, queues, in-flight
        work) is untouched — only counters reset, so the Stats this run
        returns describe the measured window of a machine that was
        already realistically busy.
        """
        self._measure_from = None
        stats = self.stats
        for name in Stats._SUM_FIELDS:
            setattr(stats, name, 0)
        for name in Stats._MAX_FIELDS:
            setattr(stats, name, 0)
        self.mem.reset_stats()
        self.predictor.lookups = 0
        self.predictor.correct = 0
        for key in self.fupool.issues:
            self.fupool.issues[key] = 0
        for key in self.fupool.issues_r:
            self.fupool.issues_r[key] = 0
        if self.accountant is not None:
            self.accountant.reset()

    def _finalize(self) -> Stats:
        stats = self.stats
        stats.halted = self._done
        stats.bpred_accuracy = self.predictor.accuracy
        stats.fu_issues = dict(self.fupool.issues)
        stats.cache_stats = self.mem.stat_dict()
        if self.accountant is not None:
            stats.accounting = self.accountant.state_dict()
        finalize = getattr(self.observer, "finalize", None)
        if finalize is not None:
            finalize(stats)
        return stats

    # ==================================================================
    # commit
    # ==================================================================

    def _commit(self) -> None:
        if self.reese_on:
            self._commit_reese()
        elif self.dup_on:
            self._commit_dup()
        else:
            self._commit_baseline()

    def _commit_baseline(self) -> None:
        budget = self.config.commit_width
        ruu = self.ruu
        while budget and ruu:
            head = ruu[0]
            if head.wrong_path or not head.completed:
                break
            if head.is_store:
                if self.fupool.acquire(FUClass.MEM_PORT, self.cycle) is None:
                    break
                self.fupool.record_issue(FUClass.MEM_PORT)
                self.mem.daccess(head.dyn.ea, is_write=True)
            self._retire_entry(head)
            ruu.pop(0)
            if head.is_mem:
                self._lsq_remove(head)
            if self._done:
                return
            budget -= 1

    def _commit_dup(self) -> None:
        """Commit for the dispatch-duplication scheme.

        The RUU head holds the original; its duplicate sits right
        behind it.  Both must have completed; their (possibly
        fault-corrupted) results are compared and the instruction
        retires once.  A mismatch triggers the same flush-and-refetch
        recovery as REESE.
        """
        budget = self.config.commit_width
        ruu = self.ruu
        observer = self.observer
        while budget and ruu:
            head = ruu[0]
            if head.wrong_path or not head.completed:
                break
            shadow = head.shadow
            if shadow is not None and not shadow.completed:
                break
            if head.trace_seq == self._measure_from:
                self._begin_measurement()
            if shadow is not None:
                self.stats.comparisons += 1
                p_val = reese_p_value(head.dyn)
                if head.p_fault_bit is not None:
                    p_val = corrupt_value(p_val, head.p_fault_bit)
                r_val = reese_reexecute(head.dyn)
                if shadow.p_fault_bit is not None:
                    r_val = corrupt_value(r_val, shadow.p_fault_bit)
                match = values_equal(p_val, r_val)
                if observer is not None:
                    observer.notify(
                        "compare", self.cycle, head, match=match
                    )
                if not match:
                    self.stats.errors_detected += 1
                    self.stats.recoveries += 1
                    if self.retry.record_failure(head.trace_seq):
                        self.stats.unrecoverable = True
                        raise UnrecoverableFaultError(
                            head.trace_seq, self.retry.failures
                        )
                    self._flush_all(refetch_cursor=head.trace_seq)
                    return
                if (
                    head.p_fault_bit is not None
                    and shadow.p_fault_bit is not None
                ):
                    self.stats.errors_undetected_same_event += 1
            if head.is_store:
                if self.fupool.acquire(FUClass.MEM_PORT, self.cycle) is None:
                    break
                self.fupool.record_issue(FUClass.MEM_PORT)
                self.mem.daccess(head.dyn.ea, is_write=True)
            self.retry.record_success(head.trace_seq)
            if observer is not None:
                observer.notify("commit", self.cycle, head)
            self.stats.committed += 1
            self.commit_seq = head.trace_seq + 1
            if head.is_halt or head.trace_seq == self._stop_after:
                self._done = True
            ruu.pop(0)
            if head.is_mem:
                self._lsq_remove(head)
            if shadow is not None:
                # The duplicate is adjacent: remove it too.
                if ruu and ruu[0] is shadow:
                    ruu.pop(0)
                else:  # pragma: no cover - defensive
                    ruu.remove(shadow)
                if shadow.is_mem:
                    self._lsq_remove(shadow)
            if self._done:
                return
            budget -= 1

    def _retire_entry(self, entry: _Entry) -> None:
        """Architectural retirement bookkeeping (baseline path)."""
        if entry.trace_seq == self._measure_from:
            self._begin_measurement()
        if self.observer is not None:
            self.observer.notify("commit", self.cycle, entry)
        if entry.p_fault_bit is not None:
            # No comparator: the corrupted result commits silently.
            self.stats.sdc_commits += 1
        self.stats.committed += 1
        self.commit_seq = entry.trace_seq + 1
        if entry.is_halt or entry.trace_seq == self._stop_after:
            self._done = True

    def _commit_reese(self) -> None:
        # Phase 1: final commit — compare and retire from the R-stream
        # Queue in program order (frees queue slots for phase 2).
        budget = self.config.commit_width
        rqueue = self.rqueue
        observer = self.observer
        acct = self.accountant
        while budget:
            rentry = rqueue.committable(self.commit_seq)
            if rentry is None:
                break
            dyn = rentry.dyn
            if rentry.seq == self._measure_from:
                self._begin_measurement()
            if not rentry.skip_r:
                self.stats.comparisons += 1
                match = values_equal(rentry.p_value, rentry.r_value)
                if observer is not None:
                    observer.notify(
                        "compare", self.cycle, rentry=rentry, match=match
                    )
                if not match:
                    self._handle_detected_error(rentry)
                    return
                if (
                    rentry.p_fault_bit is not None
                    and rentry.r_fault_bit is not None
                ):
                    # Both corrupted identically inside one environmental
                    # event: comparison passes, the error escapes.
                    self.stats.errors_undetected_same_event += 1
            elif rentry.p_fault_bit is not None:
                # Re-execution skipped (duty cycle): corruption escapes.
                self.stats.sdc_commits += 1
            if dyn.is_store:
                if self.fupool.acquire(FUClass.MEM_PORT, self.cycle) is None:
                    break
                self.fupool.record_issue(FUClass.MEM_PORT)
                self.mem.daccess(dyn.ea, is_write=True)
                if rentry.lsq_entry is not None:
                    self._lsq_remove(rentry.lsq_entry)
            rqueue.pop(rentry.seq)
            if acct is not None:
                acct.record_residency(self.cycle - rentry.inserted_cycle)
            self.retry.record_success(rentry.seq)
            if observer is not None:
                observer.notify(
                    "commit", self.cycle, trace_seq=rentry.seq,
                    rentry=rentry,
                )
            self.stats.committed += 1
            self.commit_seq = rentry.seq + 1
            if dyn.op is Op.HALT or rentry.seq == self._stop_after:
                self._done = True
                return
            budget -= 1

        # Phase 2: move completed P instructions from the RUU into the
        # R-stream Queue (program order; early_remove allows skipping
        # over incomplete older entries).  An early move must leave
        # enough free queue slots for every *older* unmoved instruction
        # — entries drain from the queue strictly in program order, so
        # filling it with younger entries would deadlock the oldest.
        moves = self.config.commit_width
        early = self.config.reese.early_remove
        ruu = self.ruu
        index = 0
        older_unmoved = 0
        while moves and index < len(ruu):
            entry = ruu[index]
            if entry.wrong_path:
                break
            if not entry.completed:
                if early:
                    older_unmoved += 1
                    index += 1
                    continue
                break
            if rqueue.free_slots <= older_unmoved:
                self.stats.rqueue_full_events += 1
                if acct is not None:
                    acct.cyc_rqueue_block = True
                break
            self._move_to_rqueue(entry)
            ruu.pop(index)
            if entry.is_load:
                self._lsq_remove(entry)
            # Stores keep their LSQ slot until the post-comparison commit:
            # the LSQ entry is the store buffer, and memory must not be
            # written before the R-stream verification passes (§4.3).
            moves -= 1

    def _move_to_rqueue(self, entry: _Entry) -> None:
        dyn = entry.dyn
        skip_r = entry.skip_r
        p_val = reese_p_value(dyn)
        if entry.p_fault_bit is not None:
            p_val = corrupt_value(p_val, entry.p_fault_bit)
        rentry = REntry(
            seq=entry.trace_seq,
            dyn=dyn,
            p_value=p_val,
            fu=self._r_fu_class(entry),
            inserted_cycle=self.cycle,
            skip_r=skip_r,
        )
        rentry.p_fault_bit = entry.p_fault_bit
        if entry.is_store:
            rentry.lsq_entry = entry
        self.rqueue.push(rentry)
        if self.observer is not None:
            self.observer.notify("rqueue", self.cycle, entry)
        self.stats.rqueue_moves += 1

    @staticmethod
    def _r_fu_class(entry: _Entry) -> FUClass:
        """Functional-unit class used by the redundant execution."""
        if entry.is_load:
            return FUClass.MEM_PORT
        if entry.is_store or entry.is_branch:
            # Address / direction recomputation runs on an integer ALU.
            return FUClass.INT_ALU
        if entry.fu is FUClass.NONE:
            return FUClass.INT_ALU
        return entry.fu

    def _handle_detected_error(self, rentry: REntry) -> None:
        self.stats.errors_detected += 1
        self.stats.recoveries += 1
        if self.retry.record_failure(rentry.seq):
            self.stats.unrecoverable = True
            raise UnrecoverableFaultError(rentry.seq, self.retry.failures)
        self._flush_all(refetch_cursor=rentry.seq)

    def _flush_all(self, refetch_cursor: int) -> None:
        """Full pipeline + R-stream Queue flush (REESE error recovery)."""
        self.stats.squashed += len(self.ifq) + len(self.ruu)
        self.ifq.clear()
        for entry in self.ruu:
            entry.squashed = True
        self.ruu.clear()
        self.lsq.clear()
        self.ready.clear()
        self.create.clear()
        self.rq_epoch += 1
        if self.rqueue is not None:
            self.rqueue.clear()
        if self.accountant is not None:
            self.accountant.note_flush()
        self.wp_active = False
        self.wp_index = -1
        self.fetch_cursor = refetch_cursor
        self.fetch_blocked_until = self.cycle + 1
        self._last_fetch_line = -1
        # Notify last, with the machine already clean: observers (the
        # invariant checker in particular) see the post-flush state.
        if self.observer is not None:
            self.observer.notify("recover", self.cycle)

    # ==================================================================
    # writeback
    # ==================================================================

    def _writeback(self) -> None:
        events = self._events
        cycle = self.cycle
        while events and events[0][0] <= cycle:
            _, _, kind, payload, epoch = heapq.heappop(events)
            if kind == 0:
                self._complete_p(payload)
            else:
                if epoch == self.rq_epoch:
                    self._complete_r(payload)

    def _complete_p(self, entry: _Entry) -> None:
        if entry.squashed:
            return
        entry.completed = True
        if self.observer is not None:
            self.observer.notify("complete", self.cycle, entry)
        if not entry.wrong_path and entry.dyn is not None:
            bit = self.fault_model.sample(self.cycle)
            if bit is not None and reese_p_value(entry.dyn) is not None:
                entry.p_fault_bit = bit
        for consumer in entry.consumers:
            if consumer.squashed or consumer.issued:
                continue
            consumer.deps -= 1
            if consumer.deps == 0:
                self.ready.append(consumer)
        entry.consumers = []
        if entry.mispredicted and not entry.squashed:
            self._recover_mispredict(entry)

    def _complete_r(self, rentry: REntry) -> None:
        separation = self.cycle - rentry.inserted_cycle
        self.stats.pr_separation_sum += separation
        self.stats.pr_separation_count += 1
        if separation > self.stats.pr_separation_max:
            self.stats.pr_separation_max = separation
        if self.accountant is not None:
            self.accountant.record_detect(separation)
        r_val = reese_reexecute(rentry.dyn)
        bit = self.fault_model.sample(self.cycle)
        if bit is not None and r_val is not None:
            r_val = corrupt_value(r_val, bit)
            rentry.r_fault_bit = bit
        rentry.r_value = r_val
        rentry.state = R_DONE
        if self.observer is not None:
            self.observer.notify(
                "r_complete", self.cycle, trace_seq=rentry.seq,
                rentry=rentry,
            )

    def _recover_mispredict(self, branch: _Entry) -> None:
        """Squash everything younger than a resolved mispredicted branch."""
        seq = branch.seq
        squashed = len(self.ifq)
        self.ifq.clear()
        survivors: List[_Entry] = []
        # The branch's own duplicate (dispatch-dup scheme) is younger by
        # one sequence number but belongs to the branch: keep it.
        keep = branch.shadow
        observer = self.observer
        for entry in self.ruu:
            if entry.seq > seq and entry is not keep:
                entry.squashed = True
                squashed += 1
                if observer is not None:
                    observer.notify("squash", self.cycle, entry)
            else:
                survivors.append(entry)
        self.ruu = survivors
        self.lsq = [
            entry for entry in self.lsq
            if entry.seq <= seq or entry is keep
        ]
        self.ready = [
            entry for entry in self.ready
            if entry.seq <= seq or entry is keep
        ]
        # Rebuild the create vector from surviving in-flight producers.
        self.create.clear()
        for entry in self.ruu:
            if entry.dst >= 0 and not entry.completed:
                self.create[entry.dst] = entry
        self.stats.squashed += squashed
        # Redirect fetch to the correct path.
        self.wp_active = False
        self.wp_index = -1
        self.fetch_cursor = branch.recover_cursor
        self.fetch_blocked_until = max(self.fetch_blocked_until, self.cycle + 1)
        self._last_fetch_line = -1
        branch.mispredicted = False
        if self.accountant is not None:
            self.accountant.note_mispredict()

    # ==================================================================
    # issue
    # ==================================================================

    def _issue(self) -> None:
        budget = self.config.issue_width
        r_budget = self._r_issue_width if self.reese_on else 0
        if self.reese_on and len(self.rqueue) >= self._r_high_water:
            before = min(budget, r_budget)
            left = self._issue_r(before)
            issued = before - left
            budget -= issued
            r_budget -= issued
        budget = self._issue_p(budget)
        if self.reese_on and budget and r_budget:
            self._issue_r(min(budget, r_budget))

    def _issue_p(self, budget: int) -> int:
        if not budget or not self.ready:
            return budget
        self.ready.sort(key=lambda entry: entry.seq)
        leftover: List[_Entry] = []
        cycle = self.cycle
        observer = self.observer
        acct = self.accountant
        for entry in self.ready:
            if entry.squashed or entry.issued:
                continue
            if not budget:
                leftover.append(entry)
                continue
            latency = self._try_issue_entry(entry, cycle)
            if latency is None:
                leftover.append(entry)
                continue
            entry.issued = True
            self._schedule_p(entry, cycle + latency)
            if observer is not None:
                observer.notify("issue", cycle, entry)
            self.stats.issued += 1
            if entry.wrong_path:
                self.stats.issued_wrong_path += 1
            if entry.is_shadow:
                self.stats.issued_r += 1  # redundant copy (dispatch dup)
            if acct is not None:
                if entry.wrong_path:
                    acct.cyc_issued_wp += 1
                elif entry.is_shadow:
                    acct.cyc_issued_r += 1
                else:
                    acct.cyc_issued_p += 1
            budget -= 1
        self.ready = leftover
        return budget

    def _try_issue_entry(self, entry: _Entry, cycle: int) -> Optional[int]:
        """Attempt to issue one P-stream entry; returns latency or None."""
        if entry.is_store:
            # Stores need no FU: address+data merge into the LSQ entry.
            return 1
        if entry.is_load:
            return self._try_issue_load(entry, cycle)
        grant = self.fupool.acquire(entry.fu, cycle, entry.is_shadow)
        if grant is None:
            acct = self.accountant
            if acct is not None:
                acct.note_fu_block(
                    self.fupool.blame(entry.fu, cycle), entry.is_shadow
                )
            return None
        self.fupool.record_issue(entry.fu, entry.is_shadow)
        return max(1, grant)

    def _try_issue_load(self, entry: _Entry, cycle: int) -> Optional[int]:
        ea = entry.dyn.ea if entry.dyn is not None else None
        forward = False
        for older in self.lsq:
            if older is entry:
                break
            if not older.is_store:
                continue
            if not older.completed:
                return None  # older store address unknown: block the load
            if (
                ea is not None
                and older.dyn is not None
                and older.dyn.ea is not None
                and (older.dyn.ea & ~3) == (ea & ~3)
            ):
                forward = True  # youngest older match wins; keep scanning
        if forward:
            self.stats.load_forwards += 1
            return 1  # store-to-load forwarding inside the LSQ
        grant = self.fupool.acquire(FUClass.MEM_PORT, cycle, entry.is_shadow)
        if grant is None:
            acct = self.accountant
            if acct is not None:
                acct.note_fu_block(
                    self.fupool.blame(FUClass.MEM_PORT, cycle),
                    entry.is_shadow,
                )
            return None
        self.fupool.record_issue(FUClass.MEM_PORT, entry.is_shadow)
        if entry.wrong_path or ea is None:
            return self._l1d_hit  # wrong path: no cache state pollution
        return max(1, self.mem.daccess(ea, is_write=False))

    def _issue_r(self, budget: int) -> int:
        cycle = self.cycle
        rqueue = self.rqueue
        observer = self.observer
        acct = self.accountant
        for rentry in rqueue.waiting_entries():
            if not budget:
                break
            grant = self.fupool.acquire(rentry.fu, cycle, True)
            if grant is None:
                if acct is not None:
                    acct.cyc_fu_block_r += 1
                continue  # FU busy: skip — R entries are independent
            self.fupool.record_issue(rentry.fu, True)
            if rentry.fu is FUClass.MEM_PORT:
                latency = self._l1d_hit  # R loads always hit in L1 (§4.4)
            else:
                latency = max(1, grant)
            rqueue.mark_issued(rentry)
            self._schedule_r(rentry, cycle + latency)
            if observer is not None:
                observer.notify(
                    "r_issue", cycle, trace_seq=rentry.seq, rentry=rentry
                )
            self.stats.issued_r += 1
            if acct is not None:
                acct.cyc_issued_r += 1
            budget -= 1
        return budget

    def _schedule_p(self, entry: _Entry, finish: int) -> None:
        self._event_tie += 1
        heapq.heappush(self._events, (finish, self._event_tie, 0, entry, 0))

    def _schedule_r(self, rentry: REntry, finish: int) -> None:
        self._event_tie += 1
        heapq.heappush(
            self._events, (finish, self._event_tie, 1, rentry, self.rq_epoch)
        )

    # ==================================================================
    # dispatch
    # ==================================================================

    def _dispatch(self) -> None:
        budget = self.config.decode_width
        ruu_size = self.config.ruu_size
        lsq_size = self.config.lsq_size
        ifq = self.ifq
        acct = self.accountant
        while budget and ifq:
            entry = ifq[0]
            duplicate = (
                self.dup_on
                and not entry.wrong_path
                and entry.fu is not FUClass.NONE
                and not entry.is_halt
            )
            slots_needed = 2 if duplicate else 1
            if len(self.ruu) > ruu_size - slots_needed:
                self.stats.ruu_full_events += 1
                if acct is not None:
                    acct.cyc_dispatch_block = "ruu"
                break
            if entry.is_mem and len(self.lsq) > lsq_size - slots_needed:
                self.stats.lsq_full_events += 1
                if acct is not None:
                    acct.cyc_dispatch_block = "lsq"
                break
            if duplicate and budget < 2:
                break  # original and duplicate dispatch together
            ifq.popleft()
            self._dispatch_one(entry)
            budget -= 1
            if duplicate:
                shadow = self._make_shadow(entry)
                entry.shadow = shadow
                self._dispatch_one(shadow)
                budget -= 1

    def _dispatch_one(self, entry: _Entry) -> None:
        if self.observer is not None:
            self.observer.notify("dispatch", self.cycle, entry)
        self._rename(entry)
        self.ruu.append(entry)
        if entry.is_mem:
            self.lsq.append(entry)
        self.stats.dispatched += 1
        if entry.wrong_path:
            self.stats.dispatched_wrong_path += 1
        if entry.fu is FUClass.NONE:
            # nop/halt: no execution; completes next cycle.
            entry.issued = True
            self._schedule_p(entry, self.cycle + 1)
        elif entry.deps == 0:
            self.ready.append(entry)

    def _make_shadow(self, original: _Entry) -> _Entry:
        """The duplicate copy for the dispatch-duplication scheme."""
        shadow = _Entry()
        # The duplicate shares its original's age: squash decisions and
        # issue-priority ordering must treat the pair as one instruction.
        shadow.seq = original.seq
        shadow.dyn = original.dyn
        shadow.trace_seq = original.trace_seq
        shadow.static_index = original.static_index
        shadow.op = original.op
        shadow.fu = original.fu
        shadow.is_load = original.is_load
        shadow.is_store = original.is_store
        shadow.is_branch = original.is_branch
        shadow.is_mem = original.is_mem
        shadow.is_halt = original.is_halt
        shadow.srcs = original.srcs
        shadow.dst = -1  # the duplicate produces nothing architectural
        shadow.is_shadow = True
        return shadow

    def _rename(self, entry: _Entry) -> None:
        deps = 0
        create = self.create
        for src in entry.srcs:
            producer = create.get(src)
            if (
                producer is not None
                and not producer.completed
                and not producer.squashed
            ):
                deps += 1
                producer.consumers.append(entry)
        entry.deps = deps
        if entry.dst >= 0:
            create[entry.dst] = entry

    # ==================================================================
    # fetch
    # ==================================================================

    def _fetch(self) -> None:
        if self.fetch_blocked_until > self.cycle:
            return
        budget = self.config.fetch_width
        ifq_cap = self.config.fetch_queue_size
        trace = self.trace
        fetched_any = False
        while budget and len(self.ifq) < ifq_cap:
            if self.wp_active:
                if not self._fetch_wrong_path():
                    break
                fetched_any = True
            else:
                if self.fetch_cursor >= len(trace):
                    break
                if not self._fetch_correct_path(trace[self.fetch_cursor]):
                    break
                fetched_any = True
            budget -= 1
        if not fetched_any and not self.ifq:
            self.stats.ifq_empty_cycles += 1

    def _fetch_correct_path(self, dyn: DynInst) -> bool:
        # Instruction-cache probe (one access per line).
        line = dyn.pc >> self._line_shift
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            latency = self.mem.ifetch(dyn.pc)
            if latency > self._l1i_hit:
                # Miss: fetch stalls for the extra cycles.
                self.fetch_blocked_until = self.cycle + (latency - self._l1i_hit)
                return False

        entry = self._make_entry(dyn=dyn, static_index=dyn.static_index)
        self.stats.fetched += 1
        if dyn.is_load:
            self.stats.loads += 1
        elif dyn.is_store:
            self.stats.stores += 1
        if self.reese_on:
            entry.skip_r = (
                entry.fu is FUClass.NONE
                or entry.is_halt
                or (dyn.seq % self._duty_period) != 0
            )
            if entry.skip_r and entry.fu is not FUClass.NONE and not entry.is_halt:
                self.stats.r_skipped_duty += 1

        if dyn.is_branch:
            self.stats.branches += 1
            predicted = self._predict_next(dyn)
            if predicted == dyn.next_index:
                self.fetch_cursor += 1
            else:
                self.stats.mispredictions += 1
                entry.mispredicted = True
                entry.recover_cursor = self.fetch_cursor + 1
                self.wp_active = True
                self.wp_index = predicted  # -1 stalls wrong-path fetch
                self._last_fetch_line = -1
        else:
            self.fetch_cursor += 1
        self.ifq.append(entry)
        if self.observer is not None:
            self.observer.notify("fetch", self.cycle, entry)
        return True

    def _predict_next(self, dyn: DynInst) -> int:
        """Predicted next static index for a control-flow instruction."""
        op = dyn.op
        inst = self.program.code[dyn.static_index]
        fallthrough = dyn.static_index + 1
        if dyn.is_cond_branch:
            self.stats.cond_branches += 1
            predictor = self.predictor
            if isinstance(predictor, PerfectPredictor):
                predictor.prime(dyn.taken)
            taken_pred = predictor.predict_and_update(dyn.pc, dyn.taken)
            return dyn.target_index if taken_pred else fallthrough
        if op is Op.J:
            return dyn.target_index  # direct: target in the instruction word
        if op is Op.JAL:
            self.ras.push(fallthrough)
            return dyn.target_index
        if op is Op.JR:
            if inst.rs1 == REG_RA:
                predicted = self.ras.pop()
            else:
                predicted = self.btb.lookup(dyn.pc)
            self.btb.update(dyn.pc, dyn.target_index)
            return predicted if predicted is not None else -1
        if op is Op.JALR:
            self.ras.push(fallthrough)
            predicted = self.btb.lookup(dyn.pc)
            self.btb.update(dyn.pc, dyn.target_index)
            return predicted if predicted is not None else -1
        raise AssertionError(f"not a branch: {op}")

    def _fetch_wrong_path(self) -> bool:
        index = self.wp_index
        code = self.program.code
        if index < 0 or index >= len(code):
            return False  # wrong-path fetch has nowhere to go: stall
        inst = code[index]
        info = OPINFO[inst.op]
        entry = self._make_entry(dyn=None, static_index=index, inst=inst)
        entry.wrong_path = True
        self.stats.fetched_wrong_path += 1

        # Walk the wrong path by predictor direction / direct targets.
        op = inst.op
        if info.is_halt:
            self.wp_index = -1
        elif info.is_cond_branch:
            pc = TEXT_BASE + index * INST_SIZE
            taken = self.predictor.predict(pc)  # consult, never train
            self.wp_index = inst.imm if taken else index + 1
        elif op in (Op.J, Op.JAL):
            self.wp_index = inst.imm
        elif op in (Op.JR, Op.JALR):
            self.wp_index = -1  # indirect target unknown on the wrong path
        else:
            self.wp_index = index + 1
        self.ifq.append(entry)
        if self.observer is not None:
            self.observer.notify("fetch", self.cycle, entry)
        return True

    def _make_entry(
        self,
        dyn: Optional[DynInst],
        static_index: int,
        inst=None,
    ) -> _Entry:
        entry = _Entry()
        entry.seq = self._next_seq
        self._next_seq += 1
        entry.static_index = static_index
        if dyn is not None:
            entry.dyn = dyn
            entry.trace_seq = dyn.seq
            entry.op = dyn.op
            entry.fu = dyn.fu
            entry.is_load = dyn.is_load
            entry.is_store = dyn.is_store
            entry.is_branch = dyn.is_branch
            entry.srcs = dyn.srcs
            entry.dst = dyn.dst
            entry.is_halt = dyn.op is Op.HALT
        else:
            info = OPINFO[inst.op]
            entry.op = inst.op
            entry.fu = info.fu
            entry.is_load = info.is_load
            entry.is_store = info.is_store
            entry.is_branch = info.is_branch
            entry.srcs = inst.srcs()
            entry.dst = inst.dst()
            entry.is_halt = info.is_halt
        entry.is_mem = entry.is_load or entry.is_store
        return entry

    # ==================================================================
    # helpers
    # ==================================================================

    def _lsq_remove(self, entry: _Entry) -> None:
        try:
            self.lsq.remove(entry)
        except ValueError:  # pragma: no cover - defensive
            pass
