#!/usr/bin/env python3
"""Design-space exploration: the paper's central question.

"How much spare hardware is needed to decrease the fault-tolerance
overhead to zero?"  Sweeps every (spare ALU, spare multiplier)
combination of a REESE machine over the benchmark suite and prints the
average-IPC grid, marking the cheapest configuration within 2% of the
baseline.

Run:  python examples/spare_capacity_sweep.py [scale [jobs]]

The grid fans out over `jobs` worker processes (default: all cores)
through the harness's parallel execution layer; results are identical
for any worker count.
"""

import os
import sys

from repro.harness import run_sweep, spare_capacity_grid
from repro.uarch import starting_config

MAX_ALU = 3
MAX_MULT = 1


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else (os.cpu_count() or 1)
    base_config = starting_config()
    points = spare_capacity_grid(base_config, max_alu=MAX_ALU,
                                 max_mult=MAX_MULT)
    print(f"sweeping {len(points)} configurations "
          f"({scale} instructions x 6 benchmarks each, {jobs} worker(s))...")
    results = run_sweep(points, scale=scale, jobs=jobs)
    baseline_ipc = results[0].average_ipc

    print()
    print(f"baseline average IPC: {baseline_ipc:.3f}")
    print()
    header = "spare ALUs ->" + "".join(f"{a:>10d}" for a in range(MAX_ALU + 1))
    print(header)
    by_label = {point.label: point for point in results}
    best = None
    for mult in range(MAX_MULT + 1):
        cells = []
        for alu in range(MAX_ALU + 1):
            point = by_label[f"reese+{alu}alu+{mult}mult"]
            gap = 1 - point.average_ipc / baseline_ipc
            cells.append(f"{gap:>+9.1%}")
            if gap <= 0.02 and best is None:
                best = (alu, mult, gap)
        print(f"+{mult} mult     " + "".join(cells))

    print()
    if best:
        alu, mult, gap = best
        print(f"cheapest configuration within 2% of baseline: "
              f"+{alu} ALUs, +{mult} mult/div ({gap:+.1%})")
        print("(the paper lands on +2 integer ALUs as the sweet spot)")
    else:
        print("no swept configuration reached the 2% target; "
              "try a larger grid")


if __name__ == "__main__":
    main()
