"""Pipeline tracing — SimpleScalar-``ptrace``-style stage timelines.

Attach a :class:`PipeTrace` to a :class:`~repro.uarch.pipeline.Pipeline`
(``observer=`` argument) and it records, per dynamic instruction, the
cycle at which each stage happened:

======  =====================================================
column   meaning
======  =====================================================
``F``    fetched into the fetch queue
``D``    dispatched (renamed into the RUU/LSQ)
``I``    issued to a functional unit
``X``    execution completed (writeback)
``Q``    entered the R-stream Queue (REESE only)
``R``    redundant execution issued (REESE only)
``C``    architecturally committed
======  =====================================================

Squashed attempts are kept (marked ``squash``), so misprediction and
error-recovery behaviour is visible.  Rendering is bounded
(``max_records``) — tracing exists for inspection, not bulk logging.

Example::

    from repro.uarch import Pipeline, starting_config
    from repro.uarch.ptrace import PipeTrace

    tracer = PipeTrace(max_records=64)
    Pipeline(program, trace, starting_config().with_reese(),
             observer=tracer).run()
    print(tracer.render())
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Stage keys in rendering order.
STAGES = ("F", "D", "I", "X", "Q", "R", "C")


class _Record:
    __slots__ = ("seq", "trace_seq", "op", "pc", "wrong_path", "stages",
                 "squashed")

    def __init__(self, seq: int, trace_seq: int, op: str, pc: int,
                 wrong_path: bool) -> None:
        self.seq = seq
        self.trace_seq = trace_seq
        self.op = op
        self.pc = pc
        self.wrong_path = wrong_path
        self.stages: Dict[str, int] = {}
        self.squashed = False


class PipeTrace:
    """Observer that builds per-instruction stage timelines."""

    def __init__(self, max_records: int = 256) -> None:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.max_records = max_records
        self._records: Dict[int, _Record] = {}
        self._by_trace: Dict[int, int] = {}
        self._order: List[int] = []
        self.events = 0
        self.recoveries: List[int] = []

    # -- Pipeline hook ---------------------------------------------------

    def notify(self, event: str, cycle: int, entry=None, **info) -> None:
        """Called by the pipeline at each stage event.

        REESE's R-stream events happen after the pipeline entry has
        left the RUU, so they arrive keyed by ``trace_seq`` instead of
        an entry; they attach to the most recent record of that dynamic
        instruction.
        """
        self.events += 1
        if event == "recover":
            self.recoveries.append(cycle)
            return
        if entry is None:
            trace_seq = info.get("trace_seq")
            if trace_seq is None:
                return
            seq = self._by_trace.get(trace_seq)
            if seq is None:
                return
            record = self._records[seq]
        else:
            seq = entry.seq
            record = self._records.get(seq)
            if record is None:
                if len(self._records) >= self.max_records:
                    return
                record = _Record(
                    seq,
                    entry.trace_seq,
                    entry.op.name.lower(),
                    getattr(entry.dyn, "pc", 0)
                    if entry.dyn is not None else 0,
                    entry.wrong_path,
                )
                self._records[seq] = record
                self._order.append(seq)
                if entry.trace_seq >= 0:
                    self._by_trace[entry.trace_seq] = seq
        stage = _EVENT_TO_STAGE.get(event)
        if stage is not None and stage not in record.stages:
            record.stages[stage] = cycle
        if event == "squash":
            record.squashed = True

    # -- inspection --------------------------------------------------------

    def record_for(self, seq: int) -> Optional[_Record]:
        return self._records.get(seq)

    def __len__(self) -> int:
        return len(self._records)

    def render(self, limit: Optional[int] = None) -> str:
        """Text table of the recorded timelines."""
        header = (
            f"{'seq':>5s} {'dyn':>5s} {'op':<8s} {'pc':>10s} "
            + " ".join(f"{stage:>6s}" for stage in STAGES)
            + "  notes"
        )
        lines = [header, "-" * len(header)]
        for seq in self._order[: limit or len(self._order)]:
            record = self._records[seq]
            notes = []
            if record.wrong_path:
                notes.append("wrong-path")
            if record.squashed:
                notes.append("squashed")
            cells = " ".join(
                f"{record.stages.get(stage, ''):>6}" for stage in STAGES
            )
            dyn_col = record.trace_seq if record.trace_seq >= 0 else "-"
            lines.append(
                f"{record.seq:>5d} {dyn_col!s:>5s} {record.op:<8s} "
                f"{record.pc:#010x} {cells}  {' '.join(notes)}"
            )
        if self.recoveries:
            lines.append(f"recoveries at cycles: {self.recoveries}")
        return "\n".join(lines)


_EVENT_TO_STAGE = {
    "fetch": "F",
    "dispatch": "D",
    "issue": "I",
    "complete": "X",
    "rqueue": "Q",
    "r_issue": "R",
    "commit": "C",
}
