"""Sampled-simulation validation — accuracy and speedup vs full detail.

The acceptance bench for :mod:`repro.uarch.sampling`: every suite
benchmark is simulated twice per mode (baseline and REESE) at suite
scale — once in full detail, once through the sampled engine at its
reference operating point (20 profile-placed intervals of 300
instructions) — and the bench asserts

* per-cell accuracy: sampled IPC within 2% relative of the full run;
* aggregate speedup: the sampled runs complete at least 5x faster in
  wall clock than the full runs they replace;
* figure-level fidelity: the per-benchmark REESE-vs-baseline IPC
  ratios (Figure 2's headline comparison) and the suite-average REESE
  gap (Figure 6's summary bar) reproduce under sampling.

Both sides run in-process on a single thread so the speedup is the
sampling engine's own, not the worker pool's; ``REPRO_BENCH_JOBS``
parallelism and result caching only stack on top of it.
"""

import time

from conftest import publish

from repro.harness import format_table
from repro.uarch import Pipeline, SamplingSpec, run_sampled, starting_config
from repro.workloads.suite import BENCHMARK_ORDER, trace_for

SCALE = 200_000
SPEC = SamplingSpec(20, 300)  # profile placement, warmup/cooldown 50
MAX_REL_ERROR = 0.02
MIN_SPEEDUP = 5.0


def test_sampling_validation():
    base_cfg = starting_config()
    modes = [("baseline", base_cfg), ("reese", base_cfg.with_reese())]

    rows = [["benchmark", "mode", "full IPC", "sampled IPC",
             "rel err", "speedup"]]
    errors = {}
    full_ipc = {}
    sampled_ipc = {}
    t_full_total = 0.0
    t_samp_total = 0.0

    for bench in BENCHMARK_ORDER:
        program, trace = trace_for(bench, SCALE)
        for label, cfg in modes:
            start = time.perf_counter()
            full = Pipeline(program, trace, cfg, warm_caches=True,
                            warm_predictor=True).run()
            t_full = time.perf_counter() - start

            start = time.perf_counter()
            sampled = run_sampled(program, trace, cfg, SPEC)
            t_samp = time.perf_counter() - start

            rel = abs(sampled.ipc - full.ipc) / full.ipc
            errors[(bench, label)] = rel
            full_ipc[(bench, label)] = full.ipc
            sampled_ipc[(bench, label)] = sampled.ipc
            t_full_total += t_full
            t_samp_total += t_samp
            rows.append([
                bench, label, f"{full.ipc:.4f}", f"{sampled.ipc:.4f}",
                f"{rel * 100:.2f}%", f"{t_full / t_samp:.1f}x",
            ])

    speedup = t_full_total / t_samp_total

    # Figure 2 fidelity: per-benchmark REESE/baseline IPC ratios.
    delta_rows = [["benchmark", "full REESE/base", "sampled REESE/base"]]
    ratio_gaps = {}
    for bench in BENCHMARK_ORDER:
        r_full = full_ipc[(bench, "reese")] / full_ipc[(bench, "baseline")]
        r_samp = (sampled_ipc[(bench, "reese")]
                  / sampled_ipc[(bench, "baseline")])
        ratio_gaps[bench] = abs(r_samp - r_full)
        delta_rows.append([bench, f"{r_full:.4f}", f"{r_samp:.4f}"])

    # Figure 6 fidelity: suite-average REESE gap.
    def average_gap(ipc):
        base = sum(ipc[(b, "baseline")] for b in BENCHMARK_ORDER)
        reese = sum(ipc[(b, "reese")] for b in BENCHMARK_ORDER)
        return (base - reese) / base

    gap_full = average_gap(full_ipc)
    gap_samp = average_gap(sampled_ipc)

    detail = SPEC.intervals * SPEC.interval_length
    report = (
        f"sampled-simulation validation at suite scale "
        f"({SCALE} dynamic instructions per benchmark; "
        f"{SPEC.intervals} intervals x {SPEC.interval_length} = "
        f"{detail} measured instructions, profile placement)\n\n"
        + format_table(rows)
        + f"\n\naggregate wall-clock speedup: {speedup:.2f}x "
        f"(full {t_full_total:.1f}s vs sampled {t_samp_total:.1f}s)\n\n"
        "fig2 fidelity (REESE-vs-baseline IPC ratio per benchmark):\n"
        + format_table(delta_rows)
        + "\n\nfig6 fidelity (suite-average REESE IPC gap): "
        f"full {gap_full * 100:.2f}% vs sampled {gap_samp * 100:.2f}%"
    )
    publish("sampling_validation", report)

    bad = {k: v for k, v in errors.items() if v > MAX_REL_ERROR}
    assert not bad, f"cells above {MAX_REL_ERROR:.0%} relative error: {bad}"
    assert speedup >= MIN_SPEEDUP, \
        f"aggregate speedup only {speedup:.2f}x (< {MIN_SPEEDUP}x)"
    # The paper's comparisons survive sampling: per-benchmark ratios
    # within 2 points, the summary gap within 1 point.
    assert all(gap <= 0.02 for gap in ratio_gaps.values()), ratio_gaps
    assert abs(gap_samp - gap_full) <= 0.01
