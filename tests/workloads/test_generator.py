"""Tests for the profile-driven random program generator."""

import pytest

from repro.arch import emulate
from repro.workloads import MixProfile, PROFILES, generate_program, mix_report


class TestProfileValidation:
    def test_default_profile_valid(self):
        MixProfile()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(load=0.6, store=0.3, branch=0.2),  # no room for ALU
            dict(mul=-0.1),
            dict(branch_predictability=1.5),
            dict(working_set_words=0),
            dict(working_set_words=6),
            dict(block_size=4),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MixProfile(**kwargs)

    def test_builtin_profiles_valid(self):
        assert set(PROFILES) >= {"default", "ilp_rich", "branchy",
                                 "memory_bound", "mul_heavy"}


class TestGeneration:
    def test_generated_program_halts(self):
        program = generate_program(MixProfile(), n_dynamic=3000, seed=4)
        result = emulate(program, max_instructions=50_000)
        assert result.halted
        assert result.output  # final checksum emitted

    def test_dynamic_length_near_target(self):
        program = generate_program(MixProfile(), n_dynamic=5000, seed=4)
        result = emulate(program, max_instructions=50_000)
        assert 0.5 * 5000 <= result.instructions <= 1.6 * 5000

    def test_deterministic_per_seed(self):
        a = generate_program(MixProfile(), 2000, seed=9)
        b = generate_program(MixProfile(), 2000, seed=9)
        assert [str(i) for i in a.code] == [str(i) for i in b.code]

    def test_seeds_differ(self):
        a = generate_program(MixProfile(), 2000, seed=1)
        b = generate_program(MixProfile(), 2000, seed=2)
        assert [str(i) for i in a.code] != [str(i) for i in b.code]

    def test_mix_roughly_respected(self):
        profile = MixProfile(load=0.3, store=0.12, branch=0.1, mul=0.05)
        program = generate_program(profile, 8000, seed=3)
        trace = emulate(program, max_instructions=50_000).trace
        mix = mix_report(trace)
        assert mix["load"] == pytest.approx(0.3, abs=0.1)
        assert mix["store"] == pytest.approx(0.12, abs=0.07)

    def test_div_guard_prevents_traps(self):
        # High div rate: every div divisor is or-ed with 1, so emulation
        # never needs the divide-by-zero architected path to save it
        # from crashing, and the program still halts.
        profile = MixProfile(div=0.05, mul=0.05)
        program = generate_program(profile, 3000, seed=6)
        result = emulate(program, max_instructions=50_000)
        assert result.halted

    def test_memory_accesses_stay_in_working_set(self):
        profile = MixProfile(load=0.35, working_set_words=256)
        program = generate_program(profile, 3000, seed=2)
        trace = emulate(program, max_instructions=50_000).trace
        from repro.isa.program import DATA_BASE
        for dyn in trace:
            if dyn.ea is not None:
                assert DATA_BASE <= dyn.ea < DATA_BASE + 4 * 256

    def test_branchy_profile_produces_branches(self):
        program = generate_program(PROFILES["branchy"], 4000, seed=5)
        trace = emulate(program, max_instructions=50_000).trace
        mix = mix_report(trace)
        assert mix["branch"] >= 0.12
