"""Memory hierarchy models: caches, TLB, and the assembled hierarchy."""

from .cache import Cache, CacheParams
from .hierarchy import MemHierParams, MemoryHierarchy
from .tlb import TLB

__all__ = ["Cache", "CacheParams", "MemHierParams", "MemoryHierarchy", "TLB"]
