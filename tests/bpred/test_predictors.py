"""Unit tests for branch-direction predictors."""

import pytest

from repro.bpred import (
    BimodalPredictor,
    CombiningPredictor,
    GSharePredictor,
    PerfectPredictor,
    StaticPredictor,
    make_predictor,
)


PC = 0x1000
PC2 = 0x1008


class TestBimodal:
    def test_initial_prediction_not_taken(self):
        assert BimodalPredictor().predict(PC) is False

    def test_learns_taken_after_two_updates(self):
        predictor = BimodalPredictor()
        predictor.update(PC, True)
        assert predictor.predict(PC) is True  # weak NT + 1 = weak taken

    def test_hysteresis(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(PC, True)   # saturate at strongly taken
        predictor.update(PC, False)
        assert predictor.predict(PC) is True  # one NT does not flip it
        predictor.update(PC, False)
        assert predictor.predict(PC) is False

    def test_distinct_pcs_independent(self):
        predictor = BimodalPredictor()
        for _ in range(2):
            predictor.update(PC, True)
        assert predictor.predict(PC) is True
        assert predictor.predict(PC2) is False

    def test_loop_branch_accuracy(self):
        # Pattern: taken 9x, not-taken 1x (a 10-iteration loop).
        predictor = BimodalPredictor()
        correct = 0
        for _ in range(50):
            for i in range(10):
                taken = i != 9
                correct += predictor.predict_and_update(PC, taken)== taken
        assert correct / 500 > 0.85

    def test_table_size_validation(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_size=1000)


class TestGShare:
    def test_learns_alternating_pattern(self):
        # T,N,T,N... is history-predictable but defeats bimodal.
        gshare = GSharePredictor()
        bimodal = BimodalPredictor()
        g_correct = b_correct = 0
        for i in range(400):
            taken = bool(i % 2)
            g_correct += gshare.predict_and_update(PC, taken) == taken
            b_correct += bimodal.predict_and_update(PC, taken) == taken
        assert g_correct / 400 > 0.9
        assert b_correct / 400 < 0.7

    def test_history_register_updates(self):
        gshare = GSharePredictor(history_bits=4)
        for taken in (True, False, True, True):
            gshare.update(PC, taken)
        assert gshare.history == 0b1011

    def test_history_bounded(self):
        gshare = GSharePredictor(history_bits=4)
        for _ in range(100):
            gshare.update(PC, True)
        assert gshare.history == 0b1111

    def test_validation(self):
        with pytest.raises(ValueError):
            GSharePredictor(table_size=1000)
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=0)


class TestCombining:
    def test_beats_or_matches_components_on_mixed_workload(self):
        # Branch A: biased taken (bimodal-friendly).
        # Branch B: alternating (gshare-friendly).
        combining = CombiningPredictor()
        correct = total = 0
        for i in range(500):
            for pc, taken in ((PC, True), (PC2, bool(i % 2))):
                correct += combining.predict_and_update(pc, taken) == taken
                total += 1
        assert correct / total > 0.85

    def test_components_trained_on_every_branch(self):
        combining = CombiningPredictor()
        # Enough updates for gshare's 12-bit history to saturate so it
        # trains one stable table index.
        for _ in range(20):
            combining.update(PC, True)
        assert combining.bimodal.predict(PC) is True
        assert combining.gshare.predict(PC) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            CombiningPredictor(meta_size=100)


class TestStaticAndPerfect:
    def test_static_taken(self):
        predictor = StaticPredictor(taken=True)
        predictor.update(PC, False)
        assert predictor.predict(PC) is True

    def test_perfect_predicts_primed_outcome(self):
        predictor = PerfectPredictor()
        predictor.prime(True)
        assert predictor.predict(PC) is True
        predictor.prime(False)
        assert predictor.predict(PC) is False


class TestAccuracyTracking:
    def test_accuracy_counter(self):
        predictor = StaticPredictor(taken=True)
        predictor.predict_and_update(PC, True)
        predictor.predict_and_update(PC, False)
        assert predictor.lookups == 2
        assert predictor.accuracy == pytest.approx(0.5)

    def test_accuracy_empty(self):
        assert BimodalPredictor().accuracy == 0.0


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("gshare", GSharePredictor),
            ("bimodal", BimodalPredictor),
            ("combining", CombiningPredictor),
            ("taken", StaticPredictor),
            ("nottaken", StaticPredictor),
            ("perfect", PerfectPredictor),
        ],
    )
    def test_known_kinds(self, kind, cls):
        assert isinstance(make_predictor(kind), cls)

    def test_kwargs_forwarded(self):
        predictor = make_predictor("gshare", history_bits=8, table_size=256)
        assert predictor.table_size == 256

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("neural")


class TestLocal:
    def test_learns_fixed_trip_count_loop(self):
        from repro.bpred import LocalPredictor
        # A 4-iteration loop branch: T,T,T,N repeating — local history
        # predicts it perfectly once warmed; bimodal cannot.
        local = LocalPredictor()
        bimodal = BimodalPredictor()
        l_correct = b_correct = 0
        for _ in range(100):
            for i in range(4):
                taken = i != 3
                l_correct += local.predict_and_update(PC, taken) == taken
                b_correct += bimodal.predict_and_update(PC, taken) == taken
        assert l_correct / 400 > 0.9
        assert b_correct / 400 < 0.8

    def test_histories_are_per_branch(self):
        from repro.bpred import LocalPredictor
        local = LocalPredictor()
        local.update(PC, True)
        local.update(PC2, False)
        assert local.history_for(PC) == 1
        assert local.history_for(PC2) == 0

    def test_validation(self):
        from repro.bpred import LocalPredictor
        with pytest.raises(ValueError):
            LocalPredictor(history_entries=100)
        with pytest.raises(ValueError):
            LocalPredictor(pattern_entries=0)
        with pytest.raises(ValueError):
            LocalPredictor(history_bits=0)

    def test_factory(self):
        from repro.bpred import LocalPredictor, make_predictor
        assert isinstance(make_predictor("local"), LocalPredictor)
