"""Static fault-masking (ACE) classification of register fault sites.

A **fault site** is a pair ``(instruction index, destination register)``
— the place a soft error lands when the instruction's result is
corrupted before being written back.  The classifier walks the def-use
graph (:mod:`repro.analysis.dataflow`) and labels every site:

=========  ==========================================================
``dead``   the value can never reach an architecturally visible
           consumer: it is either never read before redefinition, or
           read only by computations whose own results are
           (transitively) dead.  Corrupting it cannot change program
           output, final memory, or control flow — un-ACE.
``live``   the value can reach a data-visible sink: store address or
           data, a load address (a corrupted address can also fault
           architecturally), or program output.
``control``the value can reach a branch condition or indirect-jump
           address, so corruption may diverge control flow.  A site
           that reaches both control and data sinks is ``control``.
=========  ==========================================================

``dead`` is the verdict the campaign oracle enforces dynamically
(a ``dead`` site producing visible corruption means the analysis or
the simulator is wrong), so it must be *sound*: the CFG
over-approximates control flow and the def-use chains over-approximate
value flow, which makes the reachable-sink set an over-approximation —
a site is labelled ``dead`` only when **no** path to a sink exists.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .dataflow import (
    CONTROL_SINK_KINDS,
    DATA_SINK_KINDS,
    DataflowResult,
    DefSite,
    PROPAGATING_KINDS,
)

#: Class labels, in increasing severity order.
CLASS_DEAD = "dead"
CLASS_LIVE = "live"
CLASS_CONTROL = "control"
CLASSES = (CLASS_DEAD, CLASS_LIVE, CLASS_CONTROL)


@dataclass
class MaskingAnalysis:
    """Per-site fault-masking classification of one program."""

    #: (instruction index, destination register) -> class label.
    sites: Dict[DefSite, str] = field(default_factory=dict)
    #: Sites whose value is never read at all (liveness-level deadness,
    #: a strict subset of the ``dead`` class).
    directly_dead: Set[DefSite] = field(default_factory=set)

    @property
    def class_counts(self) -> Counter:
        return Counter(self.sites.values())

    def sites_of(self, klass: str) -> List[DefSite]:
        """All sites of one class, in program order."""
        return sorted(s for s, c in self.sites.items() if c == klass)

    def classify(self, index: int, reg: int) -> str:
        """Class of one site (KeyError if the site does not exist)."""
        return self.sites[(index, reg)]


def classify_sites(dataflow: DataflowResult) -> MaskingAnalysis:
    """Label every fault site of the analysed program.

    Reachability to sinks is computed as a backward fixpoint over the
    def-use graph: a definition inherits the sink flags of its direct
    uses, plus — through value-propagating uses (``compute``,
    ``load_addr``) — the flags of the consuming instruction's own
    definition.
    """
    sites = sorted(dataflow.du_chains.keys())
    reaches_data: Set[DefSite] = set()
    reaches_control: Set[DefSite] = set()

    # feeders[e] = definitions whose value propagates into definition e.
    feeders: Dict[DefSite, List[DefSite]] = {site: [] for site in sites}
    seed_data: List[DefSite] = []
    seed_control: List[DefSite] = []

    for site in sites:
        for use in dataflow.du_chains[site]:
            if use.kind in DATA_SINK_KINDS and site not in reaches_data:
                reaches_data.add(site)
                seed_data.append(site)
            if use.kind in CONTROL_SINK_KINDS and site not in reaches_control:
                reaches_control.add(site)
                seed_control.append(site)
            if use.kind in PROPAGATING_KINDS:
                consumer_reg = dataflow.def_of[use.index]
                if consumer_reg >= 0:
                    feeders[(use.index, consumer_reg)].append(site)

    def propagate(flagged: Set[DefSite], frontier: List[DefSite]) -> None:
        while frontier:
            site = frontier.pop()
            for feeder in feeders.get(site, ()):
                if feeder not in flagged:
                    flagged.add(feeder)
                    frontier.append(feeder)

    propagate(reaches_data, seed_data)
    propagate(reaches_control, seed_control)

    analysis = MaskingAnalysis()
    for site in sites:
        if site in reaches_control:
            analysis.sites[site] = CLASS_CONTROL
        elif site in reaches_data:
            analysis.sites[site] = CLASS_LIVE
        else:
            analysis.sites[site] = CLASS_DEAD
        if dataflow.directly_dead(site):
            analysis.directly_dead.add(site)
    return analysis
