"""Model runner: one simulation = (workload, machine config) -> Stats.

This is the narrow waist between the workloads, the timing models and
the experiment definitions.  All figure experiments run through
:func:`run_benchmark`, which

* memoises the workload trace (shared across the 4-5 machine models of
  a figure),
* enables cache and predictor warm-up (the paper's 100 M-instruction
  runs are effectively warm; see DESIGN.md §5), and
* honours the ``REPRO_BENCH_INSTRUCTIONS`` environment variable so the
  whole figure suite can be scaled to the machine it runs on.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from ..arch.trace import Trace
from ..isa.program import Program
from ..reese.faults import FaultModel, NoFaults
from ..uarch.accounting import CycleAccountant
from ..uarch.config import MachineConfig
from ..uarch.observe import ObserveConfig, build_observability
from ..uarch.pipeline import Pipeline
from ..uarch.stats import Stats

# DEFAULT_SCALE is re-exported here for backward compatibility; the
# single source of truth lives with the workload builders so the suite
# and the harness can never disagree on "the default trace" again.
from ..workloads.suite import DEFAULT_SCALE, trace_for


def env_int(name: str, default: int, minimum: int = 1) -> int:
    """Integer environment knob with warn-and-default error handling.

    An unset or empty variable silently yields ``default``; a malformed
    value (``"2e4"``, ``"20k"``) or one below ``minimum`` warns and
    yields ``default`` instead of crashing — or worse, silently running
    every experiment with the wrong knob.  The shared parser behind
    ``REPRO_BENCH_INSTRUCTIONS``, ``REPRO_BENCH_JOBS`` and friends.
    """
    value = os.environ.get(name, "")
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={value!r} "
            f"(expected a positive integer); using {default}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default
    if parsed < minimum:
        qualifier = "not positive" if minimum == 1 else f"below {minimum}"
        warnings.warn(
            f"{name}={value!r} is {qualifier}; using {default}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default
    return parsed


#: Spellings accepted by :func:`env_flag` (case-insensitive).
_FLAG_TRUE = frozenset(("1", "true", "yes", "on"))
_FLAG_FALSE = frozenset(("0", "false", "no", "off", ""))


def env_flag(name: str, default: bool = False) -> bool:
    """Boolean environment knob with warn-and-default error handling.

    Accepts the usual spellings (``1/0``, ``true/false``, ``yes/no``,
    ``on/off``, any case); an empty set-but-blank variable reads as
    false; anything else warns and yields ``default``.
    """
    value = os.environ.get(name)
    if value is None:
        return default
    norm = value.strip().lower()
    if norm in _FLAG_TRUE:
        return True
    if norm in _FLAG_FALSE:
        return False
    warnings.warn(
        f"ignoring malformed {name}={value!r} "
        f"(expected a boolean like 1/0/true/false); using {default}",
        RuntimeWarning,
        stacklevel=3,
    )
    return default


def bench_scale() -> int:
    """Dynamic instructions per benchmark (env-overridable).

    Precedence: an explicit ``scale`` argument (e.g. the CLI's
    ``--scale``) beats ``REPRO_BENCH_INSTRUCTIONS``, which beats
    :data:`DEFAULT_SCALE`.  A malformed or non-positive env value (e.g.
    ``"2e4"``, ``"20k"``, ``"-5"``) warns and falls back to the default
    instead of silently running every experiment at the wrong scale.
    """
    return env_int("REPRO_BENCH_INSTRUCTIONS", DEFAULT_SCALE)


def _env_observe(fault_model: Optional[FaultModel]) -> Optional[ObserveConfig]:
    """The ``REPRO_CHECK_INVARIANTS`` smoke gate.

    When the variable is set (to anything but ``0``/empty), every
    harness-driven simulation runs under the runtime invariant checker
    — except fault-injected ones, whose whole point is to commit
    corrupted values the checker would (correctly) reject.  This is how
    CI runs the tier-1 suite with invariant checking on without every
    test opting in individually.
    """
    if os.environ.get("REPRO_CHECK_INVARIANTS", "") in ("", "0"):
        return None
    if fault_model is not None and not isinstance(fault_model, NoFaults):
        return None
    return ObserveConfig(check_invariants=True)


def _env_profile() -> bool:
    """The ``REPRO_PROFILE`` profiling gate.

    When set, every harness-driven simulation attaches the cycle-
    accounting profiler (:mod:`repro.uarch.accounting`), so
    ``Stats.accounting`` carries the top-down slot/cycle attribution
    and detection-latency telemetry.  Mirrors the
    ``REPRO_CHECK_INVARIANTS`` gate; the CLI's ``--profile`` flag is
    the per-invocation spelling of the same switch.
    """
    return env_flag("REPRO_PROFILE", False)


def run_model(
    program: Program,
    trace: Trace,
    config: MachineConfig,
    fault_model: Optional[FaultModel] = None,
    warm: bool = True,
    max_cycles: Optional[int] = None,
    observe: Optional[ObserveConfig] = None,
    profile: Optional[bool] = None,
) -> Stats:
    """Simulate one program trace on one machine configuration.

    Args:
        observe: optional observability attachment (event trace,
            per-stage metrics, invariant checker); ``None`` keeps the
            observer-free fast path unless ``REPRO_CHECK_INVARIANTS``
            is set in the environment (see :func:`_env_observe`).
        profile: attach the cycle-accounting profiler so the returned
            Stats carry the top-down attribution account
            (``Stats.accounting``).  ``None`` defers to the
            ``REPRO_PROFILE`` environment gate; an explicit ``False``
            keeps the profiler off regardless (what the parallel layer
            passes, having already resolved the gate at job level so
            cache fingerprints stay honest).
    """
    if observe is None:
        observe = _env_observe(fault_model)
    if profile is None:
        profile = _env_profile()
    pipeline = Pipeline(
        program,
        trace,
        config,
        fault_model=fault_model,
        warm_caches=warm,
        warm_predictor=warm,
        observer=build_observability(observe),
        accountant=CycleAccountant() if profile else None,
    )
    return pipeline.run(max_cycles=max_cycles)


def run_benchmark(
    name: str,
    config: MachineConfig,
    scale: Optional[int] = None,
    seed: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
    warm: bool = True,
    observe: Optional[ObserveConfig] = None,
    profile: Optional[bool] = None,
) -> Stats:
    """Simulate one named benchmark on one machine configuration."""
    program, trace = trace_for(name, scale or bench_scale(), seed)
    return run_model(program, trace, config, fault_model=fault_model,
                     warm=warm, observe=observe, profile=profile)


def run_sampled_benchmark(
    name: str,
    config: MachineConfig,
    sampling: "SamplingSpec",
    scale: Optional[int] = None,
    seed: Optional[int] = None,
    fault_factory=None,
    warm: bool = True,
) -> "SampledResult":
    """Sampled simulation of one named benchmark (in process).

    The convenience single-workload entry point mirroring
    :func:`run_benchmark`; experiment drivers that want interval-level
    parallelism should go through
    :func:`repro.harness.parallel.run_sampled_jobs` instead.
    """
    from ..uarch.sampling import run_sampled

    program, trace = trace_for(name, scale or bench_scale(), seed)
    return run_sampled(program, trace, config, sampling,
                       fault_factory=fault_factory, warm=warm)
