"""P-stream / R-stream result comparison.

REESE "tests for errors at the pipeline level by comparing the results
of individual instructions" (paper §3).  For each instruction class the
*comparable value* is the quantity a soft error could corrupt:

=====================  ==================================================
instruction class       comparable value
=====================  ==================================================
ALU / mul / div / FP    the arithmetic result
load                    the loaded value
store                   (effective address, store data)
conditional branch      the resolved direction (0/1)
``jal`` / ``jalr``      the link value (and, for ``jalr``, the target)
``jr``                  the computed target
``j`` / nop / output    nothing data-dependent (always verifies)
=====================  ==================================================

:func:`reexecute` recomputes the comparable value *from the operand
values stored in the R-stream Queue entry*, through the exact same
semantic functions the P stream used (:mod:`repro.isa.semantics`), so a
fault-free P/R pair always compares equal — verified by property tests.

Floats are compared by IEEE-754 bit pattern, which is both what the
hardware comparator would do and robust to NaN.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..arch.trace import DynInst
from ..isa.instructions import INST_SIZE, Op
from ..isa.program import TEXT_BASE
from ..isa.semantics import (
    branch_taken,
    compute,
    effective_address,
    float_to_bits,
    has_compute,
)

Comparable = Union[int, float, Tuple, None]


def p_value(dyn: DynInst) -> Comparable:
    """The P-stream comparable value of a dynamic instruction."""
    op = dyn.op
    if dyn.is_store:
        return (dyn.ea, dyn.store_value)
    if dyn.is_load:
        return dyn.result
    if dyn.is_cond_branch:
        return int(dyn.taken)
    if op is Op.JAL:
        return dyn.result
    if op is Op.JR:
        return dyn.target_index
    if op is Op.JALR:
        return (dyn.result, dyn.target_index)
    if has_compute(op):
        return dyn.result
    return None  # j, nop, halt, putint/putch: nothing data-dependent


def reexecute(dyn: DynInst) -> Comparable:
    """Recompute the comparable value from stored operands (the R stream).

    Loads return the trace's loaded value: the R-stream load re-reads
    the same (unmodified, store-committed-in-order) memory location and
    is guaranteed an L1 hit (paper §4.4), so absent a fault it observes
    the identical value.
    """
    op = dyn.op
    if dyn.is_store:
        return (effective_address(dyn.a, dyn.imm), dyn.store_value)
    if dyn.is_load:
        return dyn.result
    if dyn.is_cond_branch:
        return int(branch_taken(op, dyn.a, dyn.b))
    if op is Op.JAL:
        return TEXT_BASE + (dyn.static_index + 1) * INST_SIZE
    if op is Op.JR:
        return (int(dyn.a) - TEXT_BASE) // INST_SIZE
    if op is Op.JALR:
        link = TEXT_BASE + (dyn.static_index + 1) * INST_SIZE
        return (link, (int(dyn.a) - TEXT_BASE) // INST_SIZE)
    if has_compute(op):
        return compute(op, dyn.a, dyn.b, dyn.imm)
    return None


def values_equal(p: Comparable, r: Comparable) -> bool:
    """Hardware-comparator equality: floats compared bit-for-bit."""
    if isinstance(p, tuple) and isinstance(r, tuple):
        return len(p) == len(r) and all(
            values_equal(pi, ri) for pi, ri in zip(p, r)
        )
    if isinstance(p, float) or isinstance(r, float):
        if not (isinstance(p, float) and isinstance(r, float)):
            return False
        return float_to_bits(p) == float_to_bits(r)
    return p == r


def verify(dyn: DynInst, p: Optional[Comparable] = None) -> bool:
    """Convenience: re-execute and compare against ``p`` (default: clean P)."""
    if p is None:
        p = p_value(dyn)
    return values_equal(p, reexecute(dyn))


def describe_mismatch(p: Comparable, r: Comparable) -> str:
    """Human-readable P/R disagreement (invariant-checker diagnostics).

    Integers additionally show the XOR of their 32-bit patterns and
    floats the XOR of their IEEE-754 bit patterns, so a single-bit
    soft-error corruption is recognisable at a glance.
    """
    base = f"P={p!r} vs R={r!r}"
    if isinstance(p, int) and isinstance(r, int):
        return f"{base} (xor=0x{(p ^ r) & 0xFFFFFFFFFFFFFFFF:x})"
    if isinstance(p, float) and isinstance(r, float):
        return f"{base} (bits xor=0x{float_to_bits(p) ^ float_to_bits(r):x})"
    return base
