"""The out-of-order superscalar timing core (SimpleScalar-style)."""

from .config import (
    LatencyConfig,
    MachineConfig,
    ReeseConfig,
    bigger_window_config,
    large_machine_config,
    more_mem_ports_config,
    starting_config,
    wide_datapath_config,
)
from .funits import FUPool
from .observe import (
    CallbackSink,
    EventTracer,
    InvariantChecker,
    InvariantViolation,
    JSONLSink,
    Observability,
    ObserveConfig,
    RingBufferSink,
    StageMetrics,
    TraceEvent,
    build_observability,
)
from .pipeline import (
    Pipeline,
    SimulationDeadlockError,
    SimulationTimeoutError,
    warm_caches_over,
    warm_predictor_over,
)
from .ptrace import PipeTrace
from .sampling import (
    SampledResult,
    SamplingSpec,
    WarmState,
    build_warm_state,
    mispredict_profile,
    run_interval,
    run_sampled,
    select_intervals,
)
from .stats import Stats

__all__ = [
    "CallbackSink",
    "EventTracer",
    "InvariantChecker",
    "InvariantViolation",
    "JSONLSink",
    "Observability",
    "ObserveConfig",
    "RingBufferSink",
    "StageMetrics",
    "TraceEvent",
    "build_observability",
    "LatencyConfig",
    "MachineConfig",
    "ReeseConfig",
    "bigger_window_config",
    "large_machine_config",
    "more_mem_ports_config",
    "starting_config",
    "wide_datapath_config",
    "FUPool",
    "Pipeline",
    "SimulationDeadlockError",
    "SimulationTimeoutError",
    "warm_caches_over",
    "warm_predictor_over",
    "PipeTrace",
    "SampledResult",
    "SamplingSpec",
    "WarmState",
    "build_warm_state",
    "run_interval",
    "mispredict_profile",
    "run_sampled",
    "select_intervals",
    "Stats",
]
