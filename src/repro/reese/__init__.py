"""REESE: REdundant Execution using Spare Elements.

The paper's contribution, as reusable pieces plugged into the
out-of-order core (:mod:`repro.uarch.pipeline`):

* :class:`~repro.reese.rqueue.RStreamQueue` / :class:`~repro.reese.rqueue.REntry`
  — the FIFO of completed P-stream instructions awaiting redundant
  execution;
* :mod:`~repro.reese.comparator` — re-execution from stored operands and
  the P/R result comparison;
* :mod:`~repro.reese.faults` — transient-fault models (environmental
  events with duration Δt, per-execution Bernoulli flips) and value
  corruption helpers;
* :mod:`~repro.reese.recovery` — flush/refetch retry policy and the
  unrecoverable-fault stop condition.
"""

from .comparator import p_value, reexecute, values_equal, verify
from .faults import (
    BernoulliFaultModel,
    EnvironmentalFaultModel,
    FaultModel,
    NoFaults,
    ScheduledFaultModel,
    corrupt_value,
    flip_float_bit,
    flip_int_bit,
    make_emulator_injector,
)
from .recovery import RetryTracker, UnrecoverableFaultError
from .rqueue import R_DONE, R_ISSUED, R_WAITING, REntry, RStreamQueue

__all__ = [
    "p_value",
    "reexecute",
    "values_equal",
    "verify",
    "BernoulliFaultModel",
    "EnvironmentalFaultModel",
    "FaultModel",
    "NoFaults",
    "ScheduledFaultModel",
    "corrupt_value",
    "flip_float_bit",
    "flip_int_bit",
    "make_emulator_injector",
    "RetryTracker",
    "UnrecoverableFaultError",
    "R_DONE",
    "R_ISSUED",
    "R_WAITING",
    "REntry",
    "RStreamQueue",
]
