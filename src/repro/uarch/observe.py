"""Pipeline observability: event tracing, stage metrics, invariants.

The timing core (:mod:`repro.uarch.pipeline`) exposes only end-of-run
aggregates through :class:`~repro.uarch.stats.Stats`; this module is
the instrumentation layer that makes cycle-level micro-behaviour —
R-stream instructions slotting into idle functional units, the
R-stream Queue draining before commit, P/R results meeting at the
comparator — visible and checkable.  Three cooperating pieces, all
**zero-overhead when off** (an unobserved pipeline takes exactly one
``observer is None`` branch per event site):

* :class:`EventTracer` — a structured **event trace**.  Every stage
  event (fetch/dispatch/issue/writeback/commit/flush/R-issue/compare,
  plus squash and R-queue insertion) becomes a :class:`TraceEvent`
  carrying cycle, stream tag (``P``/``R``), pipeline and trace sequence
  numbers, opcode and functional-unit class, emitted through a
  pluggable sink: :class:`RingBufferSink` (bounded, in-memory),
  :class:`JSONLSink` (deterministic, byte-stable JSON lines — the
  golden-file oracle for regression tests) or :class:`CallbackSink`.

* :class:`StageMetrics` — a **per-stage metrics registry**: per-cycle
  occupancy histograms for the fetch queue, RUU, LSQ and R-stream
  Queue, functional-unit issue counts split by P vs R stream, and
  stall-reason counters.  The registry folds into
  ``Stats.stage_metrics`` (hence ``Stats.state_dict()``), so the
  on-disk result cache and the reporting layer carry it for free.

* :class:`InvariantChecker` — a **runtime invariant checker** that,
  when enabled, validates pipeline legality as the simulation runs and
  raises a structured :class:`InvariantViolation` naming the invariant,
  cycle and instruction.  The catalogue (see :data:`INVARIANTS`)
  includes: commit order equals program order; a committed result must
  match its ISA re-execution oracle (this is what turns a silently
  committed corrupted value — an SDC — into a loud failure); the
  R stream never issues before its P result exists; R-stream Queue
  entries carry operands/results matching the P writeback; a flush
  leaves no stale entries anywhere; and structural capacity/ordering
  limits on the RUU, LSQ, ready list and R-stream Queue.

:class:`Observability` composes any subset of the three behind the
pipeline's single ``observer`` hook; build one from an
:class:`ObserveConfig` with :func:`build_observability`.  The harness
plumbs these through ``--trace``, ``--observe`` and
``--check-invariants`` (CLI) and the same-named :class:`SimJob` fields
(parallel layer); ``REPRO_CHECK_INVARIANTS=1`` turns the checker on
for every unfaulted harness run (the tier-1 smoke configuration).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..reese.comparator import describe_mismatch, p_value, reexecute, values_equal
from ..reese.faults import corrupt_value

#: Bump when TraceEvent field names / semantics change (golden traces).
EVENT_SCHEMA_VERSION = 1

#: Event kinds a tracer can emit, in pipeline-stage order.
EVENT_KINDS = (
    "fetch",
    "dispatch",
    "issue",
    "writeback",
    "rqueue_insert",
    "compare",
    "commit",
    "squash",
    "flush",
)

#: The invariant catalogue: name -> what must hold (documentation and
#: the closed set of values ``InvariantViolation.invariant`` can take).
INVARIANTS: Dict[str, str] = {
    "commit-order": "instructions commit in program order, exactly once",
    "commit-oracle": "a committed result equals its ISA re-execution",
    "r-before-p": "an R-stream instruction only issues after its P "
                  "result exists (and while it is queue-resident)",
    "rqueue-fidelity": "an R-stream Queue entry carries the operands "
                       "and result of the matching P writeback",
    "flush-residue": "a full flush leaves no stale entry in any "
                     "pipeline structure or the R-stream Queue",
    "structural": "occupancy never exceeds configured capacity and "
                  "window ordering/readiness bookkeeping stays legal",
}


class TraceEvent:
    """One structured pipeline event.

    ``seq`` is the pipeline-assigned dispatch id (unique across
    refetches; ``None`` for events raised after the instruction left
    the RUU), ``iseq`` the dynamic-trace sequence number (``None`` on
    the wrong path), ``stream`` is ``"P"`` or ``"R"``.
    """

    __slots__ = ("cycle", "kind", "stream", "seq", "iseq", "op", "fu",
                 "extra")

    def __init__(
        self,
        cycle: int,
        kind: str,
        stream: str,
        seq: Optional[int] = None,
        iseq: Optional[int] = None,
        op: Optional[str] = None,
        fu: Optional[str] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.cycle = cycle
        self.kind = kind
        self.stream = stream
        self.seq = seq
        self.iseq = iseq
        self.op = op
        self.fu = fu
        self.extra = extra

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict with ``None`` fields omitted (stable golden form)."""
        out: Dict[str, Any] = {
            "cycle": self.cycle,
            "kind": self.kind,
            "stream": self.stream,
        }
        for name in ("seq", "iseq", "op", "fu"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.extra:
            out.update(self.extra)
        return out

    def to_json(self) -> str:
        """Canonical one-line JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def __repr__(self) -> str:
        return f"<TraceEvent {self.to_json()}>"


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------


class EventSink:
    """Where a tracer delivers events.  Subclasses override both hooks."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called once at the end of a run."""


class RingBufferSink(EventSink):
    """Keep the most recent ``capacity`` events in memory.

    Overflow is not silent: every overwritten event increments
    :attr:`dropped`, which :class:`Observability` surfaces as
    ``stage_metrics["dropped_events"]`` (hence ``Stats.state_dict()``)
    and the metrics report turns into an explicit warning — a
    truncated event window must never masquerade as a complete one.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: List[TraceEvent] = []
        self._cursor = 0
        self.total = 0
        #: Events overwritten (lost) to capacity overflow.
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        self.total += 1
        if len(self._buffer) < self.capacity:
            self._buffer.append(event)
        else:
            self._buffer[self._cursor] = event
            self._cursor = (self._cursor + 1) % self.capacity
            self.dropped += 1

    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        return self._buffer[self._cursor:] + self._buffer[: self._cursor]


class JSONLSink(EventSink):
    """Write one canonical JSON line per event, atomically.

    Output is deterministic (sorted keys, no floats, no timestamps), so
    two runs of the same simulation produce byte-identical files — the
    property the golden-trace regression tests pin.

    The file appears atomically: lines stream to ``<path>.tmp`` and
    only a successful :meth:`close` flushes, fsyncs and renames it to
    ``path``.  A worker killed mid-run leaves at most a stale ``.tmp``
    behind — never a truncated half-line file at the final path that a
    later golden-trace comparison would read as a real (and baffling)
    mismatch.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._tmp_path = f"{path}.tmp"
        self._file = open(self._tmp_path, "w", encoding="utf-8",
                          newline="\n")
        self.lines = 0

    def emit(self, event: TraceEvent) -> None:
        self._file.write(event.to_json())
        self._file.write("\n")
        self.lines += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            os.replace(self._tmp_path, self.path)


class CallbackSink(EventSink):
    """Deliver each event to an arbitrary callable."""

    def __init__(self, callback: Callable[[TraceEvent], None]) -> None:
        self.callback = callback

    def emit(self, event: TraceEvent) -> None:
        self.callback(event)


# ----------------------------------------------------------------------
# event tracer
# ----------------------------------------------------------------------

#: pipeline notify() event -> (TraceEvent kind, default stream)
_NOTIFY_KINDS = {
    "fetch": ("fetch", "P"),
    "dispatch": ("dispatch", "P"),
    "issue": ("issue", "P"),
    "complete": ("writeback", "P"),
    "commit": ("commit", "P"),
    "squash": ("squash", "P"),
    "rqueue": ("rqueue_insert", "R"),
    "r_issue": ("issue", "R"),
    "r_complete": ("writeback", "R"),
    "compare": ("compare", "R"),
    "recover": ("flush", "P"),
}


class EventTracer:
    """Observer translating pipeline stage callbacks into TraceEvents."""

    def __init__(self, sink: EventSink) -> None:
        self.sink = sink
        self.emitted = 0

    def notify(self, event: str, cycle: int, entry=None, **info) -> None:
        mapped = _NOTIFY_KINDS.get(event)
        if mapped is None:
            return
        kind, stream = mapped
        seq = iseq = op = fu = None
        extra: Optional[Dict[str, Any]] = None
        if entry is not None:
            seq = entry.seq
            iseq = entry.trace_seq if entry.trace_seq >= 0 else None
            op = entry.op.name.lower()
            fu = entry.fu.name
            if entry.is_shadow:
                stream = "R"  # dispatch-duplication redundant copy
            if entry.wrong_path:
                extra = {"wp": True}
        else:
            rentry = info.get("rentry")
            if rentry is not None:
                iseq = rentry.seq
                op = rentry.dyn.op.name.lower()
                fu = rentry.fu.name
            else:
                iseq = info.get("trace_seq")
        if event == "compare":
            extra = dict(extra or ())
            extra["match"] = bool(info.get("match"))
        self.sink.emit(TraceEvent(cycle, kind, stream, seq, iseq, op, fu,
                                  extra))
        self.emitted += 1

    def finalize(self, stats) -> None:
        self.sink.close()


# ----------------------------------------------------------------------
# per-stage metrics registry
# ----------------------------------------------------------------------


class StageMetrics:
    """Per-cycle occupancy histograms, FU split and stall counters.

    Sampled once per simulated cycle via the pipeline's ``on_cycle``
    hook; folded into ``Stats.stage_metrics`` at finalisation.
    Histogram bins are stored with **string keys** so the registry
    round-trips unchanged through the JSON result cache.
    """

    STRUCTURES = ("ifq", "ruu", "lsq", "rqueue")
    STALLS = ("fetch_blocked", "rqueue_full", "empty_window", "no_commit")

    def __init__(self) -> None:
        self.cycles_sampled = 0
        self.occupancy: Dict[str, Dict[int, int]] = {
            key: {} for key in self.STRUCTURES
        }
        self.stalls: Dict[str, int] = {key: 0 for key in self.STALLS}
        self._last_committed = 0

    def on_cycle(self, pipe) -> None:
        self.cycles_sampled += 1
        rqueue = pipe.rqueue
        for key, occ in (
            ("ifq", len(pipe.ifq)),
            ("ruu", len(pipe.ruu)),
            ("lsq", len(pipe.lsq)),
            ("rqueue", len(rqueue) if rqueue is not None else 0),
        ):
            hist = self.occupancy[key]
            hist[occ] = hist.get(occ, 0) + 1
        stalls = self.stalls
        if pipe.fetch_blocked_until > pipe.cycle:
            stalls["fetch_blocked"] += 1
        if rqueue is not None and rqueue.full:
            stalls["rqueue_full"] += 1
        if not pipe.ruu and not pipe.ifq:
            stalls["empty_window"] += 1
        committed = pipe.stats.committed
        if committed == self._last_committed:
            stalls["no_commit"] += 1
        else:
            self._last_committed = committed

    def state_dict(self, pipe=None) -> Dict[str, Any]:
        """JSON-serialisable registry (the ``Stats.stage_metrics`` value)."""
        out: Dict[str, Any] = {
            "schema": EVENT_SCHEMA_VERSION,
            "cycles_sampled": self.cycles_sampled,
            "occupancy": {
                key: {str(occ): count for occ, count in sorted(hist.items())}
                for key, hist in self.occupancy.items()
            },
            "stalls": dict(self.stalls),
        }
        if pipe is not None:
            total = pipe.fupool.issues
            r_only = pipe.fupool.issues_r
            out["fu_issued"] = {
                "P": {k: total[k] - r_only.get(k, 0) for k in sorted(total)},
                "R": {k: r_only[k] for k in sorted(r_only)},
            }
        return out


def occupancy_mean(hist: Dict[str, int]) -> float:
    """Mean occupancy of one ``state_dict`` histogram (string bins)."""
    total = sum(hist.values())
    if not total:
        return 0.0
    return sum(int(occ) * count for occ, count in hist.items()) / total


# ----------------------------------------------------------------------
# invariant checker
# ----------------------------------------------------------------------


class InvariantViolation(Exception):
    """A pipeline-legality invariant failed.

    Attributes:
        invariant: key into :data:`INVARIANTS`.
        cycle: simulation cycle at which the violation was detected.
        trace_seq: dynamic-instruction sequence number, or ``None``.
        detail: human-readable specifics (values, occupancies, ...).
    """

    def __init__(
        self,
        invariant: str,
        cycle: int,
        trace_seq: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.invariant = invariant
        self.cycle = cycle
        self.trace_seq = trace_seq
        self.detail = detail
        where = f"cycle {cycle}"
        if trace_seq is not None:
            where += f", instruction {trace_seq}"
        message = f"[{invariant}] at {where}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class InvariantChecker:
    """Validate pipeline legality while the simulation runs.

    Event-driven checks fire from the pipeline's observer hook;
    structural sweeps run once per cycle from ``on_cycle``.  By default
    the first violation raises; with ``collect=True`` violations accrue
    in :attr:`violations` instead (for tests that expect several).
    """

    def __init__(self, collect: bool = False) -> None:
        self.collect = collect
        self.violations: List[InvariantViolation] = []
        self.checks = 0
        self._pipe = None
        self._completed: set = set()
        self._next_commit = 0

    def bind(self, pipe) -> None:
        self._pipe = pipe

    def _fail(
        self,
        invariant: str,
        cycle: int,
        trace_seq: Optional[int],
        detail: str,
    ) -> None:
        violation = InvariantViolation(invariant, cycle, trace_seq, detail)
        self.violations.append(violation)
        if not self.collect:
            raise violation

    # -- event-driven checks ---------------------------------------------

    def notify(self, event: str, cycle: int, entry=None, **info) -> None:
        self.checks += 1
        if event == "complete":
            if entry is not None and entry.trace_seq >= 0:
                self._completed.add(entry.trace_seq)
        elif event == "commit":
            self._check_commit(cycle, entry, info)
        elif event == "r_issue":
            self._check_r_issue(cycle, info)
        elif event == "rqueue":
            self._check_rqueue_insert(cycle, entry)
        elif event == "recover":
            self._check_flush(cycle)

    def _check_commit(self, cycle: int, entry, info) -> None:
        rentry = info.get("rentry")
        if rentry is not None:
            trace_seq = rentry.seq
            dyn = rentry.dyn
            actual = rentry.p_value
        else:
            if entry is None or entry.dyn is None:
                return
            trace_seq = entry.trace_seq
            dyn = entry.dyn
            actual = p_value(dyn)
            if entry.p_fault_bit is not None:
                actual = corrupt_value(actual, entry.p_fault_bit)
        if trace_seq != self._next_commit:
            self._fail(
                "commit-order", cycle, trace_seq,
                f"expected instruction {self._next_commit} to commit next",
            )
        self._next_commit = trace_seq + 1
        oracle = reexecute(dyn)
        if not values_equal(actual, oracle):
            self._fail(
                "commit-oracle", cycle, trace_seq,
                f"{dyn.op.name.lower()} committed a result that fails "
                f"re-execution: {describe_mismatch(actual, oracle)}",
            )

    def _check_r_issue(self, cycle: int, info) -> None:
        rentry = info.get("rentry")
        trace_seq = rentry.seq if rentry is not None else info.get("trace_seq")
        if trace_seq is None:
            return
        if trace_seq not in self._completed:
            self._fail(
                "r-before-p", cycle, trace_seq,
                "R-stream issue before the P result was written back",
            )
        pipe = self._pipe
        if pipe is not None and pipe.rqueue is not None:
            if not pipe.rqueue.contains(trace_seq):
                self._fail(
                    "r-before-p", cycle, trace_seq,
                    "R-stream issue for an instruction that is not "
                    "R-stream Queue resident",
                )

    def _check_rqueue_insert(self, cycle: int, entry) -> None:
        pipe = self._pipe
        if entry is None or pipe is None or pipe.rqueue is None:
            return
        rentry = pipe.rqueue.get(entry.trace_seq)
        if rentry is None:
            self._fail(
                "rqueue-fidelity", cycle, entry.trace_seq,
                "insertion event for an instruction the queue does not hold",
            )
            return
        expected = p_value(entry.dyn)
        if entry.p_fault_bit is not None:
            expected = corrupt_value(expected, entry.p_fault_bit)
        if not values_equal(rentry.p_value, expected):
            self._fail(
                "rqueue-fidelity", cycle, entry.trace_seq,
                "queued P value does not match the P writeback: "
                + describe_mismatch(rentry.p_value, expected),
            )
        if rentry.skip_r != entry.skip_r:
            self._fail(
                "rqueue-fidelity", cycle, entry.trace_seq,
                f"skip_r flag diverged (queue {rentry.skip_r}, "
                f"pipeline {entry.skip_r})",
            )

    def _check_flush(self, cycle: int) -> None:
        pipe = self._pipe
        if pipe is None:
            return
        residues = [
            name
            for name, structure in (
                ("ifq", pipe.ifq),
                ("ruu", pipe.ruu),
                ("lsq", pipe.lsq),
                ("ready", pipe.ready),
                ("create", pipe.create),
                ("rqueue", pipe.rqueue if pipe.rqueue is not None else ()),
            )
            if len(structure)
        ]
        if residues:
            self._fail(
                "flush-residue", cycle, None,
                f"stale entries survived the flush in: {', '.join(residues)}",
            )

    # -- per-cycle structural sweep --------------------------------------

    def on_cycle(self, pipe) -> None:
        self.checks += 1
        cycle = pipe.cycle
        config = pipe.config
        if len(pipe.ruu) > config.ruu_size:
            self._fail(
                "structural", cycle, None,
                f"RUU occupancy {len(pipe.ruu)} > size {config.ruu_size}",
            )
        if len(pipe.lsq) > config.lsq_size:
            self._fail(
                "structural", cycle, None,
                f"LSQ occupancy {len(pipe.lsq)} > size {config.lsq_size}",
            )
        rqueue = pipe.rqueue
        if rqueue is not None:
            if len(rqueue) > rqueue.capacity:
                self._fail(
                    "structural", cycle, None,
                    f"R-stream Queue occupancy {len(rqueue)} > capacity "
                    f"{rqueue.capacity}",
                )
            problems = rqueue.validate()
            if problems:
                self._fail(
                    "structural", cycle, None,
                    "R-stream Queue inconsistency: " + "; ".join(problems),
                )
        previous = None
        for entry in pipe.ruu:
            if entry.squashed:
                self._fail(
                    "structural", cycle, entry.trace_seq,
                    "squashed entry still RUU-resident",
                )
            if previous is not None and entry.seq < previous:
                self._fail(
                    "structural", cycle, entry.trace_seq,
                    "RUU entries out of dispatch order",
                )
            previous = entry.seq
        for entry in pipe.ready:
            if entry.issued or entry.deps != 0 or entry.squashed:
                self._fail(
                    "structural", cycle, entry.trace_seq,
                    f"illegal ready-list entry (issued={entry.issued}, "
                    f"deps={entry.deps}, squashed={entry.squashed})",
                )
        if pipe.commit_seq != self._next_commit:
            self._fail(
                "commit-order", cycle, None,
                f"pipeline commit cursor {pipe.commit_seq} diverged from "
                f"observed commits ({self._next_commit})",
            )


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ObserveConfig:
    """Which observability pieces to attach to a run.

    Picklable and scalar-only, so the parallel layer can ship it to
    worker processes (see :class:`repro.harness.parallel.SimJob`).
    """

    #: Collect the per-stage metrics registry into ``Stats.stage_metrics``.
    metrics: bool = False
    #: Attach the runtime invariant checker (raises InvariantViolation).
    check_invariants: bool = False
    #: Write a JSONL event trace to this path.
    trace_path: Optional[str] = None
    #: Keep the last N events in memory instead of (or besides) a file;
    #: 0 disables the ring buffer.
    ring_capacity: int = 0

    @property
    def enabled(self) -> bool:
        return bool(
            self.metrics
            or self.check_invariants
            or self.trace_path
            or self.ring_capacity
        )


class _TeeSink(EventSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, sinks: List[EventSink]) -> None:
        self.sinks = sinks

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class Observability:
    """Composite observer: tracer and/or metrics and/or checker.

    Implements the full pipeline observer protocol (``notify``,
    ``on_cycle``, ``bind``, ``finalize``); each sub-piece is optional
    and the hooks skip whatever is absent.
    """

    def __init__(
        self,
        tracer: Optional[EventTracer] = None,
        metrics: Optional[StageMetrics] = None,
        checker: Optional[InvariantChecker] = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.checker = checker
        self._pipe = None

    def bind(self, pipe) -> None:
        self._pipe = pipe
        if self.checker is not None:
            self.checker.bind(pipe)

    def notify(self, event: str, cycle: int, entry=None, **info) -> None:
        # Checker first: a violation should surface before the event is
        # serialised (the trace written so far is the diagnostic).
        if self.checker is not None:
            self.checker.notify(event, cycle, entry, **info)
        if self.tracer is not None:
            self.tracer.notify(event, cycle, entry, **info)

    def on_cycle(self, pipe) -> None:
        if self.metrics is not None:
            self.metrics.on_cycle(pipe)
        if self.checker is not None:
            self.checker.on_cycle(pipe)

    def _ring_sinks(self) -> List[RingBufferSink]:
        """Ring-buffer sinks reachable through the tracer (if any)."""
        if self.tracer is None:
            return []
        sink = self.tracer.sink
        sinks = sink.sinks if isinstance(sink, _TeeSink) else [sink]
        return [s for s in sinks if isinstance(s, RingBufferSink)]

    def finalize(self, stats) -> None:
        if self.metrics is not None:
            stats.stage_metrics = self.metrics.state_dict(self._pipe)
        rings = self._ring_sinks()
        if rings:
            # Surface ring-buffer overflow in the Stats payload even
            # when the metrics registry is off: dropped events are a
            # property of the run, not of the registry.
            stats.stage_metrics = dict(stats.stage_metrics or {})
            stats.stage_metrics["dropped_events"] = sum(
                ring.dropped for ring in rings
            )
        if self.tracer is not None:
            self.tracer.finalize(stats)


def build_observability(
    observe: Optional[ObserveConfig],
) -> Optional[Observability]:
    """Materialise an :class:`Observability` from a config (or ``None``).

    Returns ``None`` for a disabled config so the pipeline keeps its
    observer-free fast path.
    """
    if observe is None or not observe.enabled:
        return None
    sinks: List[EventSink] = []
    if observe.trace_path:
        sinks.append(JSONLSink(observe.trace_path))
    if observe.ring_capacity:
        sinks.append(RingBufferSink(observe.ring_capacity))
    tracer = None
    if sinks:
        sink = sinks[0] if len(sinks) == 1 else _TeeSink(sinks)
        tracer = EventTracer(sink)
    metrics = StageMetrics() if observe.metrics else None
    checker = InvariantChecker() if observe.check_invariants else None
    return Observability(tracer=tracer, metrics=metrics, checker=checker)
