"""The out-of-order superscalar timing core (SimpleScalar-style)."""

from .config import (
    LatencyConfig,
    MachineConfig,
    ReeseConfig,
    bigger_window_config,
    large_machine_config,
    more_mem_ports_config,
    starting_config,
    wide_datapath_config,
)
from .funits import FUPool
from .observe import (
    CallbackSink,
    EventTracer,
    InvariantChecker,
    InvariantViolation,
    JSONLSink,
    Observability,
    ObserveConfig,
    RingBufferSink,
    StageMetrics,
    TraceEvent,
    build_observability,
)
from .pipeline import Pipeline, SimulationDeadlockError
from .ptrace import PipeTrace
from .stats import Stats

__all__ = [
    "CallbackSink",
    "EventTracer",
    "InvariantChecker",
    "InvariantViolation",
    "JSONLSink",
    "Observability",
    "ObserveConfig",
    "RingBufferSink",
    "StageMetrics",
    "TraceEvent",
    "build_observability",
    "LatencyConfig",
    "MachineConfig",
    "ReeseConfig",
    "bigger_window_config",
    "large_machine_config",
    "more_mem_ports_config",
    "starting_config",
    "wide_datapath_config",
    "FUPool",
    "Pipeline",
    "SimulationDeadlockError",
    "PipeTrace",
    "Stats",
]
