#!/usr/bin/env python3
"""The paper's future-work idea: re-execute less than 100% of the P stream.

§7: "one out of every two instructions could be re-executed.  This
would speed up execution, but it would decrease the number of soft
errors that REESE would be able to detect."

Sweeps the duty cycle and prints the performance/coverage frontier.

Run:  python examples/partial_reexecution.py [benchmark]
"""

import sys

from repro.reese import BernoulliFaultModel
from repro.uarch import Pipeline, starting_config
from repro.workloads.suite import trace_for


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    program, trace = trace_for(benchmark, scale=12_000)
    config = starting_config()
    warm = dict(warm_caches=True, warm_predictor=True)

    base = Pipeline(program, trace, config, **warm).run()
    print(f"benchmark {benchmark}: baseline IPC {base.ipc:.3f}")
    print()
    print(f"{'duty cycle':>10s} {'IPC':>7s} {'gap':>7s} "
          f"{'detected':>9s} {'escaped':>8s} {'coverage':>9s}")

    for duty in (1.0, 0.5, 0.25, 0.125):
        reese_config = config.with_reese(r_duty_cycle=duty)
        clean = Pipeline(program, trace, reese_config, **warm).run()
        model = BernoulliFaultModel(rate=3e-4, seed=21)
        faulty = Pipeline(
            program, trace, reese_config, fault_model=model, **warm
        ).run()
        detected = faulty.errors_detected
        escaped = faulty.sdc_commits
        total = detected + escaped
        coverage = detected / total if total else 1.0
        gap = 1 - clean.ipc / base.ipc
        print(f"{duty:>10.3f} {clean.ipc:>7.3f} {gap:>+7.1%} "
              f"{detected:>9d} {escaped:>8d} {coverage:>9.0%}")

    print()
    print("Full duplication detects everything; halving the duty cycle")
    print("buys back cycles at the price of escaping faults -- the")
    print("trade-off the paper leaves as future work.")


if __name__ == "__main__":
    main()
