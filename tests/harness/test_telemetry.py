"""Harness telemetry: atomic artefact writes and per-job run records.

Covers the telemetry module's pure pieces (atomic write, record
shaping, JSONL round-trip), the ParallelRunner integration
(``telemetry_path``), the JSONL trace sink's tmp-rename discipline,
and the ring-buffer ``dropped_events`` surfacing through Stats and the
metrics report.
"""

import json
import os

import pytest

from repro.harness.parallel import JobRecord, ParallelRunner, SimJob
from repro.harness.reporting import metrics_report
from repro.harness.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    atomic_write_text,
    job_record_dict,
    read_job_telemetry,
    render_jsonl,
    write_job_telemetry,
)
from repro.harness.runner import run_benchmark
from repro.uarch.config import starting_config
from repro.uarch.observe import JSONLSink, ObserveConfig, TraceEvent


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _no_stray_tmp(directory):
    return [p for p in os.listdir(directory) if ".tmp" in p] == []


class TestAtomicWrite:
    def test_writes_and_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "out.jsonl"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"
        assert _no_stray_tmp(tmp_path)

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_multi_dot_names(self, tmp_path):
        target = tmp_path / "run.profile.v1.jsonl"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"
        assert _no_stray_tmp(tmp_path)


class _FakeTelemetry:
    def __init__(self, records):
        self.records = records


class TestJobRecords:
    def test_cached_record_has_no_rate(self):
        record = JobRecord(0, "go", "starting", 300, 7, True, 0.0, 123, 900)
        out = job_record_dict(record)
        assert out["schema"] == TELEMETRY_SCHEMA_VERSION
        assert out["cached"] is True
        assert out["cycles_per_sec"] is None

    def test_simulated_record_rate(self):
        record = JobRecord(1, "go", "starting", 300, 7, False, 2.0, 123, 900)
        assert job_record_dict(record)["cycles_per_sec"] == 450.0

    def test_round_trip(self, tmp_path):
        records = [
            JobRecord(0, "go", "starting", 300, 7, False, 0.5, 1, 100),
            JobRecord(1, "li", "starting+reese", 300, 7, True, 0.0, 1, 150),
        ]
        path = tmp_path / "telemetry.jsonl"
        count = write_job_telemetry(path, _FakeTelemetry(records))
        assert count == 2
        loaded = read_job_telemetry(path)
        assert [r["benchmark"] for r in loaded] == ["go", "li"]
        assert loaded == [job_record_dict(r) for r in records]
        assert _no_stray_tmp(tmp_path)

    def test_render_jsonl_is_canonical(self):
        text = render_jsonl([{"b": 1, "a": 2}])
        assert text == '{"a": 2, "b": 1}\n'


class TestRunnerIntegration:
    def test_runner_writes_telemetry_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        runner = ParallelRunner(jobs=1, use_cache=False, telemetry_path=path)
        config = starting_config()
        runner.run([
            SimJob("go", config, 300),
            SimJob("go", config.with_reese(), 300),
        ])
        records = read_job_telemetry(path)
        assert len(records) == 2
        assert all(r["schema"] == TELEMETRY_SCHEMA_VERSION for r in records)
        assert all(r["cycles"] > 0 for r in records)
        assert not any(r["cached"] for r in records)
        assert _no_stray_tmp(tmp_path)

    def test_cache_hits_recorded_with_cycles(self, tmp_path):
        path = tmp_path / "run.jsonl"
        jobs = [SimJob("go", starting_config(), 300)]
        ParallelRunner(jobs=1, use_cache=True).run(jobs)
        runner = ParallelRunner(jobs=1, use_cache=True, telemetry_path=path)
        runner.run(jobs)
        (record,) = read_job_telemetry(path)
        assert record["cached"] is True
        assert record["cycles"] > 0
        assert record["cycles_per_sec"] is None


class TestJSONLSinkAtomicity:
    def test_file_appears_only_on_close(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        sink = JSONLSink(str(target))
        sink.emit(TraceEvent(kind="fetch", cycle=0, stream="P"))
        assert not target.exists()  # still streaming to the tmp file
        assert os.path.exists(f"{target}.tmp")
        sink.close()
        assert target.exists()
        assert not os.path.exists(f"{target}.tmp")
        assert json.loads(target.read_text().splitlines()[0])["kind"] == "fetch"

    def test_close_is_idempotent(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        sink = JSONLSink(str(target))
        sink.close()
        sink.close()
        assert target.exists()


class TestDroppedEvents:
    def test_overflow_surfaces_in_stats_and_report(self):
        stats = run_benchmark(
            "go", starting_config(), scale=300,
            observe=ObserveConfig(metrics=True, ring_capacity=8),
        )
        dropped = stats.stage_metrics.get("dropped_events", 0)
        assert dropped > 0
        assert stats.state_dict()["stage_metrics"]["dropped_events"] == dropped
        report = metrics_report(stats)
        assert "WARNING" in report and str(dropped) in report

    def test_no_overflow_no_warning(self):
        stats = run_benchmark(
            "go", starting_config(), scale=300,
            observe=ObserveConfig(metrics=True, ring_capacity=10**6),
        )
        assert stats.stage_metrics.get("dropped_events") == 0
        assert "WARNING" not in metrics_report(stats)
