"""Regression tests pinning the paper's qualitative results.

These run the actual figure workloads at a reduced scale (enough for
the shapes to be stable) and assert the claims of §6/§6.1:

* REESE without spares costs measurable IPC on the starting config;
* spare integer ALUs substantially close the gap;
* vortex shows no REESE penalty (the paper's anomaly);
* ijpeg is rescued specifically by the spare multiplier;
* large-RUU machines keep a big gap that extra FUs collapse (Fig. 7).
"""

import statistics

import pytest

from repro.uarch import Pipeline, large_machine_config, starting_config
from repro.workloads import BENCHMARK_ORDER
from repro.workloads.suite import trace_for

SCALE = 8000
_WARM = dict(warm_caches=True, warm_predictor=True)


@pytest.fixture(scope="module")
def traces():
    return {name: trace_for(name, scale=SCALE) for name in BENCHMARK_ORDER}


def avg_ipc(traces, config):
    return statistics.mean(
        Pipeline(p, t, config, **_WARM).run().ipc
        for p, t in traces.values()
    )


@pytest.fixture(scope="module")
def starting_ipcs(traces):
    config = starting_config()
    return {
        "base": avg_ipc(traces, config),
        "reese": avg_ipc(traces, config.with_reese()),
        "r2a": avg_ipc(traces, config.with_spares(alu=2).with_reese()),
        "r2a1m": avg_ipc(
            traces, config.with_spares(alu=2, mult=1).with_reese()
        ),
    }


class TestStartingConfigClaims:
    def test_reese_costs_performance(self, starting_ipcs):
        gap = 1 - starting_ipcs["reese"] / starting_ipcs["base"]
        assert 0.04 <= gap <= 0.30  # paper: 11-16%

    def test_two_spare_alus_close_most_of_the_gap(self, starting_ipcs):
        gap = 1 - starting_ipcs["reese"] / starting_ipcs["base"]
        spared = 1 - starting_ipcs["r2a"] / starting_ipcs["base"]
        assert spared < gap * 0.75

    def test_full_spares_approach_zero_degradation(self, starting_ipcs):
        # §7: "Adding only two integer ALUs ... approaches our goal of
        # zero performance degradation."
        gap = 1 - starting_ipcs["r2a1m"] / starting_ipcs["base"]
        assert gap <= 0.05

    def test_vortex_anomaly(self, traces):
        # Fig. 2 discussion: vortex's baseline IPC is *lower* than (or
        # equal to) REESE before spare elements are added.
        program, trace = traces["vortex"]
        config = starting_config()
        base = Pipeline(program, trace, config, **_WARM).run().ipc
        reese = Pipeline(
            program, trace, config.with_reese(), **_WARM
        ).run().ipc
        assert reese >= base * 0.98

    def test_spare_multiplier_rescues_ijpeg(self, traces):
        program, trace = traces["ijpeg"]
        config = starting_config()
        base = Pipeline(program, trace, config, **_WARM).run().ipc
        r2a = Pipeline(
            program, trace, config.with_spares(alu=2).with_reese(), **_WARM
        ).run().ipc
        r2a1m = Pipeline(
            program, trace,
            config.with_spares(alu=2, mult=1).with_reese(), **_WARM,
        ).run().ipc
        assert r2a1m > r2a  # the multiplier is what ijpeg needed
        assert r2a1m >= base * 0.9


class TestFigure7Claims:
    def test_ruu_growth_alone_keeps_the_gap(self, traces):
        config = large_machine_config(64)
        base = avg_ipc(traces, config)
        reese = avg_ipc(traces, config.with_reese())
        assert 1 - reese / base >= 0.10  # paper: ~15%

    def test_extra_fus_collapse_the_gap(self, traces):
        plain = large_machine_config(64)
        extra = large_machine_config(64, extra_fus=True)
        plain_gap = 1 - avg_ipc(traces, plain.with_reese()) / avg_ipc(
            traces, plain
        )
        extra_gap = 1 - avg_ipc(traces, extra.with_reese()) / avg_ipc(
            traces, extra
        )
        assert extra_gap < plain_gap * 0.6
        assert extra_gap < 0.12  # paper: ~1.5%
