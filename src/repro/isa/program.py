"""Program container: code, data image and symbol table.

A :class:`Program` is the unit of work handed to the functional emulator
and (via the dynamic trace it produces) to the timing models.  It holds

* the static instruction list (``code``) laid out at :data:`TEXT_BASE`,
  one instruction per :data:`~repro.isa.instructions.INST_SIZE` bytes;
* an initial data image: a mapping from byte address to 32-bit word
  values, laid out by convention from :data:`DATA_BASE` upwards;
* labels resolved by the assembler (absolute instruction indices).

Branch targets inside instructions are *absolute instruction indices*
(not byte addresses); :meth:`Program.pc_of` converts an index to the
byte PC used by the I-cache model.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .instructions import INST_SIZE, Instruction

#: Base byte address of the text (code) segment.
TEXT_BASE = 0x0000_1000

#: Base byte address of the data segment.
DATA_BASE = 0x0010_0000

#: Base byte address of the stack (grows downwards).
STACK_BASE = 0x007F_FFF0


class Program:
    """An assembled program: instructions plus an initial memory image."""

    def __init__(
        self,
        code: Iterable[Instruction],
        data: Optional[Dict[int, int]] = None,
        labels: Optional[Dict[str, int]] = None,
        name: str = "program",
    ) -> None:
        self.code: List[Instruction] = list(code)
        #: byte address -> initial 32-bit word value
        self.data: Dict[int, int] = dict(data or {})
        #: label -> absolute instruction index
        self.labels: Dict[str, int] = dict(labels or {})
        self.name = name

    def __len__(self) -> int:
        return len(self.code)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.code)

    def __getitem__(self, index: int) -> Instruction:
        return self.code[index]

    def pc_of(self, index: int) -> int:
        """Byte PC of the instruction at absolute index ``index``."""
        return TEXT_BASE + index * INST_SIZE

    def index_of(self, pc: int) -> int:
        """Absolute instruction index of byte PC ``pc``.

        Raises:
            ValueError: if ``pc`` is not within the text segment.
        """
        offset = pc - TEXT_BASE
        if offset < 0 or offset % INST_SIZE or offset // INST_SIZE >= len(self.code):
            raise ValueError(f"PC {pc:#x} is outside the text segment")
        return offset // INST_SIZE

    def in_text(self, index: int) -> bool:
        """True if ``index`` is a valid instruction index."""
        return 0 <= index < len(self.code)

    def label(self, name: str) -> int:
        """Absolute instruction index of a label.

        Raises:
            KeyError: if the label does not exist.
        """
        return self.labels[name]

    def listing(self) -> str:
        """Human-readable disassembly listing (for debugging and docs)."""
        index_labels: Dict[int, List[str]] = {}
        for name, idx in self.labels.items():
            index_labels.setdefault(idx, []).append(name)
        lines = []
        for idx, inst in enumerate(self.code):
            for name in sorted(index_labels.get(idx, [])):
                lines.append(f"{name}:")
            lines.append(f"  {self.pc_of(idx):#010x}  {inst}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Program {self.name!r}: {len(self.code)} insts, {len(self.data)} data words>"
