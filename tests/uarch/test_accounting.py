"""Unit tests for the cycle-accounting profiler.

The cascade is tested against a stub pipeline (so each priority rung
can be exercised in isolation), the FU blame rule against a real
FUPool, and the account arithmetic (merge, identities, R-share,
histogram summaries) as pure functions over state_dict payloads.
"""

import pytest

from repro.isa.instructions import FUClass
from repro.uarch.accounting import (
    ACCOUNTING_SCHEMA_VERSION,
    CYCLE_CAUSES,
    CycleAccountant,
    R_CAUSES,
    SLOT_CAUSES,
    accounting_identity_errors,
    hist_count,
    hist_max,
    hist_mean,
    hist_percentile,
    latency_summary,
    merge_accounting,
    r_share_of_delta,
)
from repro.uarch.config import starting_config
from repro.uarch.funits import FUPool


class _Stats:
    def __init__(self):
        self.committed = 0


class _Entry:
    def __init__(self, issued=False, squashed=False, wrong_path=False):
        self.issued = issued
        self.squashed = squashed
        self.wrong_path = wrong_path


class _Config:
    issue_width = 4


class _Pipe:
    """Just enough pipeline surface for on_cycle/_residual_cause."""

    def __init__(self):
        self.config = _Config()
        self.stats = _Stats()
        self.ruu = []
        self.wp_active = False
        self.fetch_blocked_until = 0
        self.cycle = 0
        self.ifq = []
        self.fetch_cursor = 0
        self.trace = []
        self.rqueue = None


@pytest.fixture
def acct():
    accountant = CycleAccountant()
    accountant.bind(_Pipe())
    return accountant


class TestCascade:
    def test_issued_slots_charge_first(self, acct):
        pipe = _Pipe()
        acct.cyc_issued_p = 2
        acct.cyc_issued_r = 1
        acct.on_cycle(pipe)
        assert acct.slots["issued_p"] == 2
        assert acct.slots["issued_r"] == 1
        assert sum(acct.slots.values()) == 4  # one residual slot charged

    def test_recovery_wins_over_everything(self, acct):
        pipe = _Pipe()
        acct.cyc_flush = True
        acct.cyc_fu_block_r = 4
        acct.cyc_rqueue_block = True
        acct.on_cycle(pipe)
        assert acct.slots["recovery"] == 4
        assert acct.slots["fu_busy_r"] == 0

    def test_recovery_shadow_is_sticky_until_p_issue(self, acct):
        pipe = _Pipe()
        acct.note_flush()
        acct.on_cycle(pipe)
        acct.on_cycle(pipe)  # still refilling
        assert acct.slots["recovery"] == 8
        acct.cyc_issued_p = 4
        acct.on_cycle(pipe)  # P work issued: shadow ends
        acct.on_cycle(pipe)
        assert acct.slots["recovery"] == 8
        assert acct.slots["issued_p"] == 4

    def test_mispredict_does_not_downgrade_recovery(self, acct):
        acct.note_flush()
        acct.note_mispredict()
        assert acct._refill == "recovery"

    def test_fu_busy_split_caps_at_unused(self, acct):
        pipe = _Pipe()
        acct.cyc_issued_p = 2
        acct.cyc_fu_block_r = 5
        acct.cyc_fu_block_p = 5
        acct.on_cycle(pipe)
        # Only 2 unused slots exist; R blame has priority.
        assert acct.slots["fu_busy_r"] == 2
        assert acct.slots["fu_busy_p"] == 0

    def test_rqueue_backpressure_beats_operands(self, acct):
        pipe = _Pipe()
        pipe.ruu = [_Entry()]  # unready P work present
        acct.cyc_rqueue_block = True
        acct.on_cycle(pipe)
        assert acct.slots["rqueue_backpressure"] == 4

    def test_dispatch_blocks(self, acct):
        pipe = _Pipe()
        acct.cyc_dispatch_block = "ruu"
        acct.on_cycle(pipe)
        acct.cyc_dispatch_block = "lsq"
        acct.on_cycle(pipe)
        assert acct.slots["ruu_full"] == 4
        assert acct.slots["lsq_full"] == 4

    def test_operands_not_ready_needs_true_path_work(self, acct):
        pipe = _Pipe()
        pipe.ruu = [_Entry(wrong_path=True), _Entry(issued=True)]
        acct.on_cycle(pipe)
        # Only wrong-path work unready -> mispredict shadow, not operands.
        assert acct.slots["ifq_empty_mispredict"] == 4
        pipe.ruu.append(_Entry())
        acct.on_cycle(pipe)
        assert acct.slots["operands_not_ready"] == 4

    def test_fetch_starved_and_drain_and_idle(self, acct):
        pipe = _Pipe()
        pipe.fetch_blocked_until = 5  # I-cache miss outstanding
        acct.on_cycle(pipe)
        assert acct.slots["fetch_starved"] == 4
        pipe.fetch_blocked_until = 0
        pipe.rqueue = [object()]
        acct.on_cycle(pipe)
        assert acct.slots["r_drain"] == 4
        pipe.rqueue = []
        acct.on_cycle(pipe)
        assert acct.slots["idle"] == 4

    def test_cycle_account_active_on_commit_only_cycles(self, acct):
        pipe = _Pipe()
        pipe.stats.committed = 3  # commits without issue this cycle
        acct.on_cycle(pipe)
        assert acct.cycles["active"] == 1
        acct.on_cycle(pipe)  # no new commits, nothing issued
        assert acct.cycles["idle"] == 1

    def test_reset_keeps_sticky_refill(self, acct):
        pipe = _Pipe()
        acct.note_flush()
        acct.on_cycle(pipe)
        acct.reset()
        assert acct.cycles_total == 0
        assert sum(acct.slots.values()) == 0
        acct.on_cycle(pipe)
        # Flush straddling the measurement boundary still shadows.
        assert acct.slots["recovery"] == 4


class TestFUBlame:
    def test_blame_r_when_r_holds_unit(self):
        config = starting_config()
        pool = FUPool(config)
        pool.track_streams = True
        for _ in range(config.int_alu):
            assert pool.acquire(FUClass.INT_ALU, 0, r_stream=True) is not None
        assert pool.acquire(FUClass.INT_ALU, 0) is None
        assert pool.blame(FUClass.INT_ALU, 0) == "R"

    def test_blame_p_when_p_holds_unit(self):
        config = starting_config()
        pool = FUPool(config)
        pool.track_streams = True
        for _ in range(config.int_mult):
            assert pool.acquire(FUClass.INT_DIV, 0) is not None
        assert pool.blame(FUClass.INT_DIV, 0) == "P"

    def test_blame_untracked_defaults_to_p(self):
        config = starting_config()
        pool = FUPool(config)  # track_streams off
        for _ in range(config.int_alu):
            pool.acquire(FUClass.INT_ALU, 0, r_stream=True)
        assert pool.blame(FUClass.INT_ALU, 0) == "P"


class TestStateDictAndMerge:
    def _account(self, acct_cycles=2):
        accountant = CycleAccountant()
        accountant.bind(_Pipe())
        pipe = _Pipe()
        for _ in range(acct_cycles):
            accountant.cyc_issued_p = 4
            accountant.on_cycle(pipe)
        accountant.record_detect(3)
        accountant.record_residency(5)
        return accountant.state_dict()

    def test_state_dict_shape(self):
        account = self._account()
        assert account["schema"] == ACCOUNTING_SCHEMA_VERSION
        assert account["width"] == 4
        assert account["slots_total"] == account["width"] * account["cycles_total"]
        assert account["slots"] == {"issued_p": 8}  # zero causes elided
        assert account["detect_latency"] == {"3": 1}
        assert not accounting_identity_errors(account)

    def test_merge_preserves_identities(self):
        merged = merge_accounting(self._account(2), self._account(3))
        assert merged["cycles_total"] == 5
        assert merged["slots_total"] == 20
        assert merged["detect_latency"] == {"3": 2}
        assert not accounting_identity_errors(merged)

    def test_merge_tolerates_empty_sides(self):
        account = self._account()
        assert merge_accounting({}, account) == account
        assert merge_accounting(account, {}) is account
        # Copy, not alias: mutating the merge must not corrupt source.
        copied = merge_accounting({}, account)
        copied["slots"]["issued_p"] = 0
        assert account["slots"]["issued_p"] == 8

    def test_identity_errors_detect_corruption(self):
        account = self._account()
        account["slots"]["issued_p"] += 1
        errors = accounting_identity_errors(account)
        assert len(errors) == 1 and "slot account" in errors[0]
        assert accounting_identity_errors({}) == ["empty accounting payload"]


class TestRShare:
    def test_only_positive_deltas_count(self):
        base = {"slots": {"issued_p": 100, "ruu_full": 50, "idle": 30}}
        reese = {"slots": {"issued_p": 100, "issued_r": 100,
                           "fu_busy_r": 40, "ruu_full": 10, "idle": 0}}
        r_delta, total = r_share_of_delta(base, reese)
        # issued_p excluded; ruu_full/idle shrank (ignored); the growth
        # is issued_r+fu_busy_r = 140, all R-attributable.
        assert (r_delta, total) == (140, 140)

    def test_r_causes_subset_of_slot_causes(self):
        assert R_CAUSES <= set(SLOT_CAUSES)
        assert set(CYCLE_CAUSES) == {"active"} | set(SLOT_CAUSES[3:])


class TestHistograms:
    def test_summaries(self):
        hist = {1: 2, 10: 1, "3": 1}  # str keys as after JSON round-trip
        assert hist_count(hist) == 4
        assert hist_mean(hist) == pytest.approx(15 / 4)
        assert hist_percentile(hist, 0.5) == 1
        assert hist_percentile(hist, 0.99) == 10
        assert hist_max(hist) == 10

    def test_empty_histograms(self):
        assert hist_mean({}) == 0.0
        assert hist_percentile({}, 0.99) == 0
        assert hist_max({}) == 0
        summary = latency_summary({})
        assert summary["detect_latency"]["count"] == 0
        assert summary["rqueue_residency"]["mean"] == 0.0
