"""Worker-count invariance of the profiled accounting payload.

The detection-latency histograms (and the whole attribution account)
are part of the Stats payload, so they ride the result cache and feed
golden comparisons.  They must therefore be a pure function of the
job — byte-identical canonical JSON whether the suite ran on one
worker or fanned out over four, fresh or via the cache.
"""

import json

import pytest

from repro.harness.parallel import ParallelRunner, SimJob
from repro.uarch.config import starting_config


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _profiled_jobs():
    config = starting_config()
    return [
        SimJob("go", config, 400, profile=True),
        SimJob("go", config.with_reese(), 400, profile=True),
        SimJob("vortex", config.with_reese(), 400, profile=True),
    ]


def _canonical_accounts(jobs_n):
    runner = ParallelRunner(jobs=jobs_n, use_cache=False)
    results = runner.run(_profiled_jobs())
    return [
        json.dumps(stats.accounting, sort_keys=True) for stats in results
    ]


class TestProfileDeterminism:
    def test_accounting_byte_stable_across_worker_counts(self):
        serial = _canonical_accounts(1)
        fanned = _canonical_accounts(4)
        assert serial == fanned

    def test_detection_histograms_populated_for_reese_only(self):
        runner = ParallelRunner(jobs=1, use_cache=False)
        base, reese, _ = runner.run(_profiled_jobs())
        assert base.accounting["detect_latency"] == {}
        assert reese.accounting["detect_latency"]
        # str-keyed, sorted — the canonical on-disk form.
        lags = list(reese.accounting["detect_latency"])
        assert all(isinstance(lag, str) for lag in lags)
        assert lags == sorted(lags, key=int)

    def test_cache_round_trip_preserves_account(self):
        jobs = _profiled_jobs()[:1]
        fresh = ParallelRunner(jobs=1, use_cache=True).run(jobs)[0]
        cached = ParallelRunner(jobs=1, use_cache=True).run(jobs)[0]
        assert json.dumps(cached.accounting, sort_keys=True) == json.dumps(
            fresh.accounting, sort_keys=True
        )
