"""Control-flow-graph recovery from an assembled program.

The instruction stream of a :class:`~repro.isa.program.Program` is cut
into **basic blocks** (maximal straight-line runs with one entry and one
exit), connected by branch/fall-through edges, and decorated with the
standard structural analyses the dataflow passes and the linter build
on: reachability from the entry, an (iterative) dominator tree, and
natural-loop detection from back edges.

Soundness convention — this CFG is consumed by the fault-masking
classifier, whose ``dead`` verdicts must hold on *every* dynamic
execution, so edges **over-approximate** dynamic control flow:

* a conditional branch has both its target and fall-through edges;
* ``j``/``jal`` have their (assembler-resolved) direct target;
* ``jr``/``jalr`` targets are not statically known.  In this ISA the
  only producers of code addresses are the link values of
  ``jal``/``jalr``, so an indirect jump is given an edge to **every
  return point** (the instruction after each call site).  When a
  program has indirect jumps but no call sites, every label is assumed
  reachable instead (and the linter flags the construct).

Block indices are CFG node ids; instruction indices are absolute
positions in ``program.code`` (the same indices branch immediates use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa.instructions import Op, OPINFO
from ..isa.program import Program

#: Ops whose successor set is not simply "the next instruction".
_DIRECT_JUMPS = (Op.J, Op.JAL)
_INDIRECT_JUMPS = (Op.JR, Op.JALR)
#: Ops that establish a return point at the following instruction.
_CALLS = (Op.JAL, Op.JALR)


@dataclass
class BasicBlock:
    """A maximal single-entry straight-line instruction run."""

    id: int
    start: int          # first instruction index (inclusive)
    end: int            # last instruction index + 1 (exclusive)
    succs: List[int] = field(default_factory=list)  # successor block ids
    preds: List[int] = field(default_factory=list)  # predecessor block ids

    def __len__(self) -> int:
        return self.end - self.start

    def instructions(self) -> range:
        """The instruction indices this block covers."""
        return range(self.start, self.end)

    @property
    def terminator(self) -> int:
        """Index of the block's last instruction."""
        return self.end - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BasicBlock B{self.id} [{self.start}:{self.end}) "
            f"-> {self.succs}>"
        )


@dataclass
class Loop:
    """A natural loop: back edge ``tail -> header`` plus its body."""

    header: int          # header block id
    tail: int            # source block id of the back edge
    body: Set[int]       # block ids, header included

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Loop header=B{self.header} body={sorted(self.body)}>"


class CFG:
    """Control-flow graph of one program.

    Attributes:
        program: the analysed program.
        blocks: basic blocks, ordered by start index (entry is block 0).
        block_of: instruction index -> owning block id.
        return_points: instruction indices that follow a call site
            (the over-approximated targets of indirect jumps).
        reachable: block ids reachable from the entry block.
        idom: immediate dominator per *reachable* block id (the entry
            maps to itself); unreachable blocks are absent.
        loops: natural loops discovered from back edges.
    """

    def __init__(self, program: Program, blocks: List[BasicBlock],
                 return_points: Sequence[int]) -> None:
        self.program = program
        self.blocks = blocks
        self.return_points: Tuple[int, ...] = tuple(return_points)
        self.block_of: Dict[int, int] = {}
        for block in blocks:
            for index in block.instructions():
                self.block_of[index] = block.id
        self.reachable: Set[int] = self._compute_reachable()
        self.idom: Dict[int, int] = self._compute_dominators()
        self.loops: List[Loop] = self._compute_loops()

    # -- structure queries ------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def edge_count(self) -> int:
        return sum(len(block.succs) for block in self.blocks)

    def unreachable_blocks(self) -> List[BasicBlock]:
        """Blocks never reachable from the entry (dead code)."""
        return [b for b in self.blocks if b.id not in self.reachable]

    def dominates(self, a: int, b: int) -> bool:
        """True if block ``a`` dominates block ``b`` (both reachable)."""
        if b not in self.idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return False
            node = parent

    # -- construction helpers --------------------------------------------

    def _compute_reachable(self) -> Set[int]:
        if not self.blocks:
            return set()
        seen = {0}
        stack = [0]
        while stack:
            block = self.blocks[stack.pop()]
            for succ in block.succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def _reverse_postorder(self) -> List[int]:
        order: List[int] = []
        seen: Set[int] = set()

        # Iterative DFS (generated workloads can nest deeply).
        stack: List[Tuple[int, int]] = [(0, 0)] if self.blocks else []
        if self.blocks:
            seen.add(0)
        while stack:
            node, child = stack[-1]
            succs = self.blocks[node].succs
            if child < len(succs):
                stack[-1] = (node, child + 1)
                succ = succs[child]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def _compute_dominators(self) -> Dict[int, int]:
        """Cooper/Harvey/Kennedy iterative dominators over reachables."""
        if not self.blocks:
            return {}
        rpo = self._reverse_postorder()
        position = {block: index for index, block in enumerate(rpo)}
        idom: Dict[int, int] = {0: 0}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while position[a] > position[b]:
                    a = idom[a]
                while position[b] > position[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block == 0:
                    continue
                preds = [
                    p for p in self.blocks[block].preds
                    if p in idom
                ]
                if not preds:
                    continue
                new = preds[0]
                for pred in preds[1:]:
                    new = intersect(new, pred)
                if idom.get(block) != new:
                    idom[block] = new
                    changed = True
        return idom

    def _compute_loops(self) -> List[Loop]:
        loops: List[Loop] = []
        for block in self.blocks:
            if block.id not in self.reachable:
                continue
            for succ in block.succs:
                if not self.dominates(succ, block.id):
                    continue
                # Back edge block -> succ: collect the natural loop.
                body = {succ, block.id}
                stack = [block.id]
                while stack:
                    node = stack.pop()
                    if node == succ:
                        continue
                    for pred in self.blocks[node].preds:
                        if pred not in body:
                            body.add(pred)
                            stack.append(pred)
                loops.append(Loop(header=succ, tail=block.id, body=body))
        loops.sort(key=lambda loop: (loop.header, loop.tail))
        return loops


def instruction_successors(
    program: Program,
    index: int,
    return_points: Sequence[int],
) -> Tuple[int, ...]:
    """Static successor instruction indices of ``program.code[index]``.

    Out-of-text successors (a fall-through off the end, a branch target
    outside the code) are dropped here; the linter reports them.
    """
    inst = program.code[index]
    info = OPINFO[inst.op]
    n = len(program.code)
    if info.is_halt:
        return ()
    if info.is_cond_branch:
        out = []
        if 0 <= inst.imm < n:
            out.append(inst.imm)
        if index + 1 < n and inst.imm != index + 1:
            out.append(index + 1)
        elif index + 1 < n and not out:
            out.append(index + 1)
        return tuple(out)
    if inst.op in _DIRECT_JUMPS:
        return (inst.imm,) if 0 <= inst.imm < n else ()
    if inst.op in _INDIRECT_JUMPS:
        targets = [t for t in return_points if 0 <= t < n]
        if not targets:
            # No call sites to return to: fall back to every label.
            targets = sorted(
                {t for t in program.labels.values() if 0 <= t < n}
            )
        return tuple(targets)
    return (index + 1,) if index + 1 < n else ()


def call_return_points(program: Program) -> Tuple[int, ...]:
    """Instruction indices following each call site, in program order."""
    points = [
        index + 1
        for index, inst in enumerate(program.code)
        if inst.op in _CALLS and index + 1 < len(program.code)
    ]
    return tuple(points)


def build_cfg(program: Program) -> CFG:
    """Recover the basic-block control-flow graph of ``program``."""
    n = len(program.code)
    return_points = call_return_points(program)
    if n == 0:
        return CFG(program, [], return_points)

    # Leaders: entry, every successor of a control transfer, and every
    # instruction following one (a block ends at each transfer/halt).
    leaders: Set[int] = {0}
    for index, inst in enumerate(program.code):
        info = OPINFO[inst.op]
        if not (info.is_branch or info.is_halt):
            continue
        for succ in instruction_successors(program, index, return_points):
            leaders.add(succ)
        if index + 1 < n:
            leaders.add(index + 1)

    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    for block_id, start in enumerate(starts):
        end = starts[block_id + 1] if block_id + 1 < len(starts) else n
        blocks.append(BasicBlock(id=block_id, start=start, end=end))

    start_to_block = {block.start: block.id for block in blocks}
    for block in blocks:
        for succ_index in instruction_successors(
            program, block.terminator, return_points
        ):
            succ_block = start_to_block[succ_index]
            if succ_block not in block.succs:
                block.succs.append(succ_block)
    for block in blocks:
        for succ in block.succs:
            blocks[succ].preds.append(block.id)

    return CFG(program, blocks, return_points)
