"""Figure 3 — RUU size 32 and LSQ size 16.

Doubling the window raises both models' IPC; the REESE gap stays in
the paper's band and spare elements still close it.
"""

from conftest import get_figure, publish

from repro.harness import SERIES_R2A, SERIES_REESE, figure_report
from repro.harness.expectations import check_spares_monotonic


def test_figure3_bigger_window(benchmark):
    result = benchmark.pedantic(
        lambda: get_figure("fig3"), rounds=1, iterations=1
    )
    fig2 = get_figure("fig2")
    checks = check_spares_monotonic(result)
    report = figure_report(result) + "\n\n" + "\n".join(map(str, checks))
    publish("fig3_bigger_ruu", report)

    # The larger window must raise baseline IPC vs fig2 (the paper's
    # point in growing the RUU/LSQ) ...
    assert result.average_ipc("Baseline") > fig2.average_ipc("Baseline")
    # ... while REESE still trails and spares still help.
    assert result.gap(SERIES_REESE) > 0.05
    assert result.gap(SERIES_R2A) < result.gap(SERIES_REESE)
    assert not [c for c in checks if not c.passed]
