"""Figure 2 — initial comparison between REESE and the baseline.

Starting configuration (Table 1), five series (Baseline, REESE, R+1
ALU, R+2 ALU, R+2 ALU + 1 Mult), six benchmarks plus the AVG group.
Paper shape: REESE trails the baseline by 11-16 % on average; spare
ALUs recover most of the loss; vortex shows no penalty; ijpeg benefits
from the spare multiplier.
"""

from conftest import get_figure, publish

from repro.harness import figure_report
from repro.harness.expectations import check_figure2, check_spares_monotonic


def test_figure2_initial_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: get_figure("fig2"), rounds=1, iterations=1
    )
    checks = check_figure2(result) + check_spares_monotonic(result)
    report = figure_report(result) + "\n\n" + "\n".join(map(str, checks))
    publish("fig2_initial", report)
    failures = [check for check in checks if not check.passed]
    assert not failures, "\n".join(map(str, failures))
