"""Architectural fault-injection campaigns (extension C in DESIGN.md).

Runs a program repeatedly on the *functional emulator* while injecting
single-bit faults, and classifies each run's architectural outcome —
the classic dependability-benchmarking taxonomy:

=========  =============================================================
masked      a fault struck but the program's outputs and memory match
            the golden run (the error was logically masked);
sdc         silent data corruption: outputs or final memory differ;
crash       the corrupted value caused an architectural exception
            (misaligned access, wild jump) — a detected-by-accident
            failure;
hang        the program exceeded its instruction budget;
clean       no fault struck this run.
=========  =============================================================

This is the "machine without REESE" side of the reproduction's fault
study; the timing-level REESE campaign (detection/recovery) lives in
the pipeline itself via :class:`repro.reese.faults.FaultModel`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.emulator import EmulatorError, emulate
from ..arch.memory import MisalignedAccessError
from ..isa.program import Program
from ..reese.faults import make_emulator_injector

#: Outcome labels in severity order.
OUTCOMES = ("clean", "masked", "sdc", "crash", "hang")


@dataclass
class CampaignResult:
    """Aggregated outcome counts of an injection campaign."""

    program_name: str
    runs: int
    rate: float
    outcomes: Counter = field(default_factory=Counter)
    injections: int = 0

    @property
    def sdc_fraction(self) -> float:
        struck = self.runs - self.outcomes["clean"]
        return self.outcomes["sdc"] / struck if struck else 0.0

    def report(self) -> str:
        lines = [
            f"fault campaign on {self.program_name!r}: "
            f"{self.runs} runs, per-instruction rate {self.rate:g}, "
            f"{self.injections} total injections",
        ]
        for outcome in OUTCOMES:
            count = self.outcomes.get(outcome, 0)
            lines.append(f"  {outcome:7s} {count:5d} ({count / self.runs:.0%})")
        return "\n".join(lines)


def run_campaign(
    program: Program,
    runs: int = 50,
    rate: float = 1e-3,
    seed: int = 0,
    max_instructions: int = 200_000,
) -> CampaignResult:
    """Inject faults over ``runs`` emulations and classify outcomes.

    Args:
        program: the workload (must normally halt within the budget).
        runs: number of injected runs.
        rate: per-instruction bit-flip probability.
        seed: base RNG seed; run ``i`` uses ``seed + i``.
        max_instructions: hang-detection budget.
    """
    golden = emulate(program, max_instructions=max_instructions,
                     collect_trace=False)
    if not golden.halted:
        raise ValueError("golden run did not halt; raise max_instructions")
    golden_state = (golden.output, golden.memory.snapshot())

    result = CampaignResult(program.name, runs, rate)
    for run_index in range(runs):
        hook, log = make_emulator_injector(rate=rate, seed=seed + run_index)
        try:
            outcome_run = emulate(
                program, max_instructions=max_instructions,
                collect_trace=False, inject=hook,
            )
        except (MisalignedAccessError, EmulatorError):
            result.outcomes["crash"] += 1
            result.injections += len(log)
            continue
        result.injections += len(log)
        if not log:
            result.outcomes["clean"] += 1
        elif not outcome_run.halted:
            result.outcomes["hang"] += 1
        elif (outcome_run.output, outcome_run.memory.snapshot()) == golden_state:
            result.outcomes["masked"] += 1
        else:
            result.outcomes["sdc"] += 1
    return result
