"""Unit tests for the pure instruction semantics.

These pin the architectural definition of every computational operation
— including 32-bit wrap-around, C-style division, and the architected
divide-by-zero behaviour — because both the P stream (emulator) and the
R stream (REESE re-execution) evaluate through this single module.
"""

import math

import pytest

from repro.isa.instructions import Op
from repro.isa.semantics import (
    bits_to_float,
    branch_taken,
    compute,
    effective_address,
    float_to_bits,
    has_compute,
    to_i32,
    to_u32,
)


class TestIntWidth:
    def test_to_i32_positive(self):
        assert to_i32(5) == 5
        assert to_i32(0x7FFFFFFF) == 0x7FFFFFFF

    def test_to_i32_wraps_negative(self):
        assert to_i32(0x80000000) == -(2**31)
        assert to_i32(0xFFFFFFFF) == -1

    def test_to_i32_wraps_overflow(self):
        assert to_i32(2**32 + 7) == 7
        assert to_i32(2**31) == -(2**31)

    def test_to_u32(self):
        assert to_u32(-1) == 0xFFFFFFFF
        assert to_u32(2**32) == 0


class TestArithmetic:
    def test_add_wraps(self):
        assert compute(Op.ADD, 0x7FFFFFFF, 1) == -(2**31)

    def test_sub(self):
        assert compute(Op.SUB, 3, 10) == -7

    def test_addi_uses_immediate(self):
        assert compute(Op.ADDI, 10, 999, imm=-3) == 7

    def test_logic_ops(self):
        assert compute(Op.AND, 0b1100, 0b1010) == 0b1000
        assert compute(Op.OR, 0b1100, 0b1010) == 0b1110
        assert compute(Op.XOR, 0b1100, 0b1010) == 0b0110

    def test_logic_with_negative_operands(self):
        assert compute(Op.AND, -1, 0xFF) == 0xFF
        assert compute(Op.OR, -2, 1) == -1

    def test_shifts(self):
        assert compute(Op.SLL, 1, 4) == 16
        assert compute(Op.SRL, -1, 28) == 0xF
        assert compute(Op.SRA, -16, 2) == -4

    def test_shift_amount_masked_to_5_bits(self):
        assert compute(Op.SLL, 1, 33) == compute(Op.SLL, 1, 1)
        assert compute(Op.SLLI, 1, 0, imm=32) == 1

    def test_set_less_than(self):
        assert compute(Op.SLT, -1, 0) == 1
        assert compute(Op.SLT, 0, -1) == 0
        assert compute(Op.SLTU, -1, 0) == 0  # unsigned: 0xffffffff > 0
        assert compute(Op.SLTI, 4, 0, imm=5) == 1

    def test_lui_shifts_16(self):
        assert compute(Op.LUI, 0, 0, imm=1) == 0x10000
        assert compute(Op.LUI, 0, 0, imm=0x8000) == to_i32(0x80000000)


class TestMulDiv:
    def test_mul_wraps(self):
        assert compute(Op.MUL, 0x10000, 0x10000) == 0

    def test_mul_signed(self):
        assert compute(Op.MUL, -3, 7) == -21

    def test_mulhu(self):
        assert compute(Op.MULHU, 0x80000000, 2) == 1

    def test_div_truncates_toward_zero(self):
        assert compute(Op.DIV, 7, 2) == 3
        assert compute(Op.DIV, -7, 2) == -3
        assert compute(Op.DIV, 7, -2) == -3

    def test_rem_sign_follows_dividend(self):
        assert compute(Op.REM, 7, 2) == 1
        assert compute(Op.REM, -7, 2) == -1

    def test_div_rem_identity(self):
        for a in (-17, -1, 0, 5, 123456):
            for b in (-7, -2, 1, 3, 1000):
                q = compute(Op.DIV, a, b)
                r = compute(Op.REM, a, b)
                assert to_i32(q * b + r) == to_i32(a)

    def test_divide_by_zero_architected(self):
        # No trap: quotient 0, remainder = dividend.
        assert compute(Op.DIV, 42, 0) == 0
        assert compute(Op.REM, 42, 0) == 42


class TestFloat:
    def test_fadd(self):
        assert compute(Op.FADD, 1.5, 2.25) == 3.75

    def test_fdiv_by_zero_is_inf(self):
        assert compute(Op.FDIV, 1.0, 0.0) == math.inf

    def test_fsqrt_of_negative_uses_abs(self):
        assert compute(Op.FSQRT, -4.0, 0.0) == 2.0

    def test_fcmplt_returns_int(self):
        assert compute(Op.FCMPLT, 1.0, 2.0) == 1
        assert compute(Op.FCMPLT, 2.0, 1.0) == 0

    def test_conversions(self):
        assert compute(Op.CVTIF, 7, 0) == 7.0
        assert compute(Op.CVTFI, 7.9, 0) == 7
        assert compute(Op.CVTFI, -7.9, 0) == -7

    def test_float_bits_roundtrip(self):
        for value in (0.0, -0.0, 1.5, -math.pi, 1e300, 5e-324):
            assert bits_to_float(float_to_bits(value)) == value

    def test_float_bits_of_one(self):
        assert float_to_bits(1.0) == 0x3FF0000000000000


class TestBranches:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Op.BEQ, 5, 5, True),
            (Op.BEQ, 5, 6, False),
            (Op.BNE, 5, 6, True),
            (Op.BLT, -1, 0, True),
            (Op.BLT, 0, 0, False),
            (Op.BGE, 0, 0, True),
            (Op.BGE, -1, 0, False),
            (Op.BLTZ, -1, 0, True),
            (Op.BLTZ, 0, 0, False),
            (Op.BGEZ, 0, 0, True),
        ],
    )
    def test_conditions(self, op, a, b, expected):
        assert branch_taken(op, a, b) is expected

    def test_unconditional_always_taken(self):
        for op in (Op.J, Op.JAL, Op.JR, Op.JALR):
            assert branch_taken(op) is True

    def test_wrapped_comparison(self):
        # 0x80000000 is negative in two's complement.
        assert branch_taken(Op.BLT, 0x80000000, 0)

    def test_non_branch_raises(self):
        with pytest.raises(KeyError):
            branch_taken(Op.ADD, 1, 2)


class TestEffectiveAddress:
    def test_simple(self):
        assert effective_address(0x1000, 8) == 0x1008

    def test_negative_offset(self):
        assert effective_address(0x1000, -8) == 0xFF8

    def test_wraps_32_bits(self):
        assert effective_address(0xFFFFFFFC, 8) == 4


class TestHasCompute:
    def test_alu_ops_have_compute(self):
        assert has_compute(Op.ADD)
        assert has_compute(Op.FMUL)

    def test_memory_and_control_do_not(self):
        for op in (Op.LW, Op.SW, Op.BEQ, Op.J, Op.HALT, Op.NOP, Op.PUTINT):
            assert not has_compute(op)

    def test_compute_raises_for_unsupported(self):
        with pytest.raises(KeyError):
            compute(Op.LW, 1, 2)
