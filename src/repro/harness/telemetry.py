"""Harness telemetry: structured per-job run records, written atomically.

The parallel execution layer knows everything worth keeping about a
run — which jobs were served from cache, how long each simulation
took, which worker ran it, how many cycles it simulated — but until
now that story evaporated when the process exited (``RunTelemetry``
is in-memory only).  This module persists it: one JSONL line per job,
schema-tagged, written through the same atomic tmp-fsync-rename
discipline as every other artefact a killed worker must not truncate.

Telemetry is *descriptive*, not a golden artefact: records carry
wall-clock seconds and derived rates, which legitimately vary between
runs.  Anything that must be byte-stable (figure reports, traces,
attribution accounts) lives elsewhere.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Optional

#: Bump when the record layout changes (consumers check this).
TELEMETRY_SCHEMA_VERSION = 1


def atomic_write_text(path: os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp, flush+fsync, rename).

    Readers never observe a partial file: either the old content (or
    absence) or the complete new content.  A crash mid-write leaves at
    most a ``.tmp.<pid>`` file behind, never a truncated artefact at
    the final path.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.parent / f"{target.name}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def job_record_dict(record) -> Dict[str, Any]:
    """One JSONL-ready dict for a :class:`~...parallel.JobRecord`.

    Derived throughput (``cycles_per_sec``) is included for simulated
    jobs; cache hits carry ``null`` there — a 0-second "run" has no
    meaningful rate, and pretending otherwise would corrupt any
    downstream average.
    """
    cycles_per_sec: Optional[float] = None
    if not record.cached and record.elapsed > 0:
        cycles_per_sec = record.cycles / record.elapsed
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "index": record.index,
        "benchmark": record.benchmark,
        "config": record.config,
        "scale": record.scale,
        "seed": record.seed,
        "cached": record.cached,
        "elapsed_s": record.elapsed,
        "worker": record.worker,
        "cycles": record.cycles,
        "cycles_per_sec": cycles_per_sec,
    }


def render_jsonl(records: List[Dict[str, Any]]) -> str:
    """Canonical JSONL (sorted keys, one line per record)."""
    return "".join(
        json.dumps(record, sort_keys=True) + "\n" for record in records
    )


def write_job_telemetry(path: os.PathLike, telemetry) -> int:
    """Persist one run's per-job records as an atomic JSONL file.

    Args:
        path: destination; the whole file is replaced per run (a run's
            telemetry is one self-contained artefact, not an append
            log — appending would interleave records from unrelated
            invocations and defeat the atomicity guarantee).
        telemetry: a :class:`~...parallel.RunTelemetry`.

    Returns:
        The number of records written.
    """
    records = [job_record_dict(record) for record in telemetry.records]
    atomic_write_text(path, render_jsonl(records))
    return len(records)


def read_job_telemetry(path: os.PathLike) -> List[Dict[str, Any]]:
    """Load a telemetry JSONL file back into record dicts."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    return [json.loads(line) for line in text.splitlines() if line.strip()]
