"""Binary encoding of mini-ISA instructions.

Instructions are architecturally 8 bytes (:data:`~repro.isa.instructions.INST_SIZE`),
mirroring SimpleScalar's PISA whose "32-bit" RISC semantics were likewise
carried in 64-bit encodings for simplicity of decode.  The layout is:

====== ======= ==========================================================
bits    field   contents
====== ======= ==========================================================
63..56  op      opcode number
55..48  rd      destination register (unified index + 1; 0 = none)
47..40  rs1     source register 1     (unified index + 1; 0 = none)
39..32  rs2     source register 2     (unified index + 1; 0 = none)
31..0   imm     signed 32-bit immediate / absolute branch target index
====== ======= ==========================================================

Encoding is lossless: ``decode(encode(inst)) == inst`` for any valid
instruction, which the property tests verify.
"""

from __future__ import annotations

from .instructions import Instruction, Op
from .registers import NO_REG, NUM_REGS


def _encode_reg(reg: int) -> int:
    if reg == NO_REG:
        return 0
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register index out of range: {reg}")
    return reg + 1


def _decode_reg(field: int) -> int:
    return field - 1 if field else NO_REG


def encode(inst: Instruction) -> int:
    """Encode an instruction into its 64-bit binary word.

    Raises:
        ValueError: if a register index or the immediate does not fit.
    """
    imm = inst.imm
    if not -(2**31) <= imm < 2**31:
        raise ValueError(f"immediate does not fit in 32 bits: {imm}")
    word = (
        (int(inst.op) << 56)
        | (_encode_reg(inst.rd) << 48)
        | (_encode_reg(inst.rs1) << 40)
        | (_encode_reg(inst.rs2) << 32)
        | (imm & 0xFFFFFFFF)
    )
    return word


def decode(word: int) -> Instruction:
    """Decode a 64-bit binary word back into an :class:`Instruction`.

    Raises:
        ValueError: if the opcode field is not a valid opcode.
    """
    if not 0 <= word < 2**64:
        raise ValueError(f"not a 64-bit word: {word}")
    op_field = (word >> 56) & 0xFF
    try:
        op = Op(op_field)
    except ValueError as exc:
        raise ValueError(f"invalid opcode field: {op_field}") from exc
    imm = word & 0xFFFFFFFF
    if imm & 0x80000000:
        imm -= 0x100000000
    return Instruction(
        op,
        rd=_decode_reg((word >> 48) & 0xFF),
        rs1=_decode_reg((word >> 40) & 0xFF),
        rs2=_decode_reg((word >> 32) & 0xFF),
        imm=imm,
    )
