"""Tests for the pipeline tracer (ptrace)."""

import pytest

from repro.arch import emulate
from repro.isa import assemble
from repro.uarch import Pipeline, starting_config
from repro.uarch.ptrace import PipeTrace


@pytest.fixture
def traced_run(loop_trace):
    program, trace = loop_trace
    tracer = PipeTrace(max_records=128)
    stats = Pipeline(
        program, trace, starting_config(), observer=tracer
    ).run()
    return tracer, stats


class TestStageTimelines:
    def test_records_created(self, traced_run):
        tracer, _ = traced_run
        assert len(tracer) > 0
        assert tracer.events > 0

    def test_stage_order_monotonic(self, traced_run):
        tracer, _ = traced_run
        for seq in list(tracer._records)[:50]:
            record = tracer.record_for(seq)
            stages = record.stages
            order = ["F", "D", "I", "X", "C"]
            present = [stages[s] for s in order if s in stages]
            assert present == sorted(present), record.op

    def test_committed_instructions_reach_commit_stage(self, traced_run):
        tracer, _ = traced_run
        committed = [
            r for r in tracer._records.values()
            if "C" in r.stages
        ]
        assert committed
        for record in committed:
            assert not record.wrong_path

    def test_render(self, traced_run):
        tracer, _ = traced_run
        text = tracer.render(limit=10)
        assert "seq" in text
        assert "addi" in text or "add" in text

    def test_max_records_bounds_memory(self, loop_trace):
        program, trace = loop_trace
        tracer = PipeTrace(max_records=5)
        Pipeline(program, trace, starting_config(), observer=tracer).run()
        assert len(tracer) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            PipeTrace(max_records=0)


class TestReeseEvents:
    def test_rqueue_and_r_issue_recorded(self, loop_trace):
        program, trace = loop_trace
        tracer = PipeTrace(max_records=256)
        Pipeline(
            program, trace, starting_config().with_reese(),
            observer=tracer,
        ).run()
        with_queue = [
            r for r in tracer._records.values() if "Q" in r.stages
        ]
        with_r = [r for r in tracer._records.values() if "R" in r.stages]
        assert with_queue
        assert with_r
        for record in with_r:
            # Redundant issue strictly after queue insertion.
            assert record.stages["R"] >= record.stages["Q"]

    def test_recovery_events_recorded(self):
        from repro.reese import ScheduledFaultModel
        from repro.workloads.suite import trace_for
        program, trace = trace_for("vortex", scale=3000)
        tracer = PipeTrace()
        model = ScheduledFaultModel([(c, 2, 9) for c in range(50, 600, 50)])
        Pipeline(
            program, trace, starting_config().with_reese(),
            fault_model=model, observer=tracer,
            warm_caches=True, warm_predictor=True,
        ).run()
        assert tracer.recoveries
        assert "recoveries at cycles" in tracer.render(limit=1)


class TestWrongPathVisibility:
    def test_squashed_wrong_path_marked(self):
        source = """
        main:
            li   r1, 120
            li   r2, 99991
            li   r5, 1103515245
        loop:
            mul  r2, r2, r5
            addi r2, r2, 12345
            srli r3, r2, 9
            andi r3, r3, 1
            beqz r3, skip
            addi r6, r6, 1
        skip:
            subi r1, r1, 1
            bnez r1, loop
            halt
        """
        program = assemble(source)
        trace = emulate(program).trace
        tracer = PipeTrace(max_records=2048)
        stats = Pipeline(
            program, trace, starting_config(), observer=tracer
        ).run()
        assert stats.mispredictions > 0
        wrong_path = [
            r for r in tracer._records.values() if r.wrong_path
        ]
        assert wrong_path
        rendered = tracer.render()
        assert "wrong-path" in rendered
