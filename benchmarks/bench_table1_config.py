"""Table 1 — the starting simulator configuration.

Regenerates the paper's Table 1 as a text table from the actual
:func:`repro.uarch.starting_config` preset (so the bench fails if the
preset ever drifts from the paper), and times machine construction.
"""

from conftest import publish

from repro.harness import format_table
from repro.uarch import FUPool, Pipeline, starting_config
from repro.memhier import MemoryHierarchy


def _table1_rows(config):
    mem = config.mem
    return [
        ["parameter", "value"],
        ["Fetch Queue Size", str(config.fetch_queue_size)],
        ["Max IPC for Other Pipeline Stages", str(config.issue_width)],
        ["RUU / LSQ", f"{config.ruu_size} / {config.lsq_size}"],
        ["Functional Units",
         f"{config.int_alu} IntAdd, {config.int_mult} IntM/D, same for FP"],
        ["Memory Ports", str(config.mem_ports)],
        ["L1 Data Cache",
         f"{mem.l1d.size // 1024} KB, {mem.l1d.assoc}-way, "
         f"{mem.l1d.hit_latency}-cycle hit time"],
        ["L2 Cache",
         f"{mem.l2.size // 1024} KB, {mem.l2.assoc}-way, "
         f"{mem.l2.hit_latency}-cycle hit time"],
        ["L1 Inst. Cache",
         f"{mem.l1i.size // 1024} KB, {mem.l1i.assoc}-way, "
         f"{mem.l1i.hit_latency}-cycle hit time"],
        ["L2 Inst. Cache", "Shared w/ D-cache"],
        ["Branch Predictor", config.predictor],
        ["Registers", "32 GP, 32 FP"],
    ]


def test_table1_starting_configuration(benchmark):
    config = starting_config()

    def build_machine():
        # Time the cost of standing up one simulated machine.
        return (MemoryHierarchy(config.mem), FUPool(config))

    benchmark(build_machine)

    rows = _table1_rows(config)
    publish("table1_config", "Table 1: starting configuration\n"
            + format_table(rows))

    # Pin the paper's values.
    assert config.fetch_queue_size == 16
    assert config.issue_width == 8
    assert (config.ruu_size, config.lsq_size) == (16, 8)
    assert (config.int_alu, config.int_mult) == (4, 1)
    assert config.mem_ports == 2
    assert config.predictor == "gshare"
