"""Figure 7 — REESE vs. baseline for even more hardware.

Order, as in the paper: RUU=64, RUU=64 + extra FUs, RUU=256, RUU=256 +
extra FUs.  Paper shape: the gap "remains at approximately 15% when
only the RUU is increased in size.  However, additional functional
units shrink this difference to about 1.5%."
"""

from conftest import get_figure, publish

from repro.harness import figure_report
from repro.harness.expectations import check_figure7

FIG7_IDS = ["fig7-ruu64", "fig7-ruu64+fus", "fig7-ruu256", "fig7-ruu256+fus"]


def test_figure7_large_machines(benchmark):
    results = benchmark.pedantic(
        lambda: {figure_id: get_figure(figure_id) for figure_id in FIG7_IDS},
        rounds=1,
        iterations=1,
    )
    checks = check_figure7(results)
    report = "\n\n".join(
        figure_report(results[figure_id]) for figure_id in FIG7_IDS
    )
    report += "\n\n" + "\n".join(map(str, checks))
    publish("fig7_large_machines", report)
    assert not [check for check in checks if not check.passed]
