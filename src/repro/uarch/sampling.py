"""Sampled + fast-forward simulation (SMARTS-style systematic sampling).

The paper's results come from 100 M-instruction SimpleScalar runs; the
detailed cycle-level :class:`~repro.uarch.pipeline.Pipeline` makes
anything past ~10⁵ instructions per configuration impractical in
Python.  This module trades a statistically controlled amount of
detail for wall clock: split the dynamic trace into ``k`` evenly
spaced **measurement intervals** of ``U`` instructions, run *only*
those intervals (plus small detailed warm-up and drain-padding
windows) through the detailed pipeline, and **functionally
fast-forward** between them with the architectural warm-up pass the
full-run path already uses (cache touch + predictor train,
:func:`~repro.uarch.pipeline.warm_caches_over` /
:func:`~repro.uarch.pipeline.warm_predictor_over`).

Design (mirrors SMARTS / RepTFD's checkpoint-and-replay split):

* **Interval selection** (``placement="profile"``, the default) works
  on the grid of contiguous ``U``-instruction windows.  A cheap
  functional control-flow pass (:func:`mispredict_profile`) replays
  the fetch-time predictors over the whole trace — the pipeline trains
  them at fetch with trace ground truth, so mispredict events are a
  *pure trace property*, reproduced exactly — and the selector picks
  the median window of each of ``k`` mispredict-density quantiles.
  That guarantees the sample spans the workload's fast and slow phases
  (an interpreter's dispatch storms, a compiler's quiet stretches)
  instead of hoping stratified-random placement hits them.  ``"random"``
  (seeded, stratified per segment) and ``"end"`` (classic systematic)
  placements remain available.  Requesting coverage ≥ the whole trace
  degenerates to a contiguous partition — full detailed simulation.
* **IPC estimation** under profile placement is a regression (control
  variate) estimator rather than the raw sample ratio: per-window
  cycles fit ``cycles ≈ a·instructions + b·mispredicts`` almost
  perfectly (R² > 0.99 on every suite workload — branch recovery
  dominates what varies between windows), and both regressor totals
  are known *exactly* for the full trace, so total cycles extrapolate
  as ``a·N + b·M``.  Workloads whose per-window IPC is bimodal (the
  ``li`` interpreter: slow phases are 50 % of cycles in 25 % of
  instructions) defeat plain ratio estimates at small ``k`` — the
  regression estimator holds them to ≲2 % error at ``k=15``.  When the
  mispredict spread is too small to identify ``b`` the estimator falls
  back to the ratio automatically.
* **Warm state** for a detailed window starting at ``w`` is a
  deterministic fold: (1) the full-trace architectural warm pass
  (identical to ``warm=True`` full runs — the paper's caches run warm)
  then (2) a functional replay of the prefix ``[0, w)``.  The fold
  depends only on ``(trace, config, w)``, so an interval simulated
  in-process and the same interval simulated as an independent
  :class:`~repro.harness.parallel.SimJob` in a worker produce
  **bit-identical Stats** — the property the jobs-invariance tests pin.
  Snapshots use the model classes' cheap ``clone_state`` methods, not
  ``copy.deepcopy``.
* **Detailed warm-up and drain padding** bound the two truncation
  biases of short intervals.  The pipeline runs ``warmup`` extra
  instructions before the measured region and resets every statistic
  when the first measured instruction commits (``measure_from``), so
  measurement starts on a full, busy machine rather than an empty one;
  it keeps fetching ``cooldown`` successor instructions past the
  region but terminates at the last measured commit (``stop_after``),
  so the interval tail overlaps with younger work exactly as it would
  mid-run instead of draining into an artificial void (REESE's
  R-stream queue makes that drain expensive, which would bias its
  sampled IPC low).
* **Interval traces are re-sequenced**: the pipeline requires
  ``trace[i].seq == i`` (commit bookkeeping, recovery refetch), so each
  detailed window runs on per-interval copies of its
  :class:`~repro.arch.trace.DynInst` records, renumbered from zero.
* **Statistics**: per-interval :class:`~repro.uarch.stats.Stats` merge
  through :meth:`Stats.merge` into a whole-run view (the headline IPC
  is committed/cycles over all measured windows), and the sampler also
  reports the mean of per-interval IPCs with a CLT confidence
  interval — the SMARTS-style point estimate ± error bound.

Baseline, dispatch-duplication and REESE configurations all sample
identically: the engine is a driver around ``Pipeline``, not a model
change.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..arch.trace import DynInst, Trace
from ..bpred import BTB, PerfectPredictor, ReturnAddressStack, make_predictor
from ..isa.instructions import Op
from ..isa.registers import REG_RA
from ..memhier.hierarchy import MemoryHierarchy
from ..reese.faults import FaultModel
from .accounting import CycleAccountant
from .config import MachineConfig
from .pipeline import Pipeline
from .stats import Stats

#: Two-sided 95 % normal quantile for the CLT confidence interval.
Z_95 = 1.96

#: An interval: (warm_start, measure_start, end) trace positions.
#: Detailed simulation covers ``[warm_start, end + cooldown)``;
#: statistics cover ``[measure_start, end)``.
IntervalBounds = Tuple[int, int, int]


@dataclass(frozen=True)
class SamplingSpec:
    """How to sample one workload trace.

    Attributes:
        intervals: number of measurement intervals ``k``.
        interval_length: measured instructions per interval ``U``.
        warmup: detailed warm-up instructions run through the pipeline
            ahead of each measured region and excluded from its Stats
            (the pipeline-fill transient; functional fast-forward
            already handles caches and predictor).
        cooldown: successor instructions kept in flight past the
            measured region so its tail overlaps younger work; they
            execute but never commit.
        placement: how measurement intervals are chosen.
            ``"profile"`` (default) picks the median window of each
            mispredict-density quantile on the ``U``-window grid and
            estimates IPC by regression against the exact trace-wide
            mispredict total (see module docstring) — deterministic
            given ``(trace, config, spec)``.  ``"random"`` draws a
            seeded uniform offset per equal segment — stratified random
            sampling, immune to aliasing against periodic workloads.
            ``"end"`` is classic systematic placement at segment ends.
        seed: RNG seed for ``"random"`` placement; the same
            ``(total, spec)`` always selects the same intervals, on any
            worker.  Unused (but still part of the cache fingerprint)
            for the deterministic placements.
        index: restrict execution to one interval (used by the
            harness's interval-level job fan-out); ``None`` runs all.
    """

    intervals: int
    interval_length: int = 300
    warmup: int = 50
    cooldown: int = 50
    placement: str = "profile"
    seed: int = 12345
    index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.intervals <= 0:
            raise ValueError("intervals must be positive")
        if self.interval_length <= 0:
            raise ValueError("interval_length must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.placement not in ("profile", "random", "end"):
            raise ValueError(
                "placement must be 'profile', 'random' or 'end', "
                f"not {self.placement!r}"
            )
        if self.index is not None and not 0 <= self.index < self.intervals:
            raise ValueError(
                f"index {self.index} outside [0, {self.intervals})"
            )


def mispredict_profile(program, trace: Trace, config: MachineConfig) -> List[int]:
    """Prefix sums of fetch-time branch mispredictions over ``trace``.

    Replays the direction predictor, BTB and RAS over the whole trace
    exactly as ``Pipeline._predict_next`` consults them.  Because the
    timing models train all three at fetch with the trace's ground
    truth (oracle update timing, DESIGN.md §5), the sequence of
    mispredict events is independent of pipeline timing — this pass
    reproduces the detailed simulator's total misprediction count
    exactly, at functional-replay speed.

    Returns ``pre`` with ``len(trace) + 1`` entries; mispredictions in
    ``trace[i:j]`` are ``pre[j] - pre[i]``.
    """
    predictor = make_predictor(config.predictor, **config.predictor_kwargs)
    btb = BTB(config.btb_entries)
    ras = ReturnAddressStack(config.ras_depth)
    code = program.code
    prime = isinstance(predictor, PerfectPredictor)
    pre = [0] * (len(trace) + 1)
    acc = 0
    for i, dyn in enumerate(trace):
        if dyn.is_branch:
            fallthrough = dyn.static_index + 1
            op = dyn.op
            if dyn.is_cond_branch:
                if prime:
                    predictor.prime(dyn.taken)
                taken = predictor.predict_and_update(dyn.pc, dyn.taken)
                predicted = dyn.target_index if taken else fallthrough
            elif op is Op.J:
                predicted = dyn.target_index
            elif op is Op.JAL:
                ras.push(fallthrough)
                predicted = dyn.target_index
            elif op is Op.JR:
                if code[dyn.static_index].rs1 == REG_RA:
                    hit = ras.pop()
                else:
                    hit = btb.lookup(dyn.pc)
                btb.update(dyn.pc, dyn.target_index)
                predicted = hit if hit is not None else -1
            else:  # JALR
                ras.push(fallthrough)
                hit = btb.lookup(dyn.pc)
                btb.update(dyn.pc, dyn.target_index)
                predicted = hit if hit is not None else -1
            if predicted != dyn.next_index:
                acc += 1
        pre[i + 1] = acc
    return pre


def _window_grid(total: int, length: int) -> List[Tuple[int, int]]:
    """The contiguous ``length``-instruction window grid over a trace."""
    return [
        (start, min(start + length, total))
        for start in range(0, total, length)
    ]


def select_intervals(
    total: int,
    spec: SamplingSpec,
    profile: Optional[List[int]] = None,
) -> List[IntervalBounds]:
    """Measurement intervals over a trace of ``total`` instructions.

    ``"profile"`` placement ranks the contiguous ``U``-window grid by
    exact mispredict density (``profile`` must be the prefix sums from
    :func:`mispredict_profile`) and takes the median window of each of
    ``k`` density quantiles, returned in trace order.  ``"end"`` and
    ``"random"`` split the trace into ``k`` equal segments and place
    one window per segment (at the end, or at a seeded uniform
    offset).  When the requested coverage meets or exceeds the trace,
    every placement degenerates to the contiguous partition — full
    detailed simulation.

    Deterministic: the same ``(total, spec, profile)`` always yields
    the same intervals, on any worker.
    """
    if total <= 0:
        return []
    k, length = spec.intervals, spec.interval_length
    if k * length >= total:
        return [
            (start, start, end) for start, end in _window_grid(total, length)
        ]
    if spec.placement == "profile":
        if profile is None:
            raise ValueError(
                "placement 'profile' needs the mispredict_profile prefix sums"
            )
        grid = _window_grid(total, length)
        windows = len(grid)
        order = sorted(
            range(windows),
            key=lambda w: (profile[grid[w][1]] - profile[grid[w][0]], w),
        )
        picks = sorted(
            order[(((i * windows) // k) + (((i + 1) * windows) // k)) // 2]
            for i in range(k)
        )
        bounds: List[IntervalBounds] = []
        previous_end = 0
        for w in picks:
            measure_start, end = grid[w]
            warm_start = max(measure_start - spec.warmup, previous_end)
            bounds.append((warm_start, measure_start, end))
            previous_end = end
        return bounds
    rng = (
        random.Random(spec.seed * 1_000_003 + total)
        if spec.placement == "random"
        else None
    )
    bounds = []
    previous_end = 0
    for i in range(k):
        segment_end = ((i + 1) * total) // k
        if rng is None:
            measure_start = max(segment_end - length, previous_end)
        else:
            lo = max((i * total) // k, previous_end)
            hi = segment_end - length
            measure_start = rng.randint(lo, hi) if hi > lo else lo
        end = min(measure_start + length, segment_end)
        warm_start = max(measure_start - spec.warmup, previous_end)
        bounds.append((warm_start, measure_start, end))
        previous_end = end
    return bounds


class WarmState:
    """Architectural machine state a detailed window starts from.

    Holds exactly the structures :class:`Pipeline` would otherwise
    build cold — memory hierarchy, direction predictor, BTB, return
    address stack — after the deterministic warm fold described in the
    module docstring.  ``advance`` continues the functional replay;
    ``snapshot`` clones the state (with statistics zeroed) for handing
    to an interval pipeline without disturbing the sweep.

    ``warm_full`` touches caches and direction predictor only — the
    exact composition of the full-run ``warm=True`` pass.  ``advance``
    additionally replays the BTB and return-address stack in fetch
    order, so a window's control-flow structures hold their *true*
    mid-run state (modulo wrong-path speculation) rather than starting
    cold at every interval.  Both are single fused loops: the sweep is
    the dominant cost of a sampled run, so one trace iteration per
    pass matters.
    """

    __slots__ = (
        "program", "config", "mem", "predictor", "btb", "ras", "_line_shift"
    )

    def __init__(self, program, config: MachineConfig) -> None:
        self.program = program
        self.config = config
        self.mem = MemoryHierarchy(config.mem)
        self.predictor = make_predictor(
            config.predictor, **config.predictor_kwargs
        )
        self.btb = BTB(config.btb_entries)
        self.ras = ReturnAddressStack(config.ras_depth)
        self._line_shift = config.mem.l1i.line_size.bit_length() - 1

    def warm_full(self, trace: Trace) -> None:
        """The full-trace warm pass (identical to ``warm=True`` runs)."""
        mem = self.mem
        ifetch = mem.ifetch
        daccess = mem.daccess
        predict = self.predictor.predict
        update = self.predictor.update
        shift = self._line_shift
        last_line = -1
        for dyn in trace:
            pc = dyn.pc
            line = pc >> shift
            if line != last_line:
                ifetch(pc)
                last_line = line
            ea = dyn.ea
            if ea is not None:
                daccess(ea, is_write=dyn.is_store)
            if dyn.is_cond_branch:
                predict(pc)
                update(pc, dyn.taken)

    def advance(self, trace: Trace, start: int, stop: int) -> None:
        """Functionally replay ``trace[start:stop]`` into the state.

        Caches and predictor advance as in :meth:`warm_full`; the BTB
        and RAS replay the structural updates of
        ``Pipeline._predict_next`` (push on calls, pop on returns,
        record resolved indirect targets).
        """
        mem = self.mem
        ifetch = mem.ifetch
        daccess = mem.daccess
        predict = self.predictor.predict
        update = self.predictor.update
        ras_push = self.ras.push
        ras_pop = self.ras.pop
        btb_update = self.btb.update
        code = self.program.code
        shift = self._line_shift
        last_line = -1
        for dyn in trace[start:stop]:
            pc = dyn.pc
            line = pc >> shift
            if line != last_line:
                ifetch(pc)
                last_line = line
            ea = dyn.ea
            if ea is not None:
                daccess(ea, is_write=dyn.is_store)
            if dyn.is_branch:
                if dyn.is_cond_branch:
                    predict(pc)
                    update(pc, dyn.taken)
                else:
                    op = dyn.op
                    if op is Op.JAL:
                        ras_push(dyn.static_index + 1)
                    elif op is Op.JR:
                        if code[dyn.static_index].rs1 == REG_RA:
                            ras_pop()
                        btb_update(pc, dyn.target_index)
                    elif op is Op.JALR:
                        ras_push(dyn.static_index + 1)
                        btb_update(pc, dyn.target_index)

    def snapshot(self) -> "WarmState":
        """An isolated copy with measurement statistics zeroed."""
        clone = WarmState.__new__(WarmState)
        clone.program = self.program
        clone.config = self.config
        clone.mem = self.mem.clone_state()
        clone.predictor = self.predictor.clone_state()
        clone.btb = self.btb.clone_state()
        clone.ras = self.ras.clone_state()
        clone._line_shift = self._line_shift
        clone.mem.reset_stats()
        clone.predictor.lookups = 0
        clone.predictor.correct = 0
        clone.btb.hits = 0
        clone.btb.misses = 0
        clone.ras.pushes = 0
        clone.ras.pops = 0
        clone.ras.overflows = 0
        return clone


def build_warm_state(
    program,
    config: MachineConfig,
    trace: Trace,
    start: int,
    warm: bool = True,
) -> WarmState:
    """Self-contained warm state for a detailed window starting at
    ``start``.

    Used by the per-interval job path; the in-process driver reaches
    the identical state incrementally (the fold is associative over
    trace prefixes).
    """
    state = WarmState(program, config)
    if warm:
        state.warm_full(trace)
    state.advance(trace, 0, start)
    return state.snapshot()


def resequence(trace: Trace, start: int, stop: int) -> List[DynInst]:
    """Per-interval DynInst copies renumbered from zero.

    The pipeline's commit/recovery bookkeeping requires
    ``trace[i].seq == i``; static-program indices (``static_index``,
    ``target_index``, ``next_index``) are positions in the program text
    and copy through unchanged.
    """
    out: List[DynInst] = []
    for offset, dyn in enumerate(trace[start:stop]):
        clone = DynInst.__new__(DynInst)
        for name in DynInst.__slots__:
            setattr(clone, name, getattr(dyn, name))
        clone.seq = offset
        out.append(clone)
    return out


@dataclass
class SampledResult:
    """Outcome of one sampled simulation.

    ``stats`` is the merged whole-run view (counters summed over the
    measured intervals); ``interval_stats`` keeps the per-interval
    Stats for the statistics below and for callers that want the raw
    points.  When the run used profile placement,
    ``interval_mispredicts`` / ``total_mispredicts`` carry the exact
    regressor data the regression estimator needs (see module
    docstring); otherwise they are ``None`` and the estimate is the
    plain measured ratio.
    """

    spec: SamplingSpec
    total_instructions: int
    intervals: List[IntervalBounds]
    interval_stats: List[Stats]
    interval_mispredicts: Optional[List[int]] = None
    total_mispredicts: Optional[int] = None
    stats: Stats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = Stats.merged(self.interval_stats)

    # -- point estimate and error bound ---------------------------------

    def _regression(self) -> Optional[Tuple[float, float]]:
        """(estimated total cycles, 95 % CI half-width on them).

        Fits ``cycles = a·committed + b·mispredicts`` over the sampled
        windows (no intercept) and extrapolates with the exact
        trace-wide totals.  Returns None when regressor data is absent
        or the mispredict spread cannot identify ``b`` — callers fall
        back to the ratio estimate.
        """
        if self.interval_mispredicts is None or self.total_mispredicts is None:
            return None
        if self.measured_instructions >= self.total_instructions:
            return None  # full coverage: the measured ratio is exact
        rows = [
            (stats.committed, mispred, stats.cycles)
            for stats, mispred in zip(
                self.interval_stats, self.interval_mispredicts
            )
        ]
        k = len(rows)
        if k < 2:
            return None
        mean_x = sum(x for _, x, _ in rows) / k
        var_x = sum((x - mean_x) ** 2 for _, x, _ in rows) / k
        if var_x < 1e-9:
            return None
        s_nn = sum(n * n for n, _, _ in rows)
        s_xx = sum(x * x for _, x, _ in rows)
        s_xn = sum(n * x for n, x, _ in rows)
        s_ny = sum(n * y for n, _, y in rows)
        s_xy = sum(x * y for _, x, y in rows)
        det = s_nn * s_xx - s_xn * s_xn
        if det <= 0:
            return None
        a = (s_xx * s_ny - s_xn * s_xy) / det
        b = (s_nn * s_xy - s_xn * s_ny) / det
        total_n = self.total_instructions
        total_x = self.total_mispredicts
        cycles = a * total_n + b * total_x
        if b < 0 or cycles <= 0:
            return None  # unphysical fit: mispredicts cannot save cycles
        if k > 2:
            rss = sum((y - a * n - b * x) ** 2 for n, x, y in rows)
            sigma2 = rss / (k - 2)
            var_cycles = (
                sigma2
                * (
                    total_n * total_n * s_xx
                    - 2 * total_n * total_x * s_xn
                    + total_x * total_x * s_nn
                )
                / det
            )
            ci = Z_95 * math.sqrt(max(var_cycles, 0.0))
        else:
            ci = 0.0
        return cycles, ci

    @property
    def estimated_cycles(self) -> float:
        """Estimated total cycles for the full trace.

        Regression extrapolation when regressor data is available,
        otherwise the measured-ratio extrapolation
        ``measured_cycles · N / measured_instructions``.
        """
        fit = self._regression()
        if fit is not None:
            return fit[0]
        measured = self.measured_instructions
        if not measured:
            return 0.0
        return self.stats.cycles * self.total_instructions / measured

    @property
    def ipc(self) -> float:
        """Estimated full-trace IPC.

        ``N / estimated_cycles`` under the regression estimator; the
        instruction-weighted measured ratio otherwise (the two coincide
        when sampling degenerates to a contiguous partition).
        """
        fit = self._regression()
        if fit is not None:
            return self.total_instructions / fit[0]
        return self.stats.ipc

    @property
    def interval_ipcs(self) -> List[float]:
        return [stats.ipc for stats in self.interval_stats]

    @property
    def ipc_mean(self) -> float:
        """Mean of per-interval IPCs (the SMARTS point estimate)."""
        ipcs = self.interval_ipcs
        return sum(ipcs) / len(ipcs) if ipcs else 0.0

    @property
    def ipc_std(self) -> float:
        """Sample standard deviation of per-interval IPCs."""
        ipcs = self.interval_ipcs
        if len(ipcs) < 2:
            return 0.0
        mean = self.ipc_mean
        return math.sqrt(
            sum((x - mean) ** 2 for x in ipcs) / (len(ipcs) - 1)
        )

    @property
    def ipc_ci(self) -> float:
        """95 % confidence-interval half-width on :attr:`ipc`.

        Under the regression estimator this propagates the fit's
        prediction variance through ``IPC = N / cycles`` (delta
        method); otherwise it is the CLT half-width on the mean of
        per-interval IPCs.
        """
        fit = self._regression()
        if fit is not None:
            cycles, cycles_ci = fit
            return self.total_instructions / (cycles * cycles) * cycles_ci
        ipcs = self.interval_ipcs
        if len(ipcs) < 2:
            return 0.0
        return Z_95 * self.ipc_std / math.sqrt(len(ipcs))

    @property
    def measured_instructions(self) -> int:
        return sum(end - m0 for _, m0, end in self.intervals)

    @property
    def detail_fraction(self) -> float:
        """Fraction of the trace measured through the detailed pipeline.

        Excludes warm-up/cooldown padding — see
        :attr:`simulated_fraction` for the cost-side view.
        """
        if not self.total_instructions:
            return 0.0
        return self.measured_instructions / self.total_instructions

    @property
    def simulated_fraction(self) -> float:
        """Fraction of the trace that entered the detailed pipeline at
        all (measured regions plus warm-up and drain padding) — the
        detailed-simulation cost of the run."""
        if not self.total_instructions:
            return 0.0
        simulated = sum(
            min(end + self.spec.cooldown, self.total_instructions) - w0
            for w0, _, end in self.intervals
        )
        return simulated / self.total_instructions

    def summary(self) -> str:
        estimator = (
            "regression" if self._regression() is not None else "ratio"
        )
        return (
            f"sampled {len(self.intervals)}x"
            f"{self.spec.interval_length} of {self.total_instructions} "
            f"insts ({self.detail_fraction:.1%} measured, {estimator}): "
            f"IPC {self.ipc:.3f} ± {self.ipc_ci:.3f}"
        )

    @classmethod
    def from_interval_stats(
        cls,
        spec: SamplingSpec,
        total_instructions: int,
        interval_stats: List[Stats],
        profile: Optional[List[int]] = None,
    ) -> "SampledResult":
        """Rebuild a result from externally executed interval Stats.

        This is the merge path of the harness's interval-level job
        fan-out: one Stats per interval, in interval order.  For
        profile placement pass the same :func:`mispredict_profile`
        prefix sums the intervals were selected with (they also feed
        the regression estimator).
        """
        bounds = select_intervals(total_instructions, spec, profile)
        if len(interval_stats) != len(bounds):
            raise ValueError(
                f"expected {len(bounds)} interval Stats, "
                f"got {len(interval_stats)}"
            )
        mispredicts = total_mispredicts = None
        if profile is not None:
            mispredicts = [
                profile[end] - profile[m0] for _, m0, end in bounds
            ]
            total_mispredicts = profile[-1]
        return cls(
            spec, total_instructions, bounds, interval_stats,
            mispredicts, total_mispredicts,
        )


def _run_window(
    program,
    trace: Trace,
    config: MachineConfig,
    spec: SamplingSpec,
    bounds: IntervalBounds,
    state: WarmState,
    fault_model: Optional[FaultModel],
    observer,
    accountant=None,
) -> Stats:
    """Detailed simulation of one interval window from a warm state."""
    warm_start, measure_start, end = bounds
    pad_end = min(end + spec.cooldown, len(trace))
    pipeline = Pipeline(
        program,
        resequence(trace, warm_start, pad_end),
        config,
        fault_model=fault_model,
        observer=observer,
        warm_state=state,
        measure_from=measure_start - warm_start,
        stop_after=end - 1 - warm_start,
        accountant=accountant,
    )
    return pipeline.run()


def run_interval(
    program,
    trace: Trace,
    config: MachineConfig,
    spec: SamplingSpec,
    index: int,
    fault_model: Optional[FaultModel] = None,
    warm: bool = True,
    observer=None,
    profile_run: bool = False,
) -> Stats:
    """Detailed simulation of one measurement interval, self-contained.

    Builds the interval's warm state from scratch (full-trace warm +
    prefix replay), so the call depends only on its arguments — what
    makes interval-level jobs safe to fan out over workers in any
    order.

    Args:
        profile_run: attach a fresh
            :class:`~repro.uarch.accounting.CycleAccountant` so the
            interval's Stats carry a slot/cycle attribution account
            covering exactly the measured window (the accountant
            resets with every other counter at ``measure_from``).
    """
    profile = None
    if spec.placement == "profile":
        profile = mispredict_profile(program, trace, config)
    bounds = select_intervals(len(trace), spec, profile)[index]
    state = build_warm_state(program, config, trace, bounds[0], warm=warm)
    accountant = CycleAccountant() if profile_run else None
    return _run_window(
        program, trace, config, spec, bounds, state, fault_model, observer,
        accountant=accountant,
    )


def run_sampled(
    program,
    trace: Trace,
    config: MachineConfig,
    spec: SamplingSpec,
    fault_factory: Optional[Callable[[int], Optional[FaultModel]]] = None,
    warm: bool = True,
    profile_run: bool = False,
) -> SampledResult:
    """Sampled simulation of one workload, in process.

    Makes a *single* functional sweep over the trace — fast-forwarding
    through skipped regions and snapshotting the warm state at each
    window boundary — so warming cost is paid once per run rather than
    once per interval.  The sweep only ever sees the functional
    replay, never the detailed runs' cache/predictor side effects, so
    its state at any boundary equals the pure prefix fold the fan-out
    path (:func:`run_interval`) computes independently.

    Args:
        fault_factory: optional per-interval fault-model builder
            (called with the interval index); fault models carry live
            RNG state, so each interval gets a fresh one — which keeps
            in-process and fanned-out sampled runs bit-identical.
        warm: apply the full-trace warm pass first (the ``warm=True``
            semantics of the full-run path).
        profile_run: attach a fresh accountant to every interval; the
            aggregate view's attribution account is the sum of the
            per-interval accounts (``Stats.merge``), under which the
            completeness identities survive because each interval
            satisfies them individually.
    """
    total = len(trace)
    profile = None
    if spec.placement == "profile":
        profile = mispredict_profile(program, trace, config)
    bounds = select_intervals(total, spec, profile)
    sweep = WarmState(program, config)
    if warm:
        sweep.warm_full(trace)
    cursor = 0
    interval_stats: List[Stats] = []
    for index, (warm_start, measure_start, end) in enumerate(bounds):
        sweep.advance(trace, cursor, warm_start)
        fault = fault_factory(index) if fault_factory else None
        accountant = CycleAccountant() if profile_run else None
        interval_stats.append(
            _run_window(
                program, trace, config, spec,
                (warm_start, measure_start, end),
                sweep.snapshot(), fault, None,
                accountant=accountant,
            )
        )
        sweep.advance(trace, warm_start, end)
        cursor = end
    mispredicts = total_mispredicts = None
    if profile is not None:
        mispredicts = [profile[end] - profile[m0] for _, m0, end in bounds]
        total_mispredicts = profile[-1]
    return SampledResult(
        spec, total, bounds, interval_stats, mispredicts, total_mispredicts
    )
