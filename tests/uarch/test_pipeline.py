"""Unit tests for the baseline out-of-order pipeline."""

import pytest

from repro.arch import emulate
from repro.isa import assemble
from repro.uarch import Pipeline, SimulationTimeoutError, starting_config
from repro.workloads import kernels


def run(program, config=None, **kwargs):
    result = emulate(program, max_instructions=200_000)
    assert result.halted
    pipeline = Pipeline(program, result.trace, config or starting_config(),
                        **kwargs)
    return pipeline.run(), result


class TestCommitCorrectness:
    def test_commits_exactly_the_trace(self, loop_trace, cfg):
        program, trace = loop_trace
        stats = Pipeline(program, trace, cfg).run()
        assert stats.committed == len(trace)
        assert stats.halted

    def test_mixed_program_commits_all(self, mixed_trace, cfg):
        program, trace = mixed_trace
        stats = Pipeline(program, trace, cfg).run()
        assert stats.committed == len(trace)

    def test_empty_trace(self, cfg):
        program = assemble("halt")
        stats = Pipeline(program, [], cfg).run()
        assert stats.cycles == 0 and stats.committed == 0

    def test_trace_without_halt_commits_all(self, cfg):
        program = assemble("x: addi r1, r1, 1\nj x")
        result = emulate(program, max_instructions=100)
        stats = Pipeline(program, result.trace, cfg).run()
        assert stats.committed == 100

    def test_deterministic(self, mixed_trace, cfg):
        program, trace = mixed_trace
        first = Pipeline(program, trace, cfg).run()
        second = Pipeline(program, trace, cfg).run()
        assert first.cycles == second.cycles
        assert first.to_dict() == second.to_dict()


class TestTimingSanity:
    def test_ipc_below_issue_width(self, cfg):
        stats, _ = run(kernels.ilp_block(300, 8))
        assert 0 < stats.ipc <= cfg.issue_width

    def test_serial_chain_is_slow(self):
        serial, _ = run(kernels.serial_chain(500))
        parallel, _ = run(kernels.ilp_block(300, 8))
        assert parallel.ipc > serial.ipc * 1.5

    def test_every_instruction_costs_at_least_a_cycle_share(self, cfg):
        stats, result = run(kernels.fibonacci(200)[0])
        # cycles >= instructions / issue width (loose lower bound).
        assert stats.cycles >= stats.committed / cfg.issue_width

    def test_mult_bound_kernel_limited_by_single_multiplier(self, cfg):
        stats, _ = run(kernels.multiply_bound(400))
        # 3 multiplies per 8-instruction iteration through 1 pipelined
        # multiplier: at most 8/3 IPC.
        assert stats.ipc <= 8 / 3 + 0.05

    def test_spare_multiplier_speeds_mult_bound_kernel(self, cfg):
        program = kernels.multiply_bound(400)
        base, _ = run(program, cfg)
        spared, _ = run(program, cfg.with_spares(mult=1))
        assert spared.ipc > base.ipc * 1.1


class TestBranchHandling:
    def test_mispredictions_counted(self, cfg):
        # Data-dependent branch pattern the predictor cannot learn fully.
        program = assemble("""
        main:
            li   r1, 300
            li   r2, 12345
            li   r5, 1103515245
            li   r9, 0
        loop:
            mul  r2, r2, r5
            addi r2, r2, 12345
            srli r3, r2, 9
            andi r3, r3, 1
            beqz r3, skip
            addi r9, r9, 1
        skip:
            subi r1, r1, 1
            bnez r1, loop
            halt
        """)
        stats, _ = run(program, cfg)
        assert stats.mispredictions > 10
        assert stats.committed > 0

    def test_perfect_predictor_removes_mispredictions(self, cfg):
        program = kernels.bubble_sort(16, seed=1)[0]
        perfect = cfg.replace(predictor="perfect")
        base, _ = run(program, cfg)
        oracle, _ = run(program, perfect)
        assert oracle.mispredictions == 0
        assert oracle.cycles <= base.cycles

    def test_mispredict_penalty_visible(self, cfg):
        # Same instruction count; one version with a predictable branch,
        # one with an unpredictable one.
        def build(expr):
            return assemble(f"""
            main:
                li   r1, 400
                li   r2, 98765
                li   r5, 1103515245
                li   r9, 0
            loop:
                mul  r2, r2, r5
                addi r2, r2, 12345
                srli r3, r2, 9
                {expr}
                beqz r4, skip
                addi r9, r9, 1
            skip:
                subi r1, r1, 1
                bnez r1, loop
                halt
            """)
        predictable, _ = run(build("li r4, 1"), cfg)
        random_branch, _ = run(build("andi r4, r3, 1"), cfg)
        assert random_branch.cycles > predictable.cycles

    def test_call_return_predicted_by_ras(self, cfg):
        program = kernels.fib_recursive(11)[0]
        stats, result = run(program, cfg)
        # Returns are RAS-predicted: total control mispredictions should
        # be a small fraction of the (call-heavy) branch count.
        assert stats.mispredictions < stats.branches * 0.2

    def test_wrong_path_instructions_fetched(self, cfg):
        program = kernels.bubble_sort(16, seed=7)[0]
        stats, _ = run(program, cfg)
        assert stats.mispredictions > 0
        assert stats.fetched_wrong_path > 0
        assert stats.squashed > 0


class TestStructuralLimits:
    def test_bigger_window_helps_ilp(self, cfg):
        program = kernels.ilp_block(300, 10)
        small, _ = run(program, cfg)
        big, _ = run(program, cfg.replace(ruu_size=64, lsq_size=32))
        assert big.ipc >= small.ipc

    def test_narrow_width_limits_ipc(self, cfg):
        program = kernels.ilp_block(300, 8)
        narrow = cfg.replace(
            fetch_width=2, decode_width=2, issue_width=2, commit_width=2
        )
        stats, _ = run(program, narrow)
        assert stats.ipc <= 2.0

    def test_ruu_full_events_on_long_latency(self, cfg):
        program = assemble("""
        main:
            li r1, 50
            li r2, 1000
            li r3, 7
        loop:
            div r4, r2, r3
            subi r1, r1, 1
            bnez r1, loop
            halt
        """)
        stats, _ = run(program, cfg)
        assert stats.ruu_full_events > 0  # divides back the window up

    def test_store_load_forwarding(self, cfg):
        program = assemble("""
        .data
        buf: .space 64
        .text
        main:
            la  r1, buf
            li  r2, 200
        loop:
            sw  r2, 0(r1)
            lw  r3, 0(r1)
            add r4, r3, r2
            subi r2, r2, 1
            bnez r2, loop
            halt
        """)
        stats, _ = run(program, cfg)
        assert stats.load_forwards > 100


class TestCacheInteraction:
    def test_cold_misses_slow_execution(self, cfg):
        program, _ = kernels.vector_sum(256, seed=5)
        result = emulate(program)
        cold = Pipeline(program, result.trace, cfg).run()
        warm = Pipeline(program, result.trace, cfg,
                        warm_caches=True).run()
        assert warm.cycles < cold.cycles
        assert warm.cache_stats["l1d"]["misses"] < \
            cold.cache_stats["l1d"]["misses"]

    def test_warmup_zeroes_cache_stats(self, cfg, loop_trace):
        program, trace = loop_trace
        stats = Pipeline(program, trace, cfg, warm_caches=True).run()
        # The loop touches no data; after warm-up the I-side should hit.
        assert stats.cache_stats["l1i"]["misses"] == 0


class TestDeadlockGuard:
    def test_deadlock_window_configurable(self, cfg, loop_trace):
        # Sanity: a normal program never trips the deadlock detector.
        program, trace = loop_trace
        stats = Pipeline(program, trace, cfg).run()
        assert stats.halted

    def test_max_cycles_cap(self, cfg, loop_trace):
        # A too-small cap is an explicit error, never a silent partial
        # result that figures could be computed over.
        program, trace = loop_trace
        with pytest.raises(SimulationTimeoutError) as excinfo:
            Pipeline(program, trace, cfg).run(max_cycles=5)
        error = excinfo.value
        assert error.cap == 5
        assert error.total == len(trace)
        assert error.committed < error.total
        # The partial Stats ride along for diagnosis.
        assert error.stats.cycles <= 5
        assert not error.stats.halted
        assert "cycle cap 5 exhausted" in str(error)
