"""Extension C — architectural fault campaign: life without REESE.

Runs the emulator-level injection campaign on each proxy benchmark and
reports the outcome distribution (masked / SDC / crash / hang).  This
is the motivation side of the paper: on a machine without detection,
soft errors silently corrupt results or crash the program.
"""

from conftest import publish

from repro.harness import format_table
from repro.harness.campaign import run_campaign
from repro.workloads import BENCHMARK_ORDER, BENCHMARKS

RUNS = 25
RATE = 2e-3


def run_all():
    results = {}
    for name in BENCHMARK_ORDER:
        program = BENCHMARKS[name].build(scale=4000)
        results[name] = run_campaign(
            program, runs=RUNS, rate=RATE, seed=101, max_instructions=400_000
        )
    return results


def test_sdc_campaign_without_reese(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [["benchmark", "runs", "masked", "sdc", "crash", "hang",
              "clean"]]
    for name in BENCHMARK_ORDER:
        campaign = results[name]
        outcome = campaign.outcomes
        table.append([
            name, str(campaign.runs),
            str(outcome.get("masked", 0)), str(outcome.get("sdc", 0)),
            str(outcome.get("crash", 0)), str(outcome.get("hang", 0)),
            str(outcome.get("clean", 0)),
        ])
    publish(
        "ext_sdc_campaign",
        "Extension C: architectural fault campaign (no REESE)\n"
        + format_table(table),
    )
    # Across the suite, injection must surface real failures: at least
    # a quarter of struck runs end in SDC or crash somewhere.
    total_bad = sum(
        results[n].outcomes.get("sdc", 0) + results[n].outcomes.get("crash", 0)
        for n in BENCHMARK_ORDER
    )
    total_struck = sum(
        results[n].runs - results[n].outcomes.get("clean", 0)
        for n in BENCHMARK_ORDER
    )
    assert total_struck > 0
    assert total_bad / total_struck > 0.25
