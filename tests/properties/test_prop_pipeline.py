"""Property-based end-to-end invariants of the timing models.

For any generated program:

* the baseline pipeline commits exactly the emulator's trace;
* the REESE pipeline commits exactly the same instructions;
* without faults, REESE detects nothing;
* REESE is never faster than ~the baseline and never slower than the
  full-serialisation bound.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import emulate
from repro.uarch import Pipeline, starting_config
from repro.workloads import MixProfile, generate_program


@st.composite
def program_and_trace(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    profile = MixProfile(
        mul=draw(st.sampled_from([0.0, 0.05, 0.1])),
        load=draw(st.sampled_from([0.1, 0.25])),
        store=draw(st.sampled_from([0.0, 0.1])),
        branch=draw(st.sampled_from([0.05, 0.15])),
        branch_predictability=draw(st.sampled_from([0.4, 0.9])),
    )
    program = generate_program(profile, n_dynamic=600, seed=seed)
    trace = emulate(program, max_instructions=8000).trace
    return program, trace


class TestPipelineProperties:
    @given(program_and_trace())
    @settings(max_examples=15, deadline=None)
    def test_baseline_commits_trace_exactly(self, data):
        program, trace = data
        stats = Pipeline(program, trace, starting_config()).run()
        assert stats.committed == len(trace)

    @given(program_and_trace())
    @settings(max_examples=15, deadline=None)
    def test_reese_commits_trace_exactly(self, data):
        program, trace = data
        config = starting_config().with_reese()
        stats = Pipeline(program, trace, config).run()
        assert stats.committed == len(trace)
        assert stats.errors_detected == 0
        assert stats.sdc_commits == 0

    @given(program_and_trace())
    @settings(max_examples=10, deadline=None)
    def test_reese_cycle_bracket(self, data):
        program, trace = data
        base = Pipeline(program, trace, starting_config()).run()
        reese = Pipeline(
            program, trace, starting_config().with_reese()
        ).run()
        # REESE can be marginally faster only through scheduling noise.
        assert reese.cycles >= base.cycles * 0.95
        # And at worst fully serialises the two streams.
        assert reese.cycles <= base.cycles * 3 + 200

    @given(program_and_trace())
    @settings(max_examples=8, deadline=None)
    def test_duty_cycle_preserves_commit_count(self, data):
        program, trace = data
        config = starting_config().with_reese(r_duty_cycle=0.5)
        stats = Pipeline(program, trace, config).run()
        assert stats.committed == len(trace)

    @given(program_and_trace())
    @settings(max_examples=8, deadline=None)
    def test_early_remove_preserves_commit_count(self, data):
        program, trace = data
        config = starting_config().with_reese(early_remove=True)
        stats = Pipeline(program, trace, config).run()
        assert stats.committed == len(trace)
