"""Unit tests for the R-stream Queue."""

import pytest

from repro.arch.trace import DynInst
from repro.isa.instructions import FUClass, Op
from repro.reese import R_DONE, R_ISSUED, R_WAITING, REntry, RStreamQueue


def make_entry(seq, skip_r=False, fu=FUClass.INT_ALU):
    dyn = DynInst()
    dyn.seq = seq
    dyn.op = Op.ADD
    return REntry(seq=seq, dyn=dyn, p_value=seq * 10, fu=fu,
                  inserted_cycle=0, skip_r=skip_r)


class TestCapacity:
    def test_paper_default_is_32(self):
        assert RStreamQueue().capacity == 32

    def test_full_and_free_slots(self):
        queue = RStreamQueue(capacity=2)
        assert queue.free_slots == 2
        queue.push(make_entry(0))
        assert queue.free_slots == 1 and not queue.full
        queue.push(make_entry(1))
        assert queue.full

    def test_push_over_capacity_raises(self):
        queue = RStreamQueue(capacity=1)
        queue.push(make_entry(0))
        with pytest.raises(OverflowError):
            queue.push(make_entry(1))

    def test_duplicate_seq_rejected(self):
        queue = RStreamQueue()
        queue.push(make_entry(5))
        with pytest.raises(ValueError):
            queue.push(make_entry(5))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RStreamQueue(capacity=0)


class TestIssueOrder:
    def test_fifo_issue_order(self):
        queue = RStreamQueue()
        for seq in (3, 7, 9):
            queue.push(make_entry(seq))
        assert queue.peek_unissued().seq == 3
        queue.mark_issued(queue.peek_unissued())
        assert queue.peek_unissued().seq == 7

    def test_waiting_entries_snapshot(self):
        queue = RStreamQueue()
        entries = [make_entry(seq) for seq in range(4)]
        for entry in entries:
            queue.push(entry)
        queue.mark_issued(entries[1])  # out-of-order issue (skip-scan)
        waiting = queue.waiting_entries()
        assert [e.seq for e in waiting] == [0, 2, 3]

    def test_skip_r_entries_never_pending(self):
        queue = RStreamQueue()
        queue.push(make_entry(0, skip_r=True))
        assert queue.peek_unissued() is None
        assert queue.committable(0) is not None  # immediately DONE

    def test_mark_issued_requires_waiting(self):
        queue = RStreamQueue()
        entry = make_entry(0)
        queue.push(entry)
        queue.mark_issued(entry)
        with pytest.raises(ValueError):
            queue.mark_issued(entry)

    def test_states_progress(self):
        queue = RStreamQueue()
        entry = make_entry(0)
        queue.push(entry)
        assert entry.state == R_WAITING
        queue.mark_issued(entry)
        assert entry.state == R_ISSUED
        entry.state = R_DONE
        assert queue.committable(0) is entry


class TestCommitOrder:
    def test_committable_only_when_done(self):
        queue = RStreamQueue()
        entry = make_entry(0)
        queue.push(entry)
        assert queue.committable(0) is None
        entry.state = R_DONE
        assert queue.committable(0) is entry

    def test_committable_by_program_order_not_insertion(self):
        # With early removal, seq 5 may be inserted before seq 4.
        queue = RStreamQueue()
        late = make_entry(5)
        early = make_entry(4)
        queue.push(late)
        queue.push(early)
        late.state = R_DONE
        early.state = R_DONE
        assert queue.committable(4) is early
        queue.pop(4)
        assert queue.committable(5) is late

    def test_pop_removes(self):
        queue = RStreamQueue()
        queue.push(make_entry(0, skip_r=True))
        queue.pop(0)
        assert len(queue) == 0
        assert not queue.contains(0)


class TestFlush:
    def test_clear_drops_everything(self):
        queue = RStreamQueue()
        for seq in range(5):
            queue.push(make_entry(seq))
        dropped = queue.clear()
        assert dropped == 5
        assert len(queue) == 0
        assert queue.peek_unissued() is None

    def test_stale_refs_pruned_after_clear_and_refill(self):
        queue = RStreamQueue()
        old = make_entry(0)
        queue.push(old)
        queue.clear()
        fresh = make_entry(0)
        queue.push(fresh)
        assert queue.peek_unissued() is fresh
        assert queue.waiting_entries() == [fresh]

    def test_entries_iterates_in_program_order(self):
        queue = RStreamQueue()
        for seq in (9, 4, 7):
            queue.push(make_entry(seq))
        assert [e.seq for e in queue.entries()] == [4, 7, 9]

    def test_total_inserted_counter(self):
        queue = RStreamQueue()
        queue.push(make_entry(0))
        queue.clear()
        queue.push(make_entry(1))
        assert queue.total_inserted == 2
