"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AsmError, DATA_BASE, REG_RA, REG_ZERO, assemble
from repro.isa.instructions import Instruction, Op


class TestBasicParsing:
    def test_empty_source(self):
        program = assemble("")
        assert len(program) == 0

    def test_comments_ignored(self):
        program = assemble("""
        # full-line comment
        .text
        nop        # trailing comment
        halt       ; semicolon comment
        """)
        assert [inst.op for inst in program] == [Op.NOP, Op.HALT]

    def test_three_operand_alu(self):
        program = assemble("add r1, r2, r3")
        assert program[0] == Instruction(Op.ADD, rd=1, rs1=2, rs2=3)

    def test_immediate_forms(self):
        program = assemble("""
        addi r1, r2, -42
        andi r3, r4, 0xff
        """)
        assert program[0].imm == -42
        assert program[1].imm == 0xFF

    def test_char_immediate(self):
        program = assemble("addi r1, r0, 'a'")
        assert program[0].imm == ord("a")

    def test_memory_operands(self):
        program = assemble("""
        lw r1, 8(r2)
        sw r3, -4(r4)
        """)
        load, store = program[0], program[1]
        assert (load.rd, load.rs1, load.imm) == (1, 2, 8)
        assert (store.rs2, store.rs1, store.imm) == (3, 4, -4)

    def test_mnemonics_case_insensitive(self):
        program = assemble("ADD r1, r2, r3")
        assert program[0].op is Op.ADD


class TestLabels:
    def test_forward_and_backward_branch_targets(self):
        program = assemble("""
        start:
            beq r1, r2, end
            j start
        end:
            halt
        """)
        assert program[0].imm == 2  # 'end' is instruction index 2
        assert program[1].imm == 0  # 'start' is index 0

    def test_label_on_own_line(self):
        program = assemble("""
        loop:
            nop
            j loop
        """)
        assert program.label("loop") == 0

    def test_multiple_labels_same_target(self):
        program = assemble("""
        a: b:
            halt
        """)
        assert program.label("a") == program.label("b") == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble("x:\nnop\nx:\nnop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AsmError, match="undefined"):
            assemble("j nowhere")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError, match="line 3"):
            assemble("nop\nnop\nbogus r1, r2")


class TestDataSection:
    def test_word_layout_from_data_base(self):
        program = assemble("""
        .data
        a: .word 1, 2, 3
        b: .word 4
        .text
        halt
        """)
        assert program.data[DATA_BASE] == 1
        assert program.data[DATA_BASE + 8] == 3
        assert program.data[DATA_BASE + 12] == 4

    def test_space_reserves_aligned_bytes(self):
        program = assemble("""
        .data
        a: .space 5
        b: .word 9
        .text
        halt
        """)
        # .space 5 rounds to 8 bytes for word alignment.
        assert program.data[DATA_BASE + 8] == 9

    def test_align_directive(self):
        program = assemble("""
        .data
        a: .word 1
        .align 4
        b: .word 2
        .text
        halt
        """)
        assert program.data[DATA_BASE + 16] == 2

    def test_la_resolves_data_label(self):
        program = assemble("""
        .data
        buf: .word 0
        .text
        la r1, buf
        halt
        """)
        assert program[0].op is Op.ADDI
        assert program[0].imm == DATA_BASE

    def test_word_outside_data_rejected(self):
        with pytest.raises(AsmError):
            assemble(".text\n.word 5")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AsmError):
            assemble(".data\nadd r1, r2, r3")

    def test_negative_space_rejected(self):
        with pytest.raises(AsmError):
            assemble(".data\n.space -4")


class TestPseudoInstructions:
    def test_li(self):
        program = assemble("li r5, 1234")
        assert program[0] == Instruction(Op.ADDI, rd=5, rs1=REG_ZERO, imm=1234)

    def test_mov(self):
        program = assemble("mov r5, r6")
        inst = program[0]
        assert inst.op is Op.OR and inst.rs1 == 6 and inst.rs2 == REG_ZERO

    def test_neg_and_not(self):
        program = assemble("neg r1, r2\nnot r3, r4")
        assert program[0].op is Op.SUB and program[0].rs2 == 2
        assert program[1].op is Op.XORI and program[1].imm == -1

    def test_subi(self):
        program = assemble("subi r1, r2, 5")
        assert program[0] == Instruction(Op.ADDI, rd=1, rs1=2, imm=-5)

    def test_subi_negative(self):
        program = assemble("subi r1, r2, -5")
        assert program[0].imm == 5

    def test_call_and_ret(self):
        program = assemble("""
        main:
            call fn
            halt
        fn:
            ret
        """)
        call, _, ret = program[0], program[1], program[2]
        assert call.op is Op.JAL and call.rd == REG_RA and call.imm == 2
        assert ret.op is Op.JR and ret.rs1 == REG_RA

    def test_beqz_bnez(self):
        program = assemble("""
        x: beqz r1, x
           bnez r2, x
        """)
        assert program[0].op is Op.BEQ and program[0].rs2 == REG_ZERO
        assert program[1].op is Op.BNE

    def test_ble_bgt_swap_operands(self):
        program = assemble("""
        x: ble r1, r2, x
           bgt r1, r2, x
        """)
        ble, bgt = program[0], program[1]
        assert ble.op is Op.BGE and (ble.rs1, ble.rs2) == (2, 1)
        assert bgt.op is Op.BLT and (bgt.rs1, bgt.rs2) == (2, 1)

    def test_b_alias_for_j(self):
        program = assemble("x: b x")
        assert program[0].op is Op.J

    def test_pseudo_expansion_is_one_to_one(self):
        # Each pseudo expands to exactly one instruction (keeps dynamic
        # instruction counts predictable for workload calibration).
        program = assemble("""
        li r1, 5
        mov r2, r1
        subi r3, r2, 1
        """)
        assert len(program) == 3


class TestOperandValidation:
    @pytest.mark.parametrize(
        "source",
        [
            "add r1, r2",            # missing operand
            "add r1, r2, r3, r4",    # extra operand
            "lw r1, r2",             # bad memory operand
            "lw r1, 4(notareg)",     # bad register
            "halt r1",               # operand on none-format
            "bltz r1",               # missing target
        ],
    )
    def test_bad_operands_rejected(self, source):
        with pytest.raises(AsmError):
            assemble(source)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AsmError, match="unknown directive"):
            assemble(".data\n.quad 5")


class TestListing:
    def test_listing_shows_labels_and_instructions(self):
        program = assemble("""
        main:
            li r1, 5
            halt
        """)
        listing = program.listing()
        assert "main:" in listing
        assert "addi r1, r0, 5" in listing
        assert "halt" in listing


class TestByteDirectives:
    def test_byte_little_endian_packing(self):
        program = assemble("""
        .data
        b: .byte 0x11, 0x22, 0x33, 0x44
        .text
        halt
        """)
        assert program.data[DATA_BASE] == 0x44332211

    def test_byte_values_masked(self):
        program = assemble("""
        .data
        b: .byte 0x1ff
        .text
        halt
        """)
        assert program.data[DATA_BASE] & 0xFF == 0xFF

    def test_byte_realigns_for_next_word(self):
        program = assemble("""
        .data
        b: .byte 1
        w: .word 9
        .text
        halt
        """)
        assert program.data[DATA_BASE + 4] == 9

    def test_asciiz_nul_terminated(self):
        program = assemble("""
        .data
        s: .asciiz "ab"
        .text
        halt
        """)
        word = program.data[DATA_BASE]
        assert word & 0xFF == ord("a")
        assert (word >> 8) & 0xFF == ord("b")
        assert (word >> 16) & 0xFF == 0

    def test_asciiz_escapes(self):
        program = assemble("""
        .data
        s: .asciiz "a\\n"
        .text
        halt
        """)
        assert (program.data[DATA_BASE] >> 8) & 0xFF == ord("\n")

    def test_asciiz_requires_quotes(self):
        with pytest.raises(AsmError):
            assemble(".data\n.asciiz abc")
