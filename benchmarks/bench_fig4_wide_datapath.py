"""Figure 4 — IPC for a 16-wide datapath.

The paper widens every pipeline stage to 16 (keeping RUU 32 / LSQ 16)
to verify bandwidth is not artificially limiting either model.
"""

from conftest import get_figure, publish

from repro.harness import SERIES_R2A, SERIES_REESE, figure_report
from repro.harness.expectations import check_spares_monotonic


def test_figure4_wide_datapath(benchmark):
    result = benchmark.pedantic(
        lambda: get_figure("fig4"), rounds=1, iterations=1
    )
    fig3 = get_figure("fig3")
    checks = check_spares_monotonic(result)
    report = figure_report(result) + "\n\n" + "\n".join(map(str, checks))
    publish("fig4_wide_datapath", report)

    # Doubling width on a window-limited machine barely moves IPC —
    # the paper's conclusion that bandwidth was not the limiter.
    base_fig3 = fig3.average_ipc("Baseline")
    base_fig4 = result.average_ipc("Baseline")
    assert abs(base_fig4 - base_fig3) / base_fig3 < 0.15
    assert result.gap(SERIES_REESE) > 0.05
    assert result.gap(SERIES_R2A) < result.gap(SERIES_REESE)
    assert not [c for c in checks if not c.passed]
