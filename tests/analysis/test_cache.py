"""Analysis entry point and its on-disk cache."""

import json

import pytest

from repro.isa import assemble
from repro.analysis import (
    AnalysisResult,
    analyze_program,
    program_fingerprint,
)
from repro.analysis.cache import AnalysisCache

SOURCE = """
main:
    li   r1, 10
    li   r2, 0
loop:
    add  r2, r2, r1
    subi r1, r1, 1
    bnez r1, loop
    putint r2
    halt
"""


@pytest.fixture
def program():
    return assemble(SOURCE, name="sum10")


class TestFingerprint:
    def test_stable_across_name(self, program):
        renamed = assemble(SOURCE, name="other")
        assert program_fingerprint(program) == program_fingerprint(renamed)

    def test_sensitive_to_code(self, program):
        changed = assemble(SOURCE.replace("li   r1, 10", "li   r1, 11"),
                           name="sum10")
        assert program_fingerprint(program) != program_fingerprint(changed)

    def test_sensitive_to_labels(self, program):
        relabelled = assemble(SOURCE.replace("loop", "body"), name="sum10")
        assert program_fingerprint(program) != program_fingerprint(relabelled)


class TestAnalyzeProgram:
    def test_cold_then_warm(self, program, tmp_path):
        cold = analyze_program(program, cache_dir=tmp_path)
        warm = analyze_program(program, cache_dir=tmp_path)
        assert not cold.from_cache
        assert warm.from_cache
        assert warm.fingerprint == cold.fingerprint
        assert warm.site_classes == cold.site_classes
        assert warm.directly_dead == cold.directly_dead
        assert warm.findings == cold.findings
        assert (warm.instructions, warm.blocks, warm.edges, warm.loops) == (
            cold.instructions, cold.blocks, cold.edges, cold.loops
        )

    def test_cache_hit_reports_callers_name(self, program, tmp_path):
        analyze_program(program, cache_dir=tmp_path)
        renamed = assemble(SOURCE, name="renamed")
        result = analyze_program(renamed, cache_dir=tmp_path)
        assert result.from_cache
        assert result.program_name == "renamed"

    def test_use_cache_false_never_touches_disk(self, program, tmp_path):
        result = analyze_program(program, use_cache=False,
                                 cache_dir=tmp_path)
        assert not result.from_cache
        assert list(tmp_path.iterdir()) == []

    def test_env_var_cache_root(self, program, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        analyze_program(program)
        assert (tmp_path / "analysis").is_dir()

    def test_summary_fields(self, program):
        result = analyze_program(program, use_cache=False)
        assert result.instructions == 7
        assert result.blocks == 3
        assert result.loops == 1
        assert result.unreachable_blocks == 0
        assert result.clean
        assert sum(result.class_counts.values()) == len(result.site_classes)


class TestCacheStore:
    def test_version_mismatch_is_a_miss(self, program, tmp_path):
        cache = AnalysisCache(tmp_path)
        fingerprint = program_fingerprint(program)
        analyze_program(program, cache_dir=tmp_path)
        path = cache.path_for(fingerprint)
        data = json.loads(path.read_text())
        data["version"] = -1
        path.write_text(json.dumps(data))
        assert cache.get(fingerprint) is None
        assert not analyze_program(program, cache_dir=tmp_path).from_cache

    def test_corrupt_entry_is_a_miss(self, program, tmp_path):
        cache = AnalysisCache(tmp_path)
        fingerprint = program_fingerprint(program)
        analyze_program(program, cache_dir=tmp_path)
        cache.path_for(fingerprint).write_text("{not json")
        assert cache.get(fingerprint) is None

    def test_payload_round_trip(self, program):
        result = analyze_program(program, use_cache=False)
        clone = AnalysisResult.from_payload(
            result.to_payload(), result.fingerprint, from_cache=True
        )
        assert clone.site_classes == result.site_classes
        assert clone.directly_dead == result.directly_dead
        assert clone.findings == result.findings
        assert clone.from_cache
