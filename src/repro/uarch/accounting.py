"""Top-down cycle accounting: charge every issue slot to one cause.

The paper attributes REESE's 11-16 % slowdown to R-stream contention
for issue slots and functional units (§6, Fig. 2-5) but never shows
the ledger.  This module is that ledger: with profiling enabled the
pipeline charges **every issue slot of every cycle** to exactly one
cause, and every cycle to "active" or one stall reason, via a priority
cascade evaluated at end of cycle.  Summed over a run the two accounts
obey hard identities —

* slot account:  ``sum(slots.values()) == issue_width * cycles``
* cycle account: ``sum(cycles.values()) == cycles``

— which the property suite pins (no slot uncharged, none charged
twice), so an attribution report can never silently drop cycles.

Cause taxonomy (slot account)
-----------------------------

===================== =============================================
``issued_p``          slot did useful work: correct-path P issue
``issued_wp``         slot issued a wrong-path instruction
``issued_r``          slot issued R-stream work (REESE re-execution
                      or dispatch-dup shadow copy)
``recovery``          compare-mismatch flush this cycle, or refill
                      shadow of one (until P work issues again)
``fu_busy_r``         slot idle because a functional unit was busy
                      and the R stream was involved — R work blocked,
                      or P work blocked by an R-held unit
``fu_busy_p``         slot idle because P work was blocked by a
                      P-held functional unit
``rqueue_backpressure`` R-stream Queue full: completed P work cannot
                      leave the RUU, stalling the window
``ruu_full``          dispatch blocked on RUU capacity
``lsq_full``          dispatch blocked on LSQ capacity
``operands_not_ready`` window holds unissued correct-path work whose
                      operands (or older store addresses) are pending
``ifq_empty_mispredict`` frontend refilling after a mispredict, or
                      window holds only wrong-path work
``fetch_starved``     frontend cannot supply work (I-cache miss
                      stall, or fetch/dispatch latency bubble)
``r_drain``           trace exhausted; only the R-stream Queue still
                      holds work (REESE end-of-run drain)
``idle``              nothing to do (trace exhausted, machine empty)
===================== =============================================

The cascade charges unused slots in the order listed: recovery first,
then FU conflicts (R before P — when both streams are blocked the
machine would not even have the conflict without REESE, so the tie
goes to the R stream), then backpressure/capacity causes oldest-first
(a full R-queue clogs the RUU which clogs dispatch, so the queue is
blamed before the structures behind it), then dataflow, then frontend
causes.  One cause per slot, no remainder.

R-attributable causes — ``issued_r``, ``recovery``, ``fu_busy_r``,
``rqueue_backpressure``, ``r_drain`` — are the paper's "contention"
buckets; :func:`attribution_delta` computes their share of a
REESE-minus-baseline slot delta.

Detection-latency telemetry
---------------------------

Two histograms (cycle-lag -> count), populated only under REESE:

* ``detect_latency`` — R-queue insertion to R-execution completion:
  the paper's §2 detection window (an environmental event shorter
  than this lag is always caught).
* ``rqueue_residency`` — R-queue insertion to final commit: how long
  an instruction's architectural effect is held back by verification.

Sampled-mode aggregation: every measurement interval produces its own
account (reset with the other Stats at ``measure_from``), and
:func:`merge_accounting` sums them — the identities survive summation
because each interval satisfies them individually.

Everything here is plain integers and dicts: JSON-serialisable, so
accounts ride the on-disk result cache inside ``Stats.accounting``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Schema tag stored in every account dict (bump on layout change).
ACCOUNTING_SCHEMA_VERSION = 1

#: Slot-account causes, cascade priority order (issued slots first).
SLOT_CAUSES = (
    "issued_p",
    "issued_wp",
    "issued_r",
    "recovery",
    "fu_busy_r",
    "fu_busy_p",
    "rqueue_backpressure",
    "ruu_full",
    "lsq_full",
    "operands_not_ready",
    "ifq_empty_mispredict",
    "fetch_starved",
    "r_drain",
    "idle",
)

#: Cycle-account causes ("active" plus the stall reasons).
CYCLE_CAUSES = ("active",) + SLOT_CAUSES[3:]

#: Causes the paper attributes to the R stream (§6): slots doing R
#: work, slots lost to R-induced FU conflicts, R-queue backpressure,
#: compare/flush recovery and the end-of-run queue drain.
R_CAUSES = frozenset(
    ("issued_r", "recovery", "fu_busy_r", "rqueue_backpressure", "r_drain")
)


class CycleAccountant:
    """Per-cycle slot/cycle attribution state for one pipeline.

    The pipeline pokes the ``cyc_*`` transients from its stage methods
    (guarded by ``accountant is not None``, so the default path pays
    one pointer test per site) and calls :meth:`on_cycle` at end of
    cycle, which settles the cascade and resets the transients.
    """

    __slots__ = (
        "width",
        "_pipe",
        "slots",
        "cycles",
        "cycles_total",
        "detect_latency",
        "rqueue_residency",
        "_refill",
        "_last_committed",
        # Per-cycle transients, reset by on_cycle().
        "cyc_issued_p",
        "cyc_issued_wp",
        "cyc_issued_r",
        "cyc_fu_block_p",
        "cyc_fu_block_r",
        "cyc_dispatch_block",
        "cyc_rqueue_block",
        "cyc_flush",
    )

    def __init__(self) -> None:
        self.width = 0
        self._pipe = None
        self.slots: Dict[str, int] = {cause: 0 for cause in SLOT_CAUSES}
        self.cycles: Dict[str, int] = {cause: 0 for cause in CYCLE_CAUSES}
        self.cycles_total = 0
        self.detect_latency: Dict[int, int] = {}
        self.rqueue_residency: Dict[int, int] = {}
        self._refill: Optional[str] = None
        self._last_committed = 0
        self.cyc_issued_p = 0
        self.cyc_issued_wp = 0
        self.cyc_issued_r = 0
        self.cyc_fu_block_p = 0
        self.cyc_fu_block_r = 0
        self.cyc_dispatch_block: Optional[str] = None
        self.cyc_rqueue_block = False
        self.cyc_flush = False

    def bind(self, pipe) -> None:
        """Attach to a pipeline (records the issue width)."""
        self._pipe = pipe
        self.width = pipe.config.issue_width

    def reset(self) -> None:
        """Zero the account (the ``measure_from`` window open)."""
        self.slots = {cause: 0 for cause in SLOT_CAUSES}
        self.cycles = {cause: 0 for cause in CYCLE_CAUSES}
        self.cycles_total = 0
        self.detect_latency = {}
        self.rqueue_residency = {}
        self._last_committed = 0
        # Sticky refill state survives: a flush straddling the window
        # boundary still shadows the first measured cycles.

    # -- event notes from the pipeline ---------------------------------

    def note_fu_block(self, holder: str, r_work: bool) -> None:
        """A ready instruction found every unit of its class busy.

        Args:
            holder: ``"R"`` if an R-stream issue holds one of the busy
                units past this cycle (see :meth:`FUPool.blame`).
            r_work: the blocked instruction itself is R-stream work.
        """
        if r_work or holder == "R":
            self.cyc_fu_block_r += 1
        else:
            self.cyc_fu_block_p += 1

    def note_flush(self) -> None:
        """Compare-mismatch recovery flush this cycle."""
        self.cyc_flush = True
        self._refill = "recovery"

    def note_mispredict(self) -> None:
        """Mispredict recovery: fetch redirected to the correct path."""
        if self._refill != "recovery":
            self._refill = "mispredict"

    def record_detect(self, lag: int) -> None:
        """R-queue insertion -> R-completion lag (detection latency)."""
        hist = self.detect_latency
        hist[lag] = hist.get(lag, 0) + 1

    def record_residency(self, lag: int) -> None:
        """R-queue insertion -> final-commit lag (queue residency)."""
        hist = self.rqueue_residency
        hist[lag] = hist.get(lag, 0) + 1

    # -- end-of-cycle settlement ----------------------------------------

    def on_cycle(self, pipe) -> None:
        """Charge this cycle's slots and cycle cause; reset transients."""
        slots = self.slots
        issued_p = self.cyc_issued_p
        issued_wp = self.cyc_issued_wp
        issued_r = self.cyc_issued_r
        slots["issued_p"] += issued_p
        slots["issued_wp"] += issued_wp
        slots["issued_r"] += issued_r
        unused = self.width - issued_p - issued_wp - issued_r
        first_cause: Optional[str] = None

        if unused > 0:
            if self.cyc_flush or self._refill == "recovery":
                slots["recovery"] += unused
                first_cause = "recovery"
            else:
                remaining = unused
                blocked_r = min(remaining, self.cyc_fu_block_r)
                if blocked_r:
                    slots["fu_busy_r"] += blocked_r
                    remaining -= blocked_r
                    first_cause = "fu_busy_r"
                blocked_p = min(remaining, self.cyc_fu_block_p)
                if blocked_p:
                    slots["fu_busy_p"] += blocked_p
                    remaining -= blocked_p
                    if first_cause is None:
                        first_cause = "fu_busy_p"
                if remaining:
                    cause = self._residual_cause(pipe)
                    slots[cause] += remaining
                    if first_cause is None:
                        first_cause = cause

        committed_delta = pipe.stats.committed - self._last_committed
        self._last_committed = pipe.stats.committed
        if issued_p or issued_wp or issued_r or committed_delta:
            self.cycles["active"] += 1
        else:
            self.cycles[first_cause or "idle"] += 1
        self.cycles_total += 1

        if self.cyc_issued_p:
            # Correct-path work issued again: the refill shadow ends.
            self._refill = None
        self.cyc_issued_p = 0
        self.cyc_issued_wp = 0
        self.cyc_issued_r = 0
        self.cyc_fu_block_p = 0
        self.cyc_fu_block_r = 0
        self.cyc_dispatch_block = None
        self.cyc_rqueue_block = False
        self.cyc_flush = False

    def _residual_cause(self, pipe) -> str:
        """The single cause charged for leftover (non-FU-blocked) slots."""
        if self.cyc_rqueue_block:
            return "rqueue_backpressure"
        if self.cyc_dispatch_block == "ruu":
            return "ruu_full"
        if self.cyc_dispatch_block == "lsq":
            return "lsq_full"
        has_unready_wp = False
        for entry in pipe.ruu:
            if not entry.issued and not entry.squashed:
                if entry.wrong_path:
                    has_unready_wp = True
                else:
                    return "operands_not_ready"
        if has_unready_wp or self._refill == "mispredict" or pipe.wp_active:
            return "ifq_empty_mispredict"
        if pipe.fetch_blocked_until > pipe.cycle or pipe.ifq:
            # I-miss stall, or fetched work still in flight to dispatch.
            return "fetch_starved"
        if pipe.fetch_cursor < len(pipe.trace):
            return "fetch_starved"
        if pipe.rqueue is not None and len(pipe.rqueue):
            return "r_drain"
        return "idle"

    # -- export ----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-shaped account for ``Stats.accounting``."""
        return {
            "schema": ACCOUNTING_SCHEMA_VERSION,
            "width": self.width,
            "cycles_total": self.cycles_total,
            "slots_total": self.width * self.cycles_total,
            "slots": {
                cause: count for cause, count in self.slots.items() if count
            },
            "cycles": {
                cause: count for cause, count in self.cycles.items() if count
            },
            "detect_latency": {
                str(lag): count
                for lag, count in sorted(self.detect_latency.items())
            },
            "rqueue_residency": {
                str(lag): count
                for lag, count in sorted(self.rqueue_residency.items())
            },
        }


# ----------------------------------------------------------------------
# account arithmetic (pure functions over state_dict() payloads)
# ----------------------------------------------------------------------


def merge_accounting(
    into: Dict[str, Any], other: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge two account dicts (the sampled-interval aggregation path).

    Mirrors the tolerance rules of the other ``Stats`` registry merges:
    either side may be empty or written by an older schema; missing
    pieces merge as zero.
    """
    if not other:
        return into
    if not into:
        return _copy_account(other)
    into["schema"] = max(into.get("schema", 0), other.get("schema", 0))
    into["width"] = max(into.get("width", 0), other.get("width", 0))
    into["cycles_total"] = (
        into.get("cycles_total", 0) + other.get("cycles_total", 0)
    )
    into["slots_total"] = (
        into.get("slots_total", 0) + other.get("slots_total", 0)
    )
    for field in ("slots", "cycles", "detect_latency", "rqueue_residency"):
        merged = into.setdefault(field, {})
        for key, count in other.get(field, {}).items():
            merged[key] = merged.get(key, 0) + count
    return into


def _copy_account(account: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in account.items():
        out[key] = dict(value) if isinstance(value, dict) else value
    return out


def accounting_identity_errors(account: Dict[str, Any]) -> List[str]:
    """Violations of the completeness identities (empty list == OK)."""
    if not account:
        return ["empty accounting payload"]
    errors: List[str] = []
    slots_total = account.get("slots_total", 0)
    slots_sum = sum(account.get("slots", {}).values())
    if slots_sum != slots_total:
        errors.append(
            f"slot account: charged {slots_sum} != {slots_total} "
            f"(width x cycles)"
        )
    cycles_total = account.get("cycles_total", 0)
    cycles_sum = sum(account.get("cycles", {}).values())
    if cycles_sum != cycles_total:
        errors.append(
            f"cycle account: charged {cycles_sum} != {cycles_total} cycles"
        )
    return errors


def r_share_of_delta(
    baseline: Dict[str, Any], reese: Dict[str, Any]
) -> Tuple[int, int]:
    """(R-attributable slot delta, total positive slot delta).

    The acceptance metric for the paper's contention story: of the
    extra slot charges REESE accrues over the baseline (including the
    extra cycles' worth of slots), how many land in R causes?  Only
    positive per-cause deltas count toward the numerator and the
    denominator — slots REESE *recovered* elsewhere (e.g. fewer
    idle slots) do not cancel slots it lost to contention.
    """
    base_slots = baseline.get("slots", {})
    reese_slots = reese.get("slots", {})
    r_delta = 0
    total_delta = 0
    for cause in SLOT_CAUSES:
        if cause == "issued_p":
            # Useful work is the same program on both sides; its slot
            # count is not a cost.
            continue
        delta = reese_slots.get(cause, 0) - base_slots.get(cause, 0)
        if delta > 0:
            total_delta += delta
            if cause in R_CAUSES:
                r_delta += delta
    return r_delta, total_delta


# ----------------------------------------------------------------------
# histogram summaries (detection-latency telemetry)
# ----------------------------------------------------------------------


def hist_count(hist: Dict[Any, int]) -> int:
    """Total observation count of a lag histogram."""
    return sum(hist.values())


def hist_mean(hist: Dict[Any, int]) -> float:
    """Mean lag of a ``{lag: count}`` histogram (0.0 when empty)."""
    total = 0
    weight = 0
    for lag, count in hist.items():
        total += int(lag) * count
        weight += count
    return total / weight if weight else 0.0


def hist_percentile(hist: Dict[Any, int], q: float) -> int:
    """The smallest lag at or below which ``q`` of observations fall.

    Nearest-rank percentile over integer lags; 0 for an empty
    histogram.  ``q`` is a fraction (0.5 for p50, 0.99 for p99).
    """
    weight = sum(hist.values())
    if not weight:
        return 0
    rank = max(1, int(-(-weight * q // 1)))  # ceil without floats drift
    seen = 0
    for lag in sorted(hist, key=int):
        seen += hist[lag]
        if seen >= rank:
            return int(lag)
    return int(max((int(lag) for lag in hist), default=0))


def hist_max(hist: Dict[Any, int]) -> int:
    """Largest observed lag (0 when empty)."""
    return max((int(lag) for lag in hist), default=0)


def latency_summary(account: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """mean/p50/p99/max for both latency histograms of an account."""
    out: Dict[str, Dict[str, float]] = {}
    for field in ("detect_latency", "rqueue_residency"):
        hist = account.get(field, {}) if account else {}
        out[field] = {
            "count": hist_count(hist),
            "mean": hist_mean(hist),
            "p50": hist_percentile(hist, 0.50),
            "p99": hist_percentile(hist, 0.99),
            "max": hist_max(hist),
        }
    return out
