"""The benchmark suite registry (paper Table 2).

Maps the six SPECint95 benchmark names to their proxy builders, with
the inputs the paper used recorded for the reproduction ledger.  The
:func:`load` / :func:`trace_for` helpers are what the experiment
harness and the benches call; traces are memoised per
``(benchmark, scale, seed)`` because five machine models share each
workload's trace in every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..arch.emulator import emulate
from ..arch.trace import Trace
from ..isa.program import Program
from . import profiles


@dataclass(frozen=True)
class Workload:
    """One benchmark: builder plus provenance metadata."""

    name: str
    description: str
    paper_input: str
    builder: Callable[[int, int], Program]
    default_seed: int

    def build(self, scale: int = 30_000, seed: int = None) -> Program:
        """Assemble the proxy program targeting ``scale`` dynamic insts."""
        if seed is None:
            seed = self.default_seed
        return self.builder(scale, seed)


#: Table 2 of the paper: benchmark -> input.  Our proxies substitute the
#: workloads; the paper's inputs are recorded for provenance.
BENCHMARKS: Dict[str, Workload] = {
    "gcc": Workload(
        "gcc",
        "pointer-chasing node list with tag dispatch (compiler flavour)",
        "stmt-protoize.i",
        profiles.build_gcc,
        101,
    ),
    "go": Workload(
        "go",
        "board evaluation with data-dependent branches",
        "train",
        profiles.build_go,
        202,
    ),
    "ijpeg": Workload(
        "ijpeg",
        "blocked multiply-rich dot products (image kernel flavour)",
        "specmun.ppm (train)",
        profiles.build_ijpeg,
        303,
    ),
    "li": Workload(
        "li",
        "recursive binary-tree reduction (lisp interpreter flavour)",
        "train.lsp",
        profiles.build_li,
        404,
    ),
    "perl": Workload(
        "perl",
        "byte-string hashing with open-addressing table",
        "scrabbl.pl",
        profiles.build_perl,
        505,
    ),
    "vortex": Workload(
        "vortex",
        "hashed record store: 4-word inserts + validating lookups",
        "train",
        profiles.build_vortex,
        606,
    ),
}

#: Paper ordering of the benchmarks in every figure.
BENCHMARK_ORDER: List[str] = ["gcc", "go", "ijpeg", "li", "perl", "vortex"]

_trace_cache: Dict[Tuple[str, int, int], Tuple[Program, Trace]] = {}


def load(name: str, scale: int = 30_000, seed: int = None) -> Program:
    """Build the proxy program for benchmark ``name``.

    Raises:
        KeyError: for an unknown benchmark name.
    """
    return BENCHMARKS[name].build(scale, seed)


def trace_for(
    name: str, scale: int = 30_000, seed: int = None
) -> Tuple[Program, Trace]:
    """Program and dynamic trace for a benchmark (memoised)."""
    workload = BENCHMARKS[name]
    if seed is None:
        seed = workload.default_seed
    key = (name, scale, seed)
    if key not in _trace_cache:
        program = workload.build(scale, seed)
        result = emulate(program, max_instructions=max(scale * 4, 100_000))
        if result.trace is None:  # pragma: no cover - defensive
            raise RuntimeError("emulator did not produce a trace")
        _trace_cache[key] = (program, result.trace)
    return _trace_cache[key]


def clear_trace_cache() -> None:
    """Drop memoised traces (tests that measure memory use call this)."""
    _trace_cache.clear()


def mix_report(trace: Trace) -> Dict[str, float]:
    """Instruction-class mix of a trace (fractions of dynamic count)."""
    total = len(trace)
    if not total:
        return {}
    counts = {"load": 0, "store": 0, "branch": 0, "mul_div": 0, "alu": 0}
    from ..isa.instructions import FUClass

    for dyn in trace:
        if dyn.is_load:
            counts["load"] += 1
        elif dyn.is_store:
            counts["store"] += 1
        elif dyn.is_branch:
            counts["branch"] += 1
        elif dyn.fu in (FUClass.INT_MULT, FUClass.INT_DIV):
            counts["mul_div"] += 1
        else:
            counts["alu"] += 1
    return {key: value / total for key, value in counts.items()}
