"""Property-based tests for cache invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memhier import Cache, CacheParams

addresses = st.integers(min_value=0, max_value=2**20 - 1)
traces = st.lists(addresses, min_size=1, max_size=300)


def lru_cache():
    return Cache(CacheParams("p", 512, 2, 32, 2), miss_latency=50)


class TestCacheInvariants:
    @given(traces)
    @settings(max_examples=100)
    def test_accesses_equal_hits_plus_misses(self, trace):
        cache = lru_cache()
        for addr in trace:
            cache.access(addr)
        assert cache.accesses == len(trace)
        assert cache.hits + cache.misses == len(trace)

    @given(traces)
    @settings(max_examples=100)
    def test_immediate_reaccess_always_hits(self, trace):
        cache = lru_cache()
        for addr in trace:
            cache.access(addr)
            assert cache.probe(addr), "just-accessed line must be present"

    @given(traces)
    @settings(max_examples=100)
    def test_latency_is_hit_or_miss_path(self, trace):
        cache = lru_cache()
        for addr in trace:
            latency = cache.access(addr)
            assert latency in (2, 52)  # hit, or hit+memory

    @given(traces)
    @settings(max_examples=50)
    def test_misses_bounded_by_unique_lines_when_fitting(self, trace):
        # With a working set that fits, misses == distinct lines touched.
        cache = Cache(CacheParams("big", 2**16, 4, 32, 2))
        small_trace = [addr % 4096 for addr in trace]  # fits easily
        for addr in small_trace:
            cache.access(addr)
        unique_lines = len({addr // 32 for addr in small_trace})
        assert cache.misses == unique_lines

    @given(traces)
    @settings(max_examples=50)
    def test_deterministic(self, trace):
        def run():
            cache = lru_cache()
            return [cache.access(addr) for addr in trace]
        assert run() == run()

    @given(traces, st.sampled_from(["lru", "fifo", "random"]))
    @settings(max_examples=60)
    def test_policies_all_satisfy_basic_invariants(self, trace, policy):
        cache = Cache(CacheParams("p", 512, 2, 32, 2, policy))
        for addr in trace:
            cache.access(addr)
        assert cache.hits + cache.misses == len(trace)
        assert cache.evictions <= cache.misses
        assert cache.writebacks <= cache.evictions
