#!/usr/bin/env python3
"""Bring your own workload: assembly in, microarchitectural report out.

Shows the full user pipeline of the library:

1. write a program in the mini-ISA assembly (here: CRC-style checksum
   over a buffer, with a data-dependent branch);
2. run the functional emulator to check architectural results and get
   the dynamic trace;
3. simulate it on baseline and REESE machines and compare, including
   the microarchitectural detail (mispredictions, cache behaviour,
   R-queue occupancy).

Run:  python examples/custom_workload.py
"""

from repro import assemble, emulate, starting_config
from repro.harness import run_model

SOURCE = """
.data
buffer:  .word 314, 159, 265, 358, 979, 323, 846, 264
         .word 338, 327, 950, 288, 419, 716, 939, 937
.text
main:
    la   r1, buffer
    li   r2, 16            # words to process
    li   r3, -1            # running checksum
loop:
    lw   r4, 0(r1)
    xor  r3, r3, r4
    # fold: if the low bit is set, mix with the polynomial
    andi r5, r3, 1
    beqz r5, even
    srli r3, r3, 1
    xori r3, r3, 0x6d88    # truncated CRC polynomial
    j    next
even:
    srli r3, r3, 1
next:
    addi r1, r1, 4
    subi r2, r2, 1
    bnez r2, loop
    putint r3
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="crc_demo")
    print("assembled program:")
    print(program.listing())
    print()

    emu = emulate(program)
    print(f"architectural result: checksum = {emu.output[0]}")
    print(f"dynamic instructions: {emu.instructions}")
    print()

    config = starting_config()
    baseline = run_model(program, emu.trace, config, warm=False)
    reese = run_model(program, emu.trace, config.with_reese(), warm=False)

    print(f"{'metric':28s} {'baseline':>10s} {'REESE':>10s}")
    rows = [
        ("cycles", baseline.cycles, reese.cycles),
        ("IPC", f"{baseline.ipc:.3f}", f"{reese.ipc:.3f}"),
        ("branches", baseline.branches, reese.branches),
        ("mispredictions", baseline.mispredictions, reese.mispredictions),
        ("L1D misses",
         baseline.cache_stats["l1d"]["misses"],
         reese.cache_stats["l1d"]["misses"]),
        ("R-stream executions", baseline.issued_r, reese.issued_r),
        ("peak R-queue occupancy", "-", reese.rqueue_occ_max),
    ]
    for label, base_value, reese_value in rows:
        print(f"{label:28s} {base_value!s:>10s} {reese_value!s:>10s}")

    overhead = reese.cycles / baseline.cycles - 1
    print()
    print(f"time redundancy cost on this kernel: {overhead:+.1%} cycles")


if __name__ == "__main__":
    main()
