#!/usr/bin/env python
"""Benchmark-trajectory tracker: append one profiled suite snapshot.

Every PR that touches the timing model shifts the suite's IPCs and the
top-down attribution a little; ``BENCH_TRAJECTORY.json`` is the
append-only record of those shifts.  Each entry captures, for one
labelled point in time (typically a commit), the per-benchmark
Baseline / REESE / R+2 ALU IPCs and gaps plus the suite-aggregate
attribution summary — the REESE-vs-baseline R-share, the dominant slot
causes, and the detection-latency telemetry.  Diffing two entries
answers "what did that change do to the bottleneck structure?" without
re-running anything.

Usage::

    python benchmarks/track.py --label my-change --scale 8000 --jobs 4
    python benchmarks/track.py --validate        # schema-check only

The file is rewritten atomically on every append (tmp, fsync, rename),
so a crashed run never truncates the history.  Wall-clock timestamps
and ``git rev-parse`` are fine here — the determinism lint guards
``src/repro`` (simulation results), not this descriptive log.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
from typing import Any, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness import atomic_write_text  # noqa: E402
from repro.harness.experiments import (  # noqa: E402
    SERIES_BASELINE,
    SERIES_R2A,
    SERIES_REESE,
)
from repro.uarch.accounting import (  # noqa: E402
    SLOT_CAUSES,
    latency_summary,
    merge_accounting,
    r_share_of_delta,
)

#: Bump when the entry layout changes (validate_trajectory checks it).
TRAJECTORY_SCHEMA_VERSION = 1

DEFAULT_PATH = REPO_ROOT / "BENCH_TRAJECTORY.json"

#: Keys every per-benchmark block must carry.
_BENCH_KEYS = ("baseline_ipc", "reese_ipc", "r2a_ipc",
               "reese_gap", "r2a_gap")
#: Keys every suite block must carry.
_SUITE_KEYS = ("r_share", "slots_lost", "top_causes", "detect_latency")


def git_rev() -> str:
    """Short HEAD revision, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() or "unknown"


def collect_entry(label: str, scale: int, jobs: int,
                  use_cache: bool = True) -> Dict[str, Any]:
    """Run the profiled suite and build one trajectory entry."""
    from repro.harness.parallel import ParallelRunner, SimJob
    from repro.uarch.config import starting_config
    from repro.workloads.suite import BENCHMARK_ORDER

    config = starting_config()
    series = [
        (SERIES_BASELINE, config),
        (SERIES_REESE, config.with_reese()),
        (SERIES_R2A, config.with_spares(2, 0).with_reese()),
    ]
    runner = ParallelRunner(jobs=jobs, use_cache=use_cache, profile=True)
    sim_jobs = [
        SimJob(bench, cfg, scale, profile=True)
        for bench in BENCHMARK_ORDER
        for _label, cfg in series
    ]
    stats = iter(runner.run(sim_jobs))
    per_bench: Dict[str, Dict[str, float]] = {}
    suite_accounts: Dict[str, Dict[str, Any]] = {}
    for bench in BENCHMARK_ORDER:
        cells = {lab: next(stats) for lab, _cfg in series}
        base_ipc = cells[SERIES_BASELINE].ipc
        per_bench[bench] = {
            "baseline_ipc": round(base_ipc, 4),
            "reese_ipc": round(cells[SERIES_REESE].ipc, 4),
            "r2a_ipc": round(cells[SERIES_R2A].ipc, 4),
            "reese_gap": round(
                1 - cells[SERIES_REESE].ipc / base_ipc if base_ipc else 0.0, 4
            ),
            "r2a_gap": round(
                1 - cells[SERIES_R2A].ipc / base_ipc if base_ipc else 0.0, 4
            ),
        }
        for lab, cell in cells.items():
            suite_accounts[lab] = merge_accounting(
                suite_accounts.get(lab, {}), cell.accounting or {}
            )
    r_delta, total_delta = r_share_of_delta(
        suite_accounts[SERIES_BASELINE], suite_accounts[SERIES_REESE]
    )
    reese_slots = suite_accounts[SERIES_REESE].get("slots", {})
    top_causes = sorted(
        ((cause, reese_slots.get(cause, 0)) for cause in SLOT_CAUSES),
        key=lambda item: -item[1],
    )[:5]
    detect = latency_summary(suite_accounts[SERIES_REESE])["detect_latency"]
    return {
        "label": label,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_rev": git_rev(),
        "scale": scale,
        "benchmarks": per_bench,
        "suite": {
            "r_share": round(r_delta / total_delta if total_delta else 0.0, 4),
            "slots_lost": total_delta,
            "top_causes": [[cause, count] for cause, count in top_causes],
            "detect_latency": {
                "count": detect["count"],
                "mean": round(detect["mean"], 2),
                "p50": detect["p50"],
                "p99": detect["p99"],
                "max": detect["max"],
            },
        },
    }


def load_trajectory(path: pathlib.Path) -> Dict[str, Any]:
    """Load (or initialise) the trajectory document."""
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {"schema": TRAJECTORY_SCHEMA_VERSION, "entries": []}


def append_entry(path: pathlib.Path, entry: Dict[str, Any]) -> int:
    """Append ``entry`` and rewrite the file atomically.

    Returns the new entry count.  Validates before writing so a buggy
    collector can never corrupt the history file.
    """
    data = load_trajectory(path)
    data["entries"].append(entry)
    errors = validate_trajectory(data)
    if errors:
        raise ValueError("refusing to write invalid trajectory: "
                         + "; ".join(errors))
    atomic_write_text(path, json.dumps(data, indent=2, sort_keys=True) + "\n")
    return len(data["entries"])


def validate_trajectory(data: Dict[str, Any]) -> List[str]:
    """Schema-check a trajectory document (empty list == valid)."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return ["document is not an object"]
    if data.get("schema") != TRAJECTORY_SCHEMA_VERSION:
        errors.append(
            f"schema {data.get('schema')!r} != {TRAJECTORY_SCHEMA_VERSION}"
        )
    entries = data.get("entries")
    if not isinstance(entries, list):
        return errors + ["entries is not a list"]
    for index, entry in enumerate(entries):
        where = f"entries[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("label", "timestamp", "git_rev", "scale",
                    "benchmarks", "suite"):
            if key not in entry:
                errors.append(f"{where}: missing {key!r}")
        for bench, block in (entry.get("benchmarks") or {}).items():
            for key in _BENCH_KEYS:
                if key not in block:
                    errors.append(f"{where}.benchmarks[{bench!r}]: "
                                  f"missing {key!r}")
        suite = entry.get("suite") or {}
        for key in _SUITE_KEYS:
            if key not in suite:
                errors.append(f"{where}.suite: missing {key!r}")
        share = suite.get("r_share")
        if isinstance(share, (int, float)) and not 0.0 <= share <= 1.0:
            errors.append(f"{where}.suite.r_share {share} outside [0, 1]")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="append a profiled suite snapshot to the "
                    "benchmark trajectory",
    )
    parser.add_argument("--label", default="manual",
                        help="entry label (e.g. the change under test)")
    parser.add_argument("--scale", type=int, default=8000,
                        help="dynamic instructions per benchmark")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes")
    parser.add_argument("--no-cache", action="store_true", dest="no_cache",
                        help="disable the on-disk result cache")
    parser.add_argument("--path", type=pathlib.Path, default=DEFAULT_PATH,
                        help="trajectory file (default BENCH_TRAJECTORY.json)")
    parser.add_argument("--validate", action="store_true",
                        help="only schema-check the existing file")
    args = parser.parse_args(argv)

    if args.validate:
        if not args.path.exists():
            print(f"{args.path}: missing", file=sys.stderr)
            return 1
        errors = validate_trajectory(load_trajectory(args.path))
        for error in errors:
            print(f"{args.path}: {error}", file=sys.stderr)
        entries = len(load_trajectory(args.path).get("entries", []))
        print(f"{args.path}: {'INVALID' if errors else 'OK'} "
              f"({entries} entries)")
        return 1 if errors else 0

    entry = collect_entry(args.label, args.scale, args.jobs,
                          use_cache=not args.no_cache)
    count = append_entry(args.path, entry)
    suite = entry["suite"]
    print(f"appended entry {count} ({entry['label']!r} @ "
          f"{entry['git_rev']}): suite R-share "
          f"{suite['r_share']:.1%} of {suite['slots_lost']} slots lost; "
          f"detection p99 {suite['detect_latency']['p99']} cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
