"""Set-associative cache model with latency-probe semantics.

This follows SimpleScalar's blocking ``cache_access`` style: an access
returns the *total* latency to satisfy the request (hit latency on a
hit; hit latency plus the next level's latency on a miss), updating tag
state and statistics as a side effect.  No MSHRs are modelled — the
out-of-order core overlaps misses with independent work because each
load occupies its functional unit (memory port) only for its issue
slot and completes via the event queue after the returned latency.

Replacement policies: ``lru`` (default), ``fifo`` and ``random``
(seeded, deterministic).  Writes are write-back / write-allocate; dirty
evictions are counted (``writebacks``) but, like SimpleScalar's default
configuration, are not charged additional latency on the critical path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one cache level."""

    name: str
    size: int            # total bytes
    assoc: int           # ways
    line_size: int       # bytes per line
    hit_latency: int     # cycles
    policy: str = "lru"  # 'lru' | 'fifo' | 'random'
    #: On a demand miss, also fill the next sequential line (simple
    #: one-block-lookahead prefetch; fill cost hides behind the demand
    #: fill, so no extra latency is charged).
    prefetch_next_line: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.line_size <= 0:
            raise ValueError("cache size, assoc and line_size must be positive")
        if self.size % (self.assoc * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size} not divisible by "
                f"assoc*line_size = {self.assoc * self.line_size}"
            )
        if self.line_size & (self.line_size - 1):
            raise ValueError(f"{self.name}: line_size must be a power of two")
        n_sets = self.size // (self.assoc * self.line_size)
        if n_sets & (n_sets - 1):
            raise ValueError(f"{self.name}: number of sets must be a power of two")
        if self.policy not in ("lru", "fifo", "random"):
            raise ValueError(f"{self.name}: unknown policy {self.policy!r}")

    @property
    def n_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


class Cache:
    """One level of a blocking cache hierarchy.

    Line state lives in three flat parallel lists (``_tags``,
    ``_valid``, ``_dirty``) indexed by ``set_index * assoc + way``
    rather than per-line objects: the sampled-simulation engine
    snapshots whole hierarchies at every measurement interval, and
    ``list(...)`` copies of flat arrays are an order of magnitude
    cheaper than rebuilding ~10k line objects.
    """

    def __init__(
        self,
        params: CacheParams,
        next_level: Optional["Cache"] = None,
        miss_latency: int = 70,
        seed: int = 12345,
    ) -> None:
        """
        Args:
            params: geometry/timing.
            next_level: the cache behind this one, or ``None`` if backed
                by main memory.
            miss_latency: main-memory latency charged when ``next_level``
                is ``None`` and the access misses.
            seed: RNG seed for the ``random`` replacement policy.
        """
        self.params = params
        self.next_level = next_level
        self.miss_latency = miss_latency
        self._rng = random.Random(seed)
        self._line_shift = params.line_size.bit_length() - 1
        self._set_mask = params.n_sets - 1
        self._assoc = params.assoc
        n_lines = params.n_sets * params.assoc
        self._tags: List[int] = [-1] * n_lines
        self._valid: List[bool] = [False] * n_lines
        self._dirty: List[bool] = [False] * n_lines
        # Per-set replacement order: way indices, index 0 = next victim.
        self._order: List[List[int]] = [
            list(range(params.assoc)) for _ in range(params.n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.prefetches = 0

    # ------------------------------------------------------------------

    def access(self, addr: int, is_write: bool = False) -> int:
        """Access the byte address; returns total latency in cycles."""
        params = self.params
        block = addr >> self._line_shift
        set_index = block & self._set_mask
        tag = block >> (self._set_mask.bit_length())
        base = set_index * self._assoc
        tags = self._tags
        valid = self._valid
        order = self._order[set_index]

        for way in range(self._assoc):
            slot = base + way
            if valid[slot] and tags[slot] == tag:
                self.hits += 1
                if is_write:
                    self._dirty[slot] = True
                if params.policy == "lru":
                    order.remove(way)
                    order.append(way)
                return params.hit_latency

        # Miss: fetch from the next level, then fill.
        self.misses += 1
        if self.next_level is not None:
            fill_latency = self.next_level.access(addr, is_write=False)
        else:
            fill_latency = self.miss_latency

        victim_way = self._pick_victim(set_index)
        slot = base + victim_way
        if valid[slot]:
            self.evictions += 1
            if self._dirty[slot]:
                self.writebacks += 1
                # Lazy write-back: counted, not charged (SimpleScalar default).
        tags[slot] = tag
        valid[slot] = True
        self._dirty[slot] = is_write
        if params.policy in ("lru", "fifo"):
            order.remove(victim_way)
            order.append(victim_way)
        if params.prefetch_next_line:
            self._prefetch(addr + params.line_size)
        return params.hit_latency + fill_latency

    def _prefetch(self, addr: int) -> None:
        """Fill a line without demand-access accounting or latency."""
        if self.probe(addr):
            return
        self.prefetches += 1
        if self.next_level is not None:
            self.next_level.access(addr, is_write=False)
        block = addr >> self._line_shift
        set_index = block & self._set_mask
        tag = block >> (self._set_mask.bit_length())
        victim_way = self._pick_victim(set_index)
        slot = set_index * self._assoc + victim_way
        if self._valid[slot]:
            self.evictions += 1
            if self._dirty[slot]:
                self.writebacks += 1
        self._tags[slot] = tag
        self._valid[slot] = True
        self._dirty[slot] = False
        if self.params.policy in ("lru", "fifo"):
            order = self._order[set_index]
            order.remove(victim_way)
            order.append(victim_way)

    def probe(self, addr: int) -> bool:
        """True if the address currently hits, without changing state."""
        block = addr >> self._line_shift
        set_index = block & self._set_mask
        tag = block >> (self._set_mask.bit_length())
        base = set_index * self._assoc
        return any(
            self._valid[base + way] and self._tags[base + way] == tag
            for way in range(self._assoc)
        )

    def _pick_victim(self, set_index: int) -> int:
        if self.params.policy == "random":
            base = set_index * self._assoc
            for way in range(self._assoc):
                if not self._valid[base + way]:
                    return way
            return self._rng.randrange(self.params.assoc)
        return self._order[set_index][0]

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def stat_dict(self) -> Dict[str, float]:
        """Statistics snapshot for reporting."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "prefetches": self.prefetches,
        }

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0
        self.prefetches = 0

    def clone_state(self, next_level: Optional["Cache"] = None) -> "Cache":
        """An independent copy of tag state, replacement order and stats.

        Much cheaper than ``copy.deepcopy`` (no memo walk over ~10k
        line objects) — this is what makes the sampled-simulation
        engine's per-interval warm-state snapshots affordable.  The
        caller supplies the already-cloned ``next_level`` so a cloned
        hierarchy keeps its internal wiring.
        """
        clone = Cache.__new__(Cache)
        clone.params = self.params
        clone.next_level = next_level
        clone.miss_latency = self.miss_latency
        clone._rng = random.Random()
        clone._rng.setstate(self._rng.getstate())
        clone._line_shift = self._line_shift
        clone._set_mask = self._set_mask
        clone._assoc = self._assoc
        clone._tags = list(self._tags)
        clone._valid = list(self._valid)
        clone._dirty = list(self._dirty)
        clone._order = [list(order) for order in self._order]
        clone.hits = self.hits
        clone.misses = self.misses
        clone.evictions = self.evictions
        clone.writebacks = self.writebacks
        clone.prefetches = self.prefetches
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.params
        return f"<Cache {p.name}: {p.size}B {p.assoc}-way {p.line_size}B lines>"
