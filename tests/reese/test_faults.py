"""Unit tests for transient-fault models and corruption helpers."""

import pytest

from repro.arch import emulate
from repro.reese import (
    BernoulliFaultModel,
    EnvironmentalFaultModel,
    NoFaults,
    ScheduledFaultModel,
    corrupt_value,
    flip_float_bit,
    flip_int_bit,
    make_emulator_injector,
)


class TestCorruption:
    def test_flip_int_bit(self):
        assert flip_int_bit(0, 0) == 1
        assert flip_int_bit(1, 0) == 0
        assert flip_int_bit(0, 31) == -(2**31)

    def test_flip_int_bit_wraps_index(self):
        assert flip_int_bit(0, 32) == flip_int_bit(0, 0)

    def test_flip_is_involution(self):
        for value in (-7, 0, 12345, 2**31 - 1):
            for bit in (0, 5, 31):
                assert flip_int_bit(flip_int_bit(value, bit), bit) == value

    def test_flip_float_bit(self):
        corrupted = flip_float_bit(1.0, 0)
        assert corrupted != 1.0
        assert flip_float_bit(corrupted, 0) == 1.0

    def test_corrupt_none_is_noop(self):
        assert corrupt_value(None, 5) is None

    def test_corrupt_tuple_targets_payload(self):
        assert corrupt_value((0x1000, 8), 0) == (0x1000, 9)

    def test_corrupt_changes_value(self):
        for value in (0, -1, 3.5, (1, 2)):
            assert corrupt_value(value, 3) != value


class TestNoFaults:
    def test_never_fires(self):
        model = NoFaults()
        assert all(model.sample(cycle) is None for cycle in range(100))
        assert model.strikes == 0
        assert model.queries == 100


class TestScheduled:
    def test_window_semantics(self):
        model = ScheduledFaultModel([(10, 3, 5)])
        assert model.fault_bit_at(9) is None
        assert model.fault_bit_at(10) == 5
        assert model.fault_bit_at(12) == 5
        assert model.fault_bit_at(13) is None

    def test_multiple_events(self):
        model = ScheduledFaultModel([(10, 2, 1), (20, 2, 2)])
        assert model.fault_bit_at(11) == 1
        assert model.fault_bit_at(21) == 2
        assert model.fault_bit_at(15) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduledFaultModel([(0, 0, 1)])
        with pytest.raises(ValueError):
            ScheduledFaultModel([(0, 1, 64)])

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration"):
            ScheduledFaultModel([(10, -2, 1)])

    def test_rejects_overlapping_windows(self):
        # [10, 15) and [12, 15) overlap.
        with pytest.raises(ValueError, match="overlap"):
            ScheduledFaultModel([(10, 5, 1), (12, 3, 2)])

    def test_rejects_overlap_regardless_of_input_order(self):
        with pytest.raises(ValueError, match="overlap"):
            ScheduledFaultModel([(20, 5, 1), (18, 4, 2)])

    def test_touching_windows_are_legal(self):
        # [10, 12) then [12, 14): adjacent but disjoint.
        model = ScheduledFaultModel([(10, 2, 1), (12, 2, 2)])
        assert model.fault_bit_at(11) == 1
        assert model.fault_bit_at(12) == 2

    def test_duplicate_start_overlaps(self):
        with pytest.raises(ValueError, match="overlap"):
            ScheduledFaultModel([(10, 1, 1), (10, 1, 2)])


class TestEnvironmental:
    def test_deterministic_with_seed(self):
        def strikes(seed):
            model = EnvironmentalFaultModel(rate=0.01, duration=3, seed=seed)
            return [model.fault_bit_at(cycle) for cycle in range(5000)]
        assert strikes(7) == strikes(7)
        assert strikes(7) != strikes(8)

    def test_event_duration_contiguous(self):
        model = EnvironmentalFaultModel(rate=0.001, duration=5, seed=3)
        hits = [cycle for cycle in range(200_000)
                if model.fault_bit_at(cycle) is not None]
        assert hits, "expected at least one event in 200k cycles"
        # Hits group into runs of exactly `duration` cycles.
        runs = []
        run_start = hits[0]
        previous = hits[0]
        for cycle in hits[1:]:
            if cycle != previous + 1:
                runs.append(previous - run_start + 1)
                run_start = cycle
            previous = cycle
        runs.append(previous - run_start + 1)
        assert all(length == 5 for length in runs)

    def test_rate_roughly_respected(self):
        model = EnvironmentalFaultModel(rate=1e-3, duration=1, seed=11)
        events = sum(
            model.fault_bit_at(cycle) is not None for cycle in range(100_000)
        )
        assert 50 <= events <= 200  # ~100 expected

    def test_validation(self):
        with pytest.raises(ValueError):
            EnvironmentalFaultModel(rate=0, duration=1)
        with pytest.raises(ValueError):
            EnvironmentalFaultModel(rate=0.1, duration=0)


class TestBernoulli:
    def test_rate_one_always_fires(self):
        model = BernoulliFaultModel(rate=1.0, seed=1)
        assert all(model.sample(c) is not None for c in range(50))

    def test_rate_zero_never_fires(self):
        model = BernoulliFaultModel(rate=0.0, seed=1)
        assert all(model.sample(c) is None for c in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliFaultModel(rate=1.5)


class TestEmulatorInjector:
    def test_corrupts_and_logs(self):
        from repro.workloads import kernels
        program, expected = kernels.vector_sum(64, seed=2)
        hook, log = make_emulator_injector(rate=0.05, seed=9)
        corrupted = emulate(program, inject=hook)
        clean = emulate(program)
        assert log, "expected at least one injection at 5% rate"
        assert clean.output == [expected]
        # Silent data corruption: the result differs, no error raised.
        assert corrupted.output != clean.output

    def test_zero_rate_is_transparent(self):
        from repro.workloads import kernels
        program, expected = kernels.fibonacci(25)
        hook, log = make_emulator_injector(rate=0.0)
        result = emulate(program, inject=hook)
        assert result.output == [expected]
        assert log == []
