"""Machine-readable result export (JSON / CSV).

Everything the text reports show can also be exported for downstream
plotting or archival:

* :func:`stats_to_dict` — one simulation's counters and derived metrics
  (plain JSON-serialisable types only);
* :func:`figure_to_dict` / :func:`figure_to_json` — a full figure's
  IPC grid with averages and gaps;
* :func:`figure_to_csv` — the same grid as CSV rows;
* :func:`write_figure` — convenience writer used by the CLI's
  ``export`` subcommand.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Dict

from ..uarch.stats import Stats
from .experiments import FigureResult, SERIES_BASELINE


def stats_to_dict(stats: Stats) -> Dict[str, Any]:
    """A JSON-safe dict of one run's statistics."""
    out = stats.to_dict()
    # Everything is already int/float/bool/str/dict; make sure of it.
    for key, value in list(out.items()):
        if isinstance(value, dict):
            out[key] = {str(k): v for k, v in value.items()}
    return out


def figure_to_dict(result: FigureResult) -> Dict[str, Any]:
    """A figure's full result grid as a JSON-safe dict."""
    spec = result.spec
    cells = {
        bench: {
            label: stats_to_dict(result.cells[bench][label])
            for label in spec.series_labels
        }
        for bench in spec.benchmarks
    }
    averages = {
        label: result.average_ipc(label) for label in spec.series_labels
    }
    gaps = {
        label: result.gap(label)
        for label in spec.series_labels
        if label != SERIES_BASELINE
    }
    return {
        "figure": spec.figure_id,
        "title": spec.title,
        "scale": result.scale,
        "series": list(spec.series_labels),
        "benchmarks": list(spec.benchmarks),
        "average_ipc": averages,
        "gap_vs_baseline": gaps,
        "cells": cells,
    }


def figure_to_json(result: FigureResult, indent: int = 2) -> str:
    """The figure grid as a JSON document."""
    return json.dumps(figure_to_dict(result), indent=indent, sort_keys=True)


def figure_to_csv(result: FigureResult) -> str:
    """The figure's IPC grid as CSV (benchmark rows, series columns)."""
    spec = result.spec
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark"] + list(spec.series_labels))
    for bench in spec.benchmarks:
        writer.writerow(
            [bench]
            + [f"{result.ipc(bench, label):.4f}"
               for label in spec.series_labels]
        )
    writer.writerow(
        ["AVG"]
        + [f"{result.average_ipc(label):.4f}"
           for label in spec.series_labels]
    )
    return buffer.getvalue()


def write_figure(
    result: FigureResult,
    directory: str,
    formats: tuple = ("json", "csv"),
) -> Dict[str, str]:
    """Write a figure's results to ``directory``; returns path per format."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}
    for fmt in formats:
        path = out_dir / f"{result.spec.figure_id}.{fmt}"
        if fmt == "json":
            path.write_text(figure_to_json(result))
        elif fmt == "csv":
            path.write_text(figure_to_csv(result))
        else:
            raise ValueError(f"unknown export format: {fmt!r}")
        written[fmt] = str(path)
    return written
