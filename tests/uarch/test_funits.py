"""Unit tests for the functional-unit pools."""

import pytest

from repro.isa.instructions import FUClass
from repro.uarch import FUPool, starting_config


@pytest.fixture
def pool():
    return FUPool(starting_config())


class TestAcquire:
    def test_alu_count_per_cycle(self, pool):
        grants = [pool.acquire(FUClass.INT_ALU, 0) for _ in range(5)]
        assert grants[:4] == [1, 1, 1, 1]
        assert grants[4] is None  # only 4 ALUs (Table 1)

    def test_alus_free_next_cycle(self, pool):
        for _ in range(4):
            pool.acquire(FUClass.INT_ALU, 0)
        assert pool.acquire(FUClass.INT_ALU, 1) == 1

    def test_mult_is_pipelined(self, pool):
        assert pool.acquire(FUClass.INT_MULT, 0) == 3
        assert pool.acquire(FUClass.INT_MULT, 1) == 3  # issue latency 1

    def test_div_blocks_the_shared_unit(self, pool):
        assert pool.acquire(FUClass.INT_DIV, 0) == 20
        # The single mult/div unit is busy for the div's 19-cycle issue
        # latency: neither a mul nor another div can start.
        assert pool.acquire(FUClass.INT_MULT, 5) is None
        assert pool.acquire(FUClass.INT_DIV, 18) is None
        assert pool.acquire(FUClass.INT_MULT, 19) == 3

    def test_mem_ports_return_zero_latency(self, pool):
        assert pool.acquire(FUClass.MEM_PORT, 0) == 0
        assert pool.acquire(FUClass.MEM_PORT, 0) == 0
        assert pool.acquire(FUClass.MEM_PORT, 0) is None  # 2 ports

    def test_fp_div_unpipelined(self, pool):
        assert pool.acquire(FUClass.FP_DIV, 0) == 12
        assert pool.acquire(FUClass.FP_MULT, 5) is None
        assert pool.acquire(FUClass.FP_MULT, 12) == 4

    def test_spare_units_respected(self):
        pool = FUPool(starting_config().with_spares(alu=2, mult=1))
        grants = [pool.acquire(FUClass.INT_ALU, 0) for _ in range(7)]
        assert grants[:6] == [1] * 6 and grants[6] is None
        assert pool.acquire(FUClass.INT_MULT, 0) == 3
        assert pool.acquire(FUClass.INT_DIV, 0) == 20  # second unit


class TestAvailability:
    def test_available_counts(self, pool):
        assert pool.available(FUClass.INT_ALU, 0) == 4
        pool.acquire(FUClass.INT_ALU, 0)
        assert pool.available(FUClass.INT_ALU, 0) == 3
        assert pool.available(FUClass.INT_ALU, 1) == 4

    def test_utilization(self, pool):
        pool.acquire(FUClass.INT_ALU, 0)
        pool.record_issue(FUClass.INT_ALU)
        util = pool.utilization(cycles=10)
        assert util["ialu"] == pytest.approx(1 / 40)
        assert util["mem"] == 0.0

    def test_utilization_split_by_stream(self, pool):
        for _ in range(3):
            pool.record_issue(FUClass.INT_ALU)
        pool.record_issue(FUClass.INT_ALU, r_stream=True)
        split = pool.utilization_split(cycles=10)
        assert split["P"]["ialu"] == pytest.approx(3 / 40)
        assert split["R"]["ialu"] == pytest.approx(1 / 40)
        # P + R always recompose the combined utilization.
        combined = pool.utilization(cycles=10)
        for key in combined:
            assert split["P"][key] + split["R"][key] == pytest.approx(
                combined[key]
            )

    def test_utilization_split_zero_cycles(self, pool):
        split = pool.utilization_split(cycles=0)
        assert set(split) == {"P", "R"}
        assert all(v == 0.0 for v in split["P"].values())
        assert all(v == 0.0 for v in split["R"].values())
