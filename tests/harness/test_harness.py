"""Tests for the experiment harness: runner, specs, reporting, sweeps."""

import os

import pytest

from repro.harness import (
    FIGURES,
    SERIES_BASELINE,
    SERIES_R2A,
    SERIES_REESE,
    bench_scale,
    env_flag,
    env_int,
    figure2_spec,
    figure5_spec,
    figure7_specs,
    format_table,
    figure_report,
    run_benchmark,
    run_figure,
    run_sweep,
    spare_capacity_grid,
)
from repro.harness.experiments import SERIES_R2A1M
from repro.uarch import starting_config

TINY = 1200  # dynamic instructions: enough to exercise the machinery


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS", raising=False)
        assert bench_scale() == 20_000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "5000")
        assert bench_scale() == 5000

    def test_valid_env_does_not_warn(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "5000")
        assert bench_scale() == 5000
        assert not recwarn.list

    @pytest.mark.parametrize("bad", ["not-a-number", "2e4", "20k"])
    def test_malformed_env_warns_and_falls_back(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", bad)
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert bench_scale() == 20_000

    @pytest.mark.parametrize("bad", ["-5", "0"])
    def test_non_positive_env_warns_and_falls_back(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", bad)
        with pytest.warns(RuntimeWarning, match="not positive"):
            assert bench_scale() == 20_000

    def test_default_scale_single_source_of_truth(self):
        import inspect

        from repro.harness.runner import DEFAULT_SCALE as runner_default
        from repro.workloads import suite
        from repro.workloads.suite import DEFAULT_SCALE as suite_default

        assert runner_default is suite_default
        # The suite helpers must default to the shared constant, so a
        # caller mixing load()/trace_for() with the harness default gets
        # the same trace (and the same trace-cache entry).
        assert (
            inspect.signature(suite.load).parameters["scale"].default
            == suite_default
        )
        assert (
            inspect.signature(suite.trace_for).parameters["scale"].default
            == suite_default
        )


class TestEnvHelpers:
    def test_env_int_unset_is_silent_default(self, monkeypatch, recwarn):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        assert env_int("REPRO_BENCH_JOBS", 1) == 1
        assert not recwarn.list

    def test_env_int_valid(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "8")
        assert env_int("REPRO_BENCH_JOBS", 1) == 8
        assert not recwarn.list

    @pytest.mark.parametrize("bad", ["four", "2.5", "8 workers"])
    def test_env_int_malformed_warns_and_defaults(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BENCH_JOBS", bad)
        with pytest.warns(RuntimeWarning, match="malformed REPRO_BENCH_JOBS"):
            assert env_int("REPRO_BENCH_JOBS", 1) == 1

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_env_int_below_minimum_warns_and_defaults(self, monkeypatch,
                                                      bad):
        monkeypatch.setenv("REPRO_BENCH_JOBS", bad)
        with pytest.warns(RuntimeWarning, match="not positive"):
            assert env_int("REPRO_BENCH_JOBS", 1) == 1

    def test_env_int_custom_minimum_message(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOB", "1")
        with pytest.warns(RuntimeWarning, match="below 2"):
            assert env_int("REPRO_KNOB", 4, minimum=2) == 4

    @pytest.mark.parametrize("truthy", ["1", "true", "YES", "On"])
    def test_env_flag_truthy(self, monkeypatch, truthy):
        monkeypatch.setenv("REPRO_BENCH_CACHE", truthy)
        assert env_flag("REPRO_BENCH_CACHE") is True

    @pytest.mark.parametrize("falsy", ["0", "false", "No", "OFF", ""])
    def test_env_flag_falsy(self, monkeypatch, falsy):
        monkeypatch.setenv("REPRO_BENCH_CACHE", falsy)
        assert env_flag("REPRO_BENCH_CACHE", default=True) is False

    def test_env_flag_unset_uses_default(self, monkeypatch, recwarn):
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        assert env_flag("REPRO_BENCH_CACHE") is False
        assert env_flag("REPRO_BENCH_CACHE", default=True) is True
        assert not recwarn.list

    def test_env_flag_malformed_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "maybe")
        with pytest.warns(RuntimeWarning,
                          match="malformed REPRO_BENCH_CACHE"):
            assert env_flag("REPRO_BENCH_CACHE") is False


class TestRunner:
    def test_run_benchmark_returns_stats(self):
        stats = run_benchmark("go", starting_config(), scale=TINY)
        assert stats.committed > 0
        assert stats.halted

    def test_reese_and_baseline_commit_same_count(self):
        config = starting_config()
        base = run_benchmark("vortex", config, scale=TINY)
        reese = run_benchmark("vortex", config.with_reese(), scale=TINY)
        assert base.committed == reese.committed


class TestFigureSpecs:
    def test_registry_complete(self):
        assert set(FIGURES) == {"fig2", "fig3", "fig4", "fig5"}

    def test_fig2_has_paper_series(self):
        spec = figure2_spec()
        assert spec.series_labels == [
            SERIES_BASELINE, SERIES_REESE, "R+1 ALU", SERIES_R2A, SERIES_R2A1M,
        ]
        assert len(spec.benchmarks) == 6

    def test_fig5_drops_mult_series(self):
        # The paper omits R+2+1Mult in fig5 (identical to R+2 ALU).
        assert SERIES_R2A1M not in figure5_spec().series_labels

    def test_fig7_four_machines_averages_only(self):
        specs = figure7_specs()
        assert [s.figure_id for s in specs] == [
            "fig7-ruu64", "fig7-ruu64+fus", "fig7-ruu256", "fig7-ruu256+fus",
        ]
        assert all(s.averages_only for s in specs)

    def test_series_configs_have_expected_hardware(self):
        spec = figure2_spec()
        configs = dict(spec.series)
        assert not configs[SERIES_BASELINE].reese.enabled
        assert configs[SERIES_REESE].reese.enabled
        assert configs[SERIES_R2A].int_alu == 6
        assert configs[SERIES_R2A1M].int_mult == 2


class TestRunFigure:
    @pytest.fixture(scope="class")
    def small_fig2(self):
        spec = figure2_spec()
        # Shrink to 2 benchmarks for speed; machinery is identical.
        small = spec.__class__(
            spec.figure_id, spec.title, spec.series,
            benchmarks=("go", "vortex"),
        )
        return run_figure(small, scale=TINY)

    def test_all_cells_filled(self, small_fig2):
        for bench in small_fig2.spec.benchmarks:
            for label in small_fig2.spec.series_labels:
                assert small_fig2.ipc(bench, label) > 0

    def test_average_and_gap(self, small_fig2):
        base = small_fig2.average_ipc(SERIES_BASELINE)
        assert base > 0
        assert -0.3 <= small_fig2.gap(SERIES_REESE) <= 0.6

    def test_rows_structure(self, small_fig2):
        rows = small_fig2.rows()
        assert rows[0][0] == "benchmark"
        assert rows[-1][0] == "AV."
        assert len(rows) == 1 + 2 + 1  # header + benchmarks + AVG

    def test_report_renders(self, small_fig2):
        text = figure_report(small_fig2)
        assert "fig2" in text
        assert "AV." in text
        assert "vs baseline" in text


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table([["a", "bb"], ["ccc", "d"]])
        lines = table.splitlines()
        assert len(lines) == 3  # header + rule + row
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == ""


class TestSweep:
    def test_spare_capacity_grid_shape(self):
        points = spare_capacity_grid(starting_config(), max_alu=2, max_mult=1)
        labels = [label for label, _ in points]
        assert labels[0] == "baseline"
        assert "reese+0alu+0mult" in labels
        assert "reese+2alu+1mult" in labels
        assert len(points) == 1 + 3 * 2

    def test_run_sweep(self):
        points = [
            ("baseline", starting_config()),
            ("reese", starting_config().with_reese()),
        ]
        results = run_sweep(points, benchmarks=["go"], scale=TINY)
        assert len(results) == 2
        assert results[0].average_ipc > 0
        assert results[0].stats["go"].halted
