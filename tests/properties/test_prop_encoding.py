"""Property-based tests: instruction encoding is lossless."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import NO_REG, decode, encode
from repro.isa.instructions import Instruction, Op

regs = st.one_of(st.just(NO_REG), st.integers(min_value=0, max_value=63))
imms = st.integers(min_value=-(2**31), max_value=2**31 - 1)


@st.composite
def instructions(draw):
    return Instruction(
        draw(st.sampled_from(list(Op))),
        rd=draw(regs),
        rs1=draw(regs),
        rs2=draw(regs),
        imm=draw(imms),
    )


class TestEncodingProperties:
    @given(instructions())
    def test_roundtrip(self, inst):
        assert decode(encode(inst)) == inst

    @given(instructions())
    def test_word_is_64_bit(self, inst):
        assert 0 <= encode(inst) < 2**64

    @given(instructions(), instructions())
    def test_injective(self, a, b):
        if a != b:
            assert encode(a) != encode(b)

    @given(instructions())
    def test_encoding_deterministic(self, inst):
        assert encode(inst) == encode(inst)
