"""Unit tests for reporting extras, expectations, and the campaign API."""

import pytest

from repro.harness.campaign import OUTCOMES, CampaignResult, run_campaign
from repro.harness.expectations import Expectation
from repro.harness.reporting import bar_chart, overhead_summary
from repro.workloads import kernels


class TestBarChart:
    def test_renders_groups_and_bars(self):
        chart = bar_chart({
            "gcc": {"Baseline": 2.0, "REESE": 1.5},
            "AV.": {"Baseline": 1.8, "REESE": 1.4},
        })
        assert "gcc:" in chart
        assert "#" in chart
        assert "2.000" in chart

    def test_bar_lengths_proportional(self):
        chart = bar_chart({"g": {"a": 2.0, "b": 1.0}}, width=40)
        lines = [line for line in chart.splitlines() if "#" in line]
        long_bar = lines[0].count("#")
        short_bar = lines[1].count("#")
        assert long_bar == 40
        assert abs(short_bar - 20) <= 1

    def test_minimum_one_character(self):
        chart = bar_chart({"g": {"tiny": 0.001, "big": 100.0}})
        for line in chart.splitlines():
            if "tiny" in line:
                assert "#" in line

    def test_empty_inputs(self):
        assert bar_chart({}) == ""
        assert bar_chart({"g": {"a": 0.0}}) == ""


class TestExpectationRendering:
    def test_pass_and_fail_strings(self):
        ok = Expectation("x", "claim", "evidence", True)
        bad = Expectation("y", "claim", "evidence", False)
        assert "[PASS]" in str(ok)
        assert "[FAIL]" in str(bad)
        assert "claim" in str(ok)


class TestCampaignAPI:
    def test_outcomes_taxonomy(self):
        assert OUTCOMES == ("clean", "masked", "sdc", "crash", "hang")

    def test_sdc_fraction(self):
        result = CampaignResult("p", runs=10, rate=0.1)
        result.outcomes.update({"clean": 2, "sdc": 4, "masked": 4})
        assert result.sdc_fraction == pytest.approx(0.5)

    def test_sdc_fraction_no_strikes(self):
        result = CampaignResult("p", runs=3, rate=0.1)
        result.outcomes["clean"] = 3
        assert result.sdc_fraction == 0.0

    def test_masked_outcomes_possible(self):
        # A fault in a value that never influences output/memory is
        # masked; the putint-only fibonacci masks faults that hit the
        # loop counter *after* its last use, for example.  We only check
        # that the classifier can return masked at all on some seed.
        program, _ = kernels.fibonacci(30)
        result = run_campaign(program, runs=40, rate=5e-3, seed=11)
        assert sum(result.outcomes.values()) == 40


class TestOverheadSummary:
    def test_mentions_paper_numbers(self, ):
        from repro.harness.experiments import figure2_spec, run_figure
        spec = figure2_spec()
        small = spec.__class__(
            spec.figure_id, spec.title, spec.series,
            benchmarks=("vortex",),
        )
        result = run_figure(small, scale=1000)
        text = overhead_summary([result])
        assert "Paper: 14.0%" in text
        assert "1 hardware configurations" in text
