"""Simulation statistics.

A plain attribute bag with integer counters incremented from the hot
loop (attribute store on a ``__slots__`` object is the cheapest thing
Python offers short of locals), plus derived metrics and a reporting
dict.  The headline metric throughout the paper is **committed IPC** —
committed *P-stream* instructions per cycle; REESE's R-stream
executions are accounted separately and never inflate IPC.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Stats:
    """Counters for one simulation run."""

    __slots__ = (
        "cycles",
        "committed",
        "fetched",
        "fetched_wrong_path",
        "dispatched",
        "dispatched_wrong_path",
        "issued",
        "issued_wrong_path",
        "issued_r",
        "squashed",
        "branches",
        "cond_branches",
        "mispredictions",
        "loads",
        "stores",
        "load_forwards",
        "ifq_empty_cycles",
        "ruu_full_events",
        "lsq_full_events",
        "rqueue_full_events",
        "rqueue_moves",
        "rqueue_occ_sum",
        "rqueue_occ_max",
        "pr_separation_sum",
        "pr_separation_max",
        "pr_separation_count",
        "r_skipped_duty",
        "comparisons",
        "errors_detected",
        "errors_undetected_same_event",
        "sdc_commits",
        "recoveries",
        "unrecoverable",
        "halted",
        "bpred_accuracy",
        "fu_issues",
        "cache_stats",
        "stage_metrics",
    )

    def __init__(self) -> None:
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.fetched_wrong_path = 0
        self.dispatched = 0
        self.dispatched_wrong_path = 0
        self.issued = 0
        self.issued_wrong_path = 0
        self.issued_r = 0
        self.squashed = 0
        self.branches = 0
        self.cond_branches = 0
        self.mispredictions = 0
        self.loads = 0
        self.stores = 0
        self.load_forwards = 0
        self.ifq_empty_cycles = 0
        self.ruu_full_events = 0
        self.lsq_full_events = 0
        self.rqueue_full_events = 0
        self.rqueue_moves = 0
        self.rqueue_occ_sum = 0
        self.rqueue_occ_max = 0
        self.pr_separation_sum = 0
        self.pr_separation_max = 0
        self.pr_separation_count = 0
        self.r_skipped_duty = 0
        self.comparisons = 0
        self.errors_detected = 0
        self.errors_undetected_same_event = 0
        self.sdc_commits = 0
        self.recoveries = 0
        self.unrecoverable = False
        self.halted = False
        self.bpred_accuracy = 0.0
        self.fu_issues: Dict[str, int] = {}
        self.cache_stats: Dict[str, Dict[str, float]] = {}
        #: Per-stage metrics registry (occupancy histograms, P/R FU
        #: split, stall reasons) — populated only when the run was
        #: observed (``repro.uarch.observe.StageMetrics``), empty
        #: otherwise.  JSON-serialisable by construction, so it rides
        #: the on-disk result cache with every other counter.
        self.stage_metrics: Dict[str, Any] = {}

    # -- derived metrics -------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed P-stream instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        return (
            self.mispredictions / self.cond_branches
            if self.cond_branches
            else 0.0
        )

    @property
    def rqueue_mean_occupancy(self) -> float:
        return self.rqueue_occ_sum / self.cycles if self.cycles else 0.0

    @property
    def mean_pr_separation(self) -> float:
        """Mean cycles between queue insertion and R-execution completion.

        The paper's §2 detection condition: an environmental event of
        duration Δt escapes exactly when the P and R executions both
        fall inside it, so this separation is the machine's effective
        coverage window (events shorter than it are always caught).
        """
        return (
            self.pr_separation_sum / self.pr_separation_count
            if self.pr_separation_count
            else 0.0
        )

    def state_dict(self) -> Dict[str, Any]:
        """Raw counter state only — the JSON-serialisable cache payload."""
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "Stats":
        """Rebuild a Stats from :meth:`state_dict` (or :meth:`to_dict`).

        Unknown keys (e.g. the derived metrics ``to_dict`` adds) are
        ignored; missing counters keep their zero defaults, so entries
        written before a new counter was added still load.
        """
        stats = cls()
        for name in cls.__slots__:
            if name in state:
                setattr(stats, name, state[name])
        return stats

    def to_dict(self) -> Dict[str, Any]:
        """Flat reporting dict with counters and derived metrics."""
        out: Dict[str, Any] = self.state_dict()
        out["ipc"] = self.ipc
        out["misprediction_rate"] = self.misprediction_rate
        out["rqueue_mean_occupancy"] = self.rqueue_mean_occupancy
        out["mean_pr_separation"] = self.mean_pr_separation
        return out

    def summary(self) -> str:
        """A short human-readable summary line."""
        parts = [
            f"cycles={self.cycles}",
            f"committed={self.committed}",
            f"IPC={self.ipc:.3f}",
            f"mispred={self.misprediction_rate:.1%}",
        ]
        if self.issued_r:
            parts.append(f"R-issued={self.issued_r}")
        if self.errors_detected:
            parts.append(f"detected={self.errors_detected}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"<Stats {self.summary()}>"
