"""Two-level local-history predictor (PAg, Yeh & Patt).

A per-branch history table records each static branch's recent
directions; the pattern indexes a shared table of 2-bit counters.
Where gshare captures *global* correlation, PAg captures self-history
(loops with fixed trip counts, alternating branches private to one
site).  Included for predictor ablations alongside the paper's gshare.
"""

from __future__ import annotations

from ..isa.instructions import INST_SIZE
from .base import DirectionPredictor, _Counter2


class LocalPredictor(DirectionPredictor):
    """PAg: per-branch history, shared pattern table."""

    def __init__(
        self,
        history_bits: int = 10,
        history_entries: int = 1024,
        pattern_entries: int = 1024,
    ) -> None:
        if history_entries <= 0 or history_entries & (history_entries - 1):
            raise ValueError("history_entries must be a positive power of two")
        if pattern_entries <= 0 or pattern_entries & (pattern_entries - 1):
            raise ValueError("pattern_entries must be a positive power of two")
        if not 0 < history_bits <= 20:
            raise ValueError("history_bits out of range")
        super().__init__()
        self.history_bits = history_bits
        self.history_entries = history_entries
        self.pattern_entries = pattern_entries
        self._histories = [0] * history_entries
        self._patterns = [_Counter2.WEAK_NOT_TAKEN] * pattern_entries
        self._history_mask = (1 << history_bits) - 1
        self._pc_shift = INST_SIZE.bit_length() - 1

    def _history_index(self, pc: int) -> int:
        return (pc >> self._pc_shift) & (self.history_entries - 1)

    def _pattern_index(self, pc: int) -> int:
        history = self._histories[self._history_index(pc)]
        return history & (self.pattern_entries - 1)

    def predict(self, pc: int) -> bool:
        return _Counter2.is_taken(self._patterns[self._pattern_index(pc)])

    def update(self, pc: int, taken: bool) -> None:
        pattern_index = self._pattern_index(pc)
        self._patterns[pattern_index] = _Counter2.train(
            self._patterns[pattern_index], taken
        )
        history_index = self._history_index(pc)
        self._histories[history_index] = (
            (self._histories[history_index] << 1) | int(taken)
        ) & self._history_mask

    def history_for(self, pc: int) -> int:
        """Current local history of the branch at ``pc`` (for tests)."""
        return self._histories[self._history_index(pc)]
