"""Classic iterative dataflow over the recovered CFG.

Three passes, all register-level and all **may** analyses over the
over-approximated CFG (see :mod:`repro.analysis.cfg`), so their results
are conservative with respect to every dynamic execution:

* **reaching definitions** — which ``(instruction, register)`` writes
  can reach each program point; the per-use resolution gives the
  **def-use chains** the fault-masking classifier walks, and a use with
  *no* reaching definition is a read of the machine's initial register
  state (the linter's uninitialised-read check);
* **liveness** — which registers may still be read before being
  redefined; ``register not in live_out(i)`` is the *direct* deadness
  criterion (the value written at ``i`` is never read at all);
* **dead-value intervals** — for each directly dead definition, the
  instruction range over which the stale value sits in the register
  file before being overwritten.

Uses carry a *kind* describing what the consuming instruction does with
the value; kinds are what the masking classifier turns into fault-site
verdicts:

=============  =====================================================
``compute``    operand of an ALU/FP/convert op (value propagates
               into the consumer's destination register)
``load_addr``  load base address (propagates into the loaded value
               *and* can fault architecturally on corruption)
``store_addr`` store base address (architecturally visible)
``store_data`` store data (architecturally visible)
``output``     ``putint``/``putch`` operand (program output)
``branch``     conditional-branch condition (control flow)
``jump_addr``  ``jr``/``jalr`` target address (control flow)
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.instructions import Fmt, Instruction, Op, OPINFO
from .cfg import CFG

# Use kinds (see module docstring).
USE_COMPUTE = "compute"
USE_LOAD_ADDR = "load_addr"
USE_STORE_ADDR = "store_addr"
USE_STORE_DATA = "store_data"
USE_OUTPUT = "output"
USE_BRANCH = "branch"
USE_JUMP_ADDR = "jump_addr"

#: Kinds whose consumption is architecturally visible by itself.
DATA_SINK_KINDS = frozenset(
    {USE_LOAD_ADDR, USE_STORE_ADDR, USE_STORE_DATA, USE_OUTPUT}
)
#: Kinds that can steer control flow.
CONTROL_SINK_KINDS = frozenset({USE_BRANCH, USE_JUMP_ADDR})
#: Kinds whose value flows onward into the consumer's destination.
PROPAGATING_KINDS = frozenset({USE_COMPUTE, USE_LOAD_ADDR})

#: A definition site: (instruction index, unified register index).
DefSite = Tuple[int, int]


def instruction_uses(inst: Instruction) -> Tuple[Tuple[int, str], ...]:
    """``(register, kind)`` pairs read by one instruction.

    The hard-wired zero register and unused operand slots are excluded,
    mirroring :meth:`Instruction.srcs`.
    """
    info = OPINFO[inst.op]
    uses: List[Tuple[int, str]] = []

    def add(reg: int, kind: str) -> None:
        if reg > 0:
            uses.append((reg, kind))

    if info.is_cond_branch:
        add(inst.rs1, USE_BRANCH)
        add(inst.rs2, USE_BRANCH)
    elif inst.op in (Op.JR, Op.JALR):
        add(inst.rs1, USE_JUMP_ADDR)
    elif info.is_load:
        add(inst.rs1, USE_LOAD_ADDR)
    elif info.is_store:
        add(inst.rs1, USE_STORE_ADDR)
        add(inst.rs2, USE_STORE_DATA)
    elif inst.op in (Op.PUTINT, Op.PUTCH):
        add(inst.rs1, USE_OUTPUT)
    elif inst.op in (Op.J, Op.JAL, Op.NOP, Op.HALT):
        pass
    else:
        add(inst.rs1, USE_COMPUTE)
        if OPINFO[inst.op].fmt is Fmt.RRR:
            add(inst.rs2, USE_COMPUTE)
    return tuple(uses)


def instruction_def(inst: Instruction) -> int:
    """Destination register of one instruction, or -1 (same as dst())."""
    return inst.dst()


@dataclass
class Use:
    """One resolved register read."""

    index: int          # instruction index performing the read
    reg: int            # unified register index
    kind: str           # one of the USE_* kinds
    defs: Tuple[DefSite, ...]  # definitions reaching this read


@dataclass
class DeadInterval:
    """A directly dead definition and the span its value lingers."""

    reg: int
    start: int                 # defining instruction index
    end: Optional[int]         # redefining instruction index, or None
    #                            when the value dies with the block


class DataflowResult:
    """Reaching definitions + liveness + chains for one program."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        program = cfg.program
        code = program.code
        self.uses_of: List[Tuple[Tuple[int, str], ...]] = [
            instruction_uses(inst) for inst in code
        ]
        self.def_of: List[int] = [instruction_def(inst) for inst in code]

        # ---- reaching definitions (forward, may) ---------------------
        # GEN/KILL per block over DefSite values.
        defs_by_reg: Dict[int, Set[DefSite]] = {}
        for index, reg in enumerate(self.def_of):
            if reg >= 0:
                defs_by_reg.setdefault(reg, set()).add((index, reg))

        n_blocks = len(cfg.blocks)
        gen: List[Set[DefSite]] = [set() for _ in range(n_blocks)]
        kill: List[Set[DefSite]] = [set() for _ in range(n_blocks)]
        for block in cfg.blocks:
            for index in block.instructions():
                reg = self.def_of[index]
                if reg < 0:
                    continue
                all_defs = defs_by_reg[reg]
                gen[block.id] = {
                    d for d in gen[block.id] if d[1] != reg
                }
                gen[block.id].add((index, reg))
                kill[block.id] |= all_defs - {(index, reg)}

        reach_in: List[Set[DefSite]] = [set() for _ in range(n_blocks)]
        reach_out: List[Set[DefSite]] = [set() for _ in range(n_blocks)]
        worklist = list(range(n_blocks))
        while worklist:
            next_list: List[int] = []
            for bid in worklist:
                block = cfg.blocks[bid]
                new_in: Set[DefSite] = set()
                for pred in block.preds:
                    new_in |= reach_out[pred]
                new_out = gen[bid] | (new_in - kill[bid])
                reach_in[bid] = new_in
                if new_out != reach_out[bid]:
                    reach_out[bid] = new_out
                    for succ in block.succs:
                        if succ not in next_list:
                            next_list.append(succ)
            worklist = sorted(set(next_list))
        self.block_reach_in = reach_in
        self.block_reach_out = reach_out

        # ---- def-use / use-def chains (walk blocks forward) ----------
        self.uses: List[Use] = []
        self.du_chains: Dict[DefSite, List[Use]] = {
            site: [] for sites in defs_by_reg.values() for site in sites
        }
        #: reads whose register has no reaching definition (they observe
        #: the machine's initial register state).
        self.uninitialised_reads: List[Use] = []
        for block in cfg.blocks:
            live_defs: Dict[int, Set[DefSite]] = {}
            for site in reach_in[block.id]:
                live_defs.setdefault(site[1], set()).add(site)
            for index in block.instructions():
                for reg, kind in self.uses_of[index]:
                    reaching = tuple(sorted(live_defs.get(reg, ())))
                    use = Use(index=index, reg=reg, kind=kind,
                              defs=reaching)
                    self.uses.append(use)
                    if reaching:
                        for site in reaching:
                            self.du_chains[site].append(use)
                    else:
                        self.uninitialised_reads.append(use)
                reg = self.def_of[index]
                if reg >= 0:
                    live_defs[reg] = {(index, reg)}

        # ---- liveness (backward, may) --------------------------------
        use_sets: List[Set[int]] = [set() for _ in range(n_blocks)]
        def_sets: List[Set[int]] = [set() for _ in range(n_blocks)]
        for block in cfg.blocks:
            upward: Set[int] = set()
            defined: Set[int] = set()
            for index in block.instructions():
                for reg, _kind in self.uses_of[index]:
                    if reg not in defined:
                        upward.add(reg)
                reg = self.def_of[index]
                if reg >= 0:
                    defined.add(reg)
            use_sets[block.id] = upward
            def_sets[block.id] = defined

        live_in: List[Set[int]] = [set() for _ in range(n_blocks)]
        live_out: List[Set[int]] = [set() for _ in range(n_blocks)]
        worklist = list(range(n_blocks))
        while worklist:
            next_list = []
            for bid in reversed(worklist):
                block = cfg.blocks[bid]
                new_out: Set[int] = set()
                for succ in block.succs:
                    new_out |= live_in[succ]
                live_out[bid] = new_out
                new_in = use_sets[bid] | (new_out - def_sets[bid])
                if new_in != live_in[bid]:
                    live_in[bid] = new_in
                    for pred in block.preds:
                        if pred not in next_list:
                            next_list.append(pred)
            worklist = sorted(set(next_list))
        self.block_live_in = live_in
        self.block_live_out = live_out

        # ---- per-instruction live-out --------------------------------
        self.inst_live_out: List[FrozenSet[int]] = [frozenset()] * len(code)
        for block in cfg.blocks:
            live = set(live_out[block.id])
            for index in reversed(list(block.instructions())):
                self.inst_live_out[index] = frozenset(live)
                reg = self.def_of[index]
                if reg >= 0:
                    live.discard(reg)
                for use_reg, _kind in self.uses_of[index]:
                    live.add(use_reg)

    # -- queries ---------------------------------------------------------

    def def_sites(self) -> List[DefSite]:
        """All definition sites, in program order."""
        return sorted(self.du_chains.keys())

    def directly_dead(self, site: DefSite) -> bool:
        """True if the value written at ``site`` is never read at all."""
        index, reg = site
        return reg not in self.inst_live_out[index]

    def dead_intervals(self) -> List[DeadInterval]:
        """Spans over which directly dead values linger, per block.

        The interval runs from the defining instruction to the next
        redefinition of the register inside the same basic block, or to
        the block end (``end=None``) when the stale value simply falls
        out of liveness there.
        """
        intervals: List[DeadInterval] = []
        for site in self.def_sites():
            if not self.directly_dead(site):
                continue
            index, reg = site
            block = self.cfg.blocks[self.cfg.block_of[index]]
            end: Optional[int] = None
            for later in range(index + 1, block.end):
                if self.def_of[later] == reg:
                    end = later
                    break
            intervals.append(DeadInterval(reg=reg, start=index, end=end))
        return intervals


def analyze_dataflow(cfg: CFG) -> DataflowResult:
    """Run all dataflow passes over one CFG."""
    return DataflowResult(cfg)
