"""The out-of-order superscalar timing core (SimpleScalar-style)."""

from .config import (
    LatencyConfig,
    MachineConfig,
    ReeseConfig,
    bigger_window_config,
    large_machine_config,
    more_mem_ports_config,
    starting_config,
    wide_datapath_config,
)
from .funits import FUPool
from .pipeline import Pipeline, SimulationDeadlockError
from .ptrace import PipeTrace
from .stats import Stats

__all__ = [
    "LatencyConfig",
    "MachineConfig",
    "ReeseConfig",
    "bigger_window_config",
    "large_machine_config",
    "more_mem_ports_config",
    "starting_config",
    "wide_datapath_config",
    "FUPool",
    "Pipeline",
    "SimulationDeadlockError",
    "PipeTrace",
    "Stats",
]
