"""Branch target buffer and return-address stack.

Direct branches and jumps carry their targets in the instruction word,
which the fetch stage can see (equivalent to a perfect BTB for direct
control transfers — a common simulator simplification, noted in
DESIGN.md).  The BTB is therefore consulted only for *indirect* jumps
(``jr``/``jalr``); the RAS predicts returns (``jr ra``).
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.instructions import INST_SIZE


class BTB:
    """Direct-mapped branch target buffer (PC -> target instruction index)."""

    def __init__(self, entries: int = 512) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self._tags: List[int] = [-1] * entries
        self._targets: List[int] = [0] * entries
        self._pc_shift = INST_SIZE.bit_length() - 1
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target instruction index, or None on a BTB miss."""
        slot = (pc >> self._pc_shift) & (self.entries - 1)
        tag = pc >> self._pc_shift
        if self._tags[slot] == tag:
            self.hits += 1
            return self._targets[slot]
        self.misses += 1
        return None

    def update(self, pc: int, target_index: int) -> None:
        """Record the resolved target of the indirect jump at ``pc``."""
        slot = (pc >> self._pc_shift) & (self.entries - 1)
        self._tags[slot] = pc >> self._pc_shift
        self._targets[slot] = target_index

    def clone_state(self) -> "BTB":
        """An independent copy of entries and stats (cheap snapshot)."""
        clone = BTB.__new__(BTB)
        clone.entries = self.entries
        clone._tags = list(self._tags)
        clone._targets = list(self._targets)
        clone._pc_shift = self._pc_shift
        clone.hits = self.hits
        clone.misses = self.misses
        return clone


class ReturnAddressStack:
    """A bounded return-address stack predicting ``ret`` targets."""

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.overflows = 0

    def push(self, return_index: int) -> None:
        """Push the return target (instruction index) of a call."""
        self.pushes += 1
        if len(self._stack) == self.depth:
            self.overflows += 1
            self._stack.pop(0)
        self._stack.append(return_index)

    def pop(self) -> Optional[int]:
        """Predicted return target, or None if the stack is empty."""
        self.pops += 1
        if self._stack:
            return self._stack.pop()
        return None

    def __len__(self) -> int:
        return len(self._stack)

    def clone_state(self) -> "ReturnAddressStack":
        """An independent copy of the stack and stats (cheap snapshot)."""
        clone = ReturnAddressStack.__new__(ReturnAddressStack)
        clone.depth = self.depth
        clone._stack = list(self._stack)
        clone.pushes = self.pushes
        clone.pops = self.pops
        clone.overflows = self.overflows
        return clone
