"""Shared fixtures for the test suite.

Timing-model tests run with deliberately small workloads (hundreds to a
few thousand dynamic instructions): the pipeline's behaviour is fully
exercised at that scale and the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.arch import emulate
from repro.isa import assemble
from repro.uarch import starting_config


@pytest.fixture
def cfg():
    """The paper's Table 1 starting configuration."""
    return starting_config()


@pytest.fixture
def loop_program():
    """A small, verified loop program: sums 1..100 (= 5050)."""
    source = """
    .text
    main:
        li   r1, 100
        li   r2, 0
    loop:
        add  r2, r2, r1
        subi r1, r1, 1
        bnez r1, loop
        putint r2
        halt
    """
    return assemble(source, name="sum100")


@pytest.fixture
def loop_trace(loop_program):
    """(program, trace) for the sum-1..100 loop."""
    result = emulate(loop_program)
    assert result.output == [5050]
    return loop_program, result.trace


@pytest.fixture
def mixed_program():
    """A program exercising loads, stores, mul/div, branches and calls."""
    source = """
    .data
    buf: .word 7, 3, 9, 1, 4, 8, 2, 6
    out: .space 32
    .text
    main:
        la   r1, buf
        la   r2, out
        li   r3, 8
        li   r9, 0
    loop:
        lw   r4, 0(r1)
        call square
        div  r6, r5, r4
        sw   r5, 0(r2)
        add  r9, r9, r6
        addi r1, r1, 4
        addi r2, r2, 4
        subi r3, r3, 1
        bnez r3, loop
        putint r9
        halt
    square:                 # r5 = r4 * r4
        mul  r5, r4, r4
        ret
    """
    return assemble(source, name="mixed")


@pytest.fixture
def mixed_trace(mixed_program):
    result = emulate(mixed_program)
    assert result.halted
    return mixed_program, result.trace
