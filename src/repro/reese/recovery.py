"""Error-recovery policy for REESE.

On a comparison mismatch the pipeline is flushed, the R-stream Queue is
cleared, and fetch restarts at the instruction where the error was
detected (paper §4.3).  If the *same* instruction fails its comparison
repeatedly, the fault is not transient (or the comparator itself is
broken) and "the pipeline will have to stop and notify the user";
:class:`RetryTracker` implements that policy and the pipeline raises
:class:`UnrecoverableFaultError` when the retry budget is exhausted.
"""

from __future__ import annotations


class UnrecoverableFaultError(Exception):
    """The same instruction failed verification ``max_retry`` times."""

    def __init__(self, seq: int, attempts: int) -> None:
        super().__init__(
            f"instruction #{seq} failed P/R comparison {attempts} times; "
            "fault is not transient — machine stopped"
        )
        self.seq = seq
        self.attempts = attempts


class RetryTracker:
    """Counts consecutive comparison failures of one instruction."""

    def __init__(self, max_retry: int = 2) -> None:
        if max_retry < 1:
            raise ValueError("max_retry must be >= 1")
        self.max_retry = max_retry
        self._seq = -1
        self._failures = 0

    def record_failure(self, seq: int) -> bool:
        """Record a failed comparison; True if the machine must stop."""
        if seq == self._seq:
            self._failures += 1
        else:
            self._seq = seq
            self._failures = 1
        return self._failures > self.max_retry

    def record_success(self, seq: int) -> None:
        """A successful commit of ``seq`` clears its failure streak."""
        if seq == self._seq:
            self._seq = -1
            self._failures = 0

    @property
    def failures(self) -> int:
        return self._failures
