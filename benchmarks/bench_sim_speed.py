"""Simulator throughput — the one bench about *our* code, not the paper.

Measures functional-emulation and cycle-simulation speed so regressions
in the hot loops are visible.  pytest-benchmark runs these several
times (unlike the single-shot figure benches).
"""

import pytest

from repro.arch import emulate
from repro.uarch import Pipeline, starting_config
from repro.workloads.suite import trace_for


@pytest.fixture(scope="module")
def workload():
    return trace_for("vortex", scale=6000)


def test_emulator_throughput(benchmark, workload):
    program, trace = workload

    result = benchmark(
        lambda: emulate(program, max_instructions=100_000,
                        collect_trace=False)
    )
    assert result.halted
    benchmark.extra_info["instructions"] = result.instructions


def test_baseline_pipeline_throughput(benchmark, workload):
    program, trace = workload
    config = starting_config()

    stats = benchmark(lambda: Pipeline(program, trace, config).run())
    assert stats.committed == len(trace)
    benchmark.extra_info["cycles"] = stats.cycles


def test_reese_pipeline_throughput(benchmark, workload):
    program, trace = workload
    config = starting_config().with_reese()

    stats = benchmark(lambda: Pipeline(program, trace, config).run())
    assert stats.committed == len(trace)
    benchmark.extra_info["cycles"] = stats.cycles
