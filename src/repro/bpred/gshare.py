"""gshare predictor (McFarling, DEC WRL TN-36) — the paper's predictor.

A global branch-history register is XORed with the branch PC to index a
table of 2-bit saturating counters.  The REESE starting configuration
(Table 1) cites "gshare, from [26]"; we default to 12 bits of history
over a 4096-entry table, a typical configuration for that sizing era.
"""

from __future__ import annotations

from ..isa.instructions import INST_SIZE
from .base import DirectionPredictor, _Counter2


class GSharePredictor(DirectionPredictor):
    """Global-history XOR-indexed two-bit-counter predictor."""

    def __init__(self, history_bits: int = 12, table_size: int = 4096) -> None:
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError("table_size must be a positive power of two")
        if history_bits <= 0 or (1 << history_bits) > table_size * 16:
            raise ValueError("history_bits out of range")
        super().__init__()
        self.history_bits = history_bits
        self.table_size = table_size
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._table = [_Counter2.WEAK_NOT_TAKEN] * table_size
        self._pc_shift = INST_SIZE.bit_length() - 1

    def _index(self, pc: int) -> int:
        return ((pc >> self._pc_shift) ^ self._history) & (self.table_size - 1)

    def predict(self, pc: int) -> bool:
        return _Counter2.is_taken(self._table[self._index(pc)])

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        self._table[index] = _Counter2.train(self._table[index], taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    @property
    def history(self) -> int:
        """Current global-history register value (for tests)."""
        return self._history
