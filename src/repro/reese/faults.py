"""Transient-fault (soft-error) models.

The REESE paper argues about soft errors analytically; to make the
claims measurable this module provides injectable fault models for both
the timing simulators and the functional emulator:

* :class:`EnvironmentalFaultModel` — the paper's §2 model: environmental
  events (e.g. a particle strike) arrive as a Poisson process and persist
  for a **duration Δt**; *every* execution completing inside the event
  window suffers the same bit flip.  If an instruction's P and R
  executions both fall inside one event they are corrupted identically
  and the error is **undetectable** — exactly the paper's argument for
  separating P and R executions by more than Δt.
* :class:`BernoulliFaultModel` — independent per-execution bit flips
  with probability ``rate`` (the classic SER-per-instruction model).
* :class:`ScheduledFaultModel` — an explicit list of (start, duration,
  bit) events, for deterministic unit tests.

Corruption helpers flip one bit of a comparable value: integers flip a
bit of their 32-bit representation, floats a bit of their IEEE-754
double representation, stores flip a bit of the store data.
"""

from __future__ import annotations

import abc
import random
from typing import List, Optional, Sequence, Tuple, Union

from ..arch.trace import DynInst
from ..isa.semantics import bits_to_float, float_to_bits, to_i32

Comparable = Union[int, float, Tuple, None]


def flip_int_bit(value: int, bit: int) -> int:
    """Flip one bit of a 32-bit integer value."""
    return to_i32((value & 0xFFFFFFFF) ^ (1 << (bit & 31)))


def flip_float_bit(value: float, bit: int) -> float:
    """Flip one bit of a double's IEEE-754 representation."""
    return bits_to_float(float_to_bits(value) ^ (1 << (bit & 63)))


def corrupt_value(value: Comparable, bit: int) -> Comparable:
    """Flip one bit of a comparable value.

    Tuples (store address/data, jalr link/target) corrupt their last
    element — the data payload.  ``None`` values (instructions with no
    data-dependent result) are returned unchanged: there is nothing to
    corrupt, so such instructions are immune by construction.
    """
    if value is None:
        return None
    if isinstance(value, tuple):
        return value[:-1] + (corrupt_value(value[-1], bit),)
    if isinstance(value, float):
        return flip_float_bit(value, bit)
    return flip_int_bit(int(value), bit)


class FaultModel(abc.ABC):
    """Interface queried by the timing models at execution completion."""

    def __init__(self) -> None:
        self.queries = 0
        self.strikes = 0

    @abc.abstractmethod
    def fault_bit_at(self, cycle: int) -> Optional[int]:
        """Bit index to flip for an execution completing at ``cycle``.

        Returns ``None`` when no fault is active.  Callers query with
        non-decreasing cycles within one simulation.
        """

    def sample(self, cycle: int) -> Optional[int]:
        """Query with bookkeeping; use this instead of fault_bit_at."""
        self.queries += 1
        bit = self.fault_bit_at(cycle)
        if bit is not None:
            self.strikes += 1
        return bit


class NoFaults(FaultModel):
    """The default: a perfectly quiet environment."""

    def fault_bit_at(self, cycle: int) -> Optional[int]:
        return None


class ScheduledFaultModel(FaultModel):
    """Deterministic fault events: a list of (start, duration, bit).

    The event list is validated at construction: durations must be
    positive, bits in range, and windows must not overlap — two
    concurrent events would make :meth:`fault_bit_at` silently prefer
    whichever sorts first, which is never what a test means.
    """

    def __init__(self, events: Sequence[Tuple[int, int, int]]) -> None:
        super().__init__()
        self.events: List[Tuple[int, int, int]] = sorted(events)
        previous_end: Optional[int] = None
        for start, duration, bit in self.events:
            if duration <= 0:
                raise ValueError("event duration must be positive")
            if not 0 <= bit < 64:
                raise ValueError("bit must be in [0, 64)")
            if previous_end is not None and start < previous_end:
                raise ValueError(
                    f"fault events overlap: the event at cycle {start} "
                    f"starts before the previous one ends at "
                    f"{previous_end}"
                )
            previous_end = start + duration

    def fault_bit_at(self, cycle: int) -> Optional[int]:
        for start, duration, bit in self.events:
            if start <= cycle < start + duration:
                return bit
            if start > cycle:
                break
        return None


class EnvironmentalFaultModel(FaultModel):
    """Poisson-arriving environmental events of fixed duration Δt."""

    def __init__(
        self,
        rate: float,
        duration: int,
        seed: int = 2001,
        bits: int = 32,
    ) -> None:
        """
        Args:
            rate: expected events per cycle (e.g. ``1e-4``).
            duration: Δt, the cycles an event persists.
            seed: RNG seed (deterministic runs).
            bits: width of the bit-position distribution.
        """
        super().__init__()
        if rate <= 0:
            raise ValueError("rate must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.rate = rate
        self.duration = duration
        self._rng = random.Random(seed)
        self._bits = bits
        self._event_start = self._sample_gap(0)
        self._event_bit = self._rng.randrange(bits)

    def _sample_gap(self, now: float) -> float:
        return now + self._rng.expovariate(self.rate)

    def fault_bit_at(self, cycle: int) -> Optional[int]:
        # Advance past expired events.
        while cycle >= self._event_start + self.duration:
            self._event_start = self._sample_gap(
                self._event_start + self.duration
            )
            self._event_bit = self._rng.randrange(self._bits)
        if cycle >= self._event_start:
            return self._event_bit
        return None


class BernoulliFaultModel(FaultModel):
    """Independent per-execution bit flips with fixed probability."""

    def __init__(self, rate: float, seed: int = 2001, bits: int = 32) -> None:
        super().__init__()
        if not 0 <= rate <= 1:
            raise ValueError("rate must be a probability")
        self.rate = rate
        self._rng = random.Random(seed)
        self._bits = bits

    def fault_bit_at(self, cycle: int) -> Optional[int]:
        if self._rng.random() < self.rate:
            return self._rng.randrange(self._bits)
        return None


def make_emulator_injector(rate: float, seed: int = 2001):
    """Build an ``inject`` hook for the functional emulator.

    The hook flips one result bit per affected instruction with
    probability ``rate`` and records what it corrupted.  Used for
    silent-data-corruption campaigns on a machine *without* REESE
    (extension C in DESIGN.md).

    Returns:
        (hook, log): the callable to pass as ``Emulator(inject=...)``
        and a list that accrues ``(seq, op_name, bit)`` records.
    """
    rng = random.Random(seed)
    log: List[Tuple[int, str, int]] = []

    def hook(dyn: DynInst) -> None:
        if rng.random() >= rate:
            return
        bit = rng.randrange(32)
        if dyn.is_store:
            dyn.store_value = corrupt_value(dyn.store_value, bit)
        elif dyn.is_cond_branch:
            dyn.taken = not dyn.taken
        elif dyn.result is not None:
            dyn.result = corrupt_value(dyn.result, bit)
        else:
            return  # nothing corruptible (nop, j, ...)
        log.append((dyn.seq, dyn.op.name, bit))

    return hook, log
