"""Trivial direction predictors: static and oracle, for ablations."""

from __future__ import annotations

from .base import DirectionPredictor


class StaticPredictor(DirectionPredictor):
    """Always predicts the same direction (default: taken)."""

    def __init__(self, taken: bool = True) -> None:
        super().__init__()
        self.direction = taken

    def predict(self, pc: int) -> bool:
        return self.direction

    def update(self, pc: int, taken: bool) -> None:
        pass


class PerfectPredictor(DirectionPredictor):
    """Oracle predictor: the timing model primes it with the outcome.

    The pipeline's fetch stage calls :meth:`prime` with the trace's
    ground-truth direction immediately before ``predict``; this models a
    machine with no direction mispredictions, used to isolate the cost
    of REESE from branch effects in ablation studies.
    """

    def __init__(self) -> None:
        super().__init__()
        self._next: bool = False

    def prime(self, taken: bool) -> None:
        self._next = taken

    def predict(self, pc: int) -> bool:
        return self._next

    def update(self, pc: int, taken: bool) -> None:
        pass
