"""Design-choice ablations called out in DESIGN.md.

* **early removal** (§4.3's "complex RUU/R-queue interaction"): letting
  completed instructions leave mid-RUU extends the effective window and
  helps REESE — the paper's justification for the extra hardware.
* **R-stream Queue size**: the paper starts at 32 entries and ties die
  area to it; too small a queue throttles the P stream.
* **R dequeue width** (``r_issue_width``): the implicit comparator /
  dequeue-port count; the auto setting matches the machine width.
"""

import statistics

from conftest import publish

from repro.harness import bench_scale, format_table
from repro.uarch import Pipeline, starting_config
from repro.workloads import BENCHMARK_ORDER
from repro.workloads.suite import trace_for

_WARM = dict(warm_caches=True, warm_predictor=True)


def _avg_ipc(traces, config):
    return statistics.mean(
        Pipeline(p, t, config, **_WARM).run().ipc for p, t in traces.values()
    )


def _traces():
    scale = bench_scale()
    return {n: trace_for(n, scale=scale) for n in BENCHMARK_ORDER}


def test_ablation_early_remove(benchmark):
    def run():
        traces = _traces()
        config = starting_config()
        return (
            _avg_ipc(traces, config),
            _avg_ipc(traces, config.with_reese(early_remove=False)),
            _avg_ipc(traces, config.with_reese(early_remove=True)),
        )

    base, plain, early = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ext_ablation_early_remove",
        "Ablation: early removal from the RUU into the R-stream Queue\n"
        + format_table([
            ["model", "avg IPC", "gap vs baseline"],
            ["baseline", f"{base:.3f}", "-"],
            ["REESE (in-order removal)", f"{plain:.3f}",
             f"{1 - plain / base:+.1%}"],
            ["REESE (early removal)", f"{early:.3f}",
             f"{1 - early / base:+.1%}"],
        ]),
    )
    # The paper argues early removal "can increase overall efficiency".
    assert early >= plain * 0.98


def test_ablation_rqueue_size(benchmark):
    sizes = [8, 16, 32, 64]

    def run():
        traces = _traces()
        config = starting_config()
        base = _avg_ipc(traces, config)
        ipcs = {
            size: _avg_ipc(
                traces,
                config.with_reese(rqueue_size=size,
                                  high_water_margin=min(8, size - 1)),
            )
            for size in sizes
        }
        return base, ipcs

    base, ipcs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["R-queue size", "avg IPC", "gap vs baseline"]]
    for size in sizes:
        rows.append([str(size), f"{ipcs[size]:.3f}",
                     f"{1 - ipcs[size] / base:+.1%}"])
    publish("ext_ablation_rqueue_size",
            "Ablation: R-stream Queue capacity\n" + format_table(rows))
    # Bigger queues absorb ILP bursts: weakly monotone improvement.
    assert ipcs[64] >= ipcs[8]


def test_ablation_r_issue_width(benchmark):
    widths = [1, 2, 4, 8]

    def run():
        traces = _traces()
        config = starting_config()
        base = _avg_ipc(traces, config)
        ipcs = {
            width: _avg_ipc(traces, config.with_reese(r_issue_width=width))
            for width in widths
        }
        return base, ipcs

    base, ipcs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["R dequeue width", "avg IPC", "gap vs baseline"]]
    for width in widths:
        rows.append([str(width), f"{ipcs[width]:.3f}",
                     f"{1 - ipcs[width] / base:+.1%}"])
    publish("ext_ablation_r_issue_width",
            "Ablation: R-stream dequeue/comparator width\n"
            + format_table(rows))
    # A single dequeue port cripples REESE; width recovers it.
    assert ipcs[1] < ipcs[8]
