"""CLI + reporting surface of the cycle-accounting profiler.

Parser wiring for ``--profile``/``--telemetry`` and the ``profile``
subcommand, an end-to-end subcommand run at smoke scale, and the
``profile_report`` renderer over fabricated Stats.
"""

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.experiments import (
    SERIES_BASELINE,
    SERIES_R2A,
    SERIES_REESE,
)
from repro.harness.reporting import metrics_report, profile_report
from repro.uarch.stats import Stats


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestParser:
    def test_profile_flag_default_off(self):
        args = build_parser().parse_args(["list"])
        assert not args.profile
        assert args.telemetry is None

    def test_profile_and_telemetry_flags(self):
        args = build_parser().parse_args(
            ["--profile", "--telemetry", "out.jsonl", "list"]
        )
        assert args.profile
        assert args.telemetry == "out.jsonl"

    def test_profile_subcommand_defaults_to_suite(self):
        args = build_parser().parse_args(["profile"])
        assert args.command == "profile"
        assert args.benchmark == "all"
        assert not args.markdown

    def test_profile_subcommand_validates_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "mcf"])


class TestProfileSubcommand:
    def test_end_to_end(self, capsys):
        rc = main(["--scale", "400", "--jobs", "1", "profile", "go"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycle-accounting profile" in out
        assert "issued_r" in out
        assert "accounting identity: OK on 3/3 cells" in out
        assert "detection latency" in out

    def test_markdown_mode(self, capsys):
        rc = main(["--scale", "400", "--jobs", "1",
                   "profile", "go", "--markdown"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "| cause |" in out
        assert "### go" in out

    def test_bench_with_profile_flag_populates_accounting(self, capsys):
        rc = main(["--scale", "400", "--profile", "bench", "go"])
        assert rc == 0
        assert "IPC ratio" in capsys.readouterr().out


def _fake_stats(width, cycles, slots):
    stats = Stats()
    stats.cycles = cycles
    stats.committed = cycles * 2
    stats.accounting = {
        "schema": 1,
        "width": width,
        "cycles_total": cycles,
        "slots_total": width * cycles,
        "slots": dict(slots),
        "cycles": {"active": cycles},
        "detect_latency": {},
        "rqueue_residency": {},
    }
    return stats


class TestProfileReport:
    def _results(self):
        base = _fake_stats(4, 100, {"issued_p": 200, "ruu_full": 200})
        reese = _fake_stats(4, 150, {"issued_p": 200, "issued_r": 200,
                                     "fu_busy_r": 150, "ruu_full": 50})
        reese.accounting["detect_latency"] = {"3": 5, "8": 5}
        r2a = _fake_stats(4, 110, {"issued_p": 200, "issued_r": 200,
                                   "ruu_full": 40})
        return {"go": {SERIES_BASELINE: base, SERIES_REESE: reese,
                       SERIES_R2A: r2a}}

    def test_text_report(self):
        report = profile_report(self._results(), 400)
        assert "accounting identity: OK on 3/3 cells" in report
        # Positive deltas: issued_r 200 + fu_busy_r 150 + the 200 extra
        # cycles' worth of... (only slot causes count): 350 total, all R.
        assert "350 slots lost, 350 (100.0%)" in report
        assert "p99=8" in report

    def test_identity_violation_reported(self):
        results = self._results()
        results["go"][SERIES_REESE].accounting["slots"]["issued_p"] += 7
        report = profile_report(results, 400)
        assert "accounting identity: VIOLATED" in report
        assert "go/REESE" in report

    def test_markdown_report(self):
        report = profile_report(self._results(), 400, markdown=True)
        assert report.startswith("## cycle-accounting profile")
        assert "| cause |" in report


class TestMetricsReportGuards:
    def test_tolerates_partial_registry(self):
        stats = Stats()
        stats.stage_metrics = {"dropped_events": 3}
        report = metrics_report(stats)
        assert "WARNING" in report and "3" in report

    def test_placeholder_when_unobserved(self):
        assert "not observed" in metrics_report(Stats())
