"""End-to-end fault campaigns: SDC without REESE vs detection with it."""

import pytest

from repro.harness.campaign import run_campaign
from repro.reese import EnvironmentalFaultModel
from repro.uarch import Pipeline, starting_config
from repro.workloads import kernels
from repro.workloads.suite import trace_for


class TestArchitecturalCampaign:
    """The emulator-level campaign: what soft errors do WITHOUT REESE."""

    def test_campaign_classifies_outcomes(self):
        program, _ = kernels.matmul(6, seed=8)
        result = run_campaign(program, runs=30, rate=0.01, seed=0)
        assert result.runs == 30
        assert sum(result.outcomes.values()) == 30
        # At 1% per-instruction rate virtually every run is struck, and
        # corruption surfaces as SDC or a crash.
        assert result.outcomes["sdc"] + result.outcomes["crash"] >= 20

    def test_campaign_low_rate_mostly_clean(self):
        program, _ = kernels.vector_sum(32, seed=2)
        result = run_campaign(program, runs=20, rate=1e-6, seed=0)
        assert result.outcomes["clean"] >= 15

    def test_campaign_report_renders(self):
        program, _ = kernels.fibonacci(20)
        result = run_campaign(program, runs=5, rate=0.005, seed=3)
        text = result.report()
        assert "fault campaign" in text
        assert "sdc" in text

    def test_campaign_requires_halting_golden_run(self):
        from repro.isa import assemble
        looping = assemble("x: j x")
        with pytest.raises(ValueError):
            run_campaign(looping, runs=1, max_instructions=100)

    def test_campaign_deterministic(self):
        program, _ = kernels.string_hash("determinism")
        a = run_campaign(program, runs=10, rate=0.01, seed=7)
        b = run_campaign(program, runs=10, rate=0.01, seed=7)
        assert a.outcomes == b.outcomes

    def test_campaign_worker_count_invariant(self):
        program, _ = kernels.string_hash("parallel")
        sequential = run_campaign(program, runs=12, rate=0.01, seed=7, jobs=1)
        parallel = run_campaign(program, runs=12, rate=0.01, seed=7, jobs=3)
        assert sequential.outcomes == parallel.outcomes
        assert sequential.injections == parallel.injections


class TestTimingCampaign:
    """The REESE campaign: detection coverage vs event duration (Δt)."""

    @pytest.fixture(scope="class")
    def workload(self):
        return trace_for("ijpeg", scale=6000)

    def _run(self, workload, duration, reese=True, seed=5, rate=2e-3):
        program, trace = workload
        config = starting_config()
        if reese:
            config = config.with_reese()
        model = EnvironmentalFaultModel(
            rate=rate, duration=duration, seed=seed
        )
        stats = Pipeline(
            program, trace, config, fault_model=model,
            warm_caches=True, warm_predictor=True,
        ).run()
        return stats, model

    def test_short_events_are_detected(self, workload):
        stats, model = self._run(workload, duration=1)
        assert model.strikes > 0
        assert stats.errors_detected > 0
        assert stats.sdc_commits == 0
        assert stats.committed == len(workload[1])

    def test_coverage_degrades_with_event_duration(self, workload):
        """The paper's §2 claim: detection requires P-R separation > Δt."""
        escape_rates = []
        for duration in (1, 50, 400):
            stats, _ = self._run(workload, duration=duration)
            total = (
                stats.errors_detected + stats.errors_undetected_same_event
            )
            escape = (
                stats.errors_undetected_same_event / total if total else 0.0
            )
            escape_rates.append(escape)
        assert escape_rates[0] <= escape_rates[-1]
        assert escape_rates[0] < 0.2     # short events: nearly all caught
        assert escape_rates[-1] > 0.3    # long events mostly escape

    def test_baseline_suffers_sdc_where_reese_detects(self, workload):
        reese_stats, _ = self._run(workload, duration=1, reese=True)
        base_stats, base_model = self._run(workload, duration=1, reese=False)
        assert base_model.strikes > 0
        assert base_stats.sdc_commits > 0
        assert base_stats.errors_detected == 0
        assert reese_stats.errors_detected > 0

    def test_recovery_overhead_is_bounded(self, workload):
        program, trace = workload
        clean = Pipeline(
            program, trace, starting_config().with_reese(),
            warm_caches=True, warm_predictor=True,
        ).run()
        stats, _ = self._run(workload, duration=1)
        # A handful of recoveries should cost well under 20% extra time.
        assert stats.cycles <= clean.cycles * 1.2
