"""Unit tests for the BTB and return-address stack."""

import pytest

from repro.bpred import BTB, ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB(entries=16)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 42)
        assert btb.lookup(0x1000) == 42

    def test_conflict_eviction(self):
        btb = BTB(entries=4)
        # Two PCs mapping to the same slot (stride = entries * 8 bytes).
        a, b = 0x1000, 0x1000 + 4 * 8
        btb.update(a, 1)
        btb.update(b, 2)
        assert btb.lookup(a) is None  # evicted by b
        assert btb.lookup(b) == 2

    def test_update_overwrites_target(self):
        btb = BTB()
        btb.update(0x1000, 5)
        btb.update(0x1000, 9)
        assert btb.lookup(0x1000) == 9

    def test_hit_miss_counters(self):
        btb = BTB()
        btb.lookup(0x1000)
        btb.update(0x1000, 3)
        btb.lookup(0x1000)
        assert btb.misses == 1 and btb.hits == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BTB(entries=100)


class TestRAS:
    def test_lifo_order(self):
        ras = ReturnAddressStack()
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10

    def test_empty_pop_returns_none(self):
        assert ReturnAddressStack().pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was dropped

    def test_counters(self):
        ras = ReturnAddressStack()
        ras.push(1)
        ras.pop()
        ras.pop()
        assert ras.pushes == 1 and ras.pops == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)

    def test_len(self):
        ras = ReturnAddressStack()
        ras.push(1)
        assert len(ras) == 1
