"""Tests for the six SPEC95-int proxy workloads.

Besides basic correctness (assembles, halts, scales), these pin each
proxy's *character* — the instruction-mix bands and branch behaviour the
REESE calibration depends on (see profiles.py docstring).
"""

import pytest

from repro.arch import emulate
from repro.workloads import BENCHMARK_ORDER, BENCHMARKS, mix_report
from repro.workloads.suite import trace_for


@pytest.fixture(scope="module")
def traces():
    return {
        name: trace_for(name, scale=8000)
        for name in BENCHMARK_ORDER
    }


class TestBasics:
    def test_table2_benchmarks_present(self):
        assert BENCHMARK_ORDER == ["gcc", "go", "ijpeg", "li", "perl", "vortex"]
        for name in BENCHMARK_ORDER:
            assert BENCHMARKS[name].paper_input  # provenance recorded

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_builds_and_halts(self, name):
        program = BENCHMARKS[name].build(scale=3000)
        result = emulate(program, max_instructions=100_000)
        assert result.halted, f"{name} did not halt"
        assert result.output, f"{name} produced no output checksum"

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_scale_controls_dynamic_length(self, name):
        # Some proxies quantise to whole passes over their data
        # structure, so compare widely separated scales and allow a
        # generous band around the request.
        small = emulate(BENCHMARKS[name].build(scale=3000),
                        max_instructions=800_000)
        large = emulate(BENCHMARKS[name].build(scale=36000),
                        max_instructions=800_000)
        assert large.instructions > small.instructions
        assert 0.3 * 36000 <= large.instructions <= 2.0 * 36000

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_deterministic_per_seed(self, name):
        a = emulate(BENCHMARKS[name].build(scale=3000),
                    max_instructions=100_000)
        b = emulate(BENCHMARKS[name].build(scale=3000),
                    max_instructions=100_000)
        assert a.output == b.output
        assert a.instructions == b.instructions

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_seed_changes_behaviour(self, name):
        a = emulate(BENCHMARKS[name].build(scale=3000, seed=1),
                    max_instructions=100_000)
        b = emulate(BENCHMARKS[name].build(scale=3000, seed=2),
                    max_instructions=100_000)
        assert a.output != b.output


class TestCharacter:
    def test_gcc_is_load_and_branch_rich(self, traces):
        mix = mix_report(traces["gcc"][1])
        assert 0.10 <= mix["load"] <= 0.40
        assert mix["branch"] >= 0.08

    def test_go_is_branchiest(self, traces):
        mixes = {n: mix_report(t) for n, (_, t) in traces.items()}
        assert mixes["go"]["branch"] >= 0.15

    def test_ijpeg_is_multiply_rich(self, traces):
        mixes = {n: mix_report(t) for n, (_, t) in traces.items()}
        assert mixes["ijpeg"]["mul_div"] == max(
            m["mul_div"] for m in mixes.values()
        )
        assert mixes["ijpeg"]["mul_div"] >= 0.15

    def test_li_has_stack_traffic(self, traces):
        mix = mix_report(traces["li"][1])
        assert mix["store"] >= 0.05  # register spills
        trace = traces["li"][1]
        assert any(d.op.name == "JAL" for d in trace)

    def test_perl_uses_byte_loads(self, traces):
        trace = traces["perl"][1]
        assert any(d.op.name == "LBU" for d in trace)

    def test_vortex_is_store_heavy(self, traces):
        mixes = {n: mix_report(t) for n, (_, t) in traces.items()}
        assert mixes["vortex"]["store"] == max(
            m["store"] for m in mixes.values()
        )
        assert mixes["vortex"]["store"] >= 0.10

    def test_every_proxy_has_some_alu_work(self, traces):
        for name, (_, trace) in traces.items():
            assert mix_report(trace)["alu"] >= 0.3, name


class TestSuiteHelpers:
    def test_trace_cache_memoises(self):
        from repro.workloads.suite import _trace_cache, clear_trace_cache
        clear_trace_cache()
        first = trace_for("go", scale=2000)
        second = trace_for("go", scale=2000)
        assert first[1] is second[1]
        clear_trace_cache()
        assert not _trace_cache

    def test_unknown_benchmark_raises(self):
        from repro.workloads import load
        with pytest.raises(KeyError):
            load("mcf")

    def test_trace_cache_is_lru_bounded(self, monkeypatch):
        from repro.workloads import suite
        monkeypatch.setenv("REPRO_TRACE_CACHE", "3")
        suite.clear_trace_cache()
        try:
            for seed in range(5):
                trace_for("go", scale=1000, seed=seed)
            assert len(suite._trace_cache) == 3
            # Oldest seeds were evicted; newest survive.
            assert set(suite._trace_cache) == {
                ("go", 1000, seed) for seed in (2, 3, 4)
            }
            # A hit refreshes recency: touch seed 2, insert seed 5,
            # and seed 3 (now the least recently used) is the victim.
            trace_for("go", scale=1000, seed=2)
            trace_for("go", scale=1000, seed=5)
            assert ("go", 1000, 2) in suite._trace_cache
            assert ("go", 1000, 3) not in suite._trace_cache
        finally:
            suite.clear_trace_cache()

    def test_trace_cache_malformed_env_warns(self, monkeypatch):
        from repro.workloads import suite
        monkeypatch.setenv("REPRO_TRACE_CACHE", "lots")
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert suite._trace_cache_limit() == suite.TRACE_CACHE_LIMIT

    def test_mix_report_fractions_sum_to_one(self, traces):
        for _, trace in traces.values():
            mix = mix_report(trace)
            assert sum(mix.values()) == pytest.approx(1.0)

    def test_mix_report_empty(self):
        assert mix_report([]) == {}
