"""Architectural fault-injection campaigns (extension C in DESIGN.md).

Runs a program repeatedly on the *functional emulator* while injecting
single-bit faults, and classifies each run's architectural outcome —
the classic dependability-benchmarking taxonomy:

=========  =============================================================
masked      a fault struck but the program's outputs and memory match
            the golden run (the error was logically masked);
sdc         silent data corruption: outputs or final memory differ;
crash       the corrupted value caused an architectural exception
            (misaligned access, wild jump) — a detected-by-accident
            failure;
hang        the program exceeded its instruction budget;
clean       no fault struck this run.
=========  =============================================================

This is the "machine without REESE" side of the reproduction's fault
study; the timing-level REESE campaign (detection/recovery) lives in
the pipeline itself via :class:`repro.reese.faults.FaultModel`.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import AnalysisResult, CLASS_DEAD, CLASSES, analyze_program
from ..arch.emulator import EmulatorError, emulate
from ..arch.memory import MisalignedAccessError
from ..isa.program import Program
from ..reese.faults import corrupt_value, make_emulator_injector
from .parallel import parallel_map

#: Outcome labels in severity order.
OUTCOMES = ("clean", "masked", "sdc", "crash", "hang")

#: Outcomes that count as architecturally visible corruption.
VISIBLE_OUTCOMES = ("sdc", "crash", "hang")


@dataclass
class CampaignResult:
    """Aggregated outcome counts of an injection campaign."""

    program_name: str
    runs: int
    rate: float
    outcomes: Counter = field(default_factory=Counter)
    injections: int = 0

    @property
    def sdc_fraction(self) -> float:
        struck = self.runs - self.outcomes["clean"]
        return self.outcomes["sdc"] / struck if struck else 0.0

    def report(self) -> str:
        lines = [
            f"fault campaign on {self.program_name!r}: "
            f"{self.runs} runs, per-instruction rate {self.rate:g}, "
            f"{self.injections} total injections",
        ]
        for outcome in OUTCOMES:
            count = self.outcomes.get(outcome, 0)
            lines.append(f"  {outcome:7s} {count:5d} ({count / self.runs:.0%})")
        return "\n".join(lines)


def _classify_run(
    program: Program,
    rate: float,
    run_seed: int,
    max_instructions: int,
    golden_state: Tuple,
) -> Tuple[str, int]:
    """One injected emulation: (outcome label, injections performed)."""
    hook, log = make_emulator_injector(rate=rate, seed=run_seed)
    try:
        outcome_run = emulate(
            program, max_instructions=max_instructions,
            collect_trace=False, inject=hook,
        )
    except (MisalignedAccessError, EmulatorError):
        return "crash", len(log)
    if not log:
        return "clean", len(log)
    if not outcome_run.halted:
        return "hang", len(log)
    if (outcome_run.output, outcome_run.memory.snapshot()) == golden_state:
        return "masked", len(log)
    return "sdc", len(log)


def _campaign_chunk(payload) -> Tuple[Counter, int]:
    """Pool worker: classify a contiguous chunk of run indices.

    Each run's RNG seed is ``seed + run_index`` — a function of the
    run's identity alone — so the aggregate is independent of how the
    index space is chunked or which worker draws which chunk.
    """
    program, rate, seed, max_instructions, golden_state, indices = payload
    outcomes: Counter = Counter()
    injections = 0
    for run_index in indices:
        outcome, injected = _classify_run(
            program, rate, seed + run_index, max_instructions, golden_state
        )
        outcomes[outcome] += 1
        injections += injected
    return outcomes, injections


def run_campaign(
    program: Program,
    runs: int = 50,
    rate: float = 1e-3,
    seed: int = 0,
    max_instructions: int = 200_000,
    jobs: Optional[int] = None,
) -> CampaignResult:
    """Inject faults over ``runs`` emulations and classify outcomes.

    Args:
        program: the workload (must normally halt within the budget).
        runs: number of injected runs.
        rate: per-instruction bit-flip probability.
        seed: base RNG seed; run ``i`` uses ``seed + i``.
        max_instructions: hang-detection budget.
        jobs: worker processes (``None``/``1`` = sequential).  Outcome
            counts are identical for any value.
    """
    golden = emulate(program, max_instructions=max_instructions,
                     collect_trace=False)
    if not golden.halted:
        raise ValueError("golden run did not halt; raise max_instructions")
    golden_state = (golden.output, golden.memory.snapshot())

    result = CampaignResult(program.name, runs, rate)
    chunks = _chunk_indices(runs, jobs or 1)
    payloads = [
        (program, rate, seed, max_instructions, golden_state, chunk)
        for chunk in chunks
    ]
    for outcomes, injections in parallel_map(_campaign_chunk, payloads, jobs):
        result.outcomes.update(outcomes)
        result.injections += injections
    return result


# ---------------------------------------------------------------------------
# Site-level campaigns: stratified sampling and the static-analysis oracle.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SiteSample:
    """One planned injection at a classified fault site.

    ``occurrence`` selects which dynamic execution of the static
    instruction is corrupted (0 = the first), ``bit`` which result bit
    flips.  Samples are drawn once, up front, from the run seed — so
    campaign outcomes are independent of worker count and chunking.
    """

    index: int        # static instruction index
    reg: int          # destination register (unified index)
    klass: str        # static prediction: dead / live / control
    occurrence: int
    bit: int


@dataclass(frozen=True)
class MismatchRecord:
    """A dynamic outcome that contradicts the static prediction."""

    program_name: str
    index: int
    reg: int
    klass: str
    occurrence: int
    bit: int
    outcome: str
    instruction: str

    def render(self) -> str:
        return (
            f"{self.program_name}@{self.index} ({self.instruction}): "
            f"{self.klass}-classified site produced {self.outcome!r} "
            f"(occurrence {self.occurrence}, bit {self.bit})"
        )


class OracleMismatch(Exception):
    """A ``dead``-classified fault site produced visible corruption.

    Either the static analysis or the simulator is wrong; the records
    name the exact injections so the disagreement is reproducible.
    """

    def __init__(self, mismatches: Sequence[MismatchRecord]) -> None:
        self.mismatches = list(mismatches)
        lines = [f"{len(self.mismatches)} static-oracle mismatch(es):"]
        lines += [f"  {record.render()}" for record in self.mismatches]
        super().__init__("\n".join(lines))


def make_site_injector(index: int, occurrence: int, bit: int):
    """An ``inject`` hook corrupting one specific dynamic execution.

    Flips ``bit`` of the result of the ``occurrence``-th execution of
    static instruction ``index``.  Returns ``(hook, log)``; ``log``
    records the single injection as ``(seq, op_name, bit)``, matching
    :func:`repro.reese.faults.make_emulator_injector`.
    """
    state = {"seen": 0}
    log: List[Tuple[int, str, int]] = []

    def hook(dyn) -> None:
        if dyn.static_index != index:
            return
        seen = state["seen"]
        state["seen"] = seen + 1
        if seen != occurrence or dyn.result is None:
            return
        dyn.result = corrupt_value(dyn.result, bit)
        log.append((dyn.seq, dyn.op.name, bit))

    return hook, log


def count_site_executions(
    program: Program, max_instructions: int = 200_000
) -> Tuple[Tuple, Counter]:
    """Golden run plus per-static-instruction execution counts.

    Returns ``(golden_state, counts)`` where ``golden_state`` is the
    ``(output, memory snapshot)`` pair campaigns compare against.

    Raises:
        ValueError: when the golden run does not halt in budget.
    """
    counts: Counter = Counter()

    def counting_hook(dyn) -> None:
        counts[dyn.static_index] += 1

    golden = emulate(program, max_instructions=max_instructions,
                     collect_trace=False, inject=counting_hook)
    if not golden.halted:
        raise ValueError("golden run did not halt; raise max_instructions")
    return (golden.output, golden.memory.snapshot()), counts


def sample_sites(
    analysis: AnalysisResult,
    exec_counts: Counter,
    runs: int,
    seed: int = 0,
    classes: Optional[Sequence[str]] = None,
) -> List[SiteSample]:
    """Draw a stratified plan of ``runs`` injections.

    The run budget is split across the predicted classes proportionally
    to each class's share of *executed* fault sites (largest-remainder
    rounding; every non-empty class gets at least one sample when the
    budget allows), then sites, occurrences and bits are drawn uniformly
    within each class.  Purely a function of ``(analysis, exec_counts,
    runs, seed)`` — never of worker count.
    """
    wanted = tuple(classes) if classes else CLASSES
    pools: Dict[str, List[Tuple[int, int]]] = {}
    for klass in wanted:
        pool = [
            (index, reg)
            for index, reg in analysis.sites_of(klass)
            if exec_counts.get(index, 0) > 0
        ]
        if pool:
            pools[klass] = pool
    if not pools or runs <= 0:
        return []

    total_sites = sum(len(pool) for pool in pools.values())
    quotas: Dict[str, int] = {}
    remainders: List[Tuple[float, str]] = []
    assigned = 0
    for klass in sorted(pools):
        exact = runs * len(pools[klass]) / total_sites
        quotas[klass] = int(exact)
        assigned += quotas[klass]
        remainders.append((exact - quotas[klass], klass))
    remainders.sort(key=lambda pair: (-pair[0], pair[1]))
    for _, klass in remainders:
        if assigned >= runs:
            break
        quotas[klass] += 1
        assigned += 1
    if runs >= len(pools):
        for klass in sorted(pools):
            if quotas[klass] == 0:
                donor = max(sorted(quotas), key=lambda k: quotas[k])
                if quotas[donor] > 1:
                    quotas[donor] -= 1
                    quotas[klass] = 1

    rng = random.Random(seed)
    samples: List[SiteSample] = []
    for klass in sorted(pools):
        pool = pools[klass]
        for _ in range(quotas[klass]):
            index, reg = pool[rng.randrange(len(pool))]
            occurrence = rng.randrange(exec_counts[index])
            bit = rng.randrange(32)
            samples.append(SiteSample(index, reg, klass, occurrence, bit))
    return samples


@dataclass
class SiteCampaignResult:
    """Aggregated outcome of a site-level (oracle) campaign."""

    program_name: str
    runs: int
    seed: int
    #: static prediction -> Counter of dynamic outcomes.
    by_class: Dict[str, Counter] = field(default_factory=dict)
    #: executable fault sites per class (the sampling pool).
    site_pool: Counter = field(default_factory=Counter)
    mismatches: List[MismatchRecord] = field(default_factory=list)
    #: ``dead`` samples settled statically (``skip_dead``), no emulation.
    skipped_dead: int = 0
    #: injected emulations actually performed.
    emulations: int = 0
    analysis_from_cache: bool = False

    @property
    def outcomes(self) -> Counter:
        total: Counter = Counter()
        for counter in self.by_class.values():
            total.update(counter)
        return total

    def visible(self, klass: str) -> int:
        """Architecturally visible corruptions among one class."""
        counter = self.by_class.get(klass, Counter())
        return sum(counter[outcome] for outcome in VISIBLE_OUTCOMES)

    def raise_on_mismatch(self) -> None:
        if self.mismatches:
            raise OracleMismatch(self.mismatches)

    def report(self) -> str:
        lines = [
            f"site campaign on {self.program_name!r}: {self.runs} "
            f"stratified injections, seed {self.seed} "
            f"({self.emulations} emulations, {self.skipped_dead} dead "
            f"sites settled statically; analysis "
            f"{'cached' if self.analysis_from_cache else 'fresh'})",
            f"  site pool: " + ", ".join(
                f"{klass}={self.site_pool.get(klass, 0)}"
                for klass in CLASSES
            ),
        ]
        header = ["class"] + list(OUTCOMES[1:]) + ["visible"]
        lines.append("  " + "  ".join(f"{cell:>7s}" for cell in header))
        for klass in CLASSES:
            counter = self.by_class.get(klass, Counter())
            row = [klass] + [
                str(counter.get(outcome, 0)) for outcome in OUTCOMES[1:]
            ] + [str(self.visible(klass))]
            lines.append("  " + "  ".join(f"{cell:>7s}" for cell in row))
        if self.mismatches:
            lines.append(f"  ORACLE MISMATCHES: {len(self.mismatches)}")
            lines += [f"    {r.render()}" for r in self.mismatches]
        else:
            lines.append("  oracle: 0 mismatches (every dead-classified "
                         "injection was masked)")
        return "\n".join(lines)


def _classify_site_run(
    program: Program,
    sample: SiteSample,
    max_instructions: int,
    golden_state: Tuple,
) -> str:
    """Outcome label of one targeted injection."""
    hook, log = make_site_injector(sample.index, sample.occurrence,
                                   sample.bit)
    try:
        run = emulate(program, max_instructions=max_instructions,
                      collect_trace=False, inject=hook)
    except (MisalignedAccessError, EmulatorError):
        return "crash"
    if not log:
        return "clean"  # defensive: occurrence beyond execution count
    if not run.halted:
        return "hang"
    if (run.output, run.memory.snapshot()) == golden_state:
        return "masked"
    return "sdc"


def _site_chunk(payload) -> List[Tuple[int, str]]:
    """Pool worker: classify a chunk of planned site injections."""
    program, max_instructions, golden_state, samples, indices = payload
    out: List[Tuple[int, str]] = []
    for sample_index in indices:
        outcome = _classify_site_run(
            program, samples[sample_index], max_instructions, golden_state
        )
        out.append((sample_index, outcome))
    return out


def run_site_campaign(
    program: Program,
    runs: int = 60,
    seed: int = 0,
    max_instructions: int = 200_000,
    jobs: Optional[int] = None,
    classes: Optional[Sequence[str]] = None,
    skip_dead: bool = False,
    use_analysis_cache: bool = True,
    analysis_cache_dir: Optional[str] = None,
    strict: bool = False,
) -> SiteCampaignResult:
    """Stratified fault-site campaign cross-checked against the analyzer.

    Each run corrupts one specific ``(instruction, destination
    register)`` site at one dynamic occurrence and classifies the
    architectural outcome; the site's static masking class
    (:func:`repro.analysis.analyze_program`) predicts what is allowed.
    A ``dead``-classified site producing visible corruption is recorded
    as a :class:`MismatchRecord` (and raised as :class:`OracleMismatch`
    when ``strict``).

    Args:
        program: the workload (must halt within ``max_instructions``).
        runs: number of planned injections.
        seed: sampling seed (outcomes are a function of it alone).
        jobs: worker processes; outcomes are worker-count invariant.
        classes: restrict sampling to these classes (default: all).
        skip_dead: settle ``dead`` samples statically as ``masked``
            without emulating them — the campaign-speedup mode (the
            oracle is vacuous for skipped samples).
        use_analysis_cache / analysis_cache_dir: forwarded to
            :func:`analyze_program`.
        strict: raise :class:`OracleMismatch` instead of returning
            mismatches in the result.
    """
    analysis = analyze_program(program, use_cache=use_analysis_cache,
                               cache_dir=analysis_cache_dir)
    golden_state, exec_counts = count_site_executions(
        program, max_instructions
    )
    samples = sample_sites(analysis, exec_counts, runs, seed,
                           classes=classes)

    result = SiteCampaignResult(
        program_name=program.name,
        runs=len(samples),
        seed=seed,
        analysis_from_cache=analysis.from_cache,
    )
    for klass in CLASSES:
        executable = sum(
            1 for index, _reg in analysis.sites_of(klass)
            if exec_counts.get(index, 0) > 0
        )
        if executable:
            result.site_pool[klass] = executable
        result.by_class[klass] = Counter()

    pending: List[int] = []
    for sample_index, sample in enumerate(samples):
        if skip_dead and sample.klass == CLASS_DEAD:
            result.by_class[CLASS_DEAD]["masked"] += 1
            result.skipped_dead += 1
        else:
            pending.append(sample_index)

    chunks = _chunk_indices(len(pending), jobs or 1)
    payloads = [
        (program, max_instructions, golden_state, samples,
         [pending[i] for i in chunk])
        for chunk in chunks
    ]
    for chunk_result in parallel_map(_site_chunk, payloads, jobs):
        for sample_index, outcome in chunk_result:
            sample = samples[sample_index]
            result.by_class[sample.klass][outcome] += 1
            result.emulations += 1
            if sample.klass == CLASS_DEAD and outcome in VISIBLE_OUTCOMES:
                result.mismatches.append(MismatchRecord(
                    program_name=program.name,
                    index=sample.index,
                    reg=sample.reg,
                    klass=sample.klass,
                    occurrence=sample.occurrence,
                    bit=sample.bit,
                    outcome=outcome,
                    instruction=str(program.code[sample.index]),
                ))
    if strict:
        result.raise_on_mismatch()
    return result


def _chunk_indices(runs: int, jobs: int) -> List[Sequence[int]]:
    """Split ``range(runs)`` into at most ``4 * jobs`` contiguous chunks.

    Over-decomposing (4x) keeps the pool load-balanced when run times
    vary (hangs cost the full instruction budget; crashes return early).
    """
    if runs <= 0:
        return []
    target = max(1, min(runs, 4 * max(1, jobs)))
    size, remainder = divmod(runs, target)
    chunks: List[Sequence[int]] = []
    start = 0
    for index in range(target):
        stop = start + size + (1 if index < remainder else 0)
        chunks.append(range(start, stop))
        start = stop
    return chunks
