"""Fault-injection negative tests: no fault model is silently absorbed.

Every fault model in :mod:`repro.reese.faults` is injected into a
machine with detection **disabled** (the baseline pipeline, which
commits corrupted results as silent data corruption) while the runtime
invariant checker watches: each corrupted commit must raise a
``commit-oracle`` violation.  Then the same models run on REESE with
detection enabled and the comparator must catch them — including the
paper's §2 blind spot, where one environmental event spanning both the
P and R executions corrupts them identically and slips past the
comparator but **not** past the checker's re-execution oracle.
"""

import pytest

from repro.reese.faults import (
    BernoulliFaultModel,
    EnvironmentalFaultModel,
    ScheduledFaultModel,
)
from repro.uarch import Pipeline, starting_config
from repro.uarch.observe import (
    InvariantChecker,
    InvariantViolation,
    Observability,
)

#: One aggressive instance of every fault model: enough strikes that a
#: detection-disabled run is guaranteed to commit corrupted values.
AGGRESSIVE_MODELS = {
    "scheduled": lambda: ScheduledFaultModel([(10, 1_000_000, 9)]),
    "bernoulli": lambda: BernoulliFaultModel(rate=0.2, seed=7),
    "environmental": lambda: EnvironmentalFaultModel(
        rate=0.05, duration=3, seed=3
    ),
}


@pytest.mark.parametrize("model_name", sorted(AGGRESSIVE_MODELS))
class TestDetectionDisabled:
    """Baseline machine (no comparator) + invariant checker."""

    def test_checker_raises_on_first_corrupted_commit(
        self, model_name, mixed_trace, cfg
    ):
        program, trace = mixed_trace
        with pytest.raises(InvariantViolation) as excinfo:
            Pipeline(
                program, trace, cfg,
                fault_model=AGGRESSIVE_MODELS[model_name](),
                observer=Observability(checker=InvariantChecker()),
            ).run()
        assert excinfo.value.invariant == "commit-oracle"
        assert excinfo.value.trace_seq is not None

    def test_every_sdc_commit_is_flagged(self, model_name, mixed_trace, cfg):
        """Collect mode: one commit-oracle violation per corrupted commit."""
        program, trace = mixed_trace
        model = AGGRESSIVE_MODELS[model_name]()
        checker = InvariantChecker(collect=True)
        stats = Pipeline(
            program, trace, cfg, fault_model=model,
            observer=Observability(checker=checker),
        ).run()
        assert model.strikes > 0
        assert stats.sdc_commits > 0, "fault model never corrupted a commit"
        assert len(checker.violations) == stats.sdc_commits
        assert {v.invariant for v in checker.violations} == {"commit-oracle"}

    def test_unchecked_baseline_absorbs_the_fault(
        self, model_name, mixed_trace, cfg
    ):
        """The control: without the checker the same run commits silently."""
        program, trace = mixed_trace
        stats = Pipeline(
            program, trace, cfg,
            fault_model=AGGRESSIVE_MODELS[model_name](),
        ).run()
        assert stats.sdc_commits > 0
        assert stats.errors_detected == 0
        assert stats.committed == len(trace)


class TestDetectionEnabled:
    """REESE with the comparator active catches what it is built for."""

    def test_bernoulli_faults_are_detected(self, mixed_trace, cfg):
        program, trace = mixed_trace
        stats = Pipeline(
            program, trace, cfg.with_reese(),
            fault_model=BernoulliFaultModel(rate=0.02, seed=7),
        ).run()
        assert stats.errors_detected >= 1
        assert stats.recoveries == stats.errors_detected
        assert stats.committed == len(trace)
        assert stats.sdc_commits == 0

    def test_short_environmental_events_are_detected(self, mixed_trace, cfg):
        """Events shorter than the P/R separation are always caught."""
        program, trace = mixed_trace
        stats = Pipeline(
            program, trace, cfg.with_reese(),
            fault_model=EnvironmentalFaultModel(rate=0.01, duration=2,
                                                seed=3),
        ).run()
        assert stats.errors_detected >= 1
        assert stats.committed == len(trace)

    def test_same_event_escape_is_caught_by_the_checker(
        self, mixed_trace, cfg
    ):
        """The comparator's blind spot (paper §2) is not the checker's.

        A single event spanning the whole run corrupts every P and R
        execution identically, so each comparison passes and the error
        escapes as an ``errors_undetected_same_event`` — yet every such
        commit still fails the checker's re-execution oracle.
        """
        program, trace = mixed_trace
        checker = InvariantChecker(collect=True)
        stats = Pipeline(
            program, trace, cfg.with_reese(),
            fault_model=ScheduledFaultModel([(0, 1_000_000, 9)]),
            observer=Observability(checker=checker),
        ).run()
        assert stats.errors_detected == 0
        assert stats.errors_undetected_same_event >= 1
        assert len(checker.violations) >= 1
        assert {v.invariant for v in checker.violations} == {"commit-oracle"}
