"""Site-level fault campaigns and the static-masking oracle."""

import pytest

from repro.isa import assemble
from repro.analysis import CLASS_DEAD, CLASS_LIVE, analyze_program
from repro.harness.campaign import (
    MismatchRecord,
    OracleMismatch,
    SiteSample,
    count_site_executions,
    make_site_injector,
    run_site_campaign,
    sample_sites,
)
from repro.workloads.suite import BENCHMARKS

# Every live site feeds the output directly: any corruption is SDC.
LIVE_SOURCE = """
main:
    li r1, 5
    putint r1
    li r2, 7
    putint r2
    halt
"""

# r9 and r10 are never read: both sites are dead.
DEAD_SOURCE = """
main:
    li r9, 3
    li r10, 4
    li r1, 1
    putint r1
    halt
"""


@pytest.fixture
def live_program():
    return assemble(LIVE_SOURCE, name="live")


@pytest.fixture
def dead_program():
    return assemble(DEAD_SOURCE, name="deadish")


class TestSiteInjector:
    def test_corrupts_only_the_requested_occurrence(self, live_program):
        golden, counts = count_site_executions(live_program)
        assert counts[0] == 1
        hook, log = make_site_injector(index=0, occurrence=0, bit=0)
        from repro.arch import emulate
        run = emulate(live_program, inject=hook)
        assert len(log) == 1
        assert run.output[0] == 4  # 5 with bit 0 flipped
        assert run.output[1] == 7  # untouched

    def test_occurrence_beyond_count_is_a_noop(self, live_program):
        hook, log = make_site_injector(index=0, occurrence=5, bit=0)
        from repro.arch import emulate
        run = emulate(live_program, inject=hook)
        assert log == []
        assert run.output == [5, 7]


class TestSampling:
    def test_deterministic_in_seed(self, live_program):
        analysis = analyze_program(live_program, use_cache=False)
        _golden, counts = count_site_executions(live_program)
        a = sample_sites(analysis, counts, runs=10, seed=3)
        b = sample_sites(analysis, counts, runs=10, seed=3)
        c = sample_sites(analysis, counts, runs=10, seed=4)
        assert a == b
        assert a != c

    def test_quota_sums_to_runs(self, dead_program):
        analysis = analyze_program(dead_program, use_cache=False)
        _golden, counts = count_site_executions(dead_program)
        samples = sample_sites(analysis, counts, runs=9, seed=0)
        assert len(samples) == 9
        # Both classes (dead and live) are represented.
        assert {s.klass for s in samples} == {CLASS_DEAD, CLASS_LIVE}

    def test_class_restriction(self, dead_program):
        analysis = analyze_program(dead_program, use_cache=False)
        _golden, counts = count_site_executions(dead_program)
        samples = sample_sites(analysis, counts, runs=6, seed=0,
                               classes=[CLASS_DEAD])
        assert samples and all(s.klass == CLASS_DEAD for s in samples)

    def test_never_executed_sites_excluded(self):
        program = assemble("""
        main:
            li   r1, 1
            beqz zero, skip
            li   r2, 9
            putint r2
        skip:
            putint r1
            halt
        """, name="skewed")
        analysis = analyze_program(program, use_cache=False)
        _golden, counts = count_site_executions(program)
        samples = sample_sites(analysis, counts, runs=20, seed=0)
        assert all(counts[s.index] > 0 for s in samples)


class TestOracle:
    def test_live_sites_visibly_corrupt(self, live_program, tmp_path):
        result = run_site_campaign(
            live_program, runs=6, seed=0,
            classes=[CLASS_LIVE], analysis_cache_dir=tmp_path,
        )
        assert result.visible(CLASS_LIVE) == result.runs > 0
        assert result.mismatches == []

    def test_dead_sites_always_masked(self, dead_program, tmp_path):
        result = run_site_campaign(
            dead_program, runs=8, seed=0,
            classes=[CLASS_DEAD], analysis_cache_dir=tmp_path,
        )
        assert result.by_class[CLASS_DEAD]["masked"] == result.runs
        assert result.mismatches == []
        result.raise_on_mismatch()  # no-op when empty

    def test_suite_benchmark_oracle_holds(self, tmp_path):
        program = BENCHMARKS["gcc"].build(scale=1000)
        result = run_site_campaign(
            program, runs=15, seed=1, analysis_cache_dir=tmp_path,
        )
        assert result.mismatches == []
        assert result.emulations == result.runs

    def test_worker_count_invariance(self, dead_program, tmp_path):
        kwargs = dict(runs=10, seed=2, analysis_cache_dir=tmp_path)
        serial = run_site_campaign(dead_program, jobs=1, **kwargs)
        threaded = run_site_campaign(dead_program, jobs=2, **kwargs)
        assert serial.by_class == threaded.by_class
        assert serial.site_pool == threaded.site_pool

    def test_skip_dead_settles_without_emulating(self, dead_program,
                                                 tmp_path):
        full = run_site_campaign(dead_program, runs=10, seed=2,
                                 analysis_cache_dir=tmp_path)
        skipped = run_site_campaign(dead_program, runs=10, seed=2,
                                    skip_dead=True,
                                    analysis_cache_dir=tmp_path)
        assert skipped.outcomes == full.outcomes
        assert skipped.skipped_dead > 0
        assert skipped.emulations == full.emulations - skipped.skipped_dead

    def test_analysis_cache_reused(self, dead_program, tmp_path):
        cold = run_site_campaign(dead_program, runs=4, seed=0,
                                 analysis_cache_dir=tmp_path)
        warm = run_site_campaign(dead_program, runs=4, seed=0,
                                 analysis_cache_dir=tmp_path)
        assert not cold.analysis_from_cache
        assert warm.analysis_from_cache
        assert warm.by_class == cold.by_class


class TestMismatchPlumbing:
    def _record(self):
        return MismatchRecord(
            program_name="p", index=3, reg=9, klass=CLASS_DEAD,
            occurrence=0, bit=7, outcome="sdc", instruction="addi ...",
        )

    def test_render_names_the_injection(self):
        text = self._record().render()
        assert "p@3" in text and "dead" in text and "sdc" in text

    def test_exception_carries_records(self):
        record = self._record()
        error = OracleMismatch([record])
        assert error.mismatches == [record]
        assert "1 static-oracle mismatch(es)" in str(error)

    def test_raise_on_mismatch(self, dead_program, tmp_path):
        result = run_site_campaign(dead_program, runs=4, seed=0,
                                   analysis_cache_dir=tmp_path)
        result.mismatches.append(self._record())
        with pytest.raises(OracleMismatch):
            result.raise_on_mismatch()

    def test_report_flags_mismatches(self, dead_program, tmp_path):
        result = run_site_campaign(dead_program, runs=4, seed=0,
                                   analysis_cache_dir=tmp_path)
        assert "0 mismatches" in result.report()
        result.mismatches.append(self._record())
        assert "ORACLE MISMATCHES: 1" in result.report()

    def test_strict_mode_passes_when_sound(self, dead_program, tmp_path):
        result = run_site_campaign(dead_program, runs=6, seed=0,
                                   strict=True,
                                   analysis_cache_dir=tmp_path)
        assert result.mismatches == []


class TestSiteSampleShape:
    def test_samples_are_frozen(self):
        sample = SiteSample(index=1, reg=2, klass=CLASS_LIVE,
                            occurrence=0, bit=3)
        with pytest.raises(AttributeError):
            sample.bit = 4
