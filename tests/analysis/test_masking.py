"""Fault-masking classifier: known-answer tests per class."""

import pytest

from repro.isa import assemble
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import analyze_dataflow
from repro.analysis.masking import (
    CLASS_CONTROL,
    CLASS_DEAD,
    CLASS_LIVE,
    CLASSES,
    classify_sites,
)


def masking_for(source, name="t"):
    return classify_sites(analyze_dataflow(build_cfg(assemble(source,
                                                             name=name))))


class TestClasses:
    def test_output_chain_is_live(self):
        # 0: li r1,3  1: mov r2,r1  2: putint r2  3: halt
        masking = masking_for("""
        main:
            li  r1, 3
            mov r2, r1
            putint r2
            halt
        """)
        assert masking.classify(0, 1) == CLASS_LIVE   # via r2
        assert masking.classify(1, 2) == CLASS_LIVE

    def test_branch_condition_is_control(self):
        masking = masking_for("""
        main:
            li   r3, 1
            beqz r3, end
            li   r4, 5
        end:
            halt
        """)
        assert masking.classify(0, 3) == CLASS_CONTROL
        assert masking.classify(2, 4) == CLASS_DEAD

    def test_control_beats_live(self):
        # r1 reaches both putint (data) and beqz (control).
        masking = masking_for("""
        main:
            li   r1, 2
            putint r1
            beqz r1, end
        end:
            halt
        """)
        assert masking.classify(0, 1) == CLASS_CONTROL

    def test_store_operands_are_live(self):
        masking = masking_for("""
        .data
        buf: .word 0
        .text
        main:
            la r1, buf
            li r2, 9
            sw r2, 0(r1)
            halt
        """)
        assert masking.classify(0, 1) == CLASS_LIVE   # store address
        assert masking.classify(1, 2) == CLASS_LIVE   # store data

    def test_load_address_is_live(self):
        # A corrupted load base can fault architecturally, so the
        # address feeder is live even though the loaded value is dead.
        masking = masking_for("""
        .data
        buf: .word 7
        .text
        main:
            la r1, buf
            lw r2, 0(r1)
            halt
        """)
        assert masking.classify(0, 1) == CLASS_LIVE
        assert masking.classify(1, 2) == CLASS_DEAD

    def test_transitively_dead_chain(self):
        # r1 feeds r2 feeds r2 which nothing ever reads: all dead, but
        # only the last write is *directly* dead.
        masking = masking_for("""
        main:
            li  r1, 1
            add r2, r1, r1
            add r2, r2, r2
            halt
        """)
        assert masking.classify(0, 1) == CLASS_DEAD
        assert masking.classify(1, 2) == CLASS_DEAD
        assert masking.classify(2, 2) == CLASS_DEAD
        assert masking.directly_dead == {(2, 2)}


class TestQueries:
    @pytest.fixture
    def masking(self):
        return masking_for("""
        main:
            li   r3, 1
            beqz r3, end
            li   r4, 5
        end:
            halt
        """)

    def test_every_site_is_classified(self, masking):
        assert set(masking.sites.values()) <= set(CLASSES)
        assert len(masking.sites) == 2

    def test_class_counts(self, masking):
        assert masking.class_counts == {CLASS_CONTROL: 1, CLASS_DEAD: 1}

    def test_sites_of_in_program_order(self, masking):
        assert masking.sites_of(CLASS_CONTROL) == [(0, 3)]
        assert masking.sites_of(CLASS_DEAD) == [(2, 4)]
        assert masking.sites_of(CLASS_LIVE) == []

    def test_directly_dead_subset_of_dead_class(self, masking):
        for site in masking.directly_dead:
            assert masking.sites[site] == CLASS_DEAD

    def test_loop_program_all_sites_visible(self):
        # Every write in the sum loop feeds the output or the branch.
        masking = masking_for("""
        main:
            li   r1, 100
            li   r2, 0
        loop:
            add  r2, r2, r1
            subi r1, r1, 1
            bnez r1, loop
            putint r2
            halt
        """)
        assert masking.sites_of(CLASS_DEAD) == []
        assert masking.classify(0, 1) == CLASS_CONTROL
        assert masking.classify(1, 2) == CLASS_LIVE
