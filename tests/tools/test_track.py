"""Self-tests for benchmarks/track.py (the trajectory tracker).

The collector itself runs the full profiled suite (exercised by the CI
trajectory step at tiny scale); here we pin the pure pieces — schema
validation, the append-with-validation discipline, and atomicity of
the history rewrite.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "track.py"
)
_spec = importlib.util.spec_from_file_location("bench_track", _SCRIPT)
bench_track = importlib.util.module_from_spec(_spec)
sys.modules["bench_track"] = bench_track
_spec.loader.exec_module(bench_track)


def _entry(**overrides):
    entry = {
        "label": "test",
        "timestamp": "2026-08-06T00:00:00+00:00",
        "git_rev": "abc1234",
        "scale": 400,
        "benchmarks": {
            "go": {"baseline_ipc": 3.0, "reese_ipc": 2.2, "r2a_ipc": 2.8,
                   "reese_gap": 0.27, "r2a_gap": 0.07},
        },
        "suite": {
            "r_share": 0.97,
            "slots_lost": 12345,
            "top_causes": [["fu_busy_r", 9000], ["issued_r", 3000]],
            "detect_latency": {"count": 100, "mean": 6.9, "p50": 7,
                               "p99": 13, "max": 14},
        },
    }
    entry.update(overrides)
    return entry


class TestValidate:
    def test_valid_document(self):
        data = {"schema": bench_track.TRAJECTORY_SCHEMA_VERSION,
                "entries": [_entry()]}
        assert bench_track.validate_trajectory(data) == []

    def test_empty_document_is_valid(self):
        data = {"schema": bench_track.TRAJECTORY_SCHEMA_VERSION,
                "entries": []}
        assert bench_track.validate_trajectory(data) == []

    def test_wrong_schema(self):
        errors = bench_track.validate_trajectory(
            {"schema": 99, "entries": []}
        )
        assert any("schema" in e for e in errors)

    def test_missing_entry_keys(self):
        entry = _entry()
        del entry["suite"]
        data = {"schema": 1, "entries": [entry]}
        assert any("missing 'suite'" in e
                   for e in bench_track.validate_trajectory(data))

    def test_missing_bench_keys_and_bad_share(self):
        entry = _entry()
        del entry["benchmarks"]["go"]["reese_gap"]
        entry["suite"]["r_share"] = 1.5
        errors = bench_track.validate_trajectory(
            {"schema": 1, "entries": [entry]}
        )
        assert any("reese_gap" in e for e in errors)
        assert any("outside [0, 1]" in e for e in errors)


class TestAppend:
    def test_initialises_and_appends(self, tmp_path):
        path = tmp_path / "BENCH_TRAJECTORY.json"
        assert bench_track.append_entry(path, _entry()) == 1
        assert bench_track.append_entry(path, _entry(label="second")) == 2
        data = json.loads(path.read_text())
        assert [e["label"] for e in data["entries"]] == ["test", "second"]
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]

    def test_refuses_invalid_entry(self, tmp_path):
        path = tmp_path / "BENCH_TRAJECTORY.json"
        bench_track.append_entry(path, _entry())
        bad = _entry()
        del bad["suite"]["r_share"]
        with pytest.raises(ValueError, match="refusing"):
            bench_track.append_entry(path, bad)
        # The existing history survives the refused write untouched.
        assert len(json.loads(path.read_text())["entries"]) == 1

    def test_validate_cli_paths(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        assert bench_track.main(["--validate", "--path", str(path)]) == 1
        bench_track.append_entry(path, _entry())
        assert bench_track.main(["--validate", "--path", str(path)]) == 0
        assert "OK (1 entries)" in capsys.readouterr().out


class TestCheckedInTrajectory:
    def test_repo_file_validates(self):
        """The committed BENCH_TRAJECTORY.json must satisfy its schema."""
        data = bench_track.load_trajectory(bench_track.DEFAULT_PATH)
        assert bench_track.validate_trajectory(data) == []
        assert data["entries"], "seed entry missing"
