"""Static program analysis over assembled mini-ISA workloads.

The subsystem recovers a control-flow graph from a program's
instruction stream (:mod:`~repro.analysis.cfg`), runs classic iterative
dataflow on it (:mod:`~repro.analysis.dataflow`), classifies every
``(instruction, destination register)`` fault site as ``dead`` /
``live`` / ``control`` (:mod:`~repro.analysis.masking`), and lints the
workload for structural mistakes (:mod:`~repro.analysis.lint`).

:func:`analyze_program` is the cached entry point the harness uses:
results are persisted under ``.repro_cache/analysis/`` keyed by a
content hash of the program, so sweeps re-analysing the same workload
hit the cache.  The fault-campaign driver
(:mod:`repro.harness.campaign`) consumes the site classes for
stratified sampling and for the ``--static-oracle`` cross-check of
dynamic injection outcomes against these static predictions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..isa.program import Program
from .cache import ANALYSIS_VERSION, AnalysisCache, program_fingerprint
from .cfg import CFG, BasicBlock, Loop, build_cfg
from .dataflow import DataflowResult, DefSite, analyze_dataflow
from .lint import (
    GATING_SEVERITIES,
    LintFinding,
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    is_clean,
    lint_program,
)
from .masking import (
    CLASS_CONTROL,
    CLASS_DEAD,
    CLASS_LIVE,
    CLASSES,
    MaskingAnalysis,
    classify_sites,
)

__all__ = [
    "ANALYSIS_VERSION",
    "AnalysisCache",
    "AnalysisResult",
    "BasicBlock",
    "CFG",
    "CLASSES",
    "CLASS_CONTROL",
    "CLASS_DEAD",
    "CLASS_LIVE",
    "DataflowResult",
    "DefSite",
    "LintFinding",
    "Loop",
    "MaskingAnalysis",
    "analyze_dataflow",
    "analyze_program",
    "build_cfg",
    "classify_sites",
    "is_clean",
    "lint_program",
    "program_fingerprint",
]


@dataclass
class AnalysisResult:
    """Serialisable summary of one program's static analysis.

    This is the object the harness layers consume; the full CFG and
    dataflow objects are recomputed on demand via the lower-level API
    when a caller needs more than the per-site verdicts.
    """

    program_name: str
    fingerprint: str
    instructions: int
    blocks: int
    edges: int
    loops: int
    unreachable_blocks: int
    #: (instruction index, destination register) -> dead/live/control.
    site_classes: Dict[DefSite, str] = field(default_factory=dict)
    #: Sites whose value is never read at all (subset of ``dead``).
    directly_dead: Set[DefSite] = field(default_factory=set)
    findings: List[LintFinding] = field(default_factory=list)
    #: True when this result was served from the on-disk cache.
    from_cache: bool = False

    @property
    def class_counts(self) -> Counter:
        return Counter(self.site_classes.values())

    @property
    def clean(self) -> bool:
        """True when no error/warning lint findings exist."""
        return is_clean(self.findings)

    def sites_of(self, klass: str) -> List[DefSite]:
        """Sites of one class, in program order."""
        return sorted(
            site for site, c in self.site_classes.items() if c == klass
        )

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-safe form persisted by the analysis cache."""
        return {
            "program_name": self.program_name,
            "summary": {
                "instructions": self.instructions,
                "blocks": self.blocks,
                "edges": self.edges,
                "loops": self.loops,
                "unreachable_blocks": self.unreachable_blocks,
            },
            "sites": [
                [index, reg, self.site_classes[(index, reg)],
                 int((index, reg) in self.directly_dead)]
                for index, reg in sorted(self.site_classes)
            ],
            "findings": [
                [f.rule, f.severity, f.index, f.message]
                for f in self.findings
            ],
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], fingerprint: str,
        from_cache: bool = False,
    ) -> "AnalysisResult":
        summary = payload["summary"]
        result = cls(
            program_name=payload["program_name"],
            fingerprint=fingerprint,
            instructions=summary["instructions"],
            blocks=summary["blocks"],
            edges=summary["edges"],
            loops=summary["loops"],
            unreachable_blocks=summary["unreachable_blocks"],
            from_cache=from_cache,
        )
        for index, reg, klass, direct in payload["sites"]:
            result.site_classes[(index, reg)] = klass
            if direct:
                result.directly_dead.add((index, reg))
        result.findings = [
            LintFinding(rule=rule, severity=severity, index=index,
                        message=message)
            for rule, severity, index, message in payload["findings"]
        ]
        return result


def _analyze_fresh(program: Program, fingerprint: str) -> AnalysisResult:
    cfg = build_cfg(program)
    dataflow = analyze_dataflow(cfg)
    masking = classify_sites(dataflow)
    findings = lint_program(cfg, dataflow, masking)
    return AnalysisResult(
        program_name=program.name,
        fingerprint=fingerprint,
        instructions=len(program.code),
        blocks=len(cfg.blocks),
        edges=cfg.edge_count(),
        loops=len(cfg.loops),
        unreachable_blocks=len(cfg.unreachable_blocks()),
        site_classes=dict(masking.sites),
        directly_dead=set(masking.directly_dead),
        findings=findings,
    )


def analyze_program(
    program: Program,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> AnalysisResult:
    """Analyse a program, serving repeats from the on-disk cache.

    Args:
        program: the assembled workload.
        use_cache: consult/populate ``.repro_cache/analysis/``.
        cache_dir: cache root override (defaults to ``REPRO_CACHE_DIR``
            or ``.repro_cache``).
    """
    fingerprint = program_fingerprint(program)
    cache = AnalysisCache(cache_dir) if use_cache else None
    if cache is not None:
        payload = cache.get(fingerprint)
        if payload is not None:
            result = AnalysisResult.from_payload(
                payload, fingerprint, from_cache=True
            )
            # Two identically assembled programs may carry different
            # display names; report the caller's, not the cached one.
            result.program_name = program.name
            return result
    result = _analyze_fresh(program, fingerprint)
    if cache is not None:
        cache.put(fingerprint, result.to_payload())
    return result
