"""Integration-grade tests of REESE inside the timing pipeline."""

import pytest

from repro.arch import emulate
from repro.isa import assemble
from repro.reese import (
    BernoulliFaultModel,
    EnvironmentalFaultModel,
    ScheduledFaultModel,
    UnrecoverableFaultError,
)
from repro.uarch import Pipeline, starting_config
from repro.workloads import kernels


def run_reese(program, trace=None, config=None, **kwargs):
    if trace is None:
        trace = emulate(program, max_instructions=200_000).trace
    config = config or starting_config().with_reese()
    return Pipeline(program, trace, config, **kwargs).run()


class TestRedundantExecution:
    def test_commits_exactly_the_trace(self, loop_trace):
        program, trace = loop_trace
        stats = run_reese(program, trace)
        assert stats.committed == len(trace)
        assert stats.halted

    def test_every_commit_is_verified_or_skipped(self, mixed_trace):
        program, trace = mixed_trace
        stats = run_reese(program, trace)
        skippable = sum(
            1 for dyn in trace if dyn.fu == 0 or dyn.op.name == "HALT"
        )
        assert stats.comparisons == stats.committed - skippable
        assert stats.issued_r == stats.comparisons

    def test_r_stream_counted_separately_from_ipc(self, loop_trace):
        program, trace = loop_trace
        stats = run_reese(program, trace)
        # IPC counts P commits only; R executions nearly double the work.
        assert stats.issued_r >= stats.committed * 0.9
        assert stats.committed == len(trace)

    def test_reese_never_faster_than_double_work_bound(self, loop_trace):
        program, trace = loop_trace
        base = Pipeline(program, trace, starting_config()).run()
        reese = run_reese(program, trace)
        # Sanity bracket: REESE costs at most 2.5x the baseline cycles.
        assert base.cycles <= reese.cycles * 1.05
        assert reese.cycles <= base.cycles * 2.5

    def test_rqueue_occupancy_tracked(self, mixed_trace):
        program, trace = mixed_trace
        stats = run_reese(program, trace)
        assert stats.rqueue_occ_max >= 1
        assert stats.rqueue_moves == stats.committed

    def test_no_detection_without_faults(self, mixed_trace):
        program, trace = mixed_trace
        stats = run_reese(program, trace)
        assert stats.errors_detected == 0
        assert stats.recoveries == 0
        assert stats.sdc_commits == 0


class TestQueuePressure:
    def test_small_queue_stalls_p_stream(self):
        program = kernels.ilp_block(400, 8)
        trace = emulate(program).trace
        config = starting_config()
        tight = run_reese(program, trace,
                          config.with_reese(rqueue_size=4, high_water_margin=1))
        roomy = run_reese(program, trace, config.with_reese(rqueue_size=64))
        assert tight.cycles > roomy.cycles
        assert tight.rqueue_full_events > 0

    def test_early_remove_frees_window(self):
        # A long-latency op at the RUU head: early removal lets younger
        # completed instructions leave, keeping the window moving.
        program = assemble("""
        main:
            li r1, 60
            li r2, 10000
            li r3, 7
        loop:
            div r4, r2, r3
            addi r5, r5, 1
            addi r6, r6, 1
            addi r7, r7, 1
            subi r1, r1, 1
            bnez r1, loop
            halt
        """)
        trace = emulate(program).trace
        config = starting_config()
        plain = run_reese(program, trace, config.with_reese())
        early = run_reese(program, trace,
                          config.with_reese(early_remove=True))
        assert early.cycles <= plain.cycles

    def test_spare_alus_recover_performance(self):
        program = kernels.ilp_block(500, 8)
        trace = emulate(program).trace
        config = starting_config()
        base = Pipeline(program, trace, config).run()
        reese = run_reese(program, trace, config.with_reese())
        spared = run_reese(program, trace,
                           config.with_spares(alu=2).with_reese())
        assert reese.cycles >= base.cycles
        assert spared.cycles <= reese.cycles


class TestDutyCycle:
    def test_half_duty_skips_half(self, mixed_trace):
        program, trace = mixed_trace
        config = starting_config().with_reese(r_duty_cycle=0.5)
        stats = run_reese(program, trace, config)
        assert stats.committed == len(trace)
        assert stats.r_skipped_duty > 0
        full = run_reese(program, trace)
        assert stats.issued_r < full.issued_r * 0.7

    def test_duty_cycle_reduces_overhead(self):
        program = kernels.ilp_block(400, 8)
        trace = emulate(program).trace
        config = starting_config()
        full = run_reese(program, trace, config.with_reese())
        half = run_reese(program, trace,
                         config.with_reese(r_duty_cycle=0.5))
        assert half.cycles <= full.cycles

    def test_duty_cycle_loses_coverage(self):
        # A fault on a skipped instruction escapes as SDC.
        program = kernels.ilp_block(300, 6)
        trace = emulate(program).trace
        config = starting_config().with_reese(r_duty_cycle=0.25)
        model = BernoulliFaultModel(rate=0.02, seed=5)
        stats = Pipeline(program, trace, config, fault_model=model).run()
        assert stats.sdc_commits > 0


class TestDetectionAndRecovery:
    def test_single_event_detected_and_recovered(self, mixed_trace):
        program, trace = mixed_trace
        # Spray short events until one coincides with a completion.
        model = ScheduledFaultModel([(c, 2, 9) for c in range(50, 500, 50)])
        stats = run_reese(program, trace, fault_model=model)
        assert model.strikes >= 1
        assert stats.errors_detected >= 1
        assert stats.recoveries == stats.errors_detected
        assert stats.committed == len(trace)  # recovered completely

    def test_detection_flushes_pipeline(self, mixed_trace):
        program, trace = mixed_trace
        model = ScheduledFaultModel([(c, 2, 9) for c in range(50, 500, 50)])
        stats = run_reese(program, trace, fault_model=model)
        clean = run_reese(program, trace)
        assert stats.cycles > clean.cycles  # recovery costs time

    def test_long_event_hits_both_streams_and_escapes(self):
        program = kernels.ilp_block(600, 8)
        trace = emulate(program).trace
        model = EnvironmentalFaultModel(rate=5e-4, duration=200, seed=3)
        stats = run_reese(program, trace, fault_model=model)
        # P and R corrupted identically inside one long event: escapes.
        assert stats.errors_undetected_same_event > 0

    def test_short_events_mostly_detected(self):
        program = kernels.ilp_block(600, 8)
        trace = emulate(program).trace
        model = EnvironmentalFaultModel(rate=5e-4, duration=1, seed=3)
        stats = run_reese(program, trace, fault_model=model)
        assert stats.errors_detected > 0
        assert stats.errors_detected >= stats.errors_undetected_same_event

    def test_persistent_disagreement_stops_machine(self, mixed_trace):
        program, trace = mixed_trace
        model = BernoulliFaultModel(rate=1.0, seed=1)
        with pytest.raises(UnrecoverableFaultError):
            run_reese(program, trace, fault_model=model)

    def test_baseline_commits_corruption_silently(self, mixed_trace):
        program, trace = mixed_trace
        model = ScheduledFaultModel([(c, 2, 9) for c in range(50, 500, 50)])
        config = starting_config()  # no REESE
        stats = Pipeline(program, trace, config, fault_model=model).run()
        assert stats.sdc_commits >= 1
        assert stats.errors_detected == 0


class TestStoreHandling:
    def test_store_memory_written_once_after_verification(self):
        program = assemble("""
        .data
        out: .space 16
        .text
        main:
            la  r1, out
            li  r2, 11
            sw  r2, 0(r1)
            lw  r3, 0(r1)
            putint r3
            halt
        """)
        trace = emulate(program).trace
        stats = run_reese(program, trace)
        assert stats.committed == len(trace)
        # One store: exactly one D-cache write access beyond the loads.
        assert stats.stores == 1

    def test_store_keeps_lsq_entry_until_commit(self):
        # Store-heavy loop with a tiny LSQ: REESE holds store entries
        # until verification, so LSQ pressure rises vs baseline.
        program = assemble("""
        .data
        buf: .space 256
        .text
        main:
            la  r1, buf
            li  r2, 60
        loop:
            sw  r2, 0(r1)
            sw  r2, 4(r1)
            sw  r2, 8(r1)
            subi r2, r2, 1
            bnez r2, loop
            halt
        """)
        trace = emulate(program).trace
        config = starting_config().replace(lsq_size=4)
        base = Pipeline(program, trace, config).run()
        reese = Pipeline(program, trace, config.with_reese()).run()
        assert reese.lsq_full_events >= base.lsq_full_events
