"""Functional-unit pools with operation and issue latencies.

Physical units follow SimpleScalar's resource classes:

* ``ialu``      — integer ALUs (also execute branches and the address
  side of the pipeline's simple ops);
* ``imultdiv``  — integer multiplier/dividers: ``mul`` is pipelined
  (issue latency 1), ``div``/``rem`` block the unit (unpipelined);
* ``fpadd``     — FP adders / compares / converts;
* ``fpmultdiv`` — FP multiplier/dividers (``fdiv``/``fsqrt`` block);
* ``mem``       — memory ports (cache access latency supplied by the
  memory hierarchy, so :meth:`FUPool.acquire` returns 0 for these and
  the caller computes the operation latency).

Each unit tracks the cycle at which it can next *accept* an operation;
an acquire succeeds when some unit in the class is free this cycle and
advances that unit by the op's issue latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.instructions import FUClass
from .config import MachineConfig


class FUPool:
    """All functional units of one simulated machine."""

    # FUClass -> (physical pool key, latency attribute names)
    _OP_MAP: Dict[FUClass, Tuple[str, str, str]] = {
        FUClass.INT_ALU: ("ialu", "int_alu", "int_alu"),
        FUClass.INT_MULT: ("imultdiv", "int_mult", "int_mult_issue"),
        FUClass.INT_DIV: ("imultdiv", "int_div", "int_div_issue"),
        FUClass.FP_ADD: ("fpadd", "fp_add", "fp_add_issue"),
        FUClass.FP_MULT: ("fpmultdiv", "fp_mult", "fp_mult_issue"),
        FUClass.FP_DIV: ("fpmultdiv", "fp_div", "fp_div_issue"),
        FUClass.MEM_PORT: ("mem", "", ""),
    }

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        lat = config.latencies
        # Per-pool list of "next cycle this unit can accept an op".
        self._pools: Dict[str, List[int]] = {
            "ialu": [0] * config.int_alu,
            "imultdiv": [0] * config.int_mult,
            "fpadd": [0] * config.fp_alu,
            "fpmultdiv": [0] * config.fp_mult,
            "mem": [0] * config.mem_ports,
        }
        # Per-pool "this unit's current occupancy is R-stream work, and
        # it holds the unit until <cycle>" watermarks — only maintained
        # when :attr:`track_streams` is on (the cycle-accounting
        # profiler), so the default path never writes them.
        self._r_until: Dict[str, List[int]] = {
            key: [0] * len(pool) for key, pool in self._pools.items()
        }
        #: Record which stream holds each busy unit (profiling only).
        self.track_streams = False
        # FUClass -> (pool, r_until, oplat, issuelat); mem uses oplat 0
        # sentinel.
        self._dispatch: Dict[int, Tuple[List[int], List[int], int, int]] = {}
        for fu_class, (pool_key, op_attr, issue_attr) in self._OP_MAP.items():
            pool = self._pools[pool_key]
            if fu_class is FUClass.MEM_PORT:
                oplat, issuelat = 0, 1
            else:
                oplat = getattr(lat, op_attr)
                issuelat = getattr(lat, issue_attr)
            self._dispatch[int(fu_class)] = (
                pool, self._r_until[pool_key], oplat, issuelat,
            )
        self.issues: Dict[str, int] = {key: 0 for key in self._pools}
        #: R-stream-only slice of :attr:`issues` (REESE re-executions
        #: and dispatch-duplication shadow copies), for the per-stage
        #: metrics registry's P/R utilisation split.
        self.issues_r: Dict[str, int] = {key: 0 for key in self._pools}
        self._class_of_pool = {
            key: key for key in self._pools
        }

    def acquire(
        self, fu_class: FUClass, cycle: int, r_stream: bool = False
    ) -> Optional[int]:
        """Try to start an operation of ``fu_class`` at ``cycle``.

        Args:
            r_stream: the acquiring operation belongs to the redundant
                stream; only consulted when :attr:`track_streams` is on
                (so :meth:`blame` can say which stream holds a busy
                unit).

        Returns:
            The operation latency (0 for memory ports, whose latency the
            caller computes from the cache model), or ``None`` if every
            unit of the class is busy this cycle.
        """
        pool, r_until, oplat, issuelat = self._dispatch[int(fu_class)]
        for index, next_free in enumerate(pool):
            if next_free <= cycle:
                pool[index] = cycle + issuelat
                if self.track_streams:
                    r_until[index] = cycle + issuelat if r_stream else 0
                return oplat
        return None

    def blame(self, fu_class: FUClass, cycle: int) -> str:
        """Which stream to blame for a failed acquire of ``fu_class``.

        ``"R"`` when any currently-busy unit of the class is held by an
        R-stream operation (without REESE that unit would have been
        free, so the conflict is R-induced), ``"P"`` otherwise.  Only
        meaningful right after an acquire returned ``None`` with
        :attr:`track_streams` on.
        """
        pool, r_until, _, _ = self._dispatch[int(fu_class)]
        for index, next_free in enumerate(pool):
            if next_free > cycle and r_until[index] >= next_free:
                return "R"
        return "P"

    def available(self, fu_class: FUClass, cycle: int) -> int:
        """Number of units of the class free to accept an op this cycle."""
        pool = self._dispatch[int(fu_class)][0]
        return sum(1 for next_free in pool if next_free <= cycle)

    def record_issue(self, fu_class: FUClass, r_stream: bool = False) -> None:
        """Update per-pool issue counters (reporting only).

        Args:
            fu_class: the class the operation issued to.
            r_stream: the issue belongs to the redundant stream (an
                R-stream re-execution or a dispatch-dup shadow copy).
        """
        pool_key = self._OP_MAP[fu_class][0]
        self.issues[pool_key] += 1
        if r_stream:
            self.issues_r[pool_key] += 1

    def utilization(self, cycles: int) -> Dict[str, float]:
        """Approximate issue-slot utilization per pool."""
        if not cycles:
            return {key: 0.0 for key in self._pools}
        return {
            key: self.issues[key] / (len(pool) * cycles) if pool else 0.0
            for key, pool in self._pools.items()
        }

    def utilization_split(self, cycles: int) -> Dict[str, Dict[str, float]]:
        """Issue-slot utilization per pool, split by P vs R stream."""
        if not cycles:
            zero = {key: 0.0 for key in self._pools}
            return {"P": dict(zero), "R": dict(zero)}
        out: Dict[str, Dict[str, float]] = {"P": {}, "R": {}}
        for key, pool in self._pools.items():
            slots = len(pool) * cycles
            r_issues = self.issues_r[key]
            p_issues = self.issues[key] - r_issues
            out["P"][key] = p_issues / slots if slots else 0.0
            out["R"][key] = r_issues / slots if slots else 0.0
        return out
