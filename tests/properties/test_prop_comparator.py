"""Property-based tests for REESE's comparator.

The two core guarantees:

* **soundness** — a fault-free instruction always verifies (no false
  positives), checked over real emulated traces of random programs;
* **sensitivity** — flipping any bit of a P value makes the comparison
  fail for every instruction class whose comparable value is non-None.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import emulate
from repro.reese import corrupt_value, p_value, reexecute, values_equal
from repro.workloads import MixProfile, generate_program


@st.composite
def generated_traces(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    profile = MixProfile(
        mul=draw(st.floats(min_value=0, max_value=0.1)),
        div=draw(st.floats(min_value=0, max_value=0.02)),
        load=draw(st.floats(min_value=0, max_value=0.3)),
        store=draw(st.floats(min_value=0, max_value=0.15)),
        branch=draw(st.floats(min_value=0, max_value=0.2)),
    )
    program = generate_program(profile, n_dynamic=400, seed=seed)
    return emulate(program, max_instructions=5000).trace


class TestComparatorProperties:
    @given(generated_traces())
    @settings(max_examples=25, deadline=None)
    def test_fault_free_always_verifies(self, trace):
        for dyn in trace:
            assert values_equal(p_value(dyn), reexecute(dyn)), repr(dyn)

    @given(generated_traces(), st.integers(min_value=0, max_value=31))
    @settings(max_examples=25, deadline=None)
    def test_any_bit_flip_detected(self, trace, bit):
        for dyn in trace:
            clean = p_value(dyn)
            if clean is None:
                continue  # nothing data-dependent to corrupt
            corrupted = corrupt_value(clean, bit)
            assert not values_equal(corrupted, reexecute(dyn)), (
                f"bit {bit} flip escaped on {dyn!r}"
            )

    @given(generated_traces())
    @settings(max_examples=10, deadline=None)
    def test_reexecute_is_pure(self, trace):
        for dyn in trace[:50]:
            assert values_equal(reexecute(dyn), reexecute(dyn))
