#!/usr/bin/env python3
"""Quickstart: the REESE headline result in a dozen lines.

Builds the paper's starting configuration (Table 1), runs a benchmark
on the baseline machine, on REESE, and on REESE with two spare integer
ALUs, and prints the IPC comparison — Figure 2's story for one
benchmark.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro import run_benchmark, starting_config


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 15_000

    config = starting_config()

    baseline = run_benchmark(benchmark, config, scale=scale)
    reese = run_benchmark(benchmark, config.with_reese(), scale=scale)
    spared = run_benchmark(
        benchmark, config.with_spares(alu=2).with_reese(), scale=scale
    )

    print(f"benchmark: {benchmark} ({baseline.committed} instructions)")
    print(f"{'model':24s} {'IPC':>7s} {'cycles':>8s} {'vs baseline':>12s}")
    for label, stats in [
        ("baseline", baseline),
        ("REESE", reese),
        ("REESE + 2 spare ALUs", spared),
    ]:
        gap = 1 - stats.ipc / baseline.ipc
        print(f"{label:24s} {stats.ipc:7.3f} {stats.cycles:8d} {gap:+12.1%}")

    print()
    print(f"R-stream instructions executed by REESE: {reese.issued_r}")
    print(f"(full duplication: every committed instruction was verified)")


if __name__ == "__main__":
    main()
