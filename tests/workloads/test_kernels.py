"""Unit tests for the kernel library (beyond the emulator-oracle checks)."""

import pytest

from repro.arch import emulate
from repro.workloads import kernels


class TestKernelOutputs:
    def test_vector_sum_deterministic_per_seed(self):
        a1, e1 = kernels.vector_sum(32, seed=1)
        a2, e2 = kernels.vector_sum(32, seed=1)
        assert e1 == e2
        assert [str(i) for i in a1.code] == [str(i) for i in a2.code]

    def test_vector_sum_seed_changes_data(self):
        _, e1 = kernels.vector_sum(32, seed=1)
        _, e2 = kernels.vector_sum(32, seed=2)
        assert e1 != e2

    def test_all_kernels_halt(self):
        programs = [
            kernels.vector_sum(16)[0],
            kernels.fibonacci(10)[0],
            kernels.fib_recursive(8)[0],
            kernels.bubble_sort(10)[0],
            kernels.matmul(4)[0],
            kernels.string_hash("abc")[0],
            kernels.serial_chain(50),
            kernels.ilp_block(50, 4),
            kernels.multiply_bound(50),
        ]
        for program in programs:
            result = emulate(program, max_instructions=500_000)
            assert result.halted, f"{program.name} did not halt"

    def test_ilp_block_validates_chains(self):
        with pytest.raises(ValueError):
            kernels.ilp_block(10, chains=0)
        with pytest.raises(ValueError):
            kernels.ilp_block(10, chains=13)

    def test_string_hash_empty_components(self):
        program, expected = kernels.string_hash("a")
        assert emulate(program).output == [expected]


class TestKernelCharacter:
    def test_serial_chain_has_no_memory_ops(self):
        trace = emulate(kernels.serial_chain(100)).trace
        assert not any(d.is_load or d.is_store for d in trace)

    def test_multiply_bound_is_mult_heavy(self):
        from repro.isa.instructions import FUClass
        trace = emulate(kernels.multiply_bound(100)).trace
        mults = sum(1 for d in trace if d.fu == FUClass.INT_MULT)
        assert mults / len(trace) > 0.3

    def test_fib_recursive_uses_stack(self):
        trace = emulate(kernels.fib_recursive(8)[0]).trace
        assert any(d.is_store for d in trace)
        assert any(d.op.name == "JAL" for d in trace)
        assert any(d.op.name == "JR" for d in trace)
