"""The full memory hierarchy of the simulated machine.

Matches the REESE paper's Table 1 by default:

* L1 instruction cache: 32 KB, 2-way, 2-cycle hit;
* L1 data cache: 32 KB, 2-way, 2-cycle hit;
* unified L2 (shared by instructions and data): 512 KB, 4-way, 12-cycle;
* main memory behind L2 (fixed latency), and a small D-TLB.

The hierarchy exposes two latency probes used by the timing core:
:meth:`MemoryHierarchy.ifetch` for the fetch stage and
:meth:`MemoryHierarchy.daccess` for loads and committed stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .cache import Cache, CacheParams
from .tlb import TLB


@dataclass(frozen=True)
class MemHierParams:
    """Configuration of the whole hierarchy (Table 1 defaults)."""

    l1i: CacheParams = field(
        default_factory=lambda: CacheParams("l1i", 32 * 1024, 2, 32, 2)
    )
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams("l1d", 32 * 1024, 2, 32, 2)
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams("l2", 512 * 1024, 4, 64, 12)
    )
    memory_latency: int = 70
    tlb_entries: int = 64
    tlb_assoc: int = 4
    tlb_miss_penalty: int = 30
    use_tlb: bool = True


class MemoryHierarchy:
    """L1I + L1D + unified L2 + DRAM latency + D-TLB."""

    def __init__(self, params: Optional[MemHierParams] = None) -> None:
        self.params = params or MemHierParams()
        p = self.params
        self.l2 = Cache(p.l2, next_level=None, miss_latency=p.memory_latency)
        self.l1i = Cache(p.l1i, next_level=self.l2)
        self.l1d = Cache(p.l1d, next_level=self.l2)
        self.dtlb = (
            TLB(p.tlb_entries, p.tlb_assoc, miss_penalty=p.tlb_miss_penalty)
            if p.use_tlb
            else None
        )

    def ifetch(self, pc: int) -> int:
        """Latency of fetching the instruction at byte PC ``pc``."""
        return self.l1i.access(pc, is_write=False)

    def daccess(self, addr: int, is_write: bool = False) -> int:
        """Latency of a data access (includes TLB)."""
        latency = self.dtlb.access(addr) if self.dtlb is not None else 0
        return latency + self.l1d.access(addr, is_write=is_write)

    def l1d_hit_latency(self) -> int:
        """The guaranteed-hit latency used for REESE R-stream loads."""
        return self.params.l1d.hit_latency

    def clone_state(self) -> "MemoryHierarchy":
        """An independent copy of the whole hierarchy's state.

        Clones bottom-up so the L1s point at the cloned L2 — the cheap
        snapshot primitive behind the sampled-simulation engine's
        per-interval warm states.
        """
        clone = MemoryHierarchy.__new__(MemoryHierarchy)
        clone.params = self.params
        clone.l2 = self.l2.clone_state(next_level=None)
        clone.l1i = self.l1i.clone_state(next_level=clone.l2)
        clone.l1d = self.l1d.clone_state(next_level=clone.l2)
        clone.dtlb = self.dtlb.clone_state() if self.dtlb is not None else None
        return clone

    def reset_stats(self) -> None:
        """Zero every level's counters (state/tag contents untouched)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        if self.dtlb is not None:
            self.dtlb.hits = 0
            self.dtlb.misses = 0

    def stat_dict(self) -> Dict[str, Dict[str, float]]:
        """Nested statistics for all levels."""
        stats = {
            "l1i": self.l1i.stat_dict(),
            "l1d": self.l1d.stat_dict(),
            "l2": self.l2.stat_dict(),
        }
        if self.dtlb is not None:
            stats["dtlb"] = {
                "hits": self.dtlb.hits,
                "misses": self.dtlb.misses,
                "miss_rate": self.dtlb.miss_rate,
            }
        return stats
