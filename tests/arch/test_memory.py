"""Unit tests for the flat memory model."""

import pytest

from repro.arch import Memory, MisalignedAccessError


class TestWordAccess:
    def test_default_zero(self):
        mem = Memory()
        assert mem.load_word(0x1000) == 0

    def test_store_load(self):
        mem = Memory()
        mem.store_word(0x1000, 1234)
        assert mem.load_word(0x1000) == 1234

    def test_store_negative_roundtrips_signed(self):
        mem = Memory()
        mem.store_word(0x1000, -5)
        assert mem.load_word(0x1000) == -5

    def test_store_truncates_to_32_bits(self):
        mem = Memory()
        mem.store_word(0x1000, 2**32 + 9)
        assert mem.load_word(0x1000) == 9

    def test_misaligned_rejected(self):
        mem = Memory()
        with pytest.raises(MisalignedAccessError):
            mem.load_word(0x1001)
        with pytest.raises(MisalignedAccessError):
            mem.store_word(0x1002, 1)

    def test_adjacent_words_independent(self):
        mem = Memory()
        mem.store_word(0x1000, 1)
        mem.store_word(0x1004, 2)
        assert mem.load_word(0x1000) == 1
        assert mem.load_word(0x1004) == 2

    def test_initial_image(self):
        mem = Memory({0x2000: 7, 0x2004: -1})
        assert mem.load_word(0x2000) == 7
        assert mem.load_word(0x2004) == -1


class TestByteAccess:
    def test_little_endian_bytes(self):
        mem = Memory()
        mem.store_word(0x1000, 0x04030201)
        assert mem.load_byte(0x1000) == 0x01
        assert mem.load_byte(0x1003) == 0x04

    def test_signed_byte_extension(self):
        mem = Memory()
        mem.store_byte(0x1000, 0x80)
        assert mem.load_byte(0x1000, signed=True) == -128
        assert mem.load_byte(0x1000, signed=False) == 128

    def test_store_byte_preserves_neighbours(self):
        mem = Memory()
        mem.store_word(0x1000, 0x44332211)
        mem.store_byte(0x1001, 0xAA)
        assert mem.load_word(0x1000) & 0xFFFFFFFF == 0x4433AA11

    def test_store_byte_masks_value(self):
        mem = Memory()
        mem.store_byte(0x1000, 0x1FF)
        assert mem.load_byte(0x1000, signed=False) == 0xFF


class TestFloatAccess:
    def test_float_roundtrip_float32_exact(self):
        mem = Memory()
        mem.store_float(0x1000, 1.5)
        assert mem.load_float(0x1000) == 1.5

    def test_float_overflow_becomes_inf(self):
        mem = Memory()
        mem.store_float(0x1000, 1e300)
        assert mem.load_float(0x1000) == float("inf")

    def test_float_shares_word_storage(self):
        mem = Memory()
        mem.store_float(0x1000, 1.0)
        assert mem.load_word(0x1000) == 0x3F800000


class TestIntrospection:
    def test_snapshot_excludes_zero_words(self):
        mem = Memory()
        mem.store_word(0x1000, 5)
        mem.store_word(0x1004, 0)
        assert mem.snapshot() == {0x1000: 5}

    def test_copy_is_independent(self):
        mem = Memory()
        mem.store_word(0x1000, 5)
        clone = mem.copy()
        clone.store_word(0x1000, 9)
        assert mem.load_word(0x1000) == 5

    def test_equality_ignores_explicit_zeros(self):
        a = Memory()
        b = Memory()
        a.store_word(0x1000, 0)
        assert a == b

    def test_len_counts_touched_words(self):
        mem = Memory()
        mem.store_word(0x1000, 1)
        mem.store_word(0x1004, 2)
        assert len(mem) == 2
