"""Shared infrastructure for the figure-reproduction benches.

Figure results are memoised per session: several benches consume the
same figure (e.g. the §6.1 claims bench aggregates Figs 2-5), and each
figure is a multi-minute simulation at full scale.

Figures run through the parallel execution layer
(:mod:`repro.harness.parallel`).  ``REPRO_BENCH_JOBS`` sets the worker
count (default 1 — sequential, the reference configuration) and
``REPRO_BENCH_CACHE=1`` enables the on-disk result cache so a repeated
bench session under an unchanged model is nearly free.

Every bench writes its paper-style text report to
``benchmarks/results/<name>.txt`` *and* prints it, so the regenerated
rows/series are inspectable regardless of pytest's capture settings.
"""

from __future__ import annotations

import pathlib
from typing import Dict

import pytest

from repro.harness import FIGURES, env_flag, env_int, run_figure
from repro.harness.experiments import FigureResult, figure7_specs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_figure_cache: Dict[str, FigureResult] = {}


def bench_jobs() -> int:
    """Worker count for bench figure runs (``REPRO_BENCH_JOBS``).

    A malformed value (``"four"``, ``"-2"``) warns and falls back to
    the sequential default instead of being silently swallowed.
    """
    return env_int("REPRO_BENCH_JOBS", 1)


def bench_cache() -> bool:
    """Whether bench runs use the on-disk cache (``REPRO_BENCH_CACHE``).

    Accepts the same boolean spellings as every other harness flag
    (``1/0``, ``true/false``, ``yes/no``, ``on/off``); a malformed
    value warns and reads as disabled rather than silently disagreeing
    with how the harness treats the variable elsewhere.
    """
    return env_flag("REPRO_BENCH_CACHE", False)


def get_figure(figure_id: str) -> FigureResult:
    """Run (or fetch the memoised run of) one figure at bench scale."""
    if figure_id not in _figure_cache:
        kwargs = dict(jobs=bench_jobs(), cache=bench_cache())
        if figure_id.startswith("fig7"):
            for spec in figure7_specs():
                if spec.figure_id == figure_id:
                    _figure_cache[figure_id] = run_figure(spec, **kwargs)
                    break
            else:  # pragma: no cover - registry bug guard
                raise KeyError(figure_id)
        else:
            _figure_cache[figure_id] = run_figure(
                FIGURES[figure_id](), **kwargs
            )
    return _figure_cache[figure_id]


def publish(name: str, text: str) -> None:
    """Write a report file and echo it for the console log."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def figure():
    """Accessor fixture: ``figure('fig2')`` -> FigureResult."""
    return get_figure
