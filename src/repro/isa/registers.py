"""Register-file definitions for the repro mini-ISA.

The ISA has 32 general-purpose integer registers (``r0``..``r31``) and 32
floating-point registers (``f0``..``f31``), mirroring the register
configuration in Table 1 of the REESE paper ("32 GP, 32 FP").

Throughout the code base registers are referred to by a *unified index*:
integer registers occupy indices ``0..31`` and floating-point registers
occupy ``32..63``.  A single flat namespace keeps register renaming, the
RUU create vector, and dependence tracking uniform across the two files.

``r0`` is hard-wired to zero: writes to it are discarded and reads always
return 0, as in MIPS.  By software convention ``r29`` is the stack pointer
and ``r31`` the link register (written by ``jal``/``jalr``).
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Unified index of the first floating-point register.
FP_BASE = NUM_INT_REGS

#: The hard-wired zero register.
REG_ZERO = 0

#: Software-convention aliases (unified indices).
REG_SP = 29
REG_FP = 30
REG_RA = 31

#: Sentinel meaning "no register" in an instruction operand slot.
NO_REG = -1

#: Human-readable aliases accepted by the assembler.
_ALIASES = {
    "zero": REG_ZERO,
    "sp": REG_SP,
    "fp": REG_FP,
    "ra": REG_RA,
}


def reg_name(index: int) -> str:
    """Return the canonical assembly name for a unified register index."""
    if index == NO_REG:
        return "-"
    if 0 <= index < NUM_INT_REGS:
        return f"r{index}"
    if FP_BASE <= index < NUM_REGS:
        return f"f{index - FP_BASE}"
    raise ValueError(f"register index out of range: {index}")


def parse_reg(name: str) -> int:
    """Parse an assembly register name into its unified index.

    Accepts ``rN`` (integer), ``fN`` (floating point), and the aliases
    ``zero``, ``sp``, ``fp`` and ``ra``.

    Raises:
        ValueError: if the name is not a valid register.
    """
    name = name.strip().lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if len(name) >= 2 and name[0] in ("r", "f") and name[1:].isdigit():
        num = int(name[1:])
        if name[0] == "r" and 0 <= num < NUM_INT_REGS:
            return num
        if name[0] == "f" and 0 <= num < NUM_FP_REGS:
            return FP_BASE + num
    raise ValueError(f"not a register: {name!r}")


def is_fp_reg(index: int) -> bool:
    """True if the unified index names a floating-point register."""
    return FP_BASE <= index < NUM_REGS
