"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Commands default to caching; keep test cache out of the repo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_flag(self):
        args = build_parser().parse_args(["--scale", "500", "list"])
        assert args.scale == 500

    def test_jobs_and_cache_flags(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "--no-cache", "list"]
        )
        assert args.jobs == 4
        assert args.no_cache

    def test_jobs_defaults_to_all_cores(self):
        args = build_parser().parse_args(["list"])
        assert args.jobs is None
        assert not args.no_cache

    def test_bench_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "mcf"])

    def test_figure_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])

    def test_sample_flags(self):
        args = build_parser().parse_args(
            ["--sample", "20", "--sample-interval", "250",
             "--sample-warmup", "60", "list"]
        )
        assert args.sample == 20
        assert args.sample_interval == 250
        assert args.sample_warmup == 60

    def test_sample_defaults_off(self):
        args = build_parser().parse_args(["list"])
        assert args.sample is None
        assert args.sample_interval == 300
        assert args.sample_warmup == 50


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "vortex" in out
        assert "scrabbl.pl" in out  # Table 2 provenance

    def test_bench(self, capsys):
        assert main(["--scale", "1200", "bench", "go"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "reese" in out
        assert "IPC ratio" in out

    def test_faults(self, capsys):
        code = main([
            "--scale", "1500", "faults",
            "--benchmark", "vortex", "--rate", "0.002", "--duration", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "errors detected" in out

    def test_figure_runs_small(self, capsys, monkeypatch):
        # Keep runtime sane: tiny scale; full 6-benchmark figure.
        assert main(["--scale", "800", "figure", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "AV." in out
        assert "Baseline" in out

    def test_figure_parallel_matches_sequential(self, capsys):
        assert main(["--scale", "800", "--jobs", "1", "--no-cache",
                     "figure", "fig2"]) == 0
        sequential = capsys.readouterr().out
        assert main(["--scale", "800", "--jobs", "2", "--no-cache",
                     "figure", "fig2"]) == 0
        parallel = capsys.readouterr().out
        assert sequential == parallel

    def test_figure_telemetry_on_stderr(self, capsys):
        assert main(["--scale", "800", "--jobs", "2", "figure", "fig2"]) == 0
        captured = capsys.readouterr()
        assert "[parallel]" in captured.err

    def test_bench_sampled(self, capsys):
        assert main(["--scale", "2000", "--sample", "4",
                     "--sample-interval", "120", "bench", "li"]) == 0
        out = capsys.readouterr().out
        assert "sampled 4x120" in out
        assert "IPC ratio" in out

    def test_figure_sampled_parallel_matches_sequential(self, capsys):
        base = ["--scale", "1500", "--no-cache", "--sample", "3",
                "--sample-interval", "100"]
        assert main(base + ["--jobs", "1", "figure", "fig2"]) == 0
        sequential = capsys.readouterr().out
        assert main(base + ["--jobs", "2", "figure", "fig2"]) == 0
        parallel = capsys.readouterr().out
        assert sequential == parallel

    def test_faults_sampled(self, capsys):
        code = main([
            "--scale", "1500", "--sample", "3", "--sample-interval", "100",
            "faults", "--benchmark", "vortex", "--rate", "0.002",
            "--duration", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "errors detected" in out
        assert "sampled 3x100" in out

    def test_sweep_runs_small(self, capsys):
        assert main(["--scale", "600", "--jobs", "2", "sweep",
                     "--max-alu", "0", "--max-mult", "0"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "reese+0alu+0mult" in out

    def test_campaign_runs_small(self, capsys):
        assert main(["--scale", "2500", "--jobs", "2", "campaign", "gcc",
                     "--runs", "8"]) == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out

    def test_campaign_static_oracle(self, capsys):
        assert main(["--scale", "1000", "campaign", "gcc",
                     "--static-oracle", "--runs", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "site campaign" in out
        assert "oracle: 0 mismatches" in out

    def test_campaign_skip_dead(self, capsys):
        assert main(["--scale", "1000", "campaign", "gcc",
                     "--skip-dead", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "settled statically" in out

    def test_campaign_sites_export(self, capsys, tmp_path):
        out_dir = str(tmp_path / "results")
        assert main(["--scale", "1000", "campaign", "gcc", "--sites",
                     "--runs", "6", "--export", out_dir]) == 0
        out = capsys.readouterr().out
        assert "wrote json" in out and "wrote csv" in out

    def test_oracle_and_skip_dead_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "gcc", "--static-oracle", "--skip-dead"]
            )

    def test_analyze(self, capsys):
        assert main(["--scale", "1000", "analyze", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "static analysis" in out
        assert "site class" in out

    def test_analyze_all_covers_suite(self, capsys):
        from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS

        assert main(["--scale", "1000", "analyze", "all"]) == 0
        out = capsys.readouterr().out
        for name in BENCHMARK_ORDER:
            assert BENCHMARKS[name].build(scale=1000).name in out

    def test_analyze_second_run_is_cached(self, capsys):
        assert main(["--scale", "1000", "analyze", "go"]) == 0
        capsys.readouterr()
        assert main(["--scale", "1000", "analyze", "go"]) == 0
        assert "(cached;" in capsys.readouterr().out

    def test_lint_suite_is_clean(self, capsys):
        assert main(["--scale", "1000", "lint", "all"]) == 0
        out = capsys.readouterr().out
        assert "NOT CLEAN" not in out

    def test_lint_verbose_shows_info(self, capsys):
        assert main(["--scale", "1000", "lint", "gcc",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "hidden" not in out
