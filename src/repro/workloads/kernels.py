"""A library of small, verifiable assembly kernels.

These kernels serve three purposes:

* **emulator validation** — each has a pure-Python reference
  (``*_expected``) so tests can check architectural results exactly;
* **building blocks** for examples and for the SPEC95-proxy workloads;
* **micro-workloads** for targeted pipeline tests (a serial chain, an
  ILP-rich block, a multiply-bound loop, ...).

All kernels end with ``halt`` and write their headline result with
``putint`` so callers can assert on ``EmulationResult.output``.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..isa.assembler import assemble
from ..isa.program import Program


def vector_sum(n: int = 64, seed: int = 11) -> Tuple[Program, int]:
    """Sum an n-element random vector; returns (program, expected sum)."""
    rng = random.Random(seed)
    values = [rng.randrange(-1000, 1000) for _ in range(n)]
    words = ", ".join(str(v) for v in values)
    source = f"""
    .data
    vec: .word {words}
    .text
    main:
        la   r1, vec
        li   r2, {n}
        li   r3, 0
    loop:
        lw   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 4
        subi r2, r2, 1
        bnez r2, loop
        putint r3
        halt
    """
    return assemble(source, name=f"vector_sum_{n}"), sum(values)


def fibonacci(n: int = 20) -> Tuple[Program, int]:
    """Iterative Fibonacci; returns (program, fib(n) mod 2**32 signed)."""
    source = f"""
    .text
    main:
        li   r1, {n}
        li   r2, 0       # fib(0)
        li   r3, 1       # fib(1)
    loop:
        beqz r1, done
        add  r4, r2, r3
        mov  r2, r3
        mov  r3, r4
        subi r1, r1, 1
        j    loop
    done:
        putint r2
        halt
    """
    a, b = 0, 1
    for _ in range(n):
        a, b = b, (a + b)
    expected = ((a & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000
    return assemble(source, name=f"fibonacci_{n}"), expected


def fib_recursive(n: int = 12) -> Tuple[Program, int]:
    """Naive recursive Fibonacci — call/return and stack heavy."""
    source = f"""
    .text
    main:
        li   r1, {n}
        call fib
        putint r2
        halt
    fib:                    # arg r1, result r2
        li   r5, 2
        blt  r1, r5, base
        subi sp, sp, 12
        sw   ra, 0(sp)
        sw   r16, 4(sp)
        sw   r17, 8(sp)
        mov  r16, r1
        subi r1, r16, 1
        call fib
        mov  r17, r2
        subi r1, r16, 2
        call fib
        add  r2, r17, r2
        lw   ra, 0(sp)
        lw   r16, 4(sp)
        lw   r17, 8(sp)
        addi sp, sp, 12
        ret
    base:
        mov  r2, r1
        ret
    """
    def fib(k: int) -> int:
        return k if k < 2 else fib(k - 1) + fib(k - 2)
    return assemble(source, name=f"fib_recursive_{n}"), fib(n)


def bubble_sort(n: int = 32, seed: int = 3) -> Tuple[Program, List[int]]:
    """Bubble-sort a random array in memory; returns (program, sorted)."""
    rng = random.Random(seed)
    values = [rng.randrange(0, 10000) for _ in range(n)]
    words = ", ".join(str(v) for v in values)
    source = f"""
    .data
    arr: .word {words}
    .text
    main:
        li   r1, {n - 1}        # outer remaining
    outer:
        beqz r1, done
        la   r2, arr
        mov  r3, r1             # inner count
    inner:
        lw   r4, 0(r2)
        lw   r5, 4(r2)
        ble  r4, r5, noswap
        sw   r5, 0(r2)
        sw   r4, 4(r2)
    noswap:
        addi r2, r2, 4
        subi r3, r3, 1
        bnez r3, inner
        subi r1, r1, 1
        j    outer
    done:
        la   r2, arr
        lw   r6, 0(r2)
        putint r6               # smallest element
        halt
    """
    return assemble(source, name=f"bubble_sort_{n}"), sorted(values)


def matmul(n: int = 8, seed: int = 5) -> Tuple[Program, int]:
    """n x n integer matrix multiply; returns (program, trace(C))."""
    rng = random.Random(seed)
    a = [[rng.randrange(-9, 10) for _ in range(n)] for _ in range(n)]
    b = [[rng.randrange(-9, 10) for _ in range(n)] for _ in range(n)]
    a_words = ", ".join(str(v) for row in a for v in row)
    b_words = ", ".join(str(v) for row in b for v in row)
    source = f"""
    .data
    mata: .word {a_words}
    matb: .word {b_words}
    matc: .space {4 * n * n}
    .text
    main:
        li   r1, 0              # i
    iloop:
        li   r2, 0              # j
    jloop:
        li   r3, 0              # k
        li   r4, 0              # acc
    kloop:
        # a[i][k]
        li   r5, {n}
        mul  r6, r1, r5
        add  r6, r6, r3
        slli r6, r6, 2
        la   r7, mata
        add  r7, r7, r6
        lw   r8, 0(r7)
        # b[k][j]
        mul  r9, r3, r5
        add  r9, r9, r2
        slli r9, r9, 2
        la   r10, matb
        add  r10, r10, r9
        lw   r11, 0(r10)
        mul  r12, r8, r11
        add  r4, r4, r12
        addi r3, r3, 1
        blt  r3, r5, kloop
        # c[i][j] = acc
        mul  r6, r1, r5
        add  r6, r6, r2
        slli r6, r6, 2
        la   r7, matc
        add  r7, r7, r6
        sw   r4, 0(r7)
        addi r2, r2, 1
        blt  r2, r5, jloop
        addi r1, r1, 1
        blt  r1, r5, iloop
        # trace(C)
        li   r1, 0
        li   r4, 0
        la   r7, matc
    tloop:
        li   r5, {n}
        mul  r6, r1, r5
        add  r6, r6, r1
        slli r6, r6, 2
        add  r8, r7, r6
        lw   r9, 0(r8)
        add  r4, r4, r9
        addi r1, r1, 1
        blt  r1, r5, tloop
        putint r4
        halt
    """
    c_trace = sum(
        sum(a[i][k] * b[k][i] for k in range(n)) for i in range(n)
    )
    return assemble(source, name=f"matmul_{n}"), c_trace


def string_hash(text: str = "the quick brown fox jumps") -> Tuple[Program, int]:
    """Byte-wise djb2-style hash over a string; exercises lb."""
    data = text.encode("ascii")
    words = []
    for i in range(0, len(data), 4):
        chunk = data[i:i + 4].ljust(4, b"\0")
        words.append(str(int.from_bytes(chunk, "little")))
    source = f"""
    .data
    str: .word {", ".join(words)}
    .text
    main:
        la   r1, str
        li   r2, {len(data)}
        li   r3, 5381
    loop:
        lbu  r4, 0(r1)
        slli r5, r3, 5
        add  r5, r5, r3
        add  r3, r5, r4
        addi r1, r1, 1
        subi r2, r2, 1
        bnez r2, loop
        putint r3
        halt
    """
    h = 5381
    for byte in data:
        h = (h * 33 + byte) & 0xFFFFFFFF
    expected = (h ^ 0x80000000) - 0x80000000
    return assemble(source, name="string_hash"), expected


def quicksort(n: int = 48, seed: int = 17) -> Tuple[Program, List[int]]:
    """Recursive quicksort (Lomuto partition) over a random array.

    Exercises deep recursion, the return-address stack, data-dependent
    branches and heavy stack traffic; returns (program, sorted values).
    The program prints the min and max elements as a checksum.
    """
    rng = random.Random(seed)
    values = [rng.randrange(0, 100_000) for _ in range(n)]
    words = ", ".join(str(v) for v in values)
    source = f"""
    .data
    arr: .word {words}
    .text
    main:
        la   r1, arr            # base pointer (global across recursion)
        li   r2, 0              # lo
        li   r3, {n - 1}        # hi
        call qsort
        la   r1, arr
        lw   r4, 0(r1)
        putint r4               # min after sorting
        lw   r5, {4 * (n - 1)}(r1)
        putint r5               # max after sorting
        halt

    qsort:                      # args r2=lo, r3=hi (word indices)
        bge  r2, r3, qdone
        subi sp, sp, 16
        sw   ra, 0(sp)
        sw   r16, 4(sp)
        sw   r17, 8(sp)
        sw   r18, 12(sp)
        mov  r16, r2            # lo
        mov  r17, r3            # hi
        # Lomuto partition with pivot = arr[hi]
        slli r4, r17, 2
        add  r4, r4, r1
        lw   r5, 0(r4)          # pivot value
        mov  r6, r16            # i (store slot)
        mov  r7, r16            # j (scan)
    ploop:
        bge  r7, r17, pdone
        slli r8, r7, 2
        add  r8, r8, r1
        lw   r9, 0(r8)
        bgt  r9, r5, pskip
        slli r10, r6, 2
        add  r10, r10, r1
        lw   r11, 0(r10)
        sw   r9, 0(r10)
        sw   r11, 0(r8)
        addi r6, r6, 1
    pskip:
        addi r7, r7, 1
        j    ploop
    pdone:
        slli r10, r6, 2
        add  r10, r10, r1
        lw   r11, 0(r10)
        slli r12, r17, 2
        add  r12, r12, r1
        lw   r13, 0(r12)
        sw   r13, 0(r10)
        sw   r11, 0(r12)
        mov  r18, r6            # pivot's final slot
        mov  r2, r16
        subi r3, r18, 1
        call qsort              # left half
        addi r2, r18, 1
        mov  r3, r17
        call qsort              # right half
        lw   ra, 0(sp)
        lw   r16, 4(sp)
        lw   r17, 8(sp)
        lw   r18, 12(sp)
        addi sp, sp, 16
    qdone:
        ret
    """
    return assemble(source, name=f"quicksort_{n}"), sorted(values)


def binary_search(n: int = 64, lookups: int = 40, seed: int = 23
                  ) -> Tuple[Program, int]:
    """Iterative binary search over a sorted table; returns hit count.

    Data-dependent but *convergent* branch behaviour — a different
    profile from the loop kernels.
    """
    rng = random.Random(seed)
    table = sorted(rng.sample(range(0, 10_000), n))
    keys = [
        rng.choice(table) if rng.random() < 0.5 else rng.randrange(10_000)
        for _ in range(lookups)
    ]
    expected = sum(1 for key in keys if key in set(table))
    source = f"""
    .data
    table: .word {", ".join(str(v) for v in table)}
    keys:  .word {", ".join(str(k) for k in keys)}
    .text
    main:
        la   r1, table
        la   r2, keys
        li   r3, {lookups}
        li   r9, 0              # hits
    next_key:
        lw   r4, 0(r2)          # key
        li   r5, 0              # lo
        li   r6, {n - 1}        # hi
    search:
        bgt  r5, r6, miss
        add  r7, r5, r6
        srli r7, r7, 1          # mid
        slli r8, r7, 2
        add  r8, r8, r1
        lw   r10, 0(r8)
        beq  r10, r4, hit
        blt  r10, r4, go_right
        subi r6, r7, 1
        j    search
    go_right:
        addi r5, r7, 1
        j    search
    hit:
        addi r9, r9, 1
    miss:
        addi r2, r2, 4
        subi r3, r3, 1
        bnez r3, next_key
        putint r9
        halt
    """
    return assemble(source, name=f"binary_search_{n}"), expected


def saxpy(n: int = 32, a: float = 2.5, seed: int = 13) -> Tuple[Program, List[float]]:
    """Single-precision a*x + y over two vectors; exercises the FP path.

    Returns (program, expected y values).  The expectation replicates
    the architecture's float32 store rounding (computation happens in
    double precision; ``swf`` rounds to float32).
    """
    import struct

    def f32(value: float) -> float:
        return struct.unpack("<f", struct.pack("<f", value))[0]

    rng = random.Random(seed)
    xs = [f32(rng.uniform(-100, 100)) for _ in range(n)]
    ys = [f32(rng.uniform(-100, 100)) for _ in range(n)]

    def bits(value: float) -> int:
        return struct.unpack("<I", struct.pack("<f", value))[0]

    x_words = ", ".join(str(bits(v)) for v in xs)
    y_words = ", ".join(str(bits(v)) for v in ys)
    a_bits = bits(a)
    source = f"""
    .data
    xv: .word {x_words}
    yv: .word {y_words}
    .text
    main:
        la   r1, xv
        la   r2, yv
        li   r3, {n}
        li   r4, {a_bits}
        # materialise the coefficient in an FP register via memory
        subi sp, sp, 4
        sw   r4, 0(sp)
        lwf  f1, 0(sp)
        addi sp, sp, 4
    loop:
        lwf  f2, 0(r1)
        lwf  f3, 0(r2)
        fmul f4, f2, f1
        fadd f5, f4, f3
        swf  f5, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        subi r3, r3, 1
        bnez r3, loop
        # checksum: integer view of the last element
        lw   r5, -4(r2)
        putint r5
        halt
    """
    a32 = f32(a)
    expected = [f32(x * a32 + y) for x, y in zip(xs, ys)]
    return assemble(source, name=f"saxpy_{n}"), expected


def serial_chain(n: int = 2000) -> Program:
    """A fully serial dependence chain — worst-case ILP (micro-workload)."""
    source = f"""
    .text
    main:
        li   r1, {n}
        li   r2, 1
    loop:
        addi r2, r2, 3
        xori r2, r2, 5
        slli r3, r2, 1
        sub  r2, r3, r2
        subi r1, r1, 1
        bnez r1, loop
        putint r2
        halt
    """
    return assemble(source, name=f"serial_chain_{n}")


def ilp_block(n: int = 500, chains: int = 6) -> Program:
    """``chains`` independent dependence chains — ILP-rich micro-workload."""
    if not 1 <= chains <= 12:
        raise ValueError("chains must be in [1, 12]")
    init = "\n".join(f"    li r{8 + c}, {c + 1}" for c in range(chains))
    body = "\n".join(
        f"    addi r{8 + c}, r{8 + c}, {c + 3}\n"
        f"    xori r{8 + c}, r{8 + c}, {c + 1}"
        for c in range(chains)
    )
    reduce = "\n".join(
        f"    add r2, r2, r{8 + c}" for c in range(chains)
    )
    source = f"""
    .text
    main:
        li   r1, {n}
        li   r2, 0
{init}
    loop:
{body}
        subi r1, r1, 1
        bnez r1, loop
{reduce}
        putint r2
        halt
    """
    return assemble(source, name=f"ilp_block_{chains}x{n}")


def multiply_bound(n: int = 1000) -> Program:
    """Back-to-back independent multiplies — stresses the mult unit."""
    source = f"""
    .text
    main:
        li   r1, {n}
        li   r2, 3
        li   r3, 5
        li   r4, 7
        li   r5, 11
        li   r9, 0
        li   r10, 0
        li   r11, 0
    loop:
        mul  r6, r2, r3
        mul  r7, r3, r4
        mul  r8, r4, r5
        add  r9, r9, r6
        add  r10, r10, r7
        add  r11, r11, r8
        subi r1, r1, 1
        bnez r1, loop
        add  r9, r9, r10
        add  r9, r9, r11
        putint r9
        halt
    """
    return assemble(source, name=f"multiply_bound_{n}")
