"""Experiment definitions: one spec per table/figure in the paper.

Each :class:`FigureSpec` names the machine configurations (series) and
benchmarks of one figure; :func:`run_figure` executes the cross product
and returns a :class:`FigureResult` whose rows mirror the paper's bar
groups (per-benchmark IPC plus the AVG group the paper emphasises).

Figure -> hardware map (paper §6):

* **Figure 2** — starting configuration (Table 1);
* **Figure 3** — RUU 32 / LSQ 16;
* **Figure 4** — 16-wide datapath (keeps RUU 32 / LSQ 16);
* **Figure 5** — 4 memory ports (on the 16-wide machine); the paper
  drops the ``R+2 ALU+1 Mult`` series here because it matched ``R+2``;
* **Figure 6** — summary: average IPC per hardware variation for
  baseline / REESE / REESE+2 ALU;
* **Figure 7** — RUU 64/256 (LSQ = RUU/2) with and without extra FUs,
  averages only.

Series naming follows the paper: ``Baseline``, ``REESE``, ``R+1 ALU``,
``R+2 ALU``, ``R+2+1 Mult``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..uarch.config import (
    MachineConfig,
    bigger_window_config,
    large_machine_config,
    more_mem_ports_config,
    starting_config,
    wide_datapath_config,
)
from ..uarch.sampling import SamplingSpec
from ..workloads.suite import BENCHMARK_ORDER
from .parallel import ParallelRunner, SimJob, resolve_runner, run_sampled_jobs
from .runner import bench_scale

#: The paper's series labels, in presentation order.
SERIES_BASELINE = "Baseline"
SERIES_REESE = "REESE"
SERIES_R1A = "R+1 ALU"
SERIES_R2A = "R+2 ALU"
SERIES_R2A1M = "R+2+1 Mult"


def _series_for(base: MachineConfig, labels: Sequence[str]):
    """Build (label, config) pairs from a base config and series labels."""
    spares = {
        SERIES_BASELINE: None,
        SERIES_REESE: (0, 0),
        SERIES_R1A: (1, 0),
        SERIES_R2A: (2, 0),
        SERIES_R2A1M: (2, 1),
    }
    out = []
    for label in labels:
        spec = spares[label]
        if spec is None:
            out.append((label, base.without_reese()))
        else:
            out.append((label, base.with_spares(*spec).with_reese()))
    return out


_ALL_SERIES = [SERIES_BASELINE, SERIES_REESE, SERIES_R1A, SERIES_R2A,
               SERIES_R2A1M]


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible figure: series x benchmarks."""

    figure_id: str
    title: str
    series: Tuple[Tuple[str, MachineConfig], ...]
    benchmarks: Tuple[str, ...] = tuple(BENCHMARK_ORDER)
    #: True for summary figures that only report the AVG group.
    averages_only: bool = False

    @property
    def series_labels(self) -> List[str]:
        return [label for label, _ in self.series]


@dataclass
class FigureResult:
    """Executed figure: IPC per (benchmark, series) plus averages."""

    spec: FigureSpec
    scale: int
    #: benchmark -> series label -> Stats (full runs) or
    #: :class:`~repro.uarch.sampling.SampledResult` (sampled runs);
    #: both expose the ``.ipc`` this class reads.
    cells: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def ipc(self, benchmark: str, label: str) -> float:
        return self.cells[benchmark][label].ipc

    def average_ipc(self, label: str) -> float:
        values = [self.cells[b][label].ipc for b in self.spec.benchmarks]
        return sum(values) / len(values)

    def gap(self, label: str, baseline: str = SERIES_BASELINE) -> float:
        """Average IPC deficit of a series relative to the baseline."""
        base = self.average_ipc(baseline)
        return 1.0 - self.average_ipc(label) / base if base else 0.0

    def rows(self) -> List[List[str]]:
        """Text-table rows: header, per-benchmark IPCs, AVG."""
        header = ["benchmark"] + list(self.spec.series_labels)
        body = []
        if not self.spec.averages_only:
            for bench in self.spec.benchmarks:
                body.append(
                    [bench]
                    + [f"{self.ipc(bench, lab):.3f}"
                       for lab in self.spec.series_labels]
                )
        body.append(
            ["AV."]
            + [f"{self.average_ipc(lab):.3f}"
               for lab in self.spec.series_labels]
        )
        return [header] + body


def figure2_spec() -> FigureSpec:
    """Fig. 2: initial comparison between REESE and baseline."""
    return FigureSpec(
        "fig2",
        "Initial comparison (Table 1 starting configuration)",
        tuple(_series_for(starting_config(), _ALL_SERIES)),
    )


def figure3_spec() -> FigureSpec:
    """Fig. 3: RUU size = 32 and LSQ size = 16."""
    return FigureSpec(
        "fig3",
        "RUU = 32 / LSQ = 16",
        tuple(_series_for(bigger_window_config(), _ALL_SERIES)),
    )


def figure4_spec() -> FigureSpec:
    """Fig. 4: IPC for a 16-wide datapath."""
    return FigureSpec(
        "fig4",
        "16-wide datapath",
        tuple(_series_for(wide_datapath_config(), _ALL_SERIES)),
    )


def figure5_spec() -> FigureSpec:
    """Fig. 5: additional memory ports (R+2+1 Mult dropped, as in paper)."""
    return FigureSpec(
        "fig5",
        "4 memory ports",
        tuple(
            _series_for(
                more_mem_ports_config(),
                [SERIES_BASELINE, SERIES_REESE, SERIES_R1A, SERIES_R2A],
            )
        ),
    )


def figure6_spec() -> FigureSpec:
    """Fig. 6: summary of results across hardware variations.

    The paper's x-axis: None, RUU/LSQ 2X, Ex.Q (execution width) 2X,
    MemPorts 2X; three bars per group (baseline / REESE / REESE+2ALU).
    We encode each group as a separate sub-run and report averages; see
    :func:`run_summary_figure`.
    """
    raise NotImplementedError("use run_summary_figure() for fig6")


def figure7_specs() -> List[FigureSpec]:
    """Fig. 7: large machines (averages only, four hardware points)."""
    specs = []
    for ruu_size in (64, 256):
        for extra in (False, True):
            base = large_machine_config(ruu_size, extra)
            specs.append(
                FigureSpec(
                    f"fig7-{base.name}",
                    f"Large machine {base.name}",
                    tuple(
                        _series_for(
                            base,
                            [SERIES_BASELINE, SERIES_REESE, SERIES_R2A],
                        )
                    ),
                    averages_only=True,
                )
            )
    return specs


#: Fig. 6 hardware variations, in the paper's x-axis order.
FIG6_VARIATIONS: List[Tuple[str, Callable[[], MachineConfig]]] = [
    ("None", starting_config),
    ("RUU,LSQ 2X", bigger_window_config),
    ("Ex. Q 2X", wide_datapath_config),
    ("MemPorts 2X", more_mem_ports_config),
]


def run_figure(
    spec: FigureSpec,
    scale: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: bool = False,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[ParallelRunner] = None,
    sampling: Optional[SamplingSpec] = None,
) -> FigureResult:
    """Execute every (benchmark, series) cell of a figure.

    Cells fan out over :class:`~repro.harness.parallel.ParallelRunner`;
    the benchmark-major job order keeps consecutive jobs on the same
    trace so pool chunking preserves per-worker trace reuse.

    With ``sampling`` set, every cell runs the sampled engine instead
    of a full detailed simulation: cells hold
    :class:`~repro.uarch.sampling.SampledResult` values and the fan-out
    happens at measurement-interval granularity (every interval of
    every cell shares one job batch).
    """
    scale = scale or bench_scale()
    runner = resolve_runner(runner, jobs, cache, cache_dir)
    sim_jobs = [
        SimJob(bench, config, scale, seed=seed, sampling=sampling)
        for bench in spec.benchmarks
        for _, config in spec.series
    ]
    if sampling is not None:
        all_stats: List[object] = list(run_sampled_jobs(sim_jobs, runner))
    else:
        all_stats = list(runner.run(sim_jobs))
    result = FigureResult(spec, scale)
    cursor = 0
    for bench in spec.benchmarks:
        result.cells[bench] = {}
        for label, _ in spec.series:
            result.cells[bench][label] = all_stats[cursor]
            cursor += 1
    return result


def run_summary_figure(
    scale: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: bool = False,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[ParallelRunner] = None,
    sampling: Optional[SamplingSpec] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 6: average IPC per hardware variation per series.

    With ``sampling`` set, every cell uses the sampled engine's IPC
    estimate instead of a full detailed run.
    """
    scale = scale or bench_scale()
    runner = resolve_runner(runner, jobs, cache, cache_dir)
    grid: List[Tuple[str, str]] = []
    sim_jobs: List[SimJob] = []
    for variation, factory in FIG6_VARIATIONS:
        base = factory()
        for label, config in _series_for(
            base, [SERIES_BASELINE, SERIES_REESE, SERIES_R2A]
        ):
            for bench in BENCHMARK_ORDER:
                grid.append((variation, label))
                sim_jobs.append(SimJob(bench, config, scale,
                                       sampling=sampling))
    if sampling is not None:
        all_stats: Sequence[object] = run_sampled_jobs(sim_jobs, runner)
    else:
        all_stats = runner.run(sim_jobs)
    sums: Dict[Tuple[str, str], float] = {}
    for (variation, label), stats in zip(grid, all_stats):
        sums[(variation, label)] = sums.get((variation, label), 0.0) + stats.ipc
    summary: Dict[str, Dict[str, float]] = {}
    for (variation, label), total in sums.items():
        summary.setdefault(variation, {})[label] = total / len(BENCHMARK_ORDER)
    return summary


#: Registry used by the CLI and the benches.
FIGURES: Dict[str, Callable[[], FigureSpec]] = {
    "fig2": figure2_spec,
    "fig3": figure3_spec,
    "fig4": figure4_spec,
    "fig5": figure5_spec,
}
