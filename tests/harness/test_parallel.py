"""Tests for the parallel execution layer: jobs, fingerprints, cache, pool."""

import json

import pytest

from repro.harness.parallel import (
    CACHE_VERSION,
    FaultSpec,
    ParallelRunner,
    ResultCache,
    SimJob,
    derive_seed,
    job_fingerprint,
    parallel_map,
)
from repro.harness.campaign import _chunk_indices
from repro.reese.faults import BernoulliFaultModel, EnvironmentalFaultModel
from repro.uarch.config import starting_config
from repro.uarch.stats import Stats
from repro.workloads.suite import BENCHMARKS

TINY = 900  # dynamic instructions: enough to exercise the machinery


class TestSimJob:
    def test_resolved_seed_defaults_to_workload_seed(self):
        job = SimJob("go", starting_config(), TINY)
        assert job.resolved_seed() == BENCHMARKS["go"].default_seed

    def test_explicit_seed_wins(self):
        job = SimJob("go", starting_config(), TINY, seed=7)
        assert job.resolved_seed() == 7


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "go", 2) == derive_seed(1, "go", 2)

    def test_sensitive_to_every_part(self):
        seeds = {
            derive_seed(1, "go", 2),
            derive_seed(2, "go", 2),
            derive_seed(1, "gcc", 2),
            derive_seed(1, "go", 3),
        }
        assert len(seeds) == 4


class TestFingerprint:
    def test_stable_across_calls(self):
        a = SimJob("go", starting_config(), TINY)
        b = SimJob("go", starting_config(), TINY)
        assert job_fingerprint(a) == job_fingerprint(b)

    def test_config_name_is_cosmetic(self):
        a = SimJob("go", starting_config(), TINY)
        b = SimJob("go", starting_config().replace(name="renamed"), TINY)
        assert job_fingerprint(a) == job_fingerprint(b)

    def test_sensitive_fields_change_it(self):
        base = SimJob("go", starting_config(), TINY)
        variants = [
            SimJob("gcc", starting_config(), TINY),
            SimJob("go", starting_config(), TINY + 1),
            SimJob("go", starting_config(), TINY, seed=1),
            SimJob("go", starting_config().with_reese(), TINY),
            SimJob("go", starting_config(), TINY,
                   fault=FaultSpec.make("bernoulli", rate=1e-4, seed=5)),
            SimJob("go", starting_config(), TINY, warm=False),
        ]
        fingerprints = {job_fingerprint(v) for v in variants}
        assert job_fingerprint(base) not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_default_seed_and_explicit_default_seed_share_entry(self):
        implicit = SimJob("go", starting_config(), TINY)
        explicit = SimJob("go", starting_config(), TINY,
                          seed=BENCHMARKS["go"].default_seed)
        assert job_fingerprint(implicit) == job_fingerprint(explicit)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.make("cosmic-ray", rate=1.0)

    def test_builds_fresh_models(self):
        spec = FaultSpec.make("bernoulli", rate=1e-4, seed=5)
        first, second = spec.build(), spec.build()
        assert isinstance(first, BernoulliFaultModel)
        assert first is not second

    def test_environmental(self):
        spec = FaultSpec.make("environmental", rate=1e-3, duration=2, seed=9)
        assert isinstance(spec.build(), EnvironmentalFaultModel)


class TestResultCache:
    def _stats(self):
        stats = Stats()
        stats.cycles = 123
        stats.committed = 456
        stats.halted = True
        stats.fu_issues = {"int_alu": 7}
        stats.cache_stats = {"l1d": {"hit_rate": 0.75}}
        return stats

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, self._stats())
        loaded = cache.get("ab" * 32)
        assert loaded is not None
        assert loaded.to_dict() == self._stats().to_dict()

    def test_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" * 32) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for("ef" * 32)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get("ef" * 32) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, self._stats())
        path = cache.path_for("aa" * 32)
        data = json.loads(path.read_text())
        data["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(data))
        assert cache.get("aa" * 32) is None

    def test_unwritable_root_degrades_to_uncached(self, tmp_path):
        cache = ResultCache(tmp_path / "missing" / "nope")
        (tmp_path / "missing").write_text("a file, not a directory")
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put("ab" * 32, self._stats())
        # Only the first failure warns; later puts stay silent no-ops.
        cache.put("cd" * 32, self._stats())
        assert cache.get("ab" * 32) is None

    def test_env_var_selects_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        cache = ResultCache()
        assert str(cache.root) == str(tmp_path / "alt")


class TestParallelRunner:
    @pytest.fixture(scope="class")
    def sim_jobs(self):
        config = starting_config()
        return [
            SimJob("go", config, TINY),
            SimJob("go", config.with_reese(), TINY),
            SimJob("vortex", config, TINY),
        ]

    def test_results_in_input_order_and_worker_count_invariant(self, sim_jobs):
        seq = ParallelRunner(jobs=1, use_cache=False).run(sim_jobs)
        par = ParallelRunner(jobs=3, use_cache=False).run(sim_jobs)
        assert len(seq) == len(par) == len(sim_jobs)
        for a, b in zip(seq, par):
            assert a.to_dict() == b.to_dict()

    def test_cache_hits_and_telemetry(self, sim_jobs, tmp_path):
        runner = ParallelRunner(jobs=2, cache_dir=tmp_path)
        first = runner.run(sim_jobs)
        assert runner.telemetry.cache_hits == 0
        assert runner.telemetry.simulated == len(sim_jobs)
        second = runner.run(sim_jobs)
        assert runner.telemetry.cache_hits == len(sim_jobs)
        assert runner.telemetry.simulated == 0
        for a, b in zip(first, second):
            assert a.to_dict() == b.to_dict()

    def test_telemetry_records_cover_all_jobs(self, sim_jobs):
        runner = ParallelRunner(jobs=1, use_cache=False)
        runner.run(sim_jobs)
        telemetry = runner.telemetry
        assert [r.index for r in telemetry.records] == [0, 1, 2]
        assert all(not r.cached for r in telemetry.records)
        assert "3 jobs" in telemetry.summary()

    def test_faulted_job_deterministic_across_workers(self):
        job = SimJob(
            "perl", starting_config().with_reese(), 1500,
            fault=FaultSpec.make("environmental", rate=1e-3, duration=2,
                                 seed=77),
        )
        seq = ParallelRunner(jobs=1, use_cache=False).run([job, job])
        par = ParallelRunner(jobs=2, use_cache=False).run([job, job])
        assert seq[0].to_dict() == seq[1].to_dict()
        assert seq[0].to_dict() == par[0].to_dict() == par[1].to_dict()

    def test_empty_job_list(self):
        runner = ParallelRunner(jobs=2, use_cache=False)
        assert runner.run([]) == []
        assert runner.telemetry.jobs == 0


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(abs, [-3, -1, -2], jobs=2) == [3, 1, 2]

    def test_sequential_fallback(self):
        assert parallel_map(abs, [-5], jobs=4) == [5]


class TestCampaignChunking:
    def test_chunks_partition_index_space(self):
        chunks = _chunk_indices(50, 3)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(50))
        assert len(chunks) <= 12

    def test_more_jobs_than_runs(self):
        chunks = _chunk_indices(2, 8)
        assert [list(c) for c in chunks] == [[0], [1]]

    def test_zero_runs(self):
        assert _chunk_indices(0, 4) == []
