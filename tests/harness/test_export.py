"""Tests for machine-readable result export."""

import csv
import io
import json

import pytest

from repro.harness import run_figure
from repro.harness.experiments import SERIES_BASELINE, figure2_spec
from repro.harness.export import (
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    stats_to_dict,
    write_figure,
)
from repro.harness.runner import run_benchmark
from repro.uarch import starting_config


@pytest.fixture(scope="module")
def small_result():
    spec = figure2_spec()
    small = spec.__class__(
        spec.figure_id, spec.title, spec.series, benchmarks=("go", "vortex")
    )
    return run_figure(small, scale=1000)


class TestStatsExport:
    def test_json_serialisable(self):
        stats = run_benchmark("go", starting_config(), scale=800)
        payload = stats_to_dict(stats)
        text = json.dumps(payload)  # must not raise
        assert "ipc" in payload
        assert json.loads(text)["committed"] == stats.committed


class TestFigureExport:
    def test_dict_structure(self, small_result):
        data = figure_to_dict(small_result)
        assert data["figure"] == "fig2"
        assert data["benchmarks"] == ["go", "vortex"]
        assert SERIES_BASELINE in data["average_ipc"]
        assert SERIES_BASELINE not in data["gap_vs_baseline"]
        assert data["cells"]["go"]["REESE"]["committed"] > 0

    def test_json_roundtrip(self, small_result):
        data = json.loads(figure_to_json(small_result))
        assert data["scale"] == 1000

    def test_csv_grid(self, small_result):
        rows = list(csv.reader(io.StringIO(figure_to_csv(small_result))))
        assert rows[0][0] == "benchmark"
        assert rows[-1][0] == "AVG"
        assert len(rows) == 1 + 2 + 1
        # IPC cells parse as floats.
        float(rows[1][1])

    def test_write_figure(self, small_result, tmp_path):
        written = write_figure(small_result, str(tmp_path))
        assert set(written) == {"json", "csv"}
        assert (tmp_path / "fig2.json").exists()
        assert (tmp_path / "fig2.csv").exists()

    def test_write_rejects_unknown_format(self, small_result, tmp_path):
        with pytest.raises(ValueError):
            write_figure(small_result, str(tmp_path), formats=("xml",))
