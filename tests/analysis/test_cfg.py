"""CFG recovery: known-answer tests on hand-written programs."""

import pytest

from repro.isa import assemble
from repro.analysis.cfg import (
    build_cfg,
    call_return_points,
    instruction_successors,
)

LOOP_SOURCE = """
main:
    li   r1, 100
    li   r2, 0
loop:
    add  r2, r2, r1
    subi r1, r1, 1
    bnez r1, loop
    putint r2
    halt
"""

DIAMOND_SOURCE = """
main:
    li   r1, 5
    beqz r1, else
    li   r2, 1
    j    join
else:
    li   r2, 2
join:
    putint r2
    halt
dead:
    li   r3, 9
    halt
"""

CALL_SOURCE = """
main:
    li   r4, 7
    call square
    putint r5
    halt
square:
    mul  r5, r4, r4
    ret
"""


@pytest.fixture
def loop_cfg():
    return build_cfg(assemble(LOOP_SOURCE, name="loop"))


@pytest.fixture
def diamond_cfg():
    return build_cfg(assemble(DIAMOND_SOURCE, name="diamond"))


class TestBlocks:
    def test_loop_block_boundaries(self, loop_cfg):
        spans = [(b.start, b.end) for b in loop_cfg.blocks]
        assert spans == [(0, 2), (2, 5), (5, 7)]

    def test_block_of_covers_every_instruction(self, loop_cfg):
        assert loop_cfg.block_of == {
            0: 0, 1: 0, 2: 1, 3: 1, 4: 1, 5: 2, 6: 2,
        }

    def test_loop_edges(self, loop_cfg):
        assert set(loop_cfg.blocks[0].succs) == {1}
        assert set(loop_cfg.blocks[1].succs) == {1, 2}
        assert loop_cfg.blocks[2].succs == []
        assert loop_cfg.edge_count() == 3

    def test_diamond_block_boundaries(self, diamond_cfg):
        spans = [(b.start, b.end) for b in diamond_cfg.blocks]
        assert spans == [(0, 2), (2, 4), (4, 5), (5, 7), (7, 9)]

    def test_diamond_edges(self, diamond_cfg):
        assert set(diamond_cfg.blocks[0].succs) == {1, 2}
        assert set(diamond_cfg.blocks[1].succs) == {3}
        assert set(diamond_cfg.blocks[2].succs) == {3}
        assert diamond_cfg.blocks[3].succs == []

    def test_preds_mirror_succs(self, diamond_cfg):
        for block in diamond_cfg.blocks:
            for succ in block.succs:
                assert block.id in diamond_cfg.blocks[succ].preds


class TestReachability:
    def test_loop_fully_reachable(self, loop_cfg):
        assert loop_cfg.reachable == {0, 1, 2}
        assert loop_cfg.unreachable_blocks() == []

    def test_diamond_dead_tail(self, diamond_cfg):
        assert diamond_cfg.reachable == {0, 1, 2, 3}
        dead = diamond_cfg.unreachable_blocks()
        assert [b.start for b in dead] == [7]


class TestDominators:
    def test_loop_dominator_tree(self, loop_cfg):
        assert loop_cfg.idom == {0: 0, 1: 0, 2: 1}

    def test_diamond_join_dominated_by_entry_only(self, diamond_cfg):
        assert diamond_cfg.idom[3] == 0
        assert diamond_cfg.dominates(0, 3)
        assert not diamond_cfg.dominates(1, 3)
        assert not diamond_cfg.dominates(2, 3)

    def test_unreachable_blocks_have_no_idom(self, diamond_cfg):
        assert 4 not in diamond_cfg.idom

    def test_dominates_is_reflexive(self, loop_cfg):
        for bid in loop_cfg.reachable:
            assert loop_cfg.dominates(bid, bid)


class TestLoops:
    def test_loop_detected(self, loop_cfg):
        assert len(loop_cfg.loops) == 1
        loop = loop_cfg.loops[0]
        assert loop.header == 1
        assert loop.tail == 1
        assert loop.body == {1}

    def test_diamond_has_no_loops(self, diamond_cfg):
        assert diamond_cfg.loops == []

    def test_nested_loop_bodies(self):
        cfg = build_cfg(assemble("""
        main:
            li   r1, 3
        outer:
            li   r2, 3
        inner:
            subi r2, r2, 1
            bnez r2, inner
            subi r1, r1, 1
            bnez r1, outer
            halt
        """, name="nested"))
        assert len(cfg.loops) == 2
        bodies = sorted(len(loop.body) for loop in cfg.loops)
        # Inner loop is one block; the outer body contains the inner.
        assert bodies[0] < bodies[1]


class TestIndirectJumps:
    def test_call_return_points(self):
        program = assemble(CALL_SOURCE, name="call")
        assert call_return_points(program) == (2,)

    def test_ret_targets_return_points(self):
        program = assemble(CALL_SOURCE, name="call")
        assert instruction_successors(program, 5, (2,)) == (2,)

    def test_call_graph_shape(self):
        cfg = build_cfg(assemble(CALL_SOURCE, name="call"))
        spans = [(b.start, b.end) for b in cfg.blocks]
        assert spans == [(0, 2), (2, 4), (4, 6)]
        assert set(cfg.blocks[0].succs) == {2}   # jal -> square
        assert set(cfg.blocks[2].succs) == {1}   # ret -> return point
        assert cfg.reachable == {0, 1, 2}

    def test_indirect_without_calls_targets_all_labels(self):
        program = assemble("""
        main:
            li r1, 0
            jr r1
        end:
            halt
        """, name="indirect")
        assert call_return_points(program) == ()
        # Falls back to every label: main=0, end=2.
        assert instruction_successors(program, 1, ()) == (0, 2)


class TestHaltAndStraightLine:
    def test_halt_has_no_successors(self, loop_cfg):
        assert instruction_successors(loop_cfg.program, 6, ()) == ()

    def test_straight_line_is_one_block(self):
        cfg = build_cfg(assemble("""
        main:
            li r1, 1
            addi r1, r1, 2
            putint r1
            halt
        """, name="straight"))
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].succs == []
        assert cfg.loops == []
