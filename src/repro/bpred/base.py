"""Branch-direction predictor interface.

Predictors are consulted at fetch for conditional branches only;
unconditional control transfers are handled structurally (direct
targets come from the instruction word, returns from the RAS, other
indirect jumps from the BTB).

The interface is deliberately two-phase:

* :meth:`DirectionPredictor.predict` returns the predicted direction
  for a branch at byte PC ``pc``;
* :meth:`DirectionPredictor.update` trains the predictor with the
  resolved outcome.

The timing models call ``update`` immediately after ``predict`` (at
fetch time, using the trace's ground truth).  This is the standard
trace-driven "oracle update timing" simplification; it slightly favours
prediction accuracy but does so identically for the baseline and REESE
models, so relative comparisons are unaffected.  See DESIGN.md §5.
"""

from __future__ import annotations

import abc
import copy


class DirectionPredictor(abc.ABC):
    """Predicts taken/not-taken for conditional branches."""

    def __init__(self) -> None:
        self.lookups = 0
        self.correct = 0

    def clone_state(self) -> "DirectionPredictor":
        """An independent copy of tables, history and accuracy counters.

        Every concrete predictor keeps its state in scalars and flat
        lists of ints, so a shallow copy with list re-copies is a full
        snapshot; predictors holding sub-predictors (the combining
        predictor) override this.  Used by the sampled-simulation
        engine to snapshot warm state at interval boundaries.
        """
        clone = copy.copy(self)
        for name, value in vars(self).items():
            if isinstance(value, list):
                setattr(clone, name, list(value))
        return clone

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved direction of the branch at ``pc``."""

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, record accuracy, then train; returns the prediction."""
        prediction = self.predict(pc)
        self.lookups += 1
        if prediction == taken:
            self.correct += 1
        self.update(pc, taken)
        return prediction

    @property
    def accuracy(self) -> float:
        """Fraction of correct direction predictions so far."""
        return self.correct / self.lookups if self.lookups else 0.0


class _Counter2:
    """Helpers for 2-bit saturating counters packed in lists of ints."""

    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2

    @staticmethod
    def is_taken(counter: int) -> bool:
        return counter >= 2

    @staticmethod
    def train(counter: int, taken: bool) -> int:
        if taken:
            return min(counter + 1, 3)
        return max(counter - 1, 0)
