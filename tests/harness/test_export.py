"""Tests for machine-readable result export."""

import csv
import io
import json

import pytest

from repro.harness import run_figure
from repro.harness.experiments import SERIES_BASELINE, figure2_spec
from repro.harness.export import (
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    stats_to_dict,
    write_figure,
)
from repro.harness.runner import run_benchmark
from repro.uarch import starting_config


@pytest.fixture(scope="module")
def small_result():
    spec = figure2_spec()
    small = spec.__class__(
        spec.figure_id, spec.title, spec.series, benchmarks=("go", "vortex")
    )
    return run_figure(small, scale=1000)


class TestStatsExport:
    def test_json_serialisable(self):
        stats = run_benchmark("go", starting_config(), scale=800)
        payload = stats_to_dict(stats)
        text = json.dumps(payload)  # must not raise
        assert "ipc" in payload
        assert json.loads(text)["committed"] == stats.committed


class TestFigureExport:
    def test_dict_structure(self, small_result):
        data = figure_to_dict(small_result)
        assert data["figure"] == "fig2"
        assert data["benchmarks"] == ["go", "vortex"]
        assert SERIES_BASELINE in data["average_ipc"]
        assert SERIES_BASELINE not in data["gap_vs_baseline"]
        assert data["cells"]["go"]["REESE"]["committed"] > 0

    def test_json_roundtrip(self, small_result):
        data = json.loads(figure_to_json(small_result))
        assert data["scale"] == 1000

    def test_csv_grid(self, small_result):
        rows = list(csv.reader(io.StringIO(figure_to_csv(small_result))))
        assert rows[0][0] == "benchmark"
        assert rows[-1][0] == "AVG"
        assert len(rows) == 1 + 2 + 1
        # IPC cells parse as floats.
        float(rows[1][1])

    def test_write_figure(self, small_result, tmp_path):
        written = write_figure(small_result, str(tmp_path))
        assert set(written) == {"json", "csv"}
        assert (tmp_path / "fig2.json").exists()
        assert (tmp_path / "fig2.csv").exists()

    def test_write_rejects_unknown_format(self, small_result, tmp_path):
        with pytest.raises(ValueError):
            write_figure(small_result, str(tmp_path), formats=("xml",))


@pytest.fixture(scope="module")
def site_result():
    from repro.isa import assemble
    from repro.harness.campaign import run_site_campaign

    program = assemble("""
    main:
        li r9, 3
        li r1, 5
        putint r1
        halt
    """, name="tiny")
    return run_site_campaign(program, runs=6, seed=0,
                             use_analysis_cache=False)


class TestAnalysisExport:
    def test_dict_structure(self):
        from repro.isa import assemble
        from repro.analysis import analyze_program
        from repro.harness.export import analysis_to_dict

        program = assemble("""
        main:
            li r1, 2
            putint r1
            halt
        """, name="tiny")
        data = analysis_to_dict(analyze_program(program, use_cache=False))
        assert data["program_name"] == "tiny"
        assert data["clean"] is True
        assert data["class_counts"]["live"] == 1
        json.dumps(data)  # JSON-safe


class TestSiteCampaignExport:
    def test_dict_structure(self, site_result):
        from repro.harness.export import site_campaign_to_dict

        data = site_campaign_to_dict(site_result)
        assert data["program"] == "tiny"
        assert data["runs"] == 6
        assert set(data["by_class"]) == {"dead", "live", "control"}
        assert data["mismatches"] == []
        json.dumps(data)

    def test_csv_grid(self, site_result):
        from repro.harness.export import site_campaign_to_csv

        rows = list(csv.reader(io.StringIO(
            site_campaign_to_csv(site_result)
        )))
        assert rows[0][:2] == ["class", "pool"]
        assert [row[0] for row in rows[1:]] == ["dead", "live", "control"]
        assert rows[0][-1] == "visible"

    def test_write_site_campaign(self, site_result, tmp_path):
        from repro.harness.export import write_site_campaign

        written = write_site_campaign(site_result, str(tmp_path))
        assert set(written) == {"json", "csv"}
        assert (tmp_path / "sites_tiny.json").exists()
        assert (tmp_path / "sites_tiny.csv").exists()

    def test_write_rejects_unknown_format(self, site_result, tmp_path):
        from repro.harness.export import write_site_campaign

        with pytest.raises(ValueError):
            write_site_campaign(site_result, str(tmp_path),
                                formats=("xml",))
