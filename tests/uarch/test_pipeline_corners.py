"""Pipeline corner cases: RAS depth, indirect jumps, structural edges."""

import pytest

from repro.arch import emulate
from repro.isa import assemble
from repro.uarch import Pipeline, starting_config
from repro.workloads import kernels


def run(program, config, max_instructions=500_000, **kwargs):
    result = emulate(program, max_instructions=max_instructions)
    stats = Pipeline(program, result.trace, config, **kwargs).run()
    assert stats.committed == len(result.trace)
    return stats


class TestDeepRecursion:
    def test_quicksort_through_pipeline(self, cfg):
        program, _ = kernels.quicksort(40, seed=2)
        stats = run(program, cfg)
        assert stats.halted

    def test_ras_overflow_still_correct(self):
        # Recursion deeper than the RAS: returns mispredict but commit
        # correctness is unaffected.
        shallow_ras = starting_config().replace(ras_depth=2)
        program, _ = kernels.fib_recursive(10)
        deep = run(program, shallow_ras)
        normal = run(program, starting_config())
        assert deep.committed == normal.committed
        assert deep.mispredictions >= normal.mispredictions

    def test_reese_through_deep_recursion(self, cfg):
        program, _ = kernels.quicksort(32, seed=6)
        stats = run(program, cfg.with_reese())
        assert stats.halted


class TestIndirectJumps:
    def test_jalr_indirect_call_predicted_by_btb(self, cfg):
        # A repeated indirect call through a function pointer: the BTB
        # learns the target after the first trip.
        program = assemble("""
        .data
        fptr: .space 4
        .text
        main:
            la   r1, fn
            la   r2, fptr
            sw   r1, 0(r2)
            li   r3, 60
        loop:
            lw   r4, 0(r2)
            jalr r31, r4
            subi r3, r3, 1
            bnez r3, loop
            halt
        fn:
            addi r5, r5, 1
            ret
        """)
        stats = run(program, cfg)
        # After warm-up, indirect targets come from the BTB: the
        # misprediction count stays far below the call count.
        assert stats.mispredictions < 30

    def test_jr_through_table(self, cfg):
        # Computed goto via jump table: jr to data-loaded addresses.
        program = assemble("""
        .data
        table: .space 8
        .text
        main:
            la   r1, table
            la   r2, case0
            sw   r2, 0(r1)
            la   r3, case1
            sw   r3, 4(r1)
            li   r4, 40
            li   r9, 0
        loop:
            andi r5, r4, 1
            slli r5, r5, 2
            add  r6, r1, r5
            lw   r7, 0(r6)
            jr   r7
        case0:
            addi r9, r9, 1
            j    merge
        case1:
            addi r9, r9, 2
        merge:
            subi r4, r4, 1
            bnez r4, loop
            putint r9
            halt
        """)
        stats = run(program, cfg)
        assert stats.halted


class TestStructuralEdges:
    def test_tiny_fetch_queue(self, cfg):
        program, _ = kernels.vector_sum(64)
        stats = run(program, cfg.replace(fetch_queue_size=2))
        assert stats.halted

    def test_single_wide_machine(self):
        narrow = starting_config().replace(
            fetch_width=1, decode_width=1, issue_width=1, commit_width=1,
            ruu_size=4, lsq_size=2,
        )
        program, _ = kernels.fibonacci(100)
        stats = run(program, narrow)
        assert stats.ipc <= 1.0

    def test_tlb_disabled_machine(self, cfg):
        from repro.memhier import MemHierParams
        no_tlb = cfg.replace(mem=MemHierParams(use_tlb=False))
        program, _ = kernels.vector_sum(64)
        stats = run(program, no_tlb)
        assert "dtlb" not in stats.cache_stats

    @pytest.mark.parametrize("kind", ["bimodal", "combining", "taken",
                                      "nottaken", "perfect"])
    def test_all_predictors_through_pipeline(self, cfg, kind):
        program, _ = kernels.bubble_sort(12, seed=2)
        stats = run(program, cfg.replace(predictor=kind))
        assert stats.halted

    def test_zero_int_mult_machine_rejects_mul_gracefully(self):
        # A machine with no multiplier cannot execute mul: the FU pool
        # has no unit, so issue never grants and the run deadlocks —
        # the deadlock guard must catch it rather than hang.
        from repro.uarch.pipeline import SimulationDeadlockError
        config = starting_config().replace(int_mult=0)
        program = kernels.multiply_bound(5)
        result = emulate(program)
        pipeline = Pipeline(program, result.trace, config)
        pipeline.DEADLOCK_WINDOW = 500  # keep the test fast
        with pytest.raises(SimulationDeadlockError):
            pipeline.run()

    def test_reese_tiny_rqueue_progresses(self, cfg):
        program, _ = kernels.vector_sum(64)
        stats = run(
            program,
            cfg.with_reese(rqueue_size=2, high_water_margin=1),
        )
        assert stats.halted
