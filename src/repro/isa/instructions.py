"""Opcode and instruction definitions for the repro mini-ISA.

The ISA is a small RISC instruction set in the spirit of SimpleScalar's
PISA (itself a MIPS derivative).  Like PISA, instructions occupy **8
bytes** in instruction memory (``INST_SIZE``), which is what the
instruction cache and the fetch stage see; the logical register-transfer
semantics are classic 32-bit RISC.

Every opcode carries static metadata in :data:`OPINFO`:

* ``fmt``      -- assembly operand format (see :class:`Fmt`),
* ``fu``       -- the functional-unit class that executes it
  (:class:`FUClass`), which also determines latency via the machine
  configuration,
* flag bits    -- branch/load/store/control classification used by the
  pipeline without decoding semantics.

The dynamic semantics live in :mod:`repro.isa.semantics` as pure
functions so that both the functional emulator (P stream) and REESE's
redundant re-execution (R stream) evaluate instructions through the very
same code path.
"""

from __future__ import annotations

import enum
from typing import Tuple

from .registers import NO_REG, reg_name

#: Architectural size of one instruction in bytes (PISA-style 8-byte words).
INST_SIZE = 8


class FUClass(enum.IntEnum):
    """Functional-unit classes, matching SimpleScalar's resource pools."""

    NONE = 0       # no FU needed (nop, halt)
    INT_ALU = 1    # single-cycle integer/branch unit
    INT_MULT = 2   # pipelined integer multiplier
    INT_DIV = 3    # unpipelined integer divider (shares HW with INT_MULT)
    FP_ADD = 4     # FP adder / compare / convert
    FP_MULT = 5    # FP multiplier
    FP_DIV = 6     # FP divider / sqrt (shares HW with FP_MULT)
    MEM_PORT = 7   # load/store port (cache access)


class Fmt(enum.Enum):
    """Assembly operand formats understood by the assembler."""

    NONE = "none"          # op
    RRR = "rrr"            # op rd, rs1, rs2
    RRI = "rri"            # op rd, rs1, imm
    RI = "ri"              # op rd, imm
    MEM_LOAD = "mem_load"  # op rd, imm(rs1)
    MEM_STORE = "mem_store"  # op rs2, imm(rs1)
    BRANCH2 = "branch2"    # op rs1, rs2, label
    BRANCH1 = "branch1"    # op rs1, label
    JUMP = "jump"          # op label
    JUMP_REG = "jump_reg"  # op rs1
    RR = "rr"              # op rd, rs1
    R = "r"                # op rs1


class Op(enum.IntEnum):
    """All opcodes in the mini-ISA."""

    NOP = 0
    # --- integer ALU -------------------------------------------------
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SLL = 6
    SRL = 7
    SRA = 8
    SLT = 9
    SLTU = 10
    ADDI = 11
    ANDI = 12
    ORI = 13
    XORI = 14
    SLLI = 15
    SRLI = 16
    SRAI = 17
    SLTI = 18
    LUI = 19
    # --- integer multiply / divide -----------------------------------
    MUL = 20
    MULHU = 21
    DIV = 22
    REM = 23
    # --- control flow -------------------------------------------------
    BEQ = 24
    BNE = 25
    BLT = 26
    BGE = 27
    BLTZ = 28
    BGEZ = 29
    J = 30
    JAL = 31
    JR = 32
    JALR = 33
    # --- memory --------------------------------------------------------
    LW = 34
    LB = 35
    LBU = 36
    LWF = 37
    SW = 38
    SB = 39
    SWF = 40
    # --- floating point -------------------------------------------------
    FADD = 41
    FSUB = 42
    FMUL = 43
    FDIV = 44
    FSQRT = 45
    FNEG = 46
    FCMPLT = 47  # int rd <- (fs1 < fs2)
    CVTIF = 48   # fd <- float(rs1)
    CVTFI = 49   # rd <- int(fs1)
    # --- system -----------------------------------------------------------
    HALT = 50
    PUTINT = 51  # append int(rs1) to the machine's output channel
    PUTCH = 52   # append chr(rs1 & 0xff) to the output channel


class OpInfo:
    """Static decode metadata for one opcode."""

    __slots__ = (
        "mnemonic",
        "fmt",
        "fu",
        "is_branch",
        "is_cond_branch",
        "is_load",
        "is_store",
        "is_halt",
        "writes_reg",
    )

    def __init__(
        self,
        mnemonic: str,
        fmt: Fmt,
        fu: FUClass,
        *,
        is_branch: bool = False,
        is_cond_branch: bool = False,
        is_load: bool = False,
        is_store: bool = False,
        is_halt: bool = False,
        writes_reg: bool = True,
    ) -> None:
        self.mnemonic = mnemonic
        self.fmt = fmt
        self.fu = fu
        self.is_branch = is_branch
        self.is_cond_branch = is_cond_branch
        self.is_load = is_load
        self.is_store = is_store
        self.is_halt = is_halt
        self.writes_reg = writes_reg


def _alu(mn: str, fmt: Fmt) -> OpInfo:
    return OpInfo(mn, fmt, FUClass.INT_ALU)


def _br2(mn: str) -> OpInfo:
    return OpInfo(
        mn, Fmt.BRANCH2, FUClass.INT_ALU,
        is_branch=True, is_cond_branch=True, writes_reg=False,
    )


def _br1(mn: str) -> OpInfo:
    return OpInfo(
        mn, Fmt.BRANCH1, FUClass.INT_ALU,
        is_branch=True, is_cond_branch=True, writes_reg=False,
    )


OPINFO = {
    Op.NOP: OpInfo("nop", Fmt.NONE, FUClass.NONE, writes_reg=False),
    Op.ADD: _alu("add", Fmt.RRR),
    Op.SUB: _alu("sub", Fmt.RRR),
    Op.AND: _alu("and", Fmt.RRR),
    Op.OR: _alu("or", Fmt.RRR),
    Op.XOR: _alu("xor", Fmt.RRR),
    Op.SLL: _alu("sll", Fmt.RRR),
    Op.SRL: _alu("srl", Fmt.RRR),
    Op.SRA: _alu("sra", Fmt.RRR),
    Op.SLT: _alu("slt", Fmt.RRR),
    Op.SLTU: _alu("sltu", Fmt.RRR),
    Op.ADDI: _alu("addi", Fmt.RRI),
    Op.ANDI: _alu("andi", Fmt.RRI),
    Op.ORI: _alu("ori", Fmt.RRI),
    Op.XORI: _alu("xori", Fmt.RRI),
    Op.SLLI: _alu("slli", Fmt.RRI),
    Op.SRLI: _alu("srli", Fmt.RRI),
    Op.SRAI: _alu("srai", Fmt.RRI),
    Op.SLTI: _alu("slti", Fmt.RRI),
    Op.LUI: _alu("lui", Fmt.RI),
    Op.MUL: OpInfo("mul", Fmt.RRR, FUClass.INT_MULT),
    Op.MULHU: OpInfo("mulhu", Fmt.RRR, FUClass.INT_MULT),
    Op.DIV: OpInfo("div", Fmt.RRR, FUClass.INT_DIV),
    Op.REM: OpInfo("rem", Fmt.RRR, FUClass.INT_DIV),
    Op.BEQ: _br2("beq"),
    Op.BNE: _br2("bne"),
    Op.BLT: _br2("blt"),
    Op.BGE: _br2("bge"),
    Op.BLTZ: _br1("bltz"),
    Op.BGEZ: _br1("bgez"),
    Op.J: OpInfo("j", Fmt.JUMP, FUClass.INT_ALU,
                 is_branch=True, writes_reg=False),
    Op.JAL: OpInfo("jal", Fmt.JUMP, FUClass.INT_ALU, is_branch=True),
    Op.JR: OpInfo("jr", Fmt.JUMP_REG, FUClass.INT_ALU,
                  is_branch=True, writes_reg=False),
    Op.JALR: OpInfo("jalr", Fmt.RR, FUClass.INT_ALU, is_branch=True),
    Op.LW: OpInfo("lw", Fmt.MEM_LOAD, FUClass.MEM_PORT, is_load=True),
    Op.LB: OpInfo("lb", Fmt.MEM_LOAD, FUClass.MEM_PORT, is_load=True),
    Op.LBU: OpInfo("lbu", Fmt.MEM_LOAD, FUClass.MEM_PORT, is_load=True),
    Op.LWF: OpInfo("lwf", Fmt.MEM_LOAD, FUClass.MEM_PORT, is_load=True),
    Op.SW: OpInfo("sw", Fmt.MEM_STORE, FUClass.MEM_PORT,
                  is_store=True, writes_reg=False),
    Op.SB: OpInfo("sb", Fmt.MEM_STORE, FUClass.MEM_PORT,
                  is_store=True, writes_reg=False),
    Op.SWF: OpInfo("swf", Fmt.MEM_STORE, FUClass.MEM_PORT,
                   is_store=True, writes_reg=False),
    Op.FADD: OpInfo("fadd", Fmt.RRR, FUClass.FP_ADD),
    Op.FSUB: OpInfo("fsub", Fmt.RRR, FUClass.FP_ADD),
    Op.FMUL: OpInfo("fmul", Fmt.RRR, FUClass.FP_MULT),
    Op.FDIV: OpInfo("fdiv", Fmt.RRR, FUClass.FP_DIV),
    Op.FSQRT: OpInfo("fsqrt", Fmt.RR, FUClass.FP_DIV),
    Op.FNEG: OpInfo("fneg", Fmt.RR, FUClass.FP_ADD),
    Op.FCMPLT: OpInfo("fcmplt", Fmt.RRR, FUClass.FP_ADD),
    Op.CVTIF: OpInfo("cvtif", Fmt.RR, FUClass.FP_ADD),
    Op.CVTFI: OpInfo("cvtfi", Fmt.RR, FUClass.FP_ADD),
    Op.HALT: OpInfo("halt", Fmt.NONE, FUClass.NONE,
                    is_halt=True, writes_reg=False),
    Op.PUTINT: OpInfo("putint", Fmt.R, FUClass.INT_ALU, writes_reg=False),
    Op.PUTCH: OpInfo("putch", Fmt.R, FUClass.INT_ALU, writes_reg=False),
}

#: mnemonic -> Op, for the assembler.
MNEMONICS = {info.mnemonic: op for op, info in OPINFO.items()}


class Instruction:
    """One static instruction.

    Operand fields hold *unified* register indices (see
    :mod:`repro.isa.registers`) or :data:`~repro.isa.registers.NO_REG`
    when a slot is unused.  ``imm`` holds the signed immediate; for
    control-flow instructions with a target label the assembler resolves
    the label to an **absolute instruction index** stored in ``imm``.

    For stores, ``rs1`` is the base address register and ``rs2`` is the
    data register; ``rd`` is unused.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm")

    def __init__(
        self,
        op: Op,
        rd: int = NO_REG,
        rs1: int = NO_REG,
        rs2: int = NO_REG,
        imm: int = 0,
    ) -> None:
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm

    # -- static classification (delegates to OPINFO) -------------------

    @property
    def info(self) -> OpInfo:
        return OPINFO[self.op]

    @property
    def fu(self) -> FUClass:
        return OPINFO[self.op].fu

    @property
    def is_branch(self) -> bool:
        return OPINFO[self.op].is_branch

    @property
    def is_load(self) -> bool:
        return OPINFO[self.op].is_load

    @property
    def is_store(self) -> bool:
        return OPINFO[self.op].is_store

    @property
    def is_halt(self) -> bool:
        return OPINFO[self.op].is_halt

    def srcs(self) -> Tuple[int, ...]:
        """Unified indices of source registers (zero register excluded)."""
        out = []
        for r in (self.rs1, self.rs2):
            if r not in (NO_REG, 0):
                out.append(r)
        return tuple(out)

    def dst(self) -> int:
        """Unified index of the destination register, or NO_REG."""
        if OPINFO[self.op].writes_reg and self.rd not in (NO_REG, 0):
            return self.rd
        return NO_REG

    # -- display ---------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instruction {self}>"

    def __str__(self) -> str:
        info = OPINFO[self.op]
        mn = info.mnemonic
        fmt = info.fmt
        if fmt is Fmt.NONE:
            return mn
        if fmt is Fmt.RRR:
            return f"{mn} {reg_name(self.rd)}, {reg_name(self.rs1)}, {reg_name(self.rs2)}"
        if fmt is Fmt.RRI:
            return f"{mn} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        if fmt is Fmt.RI:
            return f"{mn} {reg_name(self.rd)}, {self.imm}"
        if fmt is Fmt.MEM_LOAD:
            return f"{mn} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if fmt is Fmt.MEM_STORE:
            return f"{mn} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if fmt is Fmt.BRANCH2:
            return f"{mn} {reg_name(self.rs1)}, {reg_name(self.rs2)}, @{self.imm}"
        if fmt is Fmt.BRANCH1:
            return f"{mn} {reg_name(self.rs1)}, @{self.imm}"
        if fmt is Fmt.JUMP:
            if self.op is Op.JAL:
                return f"{mn} @{self.imm}"
            return f"{mn} @{self.imm}"
        if fmt is Fmt.JUMP_REG:
            return f"{mn} {reg_name(self.rs1)}"
        if fmt is Fmt.RR:
            return f"{mn} {reg_name(self.rd)}, {reg_name(self.rs1)}"
        if fmt is Fmt.R:
            return f"{mn} {reg_name(self.rs1)}"
        raise AssertionError(f"unhandled format {fmt}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.op == other.op
            and self.rd == other.rd
            and self.rs1 == other.rs1
            and self.rs2 == other.rs2
            and self.imm == other.imm
        )

    def __hash__(self) -> int:
        return hash((self.op, self.rd, self.rs1, self.rs2, self.imm))
