"""Dynamic-trace records produced by the functional emulator.

The timing models are *execution-driven along the correct path*: the
functional emulator runs first and emits one :class:`DynInst` per
retired instruction, carrying everything the micro-architectural models
need —

* operand **values** (``a``, ``b``) so REESE's R stream can re-execute
  the instruction from its R-stream Queue entry,
* the architectural **result** so the comparator has the P-stream value,
* load/store **effective addresses** for the cache and LSQ models,
* branch **outcome and target** as ground truth for the predictor, and
* ``next_index``, the static index of the following dynamic instruction,
  which is where fetch must resume after a squash or an error-recovery
  refetch.

Records use ``__slots__`` and plain attributes: the timing core touches
millions of these, so attribute access cost matters.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..isa.instructions import FUClass, Op

Value = Union[int, float]


class DynInst:
    """One dynamically executed (retired) instruction."""

    __slots__ = (
        "seq",          # dynamic sequence number (index into the trace)
        "static_index", # absolute index of the static instruction
        "pc",           # byte PC
        "op",           # Op
        "fu",           # FUClass of the executing unit
        "dst",          # unified destination register index or -1
        "srcs",         # tuple of unified source register indices
        "a",            # value of rs1 at execution time (0 if unused)
        "b",            # value of rs2 at execution time (0 if unused)
        "imm",          # immediate
        "result",       # architectural result value (None if none)
        "is_load",
        "is_store",
        "is_branch",
        "is_cond_branch",
        "ea",           # effective address for loads/stores, else None
        "store_value",  # value stored to memory (stores only)
        "taken",        # branch outcome (branches only)
        "target_index", # taken-path static target index (branches only)
        "next_index",   # static index of the next dynamic instruction
    )

    def __init__(self) -> None:
        self.seq = 0
        self.static_index = 0
        self.pc = 0
        self.op = Op.NOP
        self.fu = FUClass.NONE
        self.dst = -1
        self.srcs = ()
        self.a = 0
        self.b = 0
        self.imm = 0
        self.result: Optional[Value] = None
        self.is_load = False
        self.is_store = False
        self.is_branch = False
        self.is_cond_branch = False
        self.ea: Optional[int] = None
        self.store_value: Optional[Value] = None
        self.taken = False
        self.target_index = -1
        self.next_index = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DynInst #{self.seq} @{self.pc:#x} {self.op.name}"
            f" res={self.result!r} ea={self.ea!r}>"
        )


Trace = List[DynInst]
