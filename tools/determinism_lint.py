#!/usr/bin/env python
"""Determinism lint: static checks over the simulator's own sources.

The reproduction's core guarantee is that every simulation is a pure
function of its inputs and seeds — the parallel runner's caching, the
fault campaigns' worker-count invariance and the golden-run comparisons
all assume it.  This tool walks ``src/repro/`` with :mod:`ast` and
flags the three ways that guarantee quietly breaks:

``unseeded-random``
    a call through the module-level :mod:`random` API
    (``random.random()``, ``random.randrange()``, ...) or a function
    imported from it.  These draw from the process-global, unseeded
    generator; simulation code must construct ``random.Random(seed)``
    and draw from the instance.

``wall-clock``
    ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` /
    ``utcnow()`` / ``today()`` — wall-clock reads that leak real time
    into results.  ``time.perf_counter()``, ``process_time()`` and
    ``monotonic()`` are allowed: they only ever feed telemetry
    (elapsed-seconds reporting), never simulated state.

``set-iteration``
    a ``for`` loop or comprehension iterating directly over a set
    literal, set comprehension or ``set(...)`` call.  Set iteration
    order depends on string hash randomisation across processes, so
    anything it feeds (``Stats`` dicts, trace output) diverges between
    runs.  Iterate over ``sorted(...)`` instead.

Usage::

    python tools/determinism_lint.py [root ...]

Defaults to ``src/repro``.  Exits non-zero when any finding exists.
The checks are importable (``lint_source`` / ``lint_paths``) so the
test suite can pin their behaviour.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from dataclasses import dataclass
from typing import Iterable, List, Sequence

#: (module, attribute) calls that read the wall clock.
WALL_CLOCK_CALLS = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
})

#: time-module attributes that are fine (telemetry-only clocks).
ALLOWED_CLOCKS = frozenset({
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "monotonic", "monotonic_ns", "sleep",
})

#: names importable from :mod:`time` that count as wall-clock reads.
WALL_CLOCK_IMPORTS = frozenset({"time", "time_ns"})


@dataclass(frozen=True)
class Finding:
    """One determinism violation."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _attribute_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a pure chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _is_set_expression(node: ast.AST) -> bool:
    """True for a set literal, a set comprehension, or ``set(...)``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    )


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        #: local aliases of banned functions, from ``from x import y``.
        self._banned_names: dict = {}
        #: local aliases of datetime/date classes (``now()`` etc. on
        #: these is a wall-clock read).
        self._datetime_aliases = {"datetime", "date"}

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 0), rule, message)
        )

    # -- imports: track `from random import randrange` style aliases ----

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            local = alias.asname or alias.name
            if node.module == "random" and alias.name != "Random":
                self._banned_names[local] = (
                    "unseeded-random",
                    f"'from random import {alias.name}' draws from the "
                    f"process-global generator; use random.Random(seed)",
                )
            elif node.module == "time" and alias.name in WALL_CLOCK_IMPORTS:
                self._banned_names[local] = (
                    "wall-clock",
                    f"'from time import {alias.name}' reads the wall "
                    f"clock; use time.perf_counter() for telemetry",
                )
            elif node.module == "datetime" and alias.name in (
                "datetime", "date"
            ):
                self._datetime_aliases.add(local)
        self.generic_visit(node)

    # -- calls: module-level random and wall clocks ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attribute_chain(node.func)
        if len(chain) >= 2:
            base, attr = chain[-2], chain[-1]
            if base == "random" and attr != "Random":
                self._report(
                    node, "unseeded-random",
                    f"random.{attr}() draws from the process-global "
                    f"generator; construct random.Random(seed) and draw "
                    f"from the instance",
                )
            elif (base, attr) in WALL_CLOCK_CALLS or (
                base in self._datetime_aliases
                and attr in ("now", "utcnow", "today")
            ):
                self._report(
                    node, "wall-clock",
                    f"{base}.{attr}() reads the wall clock; results "
                    f"must not depend on real time "
                    f"(perf_counter/process_time are fine for telemetry)",
                )
        elif len(chain) == 1 and chain[0] in self._banned_names:
            rule, message = self._banned_names[chain[0]]
            self._report(node, rule, message)
        self.generic_visit(node)

    # -- iteration over sets ---------------------------------------------

    def _check_iter(self, node: ast.AST, iter_node: ast.AST) -> None:
        if _is_set_expression(iter_node):
            self._report(
                node, "set-iteration",
                "iterating over a set: the order depends on hash "
                "randomisation across processes; iterate over "
                "sorted(...) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text."""
    visitor = _DeterminismVisitor(path)
    visitor.visit(ast.parse(source, filename=path))
    return sorted(
        visitor.findings, key=lambda f: (f.path, f.line, f.rule)
    )


def lint_paths(roots: Sequence[pathlib.Path]) -> List[Finding]:
    """Lint every ``*.py`` under the given files/directories."""
    files: List[pathlib.Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_source(path.read_text(), str(path)))
    return findings


def main(argv: Iterable[str] = ()) -> int:
    roots = [pathlib.Path(arg) for arg in argv] or [
        pathlib.Path("src/repro")
    ]
    findings = lint_paths(roots)
    for finding in findings:
        print(finding.render())
    checked = ", ".join(str(root) for root in roots)
    print(
        f"determinism lint: {len(findings)} finding(s) over {checked}"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
