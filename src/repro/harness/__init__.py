"""Experiment harness: runners, figure specs, reporting, expectations."""

from .experiments import (
    FIGURES,
    FigureResult,
    FigureSpec,
    SERIES_BASELINE,
    SERIES_R1A,
    SERIES_R2A,
    SERIES_R2A1M,
    SERIES_REESE,
    figure2_spec,
    figure3_spec,
    figure4_spec,
    figure5_spec,
    figure7_specs,
    run_figure,
    run_summary_figure,
)
from .expectations import Expectation, check_all
from .reporting import figure_report, format_table, overhead_summary, summary_report
from .runner import bench_scale, run_benchmark, run_model
from .sweep import SweepPoint, run_sweep, spare_capacity_grid

__all__ = [
    "FIGURES",
    "FigureResult",
    "FigureSpec",
    "SERIES_BASELINE",
    "SERIES_R1A",
    "SERIES_R2A",
    "SERIES_R2A1M",
    "SERIES_REESE",
    "figure2_spec",
    "figure3_spec",
    "figure4_spec",
    "figure5_spec",
    "figure7_specs",
    "run_figure",
    "run_summary_figure",
    "Expectation",
    "check_all",
    "figure_report",
    "format_table",
    "overhead_summary",
    "summary_report",
    "bench_scale",
    "run_benchmark",
    "run_model",
    "SweepPoint",
    "run_sweep",
    "spare_capacity_grid",
]
