"""Unit tests for P/R result comparison and re-execution."""

import math

from repro.arch import emulate
from repro.isa import INST_SIZE, TEXT_BASE, assemble
from repro.isa.instructions import FUClass, Op
from repro.arch.trace import DynInst
from repro.reese import corrupt_value, p_value, reexecute, values_equal, verify


def dyn_for(op, a=0, b=0, imm=0, result=None, **flags):
    dyn = DynInst()
    dyn.op = op
    dyn.a = a
    dyn.b = b
    dyn.imm = imm
    dyn.result = result
    for key, value in flags.items():
        setattr(dyn, key, value)
    return dyn


class TestReexecution:
    def test_alu_recomputes_from_operands(self):
        dyn = dyn_for(Op.ADD, a=3, b=4, result=7)
        assert reexecute(dyn) == 7
        assert verify(dyn)

    def test_corrupted_p_detected(self):
        dyn = dyn_for(Op.ADD, a=3, b=4, result=7)
        corrupted = corrupt_value(p_value(dyn), bit=2)
        assert not values_equal(corrupted, reexecute(dyn))

    def test_store_compares_address_and_data(self):
        dyn = dyn_for(Op.SW, a=0x1000, b=55, imm=8,
                      is_store=True, ea=0x1008, store_value=55)
        assert verify(dyn)
        wrong_ea = dyn_for(Op.SW, a=0x1000, b=55, imm=8,
                           is_store=True, ea=0x1004, store_value=55)
        assert not verify(wrong_ea)

    def test_load_uses_trace_value(self):
        dyn = dyn_for(Op.LW, a=0x1000, imm=0, result=99,
                      is_load=True, ea=0x1000)
        assert reexecute(dyn) == 99

    def test_branch_direction_recomputed(self):
        dyn = dyn_for(Op.BLT, a=-1, b=0, is_cond_branch=True,
                      is_branch=True, taken=True)
        dyn.result = 1
        assert verify(dyn)
        flipped = dyn_for(Op.BLT, a=-1, b=0, is_cond_branch=True,
                          is_branch=True, taken=False)
        flipped.result = 0  # corrupted P claims not-taken
        assert not verify(flipped)

    def test_jal_link_value(self):
        dyn = dyn_for(Op.JAL, result=TEXT_BASE + 3 * INST_SIZE,
                      is_branch=True)
        dyn.static_index = 2
        assert verify(dyn)

    def test_jr_target_recomputed(self):
        dyn = dyn_for(Op.JR, a=TEXT_BASE + 5 * INST_SIZE, is_branch=True)
        dyn.target_index = 5
        assert verify(dyn)
        dyn.target_index = 6  # corrupted target
        assert not verify(dyn)

    def test_nothing_to_verify_ops(self):
        for op in (Op.J, Op.NOP, Op.PUTINT):
            dyn = dyn_for(op)
            assert p_value(dyn) is None
            assert reexecute(dyn) is None
            assert verify(dyn)


class TestValuesEqual:
    def test_int_equality(self):
        assert values_equal(5, 5)
        assert not values_equal(5, 6)

    def test_float_bitwise(self):
        assert values_equal(1.5, 1.5)
        assert not values_equal(0.0, -0.0)  # distinct bit patterns
        assert values_equal(math.nan, math.nan)  # same NaN bits compare equal

    def test_int_float_mismatch(self):
        assert not values_equal(1, 1.0)

    def test_tuples(self):
        assert values_equal((1, 2), (1, 2))
        assert not values_equal((1, 2), (1, 3))
        assert not values_equal((1,), (1, 2))

    def test_none_matches_none(self):
        assert values_equal(None, None)


class TestWholeTraceVerifies:
    def test_every_instruction_of_a_real_program_verifies(self):
        """Fault-free P and R streams agree on every comparable value."""
        program = assemble("""
        .data
        buf: .word 5, -3, 100, 7
        .text
        main:
            la   r1, buf
            li   r2, 4
            li   r3, 0
        loop:
            lw   r4, 0(r1)
            mul  r5, r4, r4
            div  r6, r5, r2
            sw   r6, 0(r1)
            add  r3, r3, r6
            addi r1, r1, 4
            subi r2, r2, 1
            bnez r2, loop
            call leaf
            putint r3
            halt
        leaf:
            slli r7, r3, 1
            ret
        """)
        trace = emulate(program).trace
        for dyn in trace:
            assert verify(dyn), f"P/R mismatch on fault-free {dyn!r}"

    def test_corrupting_any_result_bit_is_detected(self):
        program, = [assemble("""
        li r1, 6
        li r2, 7
        mul r3, r1, r2
        add r4, r3, r1
        halt
        """)]
        trace = emulate(program).trace
        mul = next(d for d in trace if d.op is Op.MUL)
        for bit in range(32):
            corrupted = corrupt_value(p_value(mul), bit)
            assert not values_equal(corrupted, reexecute(mul)), f"bit {bit}"
