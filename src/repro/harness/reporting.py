"""Text reporting: the same rows/series the paper's figures show.

Besides aligned tables, :func:`bar_chart` renders the clustered-bar
form the paper's Figures 2-7 actually use, so a terminal diff against
the paper is possible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..analysis import AnalysisResult, CLASSES
from ..uarch.accounting import (
    SLOT_CAUSES,
    accounting_identity_errors,
    latency_summary,
    merge_accounting,
    r_share_of_delta,
)
from ..uarch.observe import occupancy_mean
from ..uarch.stats import Stats
from .campaign import OUTCOMES, SiteCampaignResult
from .experiments import (
    FigureResult,
    SERIES_BASELINE,
    SERIES_R2A,
    SERIES_REESE,
)
from .parallel import RunTelemetry


def format_table(rows: Sequence[Sequence[str]]) -> str:
    """Render rows as an aligned monospace table."""
    if not rows:
        return ""
    widths = [
        max(len(str(row[col])) for row in rows if col < len(row))
        for col in range(max(len(row) for row in rows))
    ]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(
            str(cell).ljust(widths[col]) for col, cell in enumerate(row)
        )
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 48,
    unit: str = "IPC",
) -> str:
    """Render grouped horizontal bars (the paper's figure style).

    Args:
        groups: group label (e.g. benchmark) -> series label -> value.
        width: character width of the longest bar.
        unit: axis label.
    """
    if not groups:
        return ""
    peak = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    if peak <= 0:
        return ""
    label_width = max(
        len(label) for series in groups.values() for label in series
    )
    lines = [f"({unit}; full bar = {peak:.2f})"]
    for group, series in groups.items():
        lines.append(f"{group}:")
        for label, value in series.items():
            bar = "#" * max(1, round(width * value / peak))
            lines.append(f"  {label:<{label_width}}  {bar} {value:.3f}")
    return "\n".join(lines)


def figure_bar_chart(result: FigureResult, width: int = 48) -> str:
    """The figure's data as clustered bars, per benchmark plus AVG."""
    groups: Dict[str, Dict[str, float]] = {}
    if not result.spec.averages_only:
        for bench in result.spec.benchmarks:
            groups[bench] = {
                label: result.ipc(bench, label)
                for label in result.spec.series_labels
            }
    groups["AV."] = {
        label: result.average_ipc(label)
        for label in result.spec.series_labels
    }
    return bar_chart(groups, width=width)


def figure_report(result: FigureResult) -> str:
    """A paper-style report for one figure: IPC table + overheads."""
    spec = result.spec
    lines = [
        f"{spec.figure_id}: {spec.title}",
        f"(committed IPC; {result.scale} dynamic instructions per benchmark)",
        "",
        format_table(result.rows()),
        "",
    ]
    base = result.average_ipc(SERIES_BASELINE)
    for label in spec.series_labels:
        if label == SERIES_BASELINE:
            continue
        gap = result.gap(label)
        lines.append(
            f"  {label:12s} average IPC {result.average_ipc(label):.3f} "
            f"({gap:+.1%} vs baseline {base:.3f})"
        )
    lines.extend(["", figure_bar_chart(result)])
    return "\n".join(lines)


def summary_report(summary: Dict[str, Dict[str, float]]) -> str:
    """Fig. 6-style report: average IPC per hardware variation."""
    variations = list(summary.keys())
    labels = [SERIES_BASELINE, SERIES_REESE, SERIES_R2A]
    rows: List[List[str]] = [["variation"] + labels + ["REESE gap", "R+2 gap"]]
    for variation in variations:
        cells = summary[variation]
        base = cells[SERIES_BASELINE]
        reese_gap = 1 - cells[SERIES_REESE] / base if base else 0.0
        spare_gap = 1 - cells[SERIES_R2A] / base if base else 0.0
        rows.append(
            [variation]
            + [f"{cells[label]:.3f}" for label in labels]
            + [f"{reese_gap:.1%}", f"{spare_gap:.1%}"]
        )
    return format_table(rows)


def telemetry_report(telemetry: RunTelemetry, limit: int = 0) -> str:
    """Per-job timing/outcome table for one parallel run.

    Args:
        telemetry: the :attr:`ParallelRunner.telemetry` of a run.
        limit: show only the ``limit`` slowest jobs (0 = all).
    """
    records = sorted(
        telemetry.records, key=lambda r: r.elapsed, reverse=True
    )
    if limit:
        records = records[:limit]
    rows: List[List[str]] = [
        ["job", "benchmark", "config", "scale", "source", "seconds", "worker"]
    ]
    for record in records:
        rows.append([
            str(record.index),
            record.benchmark,
            record.config,
            str(record.scale),
            "cache" if record.cached else "sim",
            f"{record.elapsed:.3f}",
            str(record.worker),
        ])
    return telemetry.summary() + "\n" + format_table(rows)


def metrics_report(stats: Stats) -> str:
    """Render ``Stats.stage_metrics`` (an observed run) as text.

    Shows, per pipeline structure, the mean/max occupancy over the run;
    then the stall-reason counters and the P/R functional-unit issue
    split.  Returns a placeholder line when the run was not observed.
    """
    metrics = stats.stage_metrics
    if not metrics:
        return "(no stage metrics: run was not observed)"
    lines = [f"stage metrics over {metrics.get('cycles_sampled', 0)} cycles"]
    rows: List[List[str]] = [["structure", "mean occ", "max occ"]]
    for key, hist in metrics.get("occupancy", {}).items():
        peak = max((int(occ) for occ in hist), default=0)
        rows.append([key, f"{occupancy_mean(hist):.2f}", str(peak)])
    lines.append(format_table(rows))
    stalls = ", ".join(
        f"{key}={count}" for key, count in metrics.get("stalls", {}).items()
    )
    lines.append(f"stalls: {stalls}")
    dropped = metrics.get("dropped_events", 0)
    if dropped:
        lines.append(
            f"WARNING: {dropped} trace event(s) overwritten in the ring "
            f"buffer before the dump (raise ring_size or narrow the "
            f"event filter; the trace tail is complete, its head is not)"
        )
    fu = metrics.get("fu_issued")
    if fu:
        for stream in ("P", "R"):
            split = ", ".join(
                f"{name}={count}" for name, count in fu[stream].items()
            )
            lines.append(f"FU issues ({stream}-stream): {split or 'none'}")
    return "\n".join(lines)


def analysis_report(result: AnalysisResult) -> str:
    """Render one program's static analysis as text.

    Structure summary, the per-class fault-site breakdown (the number
    later PRs report detection coverage against), and lint findings.
    """
    total_sites = sum(result.class_counts.values()) or 1
    lines = [
        f"static analysis of {result.program_name!r} "
        f"({'cached' if result.from_cache else 'fresh'}; "
        f"fingerprint {result.fingerprint[:12]})",
        f"  {result.instructions} instructions, {result.blocks} blocks, "
        f"{result.edges} edges, {result.loops} natural loops, "
        f"{result.unreachable_blocks} unreachable blocks",
    ]
    rows: List[List[str]] = [["site class", "sites", "fraction"]]
    for klass in CLASSES:
        count = result.class_counts.get(klass, 0)
        rows.append([klass, str(count), f"{count / total_sites:.0%}"])
    lines.append(format_table(rows))
    gating = [f for f in result.findings if f.severity != "info"]
    info = len(result.findings) - len(gating)
    lines.append(
        f"  lint: {'clean' if result.clean else 'NOT CLEAN'} "
        f"({len(gating)} gating finding(s), {info} informational)"
    )
    for finding in gating:
        lines.append(f"    {finding.render(result.program_name)}")
    return "\n".join(lines)


def lint_report(result: AnalysisResult, verbose: bool = False) -> str:
    """Render lint findings; ``verbose`` includes info-level ones."""
    findings = [
        f for f in result.findings
        if verbose or f.severity != "info"
    ]
    suppressed = len(result.findings) - len(findings)
    status = "clean" if result.clean else "NOT CLEAN"
    lines = [f"lint {result.program_name!r}: {status}"]
    lines += [f"  {finding.render()}" for finding in findings]
    if suppressed and not verbose:
        lines.append(
            f"  ({suppressed} informational finding(s) hidden; "
            f"use --verbose)"
        )
    return "\n".join(lines)


def site_campaign_report(result: SiteCampaignResult) -> str:
    """Per-class outcome breakdown of a site campaign as a table."""
    lines = [
        f"site campaign on {result.program_name!r}: {result.runs} "
        f"stratified injections (seed {result.seed}, "
        f"{result.emulations} emulated, {result.skipped_dead} settled "
        f"statically)",
    ]
    rows: List[List[str]] = [
        ["class", "pool"] + list(OUTCOMES[1:]) + ["visible"]
    ]
    for klass in CLASSES:
        counter = result.by_class.get(klass, {})
        rows.append(
            [klass, str(result.site_pool.get(klass, 0))]
            + [str(counter.get(outcome, 0)) for outcome in OUTCOMES[1:]]
            + [str(result.visible(klass))]
        )
    lines.append(format_table(rows))
    if result.mismatches:
        lines.append(f"ORACLE MISMATCHES: {len(result.mismatches)}")
        lines += [f"  {record.render()}" for record in result.mismatches]
    else:
        lines.append("oracle: 0 mismatches")
    return "\n".join(lines)


def markdown_table(rows: Sequence[Sequence[str]]) -> str:
    """Render rows as a GitHub-flavoured markdown pipe table."""
    if not rows:
        return ""
    lines = [
        "| " + " | ".join(str(cell) for cell in rows[0]) + " |",
        "|" + "|".join(" --- " for _ in rows[0]) + "|",
    ]
    for row in rows[1:]:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _slot_rows(
    accounts: Mapping[str, Mapping], labels: Sequence[str]
) -> List[List[str]]:
    """Top-down slot-attribution rows: one per cause, one column per
    series, each cell ``count (share)``.  All-zero causes are elided so
    a baseline column does not list REESE-only causes."""
    rows: List[List[str]] = [["cause"] + list(labels)]
    totals = {
        label: accounts[label].get("slots_total", 0) or 1 for label in labels
    }
    for cause in SLOT_CAUSES:
        counts = {
            label: accounts[label].get("slots", {}).get(cause, 0)
            for label in labels
        }
        if not any(counts.values()):
            continue
        rows.append([cause] + [
            f"{counts[label]} ({counts[label] / totals[label]:.1%})"
            for label in labels
        ])
    return rows


def profile_report(
    results: Mapping[str, Mapping[str, Stats]],
    scale: int,
    markdown: bool = False,
) -> str:
    """Top-down cycle-accounting profile across benchmarks and series.

    Args:
        results: benchmark -> series label -> profiled Stats (i.e. run
            with the cycle accountant attached, so ``Stats.accounting``
            is populated).
        scale: dynamic instructions per benchmark (header line only).
        markdown: render pipe tables + headings instead of aligned
            monospace tables.

    The report shows, per benchmark and for the suite aggregate, where
    every issue slot went (one cause per slot, so columns sum to
    width x cycles); then the REESE-minus-baseline slot delta and how
    much of it is attributable to R-stream causes — the quantified form
    of the paper's §6 claim that the slowdown *is* R contention — and
    the detection-latency telemetry the paper's §2 coverage argument
    needs.  Ends with the accounting-identity verdict over every
    (benchmark, series) cell.
    """
    table = markdown_table if markdown else format_table
    heading = (
        f"cycle-accounting profile "
        f"({scale} dynamic instructions per benchmark; "
        f"slot columns sum to issue width x cycles)"
    )
    lines = [f"## {heading}" if markdown else heading]
    suite: Dict[str, Dict] = {}
    identity_errors: List[str] = []
    cells = 0
    for bench, series in results.items():
        labels = list(series.keys())
        accounts = {label: series[label].accounting or {} for label in labels}
        for label in labels:
            cells += 1
            suite[label] = merge_accounting(
                suite.get(label, {}), accounts[label]
            )
            identity_errors += [
                f"{bench}/{label}: {error}"
                for error in accounting_identity_errors(accounts[label])
            ]
        ipc_bits = ", ".join(
            f"{label} IPC {series[label].ipc:.3f}" for label in labels
        )
        lines.append("")
        if markdown:
            lines += [f"### {bench}", "", ipc_bits, ""]
        else:
            lines.append(f"{bench}: {ipc_bits}")
        lines.append(table(_slot_rows(accounts, labels)))
    if suite:
        labels = list(suite.keys())
        lines.append("")
        if markdown:
            lines += ["### suite aggregate", ""]
        else:
            lines.append("suite aggregate:")
        lines.append(table(_slot_rows(suite, labels)))
    if SERIES_BASELINE in suite and SERIES_REESE in suite:
        r_delta, total_delta = r_share_of_delta(
            suite[SERIES_BASELINE], suite[SERIES_REESE]
        )
        share = r_delta / total_delta if total_delta else 0.0
        lines += [
            "",
            f"REESE-minus-baseline slot delta: {total_delta} slots lost, "
            f"{r_delta} ({share:.1%}) attributable to R-stream causes",
        ]
    if SERIES_REESE in suite:
        summary = latency_summary(suite[SERIES_REESE])
        det = summary["detect_latency"]
        res = summary["rqueue_residency"]
        lines += [
            f"detection latency (queue insert -> R-verify): "
            f"n={det['count']}, mean={det['mean']:.2f}, p50={det['p50']}, "
            f"p99={det['p99']}, max={det['max']} cycles",
            f"R-queue residency (insert -> final commit): "
            f"n={res['count']}, mean={res['mean']:.2f}, p50={res['p50']}, "
            f"p99={res['p99']}, max={res['max']} cycles",
        ]
    if identity_errors:
        lines.append("accounting identity: VIOLATED")
        lines += [f"  {error}" for error in identity_errors]
    else:
        lines.append(f"accounting identity: OK on {cells}/{cells} cells")
    return "\n".join(lines)


def overhead_summary(results: Sequence[FigureResult]) -> str:
    """The paper's §6.1 claim format: average gaps across configurations."""
    reese_gaps = [r.gap(SERIES_REESE) for r in results]
    spare_gaps = [
        r.gap(SERIES_R2A) for r in results if SERIES_R2A in r.spec.series_labels
    ]
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
    return (
        f"Across {len(results)} hardware configurations: REESE without "
        f"spares loses {mean(reese_gaps):.1%} average IPC "
        f"(range {min(reese_gaps):.1%}..{max(reese_gaps):.1%}); "
        f"with 2 spare integer ALUs the loss is {mean(spare_gaps):.1%}.  "
        f"(Paper: 14.0% shrinking to 8.0%.)"
    )
