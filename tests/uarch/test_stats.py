"""Unit tests for the statistics container."""

import pytest

from repro.uarch import Stats


class TestDerivedMetrics:
    def test_ipc(self):
        stats = Stats()
        stats.cycles = 100
        stats.committed = 250
        assert stats.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert Stats().ipc == 0.0

    def test_misprediction_rate(self):
        stats = Stats()
        stats.cond_branches = 10
        stats.mispredictions = 3
        assert stats.misprediction_rate == pytest.approx(0.3)

    def test_rqueue_mean_occupancy(self):
        stats = Stats()
        stats.cycles = 4
        stats.rqueue_occ_sum = 10
        assert stats.rqueue_mean_occupancy == pytest.approx(2.5)


class TestReporting:
    def test_to_dict_contains_counters_and_derived(self):
        stats = Stats()
        stats.cycles = 10
        stats.committed = 15
        data = stats.to_dict()
        assert data["cycles"] == 10
        assert data["ipc"] == pytest.approx(1.5)
        assert "misprediction_rate" in data

    def test_summary_mentions_ipc(self):
        stats = Stats()
        stats.cycles = 10
        stats.committed = 20
        assert "IPC=2.000" in stats.summary()

    def test_summary_shows_detection_when_present(self):
        stats = Stats()
        stats.cycles = 1
        stats.errors_detected = 2
        assert "detected=2" in stats.summary()
