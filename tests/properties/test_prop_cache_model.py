"""Stateful model check: the LRU cache against a reference model.

The reference keeps, per set, an ordered list of resident tags (most
recently used last).  Every access outcome (hit/miss) and the resident
set must match the production cache exactly, across arbitrary access
sequences.
"""

from collections import OrderedDict
from typing import Dict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.memhier import Cache, CacheParams

SIZE = 256
ASSOC = 2
LINE = 32
N_SETS = SIZE // (ASSOC * LINE)  # 4 sets


class _RefLRU:
    """Reference: per-set OrderedDict of tags (LRU first)."""

    def __init__(self) -> None:
        self.sets: Dict[int, "OrderedDict[int, bool]"] = {
            index: OrderedDict() for index in range(N_SETS)
        }

    def access(self, addr: int, is_write: bool) -> bool:
        block = addr // LINE
        set_index = block % N_SETS
        tag = block // N_SETS
        entries = self.sets[set_index]
        if tag in entries:
            entries.move_to_end(tag)
            if is_write:
                entries[tag] = True
            return True
        entries[tag] = is_write
        if len(entries) > ASSOC:
            entries.popitem(last=False)
        return False

    def resident(self, addr: int) -> bool:
        block = addr // LINE
        return (block // N_SETS) in self.sets[block % N_SETS]


class CacheModelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = Cache(CacheParams("mc", SIZE, ASSOC, LINE, 2),
                           miss_latency=50)
        self.reference = _RefLRU()
        self.touched = set()

    @rule(
        addr=st.integers(min_value=0, max_value=4095),
        is_write=st.booleans(),
    )
    def access(self, addr, is_write):
        expected_hit = self.reference.access(addr, is_write)
        latency = self.cache.access(addr, is_write=is_write)
        actual_hit = latency == 2
        assert actual_hit == expected_hit, (
            f"addr={addr:#x} write={is_write}: "
            f"cache {'hit' if actual_hit else 'miss'}, "
            f"reference {'hit' if expected_hit else 'miss'}"
        )
        self.touched.add(addr)

    @invariant()
    def residency_matches(self):
        for addr in list(self.touched)[:32]:
            assert self.cache.probe(addr) == self.reference.resident(addr)

    @invariant()
    def counters_consistent(self):
        assert self.cache.hits + self.cache.misses == len(
            [1 for _ in range(self.cache.accesses)]
        )


TestCacheAgainstModel = CacheModelMachine.TestCase
TestCacheAgainstModel.settings = settings(
    max_examples=40, stateful_step_count=80, deadline=None
)
