"""Golden event-trace regression tests.

Two small workloads are traced through the full parallel execution
layer and their JSONL event traces compared byte-for-byte against
committed goldens.  These pin the *entire* observable pipeline
behaviour — every fetch, issue, writeback, R-stream re-execution and
comparison, in order — so any accidental change to stage scheduling
shows up as a trace diff, not just a cycle-count drift.

If you change the timing model or the event schema **deliberately**,
re-generate the goldens:

    PYTHONPATH=src python - <<'PY'
    from repro.harness.parallel import ParallelRunner, SimJob
    from repro.uarch.config import starting_config
    ParallelRunner(jobs=1, use_cache=False).run([
        SimJob("vortex", starting_config().with_reese(), 120,
               trace_path="tests/goldens/trace_vortex_reese_s120.jsonl"),
        SimJob("go", starting_config(), 120,
               trace_path="tests/goldens/trace_go_baseline_s120.jsonl"),
    ])
    PY

and bump EVENT_SCHEMA_VERSION if the line format itself changed.
"""

import json
import pathlib

import pytest

from repro.harness.parallel import ParallelRunner, SimJob
from repro.uarch.config import starting_config
from repro.uarch.observe import EVENT_KINDS

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "goldens"

#: name -> (golden file, SimJob factory); scale 120 keeps the traces
#: around a thousand events (gcc/li/perl have large fixed-size floors
#: and do not scale down — see the workload builders).
CASES = {
    "vortex_reese": (
        "trace_vortex_reese_s120.jsonl",
        lambda path: SimJob("vortex", starting_config().with_reese(), 120,
                            trace_path=path),
    ),
    "go_baseline": (
        "trace_go_baseline_s120.jsonl",
        lambda path: SimJob("go", starting_config(), 120, trace_path=path),
    ),
}


def _run(tmp_path, jobs, tag):
    """Trace every case through a ParallelRunner; returns name -> bytes."""
    paths = {
        name: str(tmp_path / f"{tag}_{name}.jsonl") for name in CASES
    }
    ParallelRunner(jobs=jobs, use_cache=False).run(
        [make(paths[name]) for name, (_, make) in CASES.items()]
    )
    return {
        name: pathlib.Path(path).read_bytes()
        for name, path in paths.items()
    }


@pytest.mark.parametrize("name", sorted(CASES))
class TestTraceGoldens:
    def test_trace_matches_golden(self, name, tmp_path):
        produced = _run(tmp_path, jobs=1, tag="seq")[name]
        golden = (GOLDEN_DIR / CASES[name][0]).read_bytes()
        assert produced == golden, (
            f"event trace for {name} diverged from the committed golden "
            f"({len(produced.splitlines())} vs {len(golden.splitlines())} "
            f"lines); see the module docstring for regeneration steps"
        )

    def test_golden_lines_are_canonical(self, name):
        """Every golden line parses and is in canonical JSON form."""
        text = (GOLDEN_DIR / CASES[name][0]).read_text()
        for line in text.splitlines():
            record = json.loads(line)
            assert record["kind"] in EVENT_KINDS
            assert record["stream"] in ("P", "R")
            assert line == json.dumps(record, sort_keys=True,
                                      separators=(",", ":"))


class TestTraceDeterminism:
    def test_byte_stable_across_worker_counts(self, tmp_path):
        sequential = _run(tmp_path, jobs=1, tag="j1")
        parallel = _run(tmp_path, jobs=2, tag="j2")
        for name in CASES:
            assert sequential[name] == parallel[name]

    def test_cache_hit_never_skips_the_trace(self, tmp_path):
        """A job with a trace path must simulate even with a warm cache."""
        runner = ParallelRunner(jobs=1, cache_dir=tmp_path / "cache")
        path = tmp_path / "trace.jsonl"
        job = CASES["go_baseline"][1](str(path))
        runner.run([job])
        first = path.read_bytes()
        path.unlink()
        runner.run([job])
        assert runner.telemetry.cache_hits == 0
        assert path.read_bytes() == first
