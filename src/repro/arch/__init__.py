"""Reference architectural machine: memory, emulator, dynamic traces."""

from .emulator import EmulationResult, Emulator, EmulatorError, emulate
from .memory import Memory, MisalignedAccessError
from .trace import DynInst, Trace

__all__ = [
    "EmulationResult",
    "Emulator",
    "EmulatorError",
    "emulate",
    "Memory",
    "MisalignedAccessError",
    "DynInst",
    "Trace",
]
