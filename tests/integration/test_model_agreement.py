"""Cross-model integration: emulator, baseline pipeline, REESE pipeline.

Every timing model must commit *exactly* the dynamic instruction stream
the functional emulator retired — this is the central end-to-end
consistency property of the execution-driven design.
"""

import pytest

from repro.arch import emulate
from repro.uarch import (
    Pipeline,
    bigger_window_config,
    large_machine_config,
    starting_config,
    wide_datapath_config,
)
from repro.workloads import BENCHMARK_ORDER
from repro.workloads.suite import trace_for

SCALE = 2500


@pytest.fixture(scope="module", params=BENCHMARK_ORDER)
def benchmark_trace(request):
    return request.param, trace_for(request.param, scale=SCALE)


class TestEveryBenchmarkEveryModel:
    def test_baseline_commits_trace(self, benchmark_trace):
        name, (program, trace) = benchmark_trace
        stats = Pipeline(program, trace, starting_config()).run()
        assert stats.committed == len(trace), name
        assert stats.halted

    def test_reese_commits_trace(self, benchmark_trace):
        name, (program, trace) = benchmark_trace
        stats = Pipeline(program, trace, starting_config().with_reese()).run()
        assert stats.committed == len(trace), name
        assert stats.errors_detected == 0

    def test_reese_redundancy_is_complete(self, benchmark_trace):
        """Full duplication: every non-trivial commit was re-executed."""
        name, (program, trace) = benchmark_trace
        stats = Pipeline(program, trace, starting_config().with_reese()).run()
        from repro.isa.instructions import FUClass, Op
        trivial = sum(
            1 for dyn in trace
            if dyn.fu == FUClass.NONE or dyn.op is Op.HALT
        )
        assert stats.issued_r == len(trace) - trivial, name


class TestAllHardwareVariants:
    @pytest.mark.parametrize(
        "factory",
        [
            starting_config,
            bigger_window_config,
            wide_datapath_config,
            lambda: large_machine_config(64),
            lambda: large_machine_config(256, extra_fus=True),
        ],
    )
    @pytest.mark.parametrize("reese", [False, True])
    def test_commit_exactness_across_configs(self, factory, reese):
        program, trace = trace_for("li", scale=SCALE)
        config = factory()
        if reese:
            config = config.with_reese()
        stats = Pipeline(program, trace, config).run()
        assert stats.committed == len(trace)


class TestWarmupConsistency:
    def test_warmup_changes_timing_not_commits(self):
        program, trace = trace_for("gcc", scale=SCALE)
        cold = Pipeline(program, trace, starting_config()).run()
        warm = Pipeline(
            program, trace, starting_config(),
            warm_caches=True, warm_predictor=True,
        ).run()
        assert cold.committed == warm.committed
        assert warm.cycles <= cold.cycles
