"""Parameter-sweep driver for design-space exploration.

Used by the spare-capacity example, the ablation benches and the
sensitivity studies in EXPERIMENTS.md: run a grid of configuration
transformations against the benchmark suite and collect average IPC
(plus any other stat) per grid point.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..uarch.config import MachineConfig
from ..uarch.stats import Stats
from ..workloads.suite import BENCHMARK_ORDER
from .parallel import ParallelRunner, SimJob, resolve_runner
from .runner import bench_scale


@dataclass
class SweepPoint:
    """One grid point: a label, its config, and per-benchmark stats."""

    label: str
    config: MachineConfig
    stats: Dict[str, Stats]

    @property
    def average_ipc(self) -> float:
        values = [s.ipc for s in self.stats.values()]
        return sum(values) / len(values) if values else 0.0

    def average(self, metric: Callable[[Stats], float]) -> float:
        values = [metric(s) for s in self.stats.values()]
        return sum(values) / len(values) if values else 0.0


def run_sweep(
    points: Sequence,
    benchmarks: Optional[Iterable[str]] = None,
    scale: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: bool = False,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Run a list of (label, config) pairs over the benchmark suite.

    The (point x benchmark) grid is executed through
    :class:`~repro.harness.parallel.ParallelRunner`; results are
    bit-identical for any ``jobs`` value.  ``jobs=None`` runs
    sequentially; pass ``runner`` to share a cache/telemetry context
    across several drivers.
    """
    benchmarks = list(benchmarks or BENCHMARK_ORDER)
    scale = scale or bench_scale()
    runner = resolve_runner(runner, jobs, cache, cache_dir)
    sim_jobs = [
        SimJob(bench, config, scale)
        for _, config in points
        for bench in benchmarks
    ]
    all_stats = runner.run(sim_jobs)
    results: List[SweepPoint] = []
    cursor = 0
    for label, config in points:
        stats = {
            bench: all_stats[cursor + offset]
            for offset, bench in enumerate(benchmarks)
        }
        cursor += len(benchmarks)
        results.append(SweepPoint(label, config, stats))
    return results


def spare_capacity_grid(
    base: MachineConfig,
    max_alu: int = 4,
    max_mult: int = 2,
) -> List:
    """The paper's central design question as a grid.

    "How much spare hardware is needed to decrease the fault-tolerance
    overhead to zero?" — every (spare ALU, spare mult) combination of a
    REESE machine, preceded by the baseline.
    """
    points = [("baseline", base.without_reese())]
    for alu in range(max_alu + 1):
        for mult in range(max_mult + 1):
            label = f"reese+{alu}alu+{mult}mult"
            points.append((label, base.with_spares(alu, mult).with_reese()))
    return points
