"""McFarling combining predictor: bimodal + gshare with a meta chooser."""

from __future__ import annotations

from ..isa.instructions import INST_SIZE
from .base import DirectionPredictor, _Counter2
from .bimodal import BimodalPredictor
from .gshare import GSharePredictor


class CombiningPredictor(DirectionPredictor):
    """Tournament predictor selecting between bimodal and gshare.

    The meta table of 2-bit counters tracks, per PC, which component has
    been more accurate; the chosen component supplies the prediction and
    both components train on every branch (McFarling's scheme).
    """

    def __init__(
        self,
        meta_size: int = 4096,
        bimodal_size: int = 2048,
        gshare_history: int = 12,
        gshare_size: int = 4096,
    ) -> None:
        if meta_size <= 0 or meta_size & (meta_size - 1):
            raise ValueError("meta_size must be a positive power of two")
        super().__init__()
        self.bimodal = BimodalPredictor(bimodal_size)
        self.gshare = GSharePredictor(gshare_history, gshare_size)
        self.meta_size = meta_size
        # Counter >= 2 selects gshare, < 2 selects bimodal.
        self._meta = [_Counter2.WEAK_TAKEN] * meta_size
        self._pc_shift = INST_SIZE.bit_length() - 1

    def _meta_index(self, pc: int) -> int:
        return (pc >> self._pc_shift) & (self.meta_size - 1)

    def predict(self, pc: int) -> bool:
        if _Counter2.is_taken(self._meta[self._meta_index(pc)]):
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def clone_state(self) -> "CombiningPredictor":
        clone = super().clone_state()
        clone.bimodal = self.bimodal.clone_state()
        clone.gshare = self.gshare.clone_state()
        return clone

    def update(self, pc: int, taken: bool) -> None:
        bimodal_pred = self.bimodal.predict(pc)
        gshare_pred = self.gshare.predict(pc)
        index = self._meta_index(pc)
        if bimodal_pred != gshare_pred:
            # Train the chooser towards the component that was right.
            self._meta[index] = _Counter2.train(
                self._meta[index], gshare_pred == taken
            )
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)
