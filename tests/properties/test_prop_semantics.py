"""Property-based tests for instruction semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Op
from repro.isa.semantics import (
    bits_to_float,
    branch_taken,
    compute,
    float_to_bits,
    to_i32,
    to_u32,
)

i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
any_int = st.integers(min_value=-(2**40), max_value=2**40)


class TestWidthProperties:
    @given(any_int)
    def test_to_i32_in_range(self, value):
        result = to_i32(value)
        assert -(2**31) <= result < 2**31

    @given(any_int)
    def test_to_i32_idempotent(self, value):
        assert to_i32(to_i32(value)) == to_i32(value)

    @given(any_int)
    def test_i32_u32_congruent_mod_2_32(self, value):
        assert to_i32(value) % 2**32 == to_u32(value)


class TestAlgebraicProperties:
    @given(i32, i32)
    def test_add_commutes(self, a, b):
        assert compute(Op.ADD, a, b) == compute(Op.ADD, b, a)

    @given(i32, i32)
    def test_add_sub_inverse(self, a, b):
        assert compute(Op.SUB, compute(Op.ADD, a, b), b) == a

    @given(i32)
    def test_xor_self_is_zero(self, a):
        assert compute(Op.XOR, a, a) == 0

    @given(i32, i32)
    def test_mul_commutes(self, a, b):
        assert compute(Op.MUL, a, b) == compute(Op.MUL, b, a)

    @given(i32, i32)
    def test_div_rem_reconstruct(self, a, b):
        q = compute(Op.DIV, a, b)
        r = compute(Op.REM, a, b)
        if b != 0:
            assert to_i32(q * b + r) == a
        else:
            assert (q, r) == (0, a)

    @given(i32, st.integers(min_value=0, max_value=31))
    def test_shift_left_right_bounds(self, a, shamt):
        shifted = compute(Op.SLL, a, shamt)
        assert -(2**31) <= shifted < 2**31

    @given(i32)
    def test_sra_preserves_sign(self, a):
        result = compute(Op.SRA, a, 4)
        assert (result < 0) == (a < 0) or result == 0

    @given(i32, i32)
    def test_results_always_32_bit(self, a, b):
        for op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.MUL,
                   Op.DIV, Op.REM, Op.SLT, Op.SLTU):
            result = compute(op, a, b)
            assert -(2**31) <= result < 2**31


class TestBranchProperties:
    @given(i32, i32)
    def test_beq_bne_complementary(self, a, b):
        assert branch_taken(Op.BEQ, a, b) != branch_taken(Op.BNE, a, b)

    @given(i32, i32)
    def test_blt_bge_complementary(self, a, b):
        assert branch_taken(Op.BLT, a, b) != branch_taken(Op.BGE, a, b)

    @given(i32)
    def test_bltz_matches_blt_zero(self, a):
        assert branch_taken(Op.BLTZ, a, 0) == branch_taken(Op.BLT, a, 0)


class TestFloatBits:
    @given(st.floats(allow_nan=False))
    def test_roundtrip(self, value):
        assert bits_to_float(float_to_bits(value)) == value

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=200)
    def test_bits_roundtrip(self, bits):
        value = bits_to_float(bits)
        # NaN payloads round-trip bit-exactly too.
        assert float_to_bits(value) == bits
