#!/usr/bin/env python3
"""Fault-injection demo: what soft errors do with and without REESE.

Three experiments on one workload:

1. an architectural campaign on a machine WITHOUT REESE — injected bit
   flips silently corrupt results (SDC) or crash the program;
2. the same transient faults on a REESE machine — every strike whose
   P and R executions are separated by more than the event duration is
   detected and repaired by flush + re-execution;
3. the paper's §2 argument made visible: sweeping the environmental
   event duration Δt shows coverage collapsing once events outlast the
   P→R separation.

Run:  python examples/fault_injection_demo.py
"""

from repro.harness.campaign import run_campaign
from repro.reese import EnvironmentalFaultModel
from repro.uarch import Pipeline, starting_config
from repro.workloads import load
from repro.workloads.suite import trace_for


def architectural_campaign() -> None:
    print("=" * 64)
    print("1. Machine without REESE: architectural fault campaign")
    print("=" * 64)
    program = load("vortex", scale=5_000)
    result = run_campaign(program, runs=40, rate=2e-3, seed=7)
    print(result.report())
    print()


def reese_detection() -> None:
    print("=" * 64)
    print("2. REESE machine: detection and recovery")
    print("=" * 64)
    program, trace = trace_for("vortex", scale=8_000)
    config = starting_config().with_reese()
    model = EnvironmentalFaultModel(rate=1e-3, duration=2, seed=42)
    stats = Pipeline(
        program, trace, config, fault_model=model,
        warm_caches=True, warm_predictor=True,
    ).run()
    print(f"fault strikes:            {model.strikes}")
    print(f"errors detected:          {stats.errors_detected}")
    print(f"recoveries (flush+refetch): {stats.recoveries}")
    print(f"silent corruptions:       {stats.sdc_commits}")
    print(f"instructions committed:   {stats.committed} (all verified)")
    print()


def coverage_vs_duration() -> None:
    print("=" * 64)
    print("3. Detection coverage vs environmental event duration (dt)")
    print("=" * 64)
    program, trace = trace_for("vortex", scale=8_000)
    config = starting_config().with_reese()
    print(f"{'dt (cycles)':>12s} {'detected':>9s} {'escaped':>8s} "
          f"{'coverage':>9s}")
    for duration in (1, 8, 64, 512):
        detected = escaped = 0
        for seed in (3, 11, 29):
            model = EnvironmentalFaultModel(
                rate=1e-3, duration=duration, seed=seed
            )
            stats = Pipeline(
                program, trace, config, fault_model=model,
                warm_caches=True, warm_predictor=True,
            ).run()
            detected += stats.errors_detected
            escaped += stats.errors_undetected_same_event
        total = detected + escaped
        coverage = detected / total if total else 1.0
        print(f"{duration:>12d} {detected:>9d} {escaped:>8d} "
              f"{coverage:>9.0%}")
    print()
    print("Short events are always caught; events longer than the P->R")
    print("separation corrupt both executions identically and escape --")
    print("the paper's argument for not re-executing too soon.")


if __name__ == "__main__":
    architectural_campaign()
    reese_detection()
    coverage_vs_duration()
