"""Unit tests for the retry/stop recovery policy."""

import pytest

from repro.reese import RetryTracker, UnrecoverableFaultError


class TestRetryTracker:
    def test_first_failure_recoverable(self):
        tracker = RetryTracker(max_retry=2)
        assert tracker.record_failure(10) is False

    def test_exceeding_budget_stops(self):
        tracker = RetryTracker(max_retry=2)
        assert tracker.record_failure(10) is False
        assert tracker.record_failure(10) is False
        assert tracker.record_failure(10) is True

    def test_different_instruction_resets_streak(self):
        tracker = RetryTracker(max_retry=1)
        assert tracker.record_failure(10) is False
        assert tracker.record_failure(11) is False  # new seq: fresh streak
        assert tracker.record_failure(11) is True

    def test_success_clears_streak(self):
        tracker = RetryTracker(max_retry=1)
        tracker.record_failure(10)
        tracker.record_success(10)
        assert tracker.record_failure(10) is False

    def test_success_of_other_seq_keeps_streak(self):
        tracker = RetryTracker(max_retry=1)
        tracker.record_failure(10)
        tracker.record_success(11)
        assert tracker.record_failure(10) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryTracker(max_retry=0)


class TestUnrecoverableError:
    def test_message_carries_details(self):
        error = UnrecoverableFaultError(seq=42, attempts=3)
        assert error.seq == 42
        assert error.attempts == 3
        assert "42" in str(error)
        assert "not transient" in str(error)
