"""Unit tests for the functional emulator (the architectural oracle)."""

import pytest

from repro.arch import EmulatorError, emulate
from repro.isa import INST_SIZE, TEXT_BASE, assemble
from repro.isa.instructions import Op
from repro.isa.program import STACK_BASE
from repro.isa.registers import REG_SP
from repro.workloads import kernels


class TestKernelCorrectness:
    """Kernels with pure-Python references must match exactly."""

    def test_vector_sum(self):
        program, expected = kernels.vector_sum(n=40, seed=9)
        assert emulate(program).output == [expected]

    def test_fibonacci(self):
        program, expected = kernels.fibonacci(30)
        assert emulate(program).output == [expected]

    def test_fibonacci_wraps_32_bits(self):
        program, expected = kernels.fibonacci(60)
        result = emulate(program)
        assert result.output == [expected]
        assert -(2**31) <= result.output[0] < 2**31

    def test_recursive_fibonacci(self):
        program, expected = kernels.fib_recursive(10)
        assert emulate(program).output == [expected]

    def test_bubble_sort_sorts_memory(self):
        program, expected = kernels.bubble_sort(n=20, seed=4)
        result = emulate(program)
        assert result.output == [expected[0]]
        # Verify the whole array in memory is sorted.
        from repro.isa.program import DATA_BASE
        values = [result.memory.load_word(DATA_BASE + 4 * i) for i in range(20)]
        assert values == expected

    def test_matmul_trace(self):
        program, expected = kernels.matmul(n=5, seed=2)
        assert emulate(program).output == [expected]

    def test_string_hash(self):
        program, expected = kernels.string_hash("hello world")
        assert emulate(program).output == [expected]


class TestExecutionControl:
    def test_halt_stops_execution(self):
        result = emulate(assemble("halt\nnop"))
        assert result.halted
        assert result.instructions == 1

    def test_instruction_cap(self):
        program = assemble("x: j x")
        result = emulate(program, max_instructions=50)
        assert not result.halted
        assert result.instructions == 50

    def test_jump_outside_text_raises(self):
        program = assemble("li r1, 4\njr r1")  # address 4 < TEXT_BASE
        with pytest.raises(EmulatorError):
            emulate(program)

    def test_sp_initialised(self):
        result = emulate(assemble("halt"))
        # sp was never written by the 1-instruction program.
        assert result.regs[REG_SP] == STACK_BASE

    def test_r0_stays_zero(self):
        result = emulate(assemble("addi r0, r0, 99\nputint r0\nhalt"))
        assert result.output == [0]

    def test_putch_masks_to_byte(self):
        result = emulate(assemble("li r1, 321\nputch r1\nhalt"))
        assert result.output == [321 & 0xFF]


class TestTraceContents:
    def test_trace_length_matches_instruction_count(self, loop_program):
        result = emulate(loop_program)
        assert len(result.trace) == result.instructions

    def test_trace_sequential_seq_numbers(self, loop_program):
        trace = emulate(loop_program).trace
        assert [dyn.seq for dyn in trace] == list(range(len(trace)))

    def test_next_index_chains_the_trace(self, mixed_program):
        trace = emulate(mixed_program).trace
        for current, following in zip(trace, trace[1:]):
            assert current.next_index == following.static_index

    def test_branch_records_outcome_and_target(self):
        program = assemble("""
        main:
            li r1, 1
            beqz r1, skip     # not taken
            bnez r1, skip     # taken
            nop
        skip:
            halt
        """)
        trace = emulate(program).trace
        branches = [d for d in trace if d.is_cond_branch]
        assert [d.taken for d in branches] == [False, True]
        assert branches[0].target_index == program.label("skip")

    def test_load_records_effective_address_and_value(self):
        program = assemble("""
        .data
        v: .word 77
        .text
        la r1, v
        lw r2, 0(r1)
        halt
        """)
        trace = emulate(program).trace
        load = next(d for d in trace if d.is_load)
        assert load.result == 77
        from repro.isa.program import DATA_BASE
        assert load.ea == DATA_BASE

    def test_store_records_value(self):
        program = assemble("""
        .data
        v: .space 4
        .text
        la r1, v
        li r2, -9
        sw r2, 0(r1)
        halt
        """)
        trace = emulate(program).trace
        store = next(d for d in trace if d.is_store)
        assert store.store_value == -9

    def test_operand_values_captured(self):
        program = assemble("""
        li r1, 6
        li r2, 7
        mul r3, r1, r2
        halt
        """)
        trace = emulate(program).trace
        mul = next(d for d in trace if d.op is Op.MUL)
        assert (mul.a, mul.b, mul.result) == (6, 7, 42)

    def test_jal_records_link_value(self):
        program = assemble("""
        main:
            call fn
            halt
        fn:
            ret
        """)
        trace = emulate(program).trace
        jal = next(d for d in trace if d.op is Op.JAL)
        assert jal.result == TEXT_BASE + 1 * INST_SIZE

    def test_trace_disabled(self, loop_program):
        result = emulate(loop_program, collect_trace=False)
        assert result.trace is None
        assert result.output == [5050]


class TestInjectionHook:
    def test_hook_can_corrupt_register_result(self):
        program = assemble("""
        li r1, 5
        addi r2, r1, 1
        putint r2
        halt
        """)
        def flip(dyn):
            if dyn.op is Op.ADDI and dyn.result == 6:
                dyn.result = 999

        result = emulate(program, inject=flip)
        assert result.output == [999]

    def test_hook_can_flip_branch_direction(self):
        program = assemble("""
        main:
            li r1, 1
            bnez r1, taken
            putint r0
            halt
        taken:
            li r2, 42
            putint r2
            halt
        """)
        def flip(dyn):
            if dyn.is_cond_branch:
                dyn.taken = not dyn.taken

        clean = emulate(program)
        corrupted = emulate(program, inject=flip)
        assert clean.output == [42]
        assert corrupted.output == [0]

    def test_hook_corruption_propagates(self):
        # A corrupted value feeds later instructions: the hallmark of SDC.
        program = assemble("""
        li r1, 10
        addi r2, r1, 0
        mul r3, r2, r2
        putint r3
        halt
        """)
        def flip(dyn):
            if dyn.op is Op.ADDI:
                dyn.result = 11

        assert emulate(program, inject=flip).output == [121]

    def test_hook_can_corrupt_store_value(self):
        program = assemble("""
        .data
        v: .space 4
        .text
        la r1, v
        li r2, 5
        sw r2, 0(r1)
        lw r3, 0(r1)
        putint r3
        halt
        """)
        def flip(dyn):
            if dyn.is_store:
                dyn.store_value = 123

        assert emulate(program, inject=flip).output == [123]


class TestRecursiveKernels:
    def test_quicksort_sorts(self):
        from repro.isa.program import DATA_BASE
        program, expected = kernels.quicksort(40, seed=3)
        result = emulate(program, max_instructions=500_000)
        values = [result.memory.load_word(DATA_BASE + 4 * i)
                  for i in range(40)]
        assert values == expected
        assert result.output == [expected[0], expected[-1]]

    def test_quicksort_handles_duplicates(self):
        from repro.isa.program import DATA_BASE
        import random
        # Force duplicates by sorting a tiny value range.
        program, expected = kernels.quicksort(32, seed=8)
        result = emulate(program, max_instructions=500_000)
        assert result.halted

    def test_binary_search_hit_count(self):
        program, expected = kernels.binary_search(64, 40, seed=5)
        assert emulate(program, max_instructions=200_000).output == [expected]

    def test_binary_search_all_hits(self):
        program, expected = kernels.binary_search(16, 10, seed=1)
        result = emulate(program)
        assert 0 <= result.output[0] <= 10
