"""SPEC95-integer proxy workloads (paper Table 2).

The REESE paper evaluates six SPECint95 programs.  Those binaries and
inputs cannot be run here (no SPEC sources, no PISA toolchain, and a
pure-Python cycle simulator cannot retire 100 M instructions), so each
benchmark is replaced by a **proxy kernel** written in the mini-ISA and
tuned to the qualitative character of its namesake:

=========  ==============================================================
gcc        four interleaved pointer chases over shuffled node lists with
           a run-patterned tag dispatch — irregular loads, moderately
           predictable branches, compiler-pass flavour.
go         board evaluation at LCG positions with gradient-biased
           neighbour comparisons — the branchiest, lowest-IPC proxy.
ijpeg      blocked 8-point dot products against register-resident
           coefficients — multiply-rich, loop-parallel, predictable
           (the paper's highest-IPC benchmark, and the one where a
           spare multiplier matters).
li         recursive binary-tree reduction with caller-saved spills and
           per-node mixing — call/return and stack traffic.
perl       two-way-unrolled byte-string hashing with open-addressing
           table inserts — byte loads, data-dependent probe loops.
vortex     two-way-unrolled hashed record store: 4-word inserts plus
           validating lookups — the store-heavy proxy.
=========  ==============================================================

The proxies are *calibrated*, not arbitrary: on the paper's starting
configuration (Table 1) they land baseline IPCs in the ~1.3-2.6 band the
paper reports across SPECint95, with enough functional-unit pressure
that full redundant execution costs roughly the paper's 11-16 % — the
regression tests in ``tests/workloads`` and the expectation checks in
``repro.harness.expectations`` pin this behaviour.

Every builder takes a target *dynamic* instruction count (``scale``)
and a seed, and returns an assembled :class:`~repro.isa.program.Program`
that halts after roughly that many instructions.  Pointer-valued
initialised data exploits the assembler's deterministic layout: the
first ``.data`` object starts exactly at ``DATA_BASE``, so node
addresses are computed in Python at build time.
"""

from __future__ import annotations

import random
from typing import List

from ..isa.assembler import assemble
from ..isa.program import DATA_BASE, Program


def _words(values: List[int]) -> str:
    return ", ".join(str(v) for v in values)


def _burst_block(rng: random.Random, ops: int, regs=range(10, 14),
                 indent: str = "        ") -> str:
    """An unrolled block of independent ALU operations (an ILP burst).

    Real integer code exposes ILP in bursts — e.g. evaluating a large
    expression tree between two pointer dereferences — and those bursts
    briefly saturate the integer ALUs.  Under REESE the burst must be
    executed twice, so R-stream work piles up behind it, fills the
    R-stream Queue and throttles the P stream; spare ALUs drain exactly
    this backlog.  The block is ``len(regs)`` parallel dependence chains
    (default 4), so the P stream moves through it at up to 4 ops/cycle
    regardless of ALU count — added ALUs therefore benefit the *R*
    stream, the paper's spare-capacity effect.
    """
    regs = list(regs)
    lines = []
    ops_list = ["addi", "xori", "slli", "ori"]
    for index in range(ops):
        reg = regs[index % len(regs)]
        op = ops_list[(index // len(regs)) % len(ops_list)]
        lines.append(f"{indent}{op} r{reg}, r{reg}, {rng.randrange(1, 31)}")
    return "\n".join(lines)


def _patterned_tags(rng: random.Random, count: int, n_tags: int,
                    repeat_prob: float) -> List[int]:
    """Tags with runs: predictable enough for a warmed-up gshare."""
    tags = [rng.randrange(n_tags)]
    for _ in range(count - 1):
        if rng.random() < repeat_prob:
            tags.append(tags[-1])
        else:
            tags.append(rng.randrange(n_tags))
    return tags


# ---------------------------------------------------------------------------
# gcc — four interleaved pointer chases with tag dispatch
# ---------------------------------------------------------------------------

def build_gcc(scale: int = 30_000, seed: int = 101) -> Program:
    """Compiler-flavour proxy: parallel shuffled list walks + tag switch."""
    rng = random.Random(seed)
    n_lists = 2
    per_list = 256
    node_stride = 12  # tag, value, next
    n_nodes = n_lists * per_list
    addr = [DATA_BASE + i * node_stride for i in range(n_nodes)]
    tags = _patterned_tags(rng, n_nodes, 3, repeat_prob=0.8)
    vals = [rng.randrange(1, 4000) for _ in range(n_nodes)]
    next_ptr = [0] * n_nodes
    heads = []
    for list_id in range(n_lists):
        ids = list(range(list_id * per_list, (list_id + 1) * per_list))
        rng.shuffle(ids)
        heads.append(addr[ids[0]])
        for pos in range(per_list - 1):
            next_ptr[ids[pos]] = addr[ids[pos + 1]]
    node_words = []
    for i in range(n_nodes):
        node_words.extend((tags[i], vals[i], next_ptr[i]))

    per_step = 27  # 19 walk instructions + amortised burst share
    passes = max(1, scale // (per_list * per_step))
    burst = _burst_block(rng, 48, regs=range(18, 22))

    source = f"""
    .data
    nodes: .word {_words(node_words)}
    .text
    main:
        li   r1, {passes}
        li   r7, 3
        li   r9, 0              # step counter (burst trigger)
        li   r26, 0
        li   r27, 0
        li   r28, 0
        li   r18, 1
        li   r19, 2
        li   r20, 3
        li   r21, 4
        li   r22, 5
        li   r23, 6
        li   r24, 7
        li   r25, 8
    outer:
        li   r2, {heads[0]}
        li   r3, {heads[1]}
    walk:
        lw   r10, 0(r2)         # tag (list 0 drives the dispatch)
        lw   r11, 4(r2)         # value (list 1's pointer values feed
        add  r27, r27, r3       # the mixing directly)
        andi r16, r3, 255
        xor  r28, r28, r16
        beqz r10, tag0
        li   r16, 1
        beq  r10, r16, tag1
        mul  r17, r11, r7       # tag 2
        add  r26, r26, r17
        j    next
    tag0:
        add  r26, r26, r11
        j    next
    tag1:
        xor  r26, r26, r11
    next:
        lw   r2, 8(r2)          # chase both pointers in parallel
        lw   r3, 8(r3)
        addi r9, r9, 1
        andi r15, r9, 3
        bnez r15, noburst
        # expression-tree evaluation burst (every 4th node)
{burst}
    noburst:
        bnez r2, walk
        subi r1, r1, 1
        bnez r1, outer
        add  r26, r26, r27
        add  r26, r26, r28
        add  r26, r26, r18
        add  r26, r26, r22
        putint r26
        halt
    """
    return assemble(source, name="gcc_proxy")


# ---------------------------------------------------------------------------
# go — board evaluation with gradient-biased branches
# ---------------------------------------------------------------------------

def build_go(scale: int = 30_000, seed: int = 202) -> Program:
    """Game-tree-flavour proxy: neighbour comparisons at LCG positions."""
    rng = random.Random(seed)
    board_dim = 32
    # Gradient plus noise: east/west comparisons are biased ~77/23 and
    # the south comparison is fully predictable, giving the branchy,
    # poorly-predicted profile of real go without being a coin flip.
    board = [
        16 * i + rng.randrange(0, 64)
        for i in range(board_dim * board_dim)
    ]
    per_iter = 30
    iters = max(1, scale // per_iter)

    source = f"""
    .data
    board: .word {_words(board)}
    .text
    main:
        li   r1, {iters}
        li   r2, {rng.randrange(1, 1 << 30)}   # LCG state
        la   r3, board
        li   r8, 0
        li   r9, 0
        li   r10, 0
        li   r21, 0
        li   r22, 0
        li   r20, 1103515245
    loop:
        # Position selection is loop-carried through the previous centre
        # value (r10) — the "next move depends on the board" recurrence
        # that keeps real go dependence-bound at any window size.
        add  r2, r2, r10
        mul  r2, r2, r20
        addi r2, r2, 12345
        srli r4, r2, 7
        andi r5, r4, 1023
        ori  r5, r5, 33
        andi r5, r5, 991
        slli r6, r5, 2
        add  r7, r3, r6         # &board[pos]
        lw   r10, 0(r7)         # centre
        lw   r11, 4(r7)         # east (usually larger: gradient)
        lw   r12, -4(r7)        # west (usually smaller)
        lw   r13, 128(r7)       # south (usually larger)
        xor  r21, r21, r4
        addi r22, r22, 3
        blt  r10, r11, e_hi
        addi r8, r8, 1
        j    c1
    e_hi:
        addi r9, r9, 1
    c1:
        blt  r10, r12, w_hi
        add  r8, r8, r11
        j    c2
    w_hi:
        add  r9, r9, r12
    c2:
        blt  r10, r13, s_hi
        xor  r8, r8, r13
        j    c3
    s_hi:
        xor  r9, r9, r10
    c3:
        subi r1, r1, 1
        bnez r1, loop
        add  r8, r8, r9
        add  r8, r8, r21
        add  r8, r8, r22
        putint r8
        halt
    """
    return assemble(source, name="go_proxy")


# ---------------------------------------------------------------------------
# ijpeg — blocked multiply-rich dot products
# ---------------------------------------------------------------------------

def build_ijpeg(scale: int = 30_000, seed: int = 303) -> Program:
    """Image-kernel proxy: 8-point dot products, coefficients in registers."""
    rng = random.Random(seed)
    n_samples = 2048
    samples = [rng.randrange(0, 256) for _ in range(n_samples)]
    coefs = [rng.randrange(-16, 17) | 1 for _ in range(6)]
    # Two-stage butterfly blocks (DCT flavour): four first-stage products,
    # two second-stage products of pair sums.  Six multiplies per
    # 19-instruction block keep the single integer multiplier the binding
    # resource at every window size — which is what makes ijpeg the
    # paper's most REESE-sensitive benchmark and the one a spare
    # multiplier visibly rescues.
    per_block = 19
    blocks = max(1, scale // per_block)
    wrap_mask = (n_samples // 4) - 1

    coef_init = "\n".join(
        f"        li   r{18 + k}, {coefs[k]}" for k in range(6)
    )
    loads = "\n".join(
        f"        lw   r{10 + k}, {4 * k}(r6)" for k in range(4)
    )
    stage1 = "\n".join(
        f"        mul  r{10 + k}, r{10 + k}, r{18 + k}" for k in range(4)
    )
    source = f"""
    .data
    img: .word {_words(samples)}
    .text
    main:
        li   r1, {blocks}
        la   r5, img
        mov  r6, r5             # block pointer (induction variable)
        li   r4, 0              # block index
        li   r26, 1
        li   r27, 0
{coef_init}
    loop:
{loads}
{stage1}
        add  r14, r10, r11      # butterfly sums
        add  r15, r12, r13
        add  r15, r15, r14
        # Entropy-coding flavour: the block result folds serially into a
        # running polynomial checksum, bounding cross-block parallelism
        # the way sequential Huffman output bounds real JPEG.
        add  r26, r26, r15
        mul  r26, r26, r22
        xori r26, r26, 8571
        addi r6, r6, 16
        addi r4, r4, 1
        andi r7, r4, {wrap_mask}
        bnez r7, nowrap
        mov  r6, r5             # wrap back to the start of the image
    nowrap:
        subi r1, r1, 1
        bnez r1, loop
        add  r3, r26, r27
        putint r3
        halt
    """
    return assemble(source, name="ijpeg_proxy")


# ---------------------------------------------------------------------------
# li — recursive tree reduction with per-node mixing
# ---------------------------------------------------------------------------

def build_li(scale: int = 30_000, seed: int = 404) -> Program:
    """Lisp-flavour proxy: recursive sum over a binary tree in memory."""
    rng = random.Random(seed)
    n_nodes = 384
    stride = 8  # value, cdr
    addr = [DATA_BASE + i * stride for i in range(n_nodes)]
    # A shuffled cons list: cdr recursion is inherently serial, like a
    # lisp interpreter walking s-expressions — IPC stays dependence-
    # bound no matter how large the instruction window grows.
    order = list(range(n_nodes))
    rng.shuffle(order)
    cdr = [0] * n_nodes
    for pos in range(n_nodes - 1):
        cdr[order[pos]] = addr[order[pos + 1]]
    words: List[int] = []
    for i in range(n_nodes):
        words.extend((rng.randrange(1, 100), cdr[i]))
    per_node = 21  # 18 recursion instructions + amortised burst share
    passes = max(1, scale // (n_nodes * per_node))
    head = addr[order[0]]
    burst = _burst_block(rng, 48, regs=range(18, 22))

    source = f"""
    .data
    cells: .word {_words(words)}
    .text
    main:
        li   r9, {passes}
        li   r26, 0             # global mixing accumulators
        li   r27, 0
        li   r28, 0             # cell counter (burst trigger)
        li   r18, 1
        li   r19, 2
        li   r20, 3
        li   r21, 4
        li   r22, 5
        li   r23, 6
        li   r24, 7
        li   r25, 8
    again:
        li   r1, {head}
        call lsum
        subi r9, r9, 1
        bnez r9, again
        add  r2, r2, r26
        add  r2, r2, r27
        putint r2
        halt

    lsum:                       # arg r1 = cell, result r2 (car + lsum(cdr))
        bnez r1, recurse
        li   r2, 0
        ret
    recurse:
        subi sp, sp, 12
        sw   ra, 0(sp)
        sw   r16, 4(sp)
        lw   r16, 0(r1)         # car (the value)
        # independent per-cell mixing (interpreter bookkeeping flavour)
        add  r26, r26, r16
        slli r3, r16, 3
        xor  r27, r27, r3
        addi r28, r28, 1
        andi r3, r28, 15
        bnez r3, noburst
        # garbage-collection sweep burst (every 16th cell)
{burst}
    noburst:
        lw   r1, 4(r1)          # cdr
        call lsum
        add  r2, r16, r2        # serial unwind accumulation
        lw   ra, 0(sp)
        lw   r16, 4(sp)
        addi sp, sp, 12
        ret
    """
    return assemble(source, name="li_proxy")


# ---------------------------------------------------------------------------
# perl — two-way-unrolled string hashing with table probes
# ---------------------------------------------------------------------------

def build_perl(scale: int = 30_000, seed: int = 505) -> Program:
    """Script-flavour proxy: byte hashing + open-addressing inserts."""
    rng = random.Random(seed)
    n_strings = 96
    table_slots = 256
    # Pack strings: each is a length word followed by padded bytes.
    # Even lengths so the 2-way-unrolled hash loop needs no epilogue.
    layout: List[int] = []
    string_addrs: List[int] = []
    cursor = DATA_BASE
    for _ in range(n_strings):
        length = rng.randrange(4, 9) * 2  # 8..16, even
        text = bytes(rng.randrange(97, 123) for _ in range(length))
        string_addrs.append(cursor)
        padded = text.ljust((length + 3) & ~3, b"\0")
        layout.append(length)
        for i in range(0, len(padded), 4):
            layout.append(int.from_bytes(padded[i:i + 4], "little"))
        cursor += 4 + len(padded)
    ptr_base = cursor
    layout.extend(string_addrs)
    per_string = 115  # hash + probe + amortised burst share
    passes = max(1, scale // (n_strings * per_string))
    burst = _burst_block(rng, 48, regs=(17, 18, 19, 22))

    source = f"""
    .data
    pool:  .word {_words(layout)}
    table: .space {4 * table_slots}
    .text
    main:
        li   r1, {passes}
        li   r20, 0             # global checksum
        li   r17, 1
        li   r18, 2
        li   r19, 3
        li   r22, 4
        li   r23, 5
        li   r24, 6
        li   r25, 7
        li   r26, 8
    outer:
        li   r2, {ptr_base}     # cursor into the pointer array
        li   r3, {n_strings}
    strloop:
        lw   r4, 0(r2)          # string base
        lw   r5, 0(r4)          # length (even)
        addi r6, r4, 4          # char cursor
        li   r7, 5381           # hash
    chars:
        lbu  r8, 0(r6)          # two characters per trip
        lbu  r9, 1(r6)
        slli r10, r7, 5
        add  r10, r10, r7       # h*33      (serial part)
        slli r11, r9, 7
        add  r11, r11, r8       # mix(c1,c2) (parallel part)
        xor  r7, r10, r11
        ori  r7, r7, 1          # keep the hash odd (lengthens the chain)
        addi r6, r6, 2
        subi r5, r5, 2
        bnez r5, chars
        # open-addressing insert/touch
        la   r12, table
        andi r13, r7, {table_slots - 1}
    probe:
        slli r14, r13, 2
        add  r15, r12, r14
        lw   r16, 0(r15)
        beqz r16, place
        beq  r16, r7, placed    # already present
        addi r13, r13, 1
        andi r13, r13, {table_slots - 1}
        j    probe
    place:
        sw   r7, 0(r15)
    placed:
        add  r20, r20, r7
        andi r16, r3, 1
        bnez r16, noburst
        # pattern-matching burst (every other string)
{burst}
    noburst:
        addi r2, r2, 4
        subi r3, r3, 1
        bnez r3, strloop
        subi r1, r1, 1
        bnez r1, outer
        putint r20
        halt
    """
    return assemble(source, name="perl_proxy")


# ---------------------------------------------------------------------------
# vortex — record store with hashed inserts and lookups (2-way unrolled)
# ---------------------------------------------------------------------------

def build_vortex(scale: int = 30_000, seed: int = 606) -> Program:
    """Database-flavour proxy: 4-word record inserts + validating reads."""
    rng = random.Random(seed)
    slots = 1024
    per_iter = 24
    iters = max(1, scale // per_iter)

    source = f"""
    .data
    store: .space {16 * slots}
    .text
    main:
        li   r1, {iters}
        li   r2, {rng.randrange(1, 1 << 30)}   # key-generator state
        la   r3, store
        li   r8, 0              # checksum
        li   r20, 1103515245
        li   r21, {0x9E3779B1 - (1 << 32)}     # golden-ratio hash constant
    loop:
        # Key generation is loop-carried through the *previous lookup's
        # data* (r14): each transaction's key depends on the last record
        # read, the serial read-modify-write pattern of a real database.
        add  r2, r2, r8
        mul  r2, r2, r20
        addi r2, r2, 12345
        srli r10, r2, 4         # key
        mul  r11, r10, r21
        srli r11, r11, 22
        andi r11, r11, {slots - 1}
        slli r11, r11, 4        # slot * 16 bytes
        add  r12, r3, r11
        # insert a 4-field record
        sw   r10, 0(r12)
        addi r13, r10, 17
        sw   r13, 4(r12)
        xori r14, r10, 255
        sw   r14, 8(r12)
        slli r15, r10, 1
        sw   r15, 12(r12)
        # validating lookup
        lw   r13, 0(r12)
        bne  r13, r10, miss
        lw   r14, 4(r12)
        lw   r15, 8(r12)
        add  r8, r8, r14
        xor  r8, r8, r15
        j    next
    miss:
        addi r8, r8, 1
    next:
        subi r1, r1, 1
        bnez r1, loop
        putint r8
        halt
    """
    return assemble(source, name="vortex_proxy")
