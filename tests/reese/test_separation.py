"""Tests for the P->R separation statistics (the paper's §2 quantity)."""

import pytest

from repro.arch import emulate
from repro.reese import EnvironmentalFaultModel
from repro.uarch import Pipeline, starting_config
from repro.workloads import kernels
from repro.workloads.suite import trace_for


class TestSeparationAccounting:
    def test_populated_only_under_reese(self, loop_trace):
        program, trace = loop_trace
        base = Pipeline(program, trace, starting_config()).run()
        reese = Pipeline(
            program, trace, starting_config().with_reese()
        ).run()
        assert base.pr_separation_count == 0
        assert reese.pr_separation_count > 0
        assert reese.mean_pr_separation >= 1.0
        assert reese.pr_separation_max >= reese.mean_pr_separation

    def test_counts_match_r_completions(self, mixed_trace):
        program, trace = mixed_trace
        stats = Pipeline(
            program, trace, starting_config().with_reese()
        ).run()
        # Every R completion contributes exactly one sample.
        assert stats.pr_separation_count >= stats.comparisons

    def test_fuller_queue_means_longer_separation(self):
        program = kernels.ilp_block(400, 8)
        trace = emulate(program).trace
        config = starting_config()
        small = Pipeline(
            program, trace,
            config.with_reese(rqueue_size=8, high_water_margin=2),
        ).run()
        large = Pipeline(
            program, trace, config.with_reese(rqueue_size=64)
        ).run()
        # A bigger queue holds instructions longer before re-execution.
        assert large.mean_pr_separation >= small.mean_pr_separation

    def test_separation_predicts_coverage_knee(self):
        """Events shorter than the typical separation are mostly caught."""
        program, trace = trace_for("vortex", scale=5000)
        config = starting_config().with_reese()
        clean = Pipeline(
            program, trace, config, warm_caches=True, warm_predictor=True
        ).run()
        sep = clean.mean_pr_separation
        assert sep > 0

        short = EnvironmentalFaultModel(rate=2e-3, duration=1, seed=9)
        short_stats = Pipeline(
            program, trace, config, fault_model=short,
            warm_caches=True, warm_predictor=True,
        ).run()
        long = EnvironmentalFaultModel(
            rate=2e-3, duration=int(sep * 50) + 50, seed=9
        )
        long_stats = Pipeline(
            program, trace, config, fault_model=long,
            warm_caches=True, warm_predictor=True,
        ).run()

        def escape_rate(stats):
            total = stats.errors_detected + stats.errors_undetected_same_event
            return stats.errors_undetected_same_event / total if total else 0

        assert escape_rate(short_stats) <= escape_rate(long_stats)

    def test_exported_in_to_dict(self, loop_trace):
        program, trace = loop_trace
        stats = Pipeline(
            program, trace, starting_config().with_reese()
        ).run()
        assert "mean_pr_separation" in stats.to_dict()
