"""Determinism guarantees: identical inputs produce identical outputs.

Reproducibility is a stated design property (DESIGN.md §5): every
stochastic component is seeded, so simulations are bit-reproducible —
including under fault injection, recovery, and across all three
redundancy schemes.
"""

import pytest

from repro.reese import BernoulliFaultModel, EnvironmentalFaultModel
from repro.uarch import Pipeline, starting_config
from repro.workloads.suite import trace_for


def run_twice(config, fault_factory=None):
    program, trace = trace_for("perl", scale=3000)
    results = []
    for _ in range(2):
        fault = fault_factory() if fault_factory else None
        stats = Pipeline(
            program, trace, config, fault_model=fault,
            warm_caches=True, warm_predictor=True,
        ).run()
        results.append(stats.to_dict())
    return results


class TestBitReproducibility:
    def test_baseline(self):
        first, second = run_twice(starting_config())
        assert first == second

    def test_reese(self):
        first, second = run_twice(starting_config().with_reese())
        assert first == second

    def test_dispatch_dup(self):
        first, second = run_twice(starting_config().with_dispatch_dup())
        assert first == second

    def test_reese_with_environmental_faults(self):
        first, second = run_twice(
            starting_config().with_reese(),
            fault_factory=lambda: EnvironmentalFaultModel(
                rate=1e-3, duration=2, seed=77
            ),
        )
        assert first == second
        assert first["errors_detected"] == second["errors_detected"]

    def test_reese_with_bernoulli_faults(self):
        first, second = run_twice(
            starting_config().with_reese(),
            fault_factory=lambda: BernoulliFaultModel(rate=1e-4, seed=5),
        )
        assert first == second

    def test_different_fault_seeds_differ(self):
        program, trace = trace_for("perl", scale=3000)
        outcomes = set()
        for seed in (1, 2, 3, 4):
            stats = Pipeline(
                program, trace, starting_config().with_reese(),
                fault_model=EnvironmentalFaultModel(
                    rate=1e-3, duration=2, seed=seed
                ),
                warm_caches=True, warm_predictor=True,
            ).run()
            outcomes.add((stats.cycles, stats.errors_detected))
        assert len(outcomes) > 1  # seeds actually change behaviour
