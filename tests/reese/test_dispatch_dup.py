"""Tests for the dispatch-duplication comparison scheme (related work §3).

Franklin-style duplication at the dynamic scheduler: both copies occupy
RUU/LSQ entries and issue slots, with comparison at commit.  It detects
the same faults as REESE but pays for the halved effective window —
the quantitative argument for REESE's post-completion R-stream Queue.
"""

import pytest

from repro.arch import emulate
from repro.reese import (
    BernoulliFaultModel,
    ScheduledFaultModel,
    UnrecoverableFaultError,
)
from repro.uarch import Pipeline, starting_config
from repro.workloads import kernels
from repro.workloads.suite import trace_for


@pytest.fixture
def dup_config():
    return starting_config().with_dispatch_dup()


class TestConfig:
    def test_with_dispatch_dup(self):
        config = starting_config().with_dispatch_dup()
        assert config.dispatch_dup
        assert not config.reese.enabled
        assert config.name.endswith("+dup")

    def test_mutually_exclusive_with_reese(self):
        with pytest.raises(ValueError):
            starting_config().with_reese().replace(dispatch_dup=True)

    def test_needs_window_of_two(self):
        with pytest.raises(ValueError):
            starting_config().replace(
                ruu_size=1, lsq_size=1, dispatch_dup=True
            )

    def test_without_reese_clears_dup(self):
        config = starting_config().with_dispatch_dup().without_reese()
        assert not config.dispatch_dup


class TestExecution:
    def test_commits_exactly_the_trace(self, loop_trace, dup_config):
        program, trace = loop_trace
        stats = Pipeline(program, trace, dup_config).run()
        assert stats.committed == len(trace)
        assert stats.halted

    def test_mixed_program_commits(self, mixed_trace, dup_config):
        program, trace = mixed_trace
        stats = Pipeline(program, trace, dup_config).run()
        assert stats.committed == len(trace)

    def test_every_commit_compared(self, mixed_trace, dup_config):
        program, trace = mixed_trace
        stats = Pipeline(program, trace, dup_config).run()
        from repro.isa.instructions import FUClass, Op
        trivial = sum(
            1 for dyn in trace
            if dyn.fu == FUClass.NONE or dyn.op is Op.HALT
        )
        assert stats.comparisons == len(trace) - trivial
        assert stats.issued_r == stats.comparisons

    def test_duplication_roughly_doubles_dispatch(self, loop_trace,
                                                  dup_config):
        program, trace = loop_trace
        base = Pipeline(program, trace, starting_config()).run()
        dup = Pipeline(program, trace, dup_config).run()
        assert dup.dispatched >= base.dispatched * 1.7

    def test_benchmarks_commit_under_dup(self, dup_config):
        for name in ("gcc", "li", "vortex"):
            program, trace = trace_for(name, scale=2500)
            stats = Pipeline(program, trace, dup_config).run()
            assert stats.committed == len(trace), name


class TestCostComparison:
    """The point of the scheme: it is strictly costlier than REESE."""

    def test_dup_slower_than_reese_on_window_limited_code(self):
        program = kernels.ilp_block(400, 8)
        trace = emulate(program).trace
        config = starting_config()
        reese = Pipeline(program, trace, config.with_reese()).run()
        dup = Pipeline(program, trace, config.with_dispatch_dup()).run()
        assert dup.cycles > reese.cycles

    def test_dup_overhead_driven_by_window_pressure(self):
        program = kernels.ilp_block(300, 8)
        trace = emulate(program).trace
        small = starting_config()
        large = small.replace(ruu_size=64, lsq_size=32)
        def gap(config):
            base = Pipeline(program, trace, config).run().cycles
            dup = Pipeline(
                program, trace, config.with_dispatch_dup()
            ).run().cycles
            return dup / base
        # A bigger window absorbs the duplicate entries.
        assert gap(large) <= gap(small) + 0.02


class TestDetection:
    def test_detects_and_recovers(self, dup_config):
        program, trace = trace_for("vortex", scale=4000)
        model = ScheduledFaultModel([(c, 2, 9) for c in range(50, 800, 50)])
        stats = Pipeline(
            program, trace, dup_config, fault_model=model,
            warm_caches=True, warm_predictor=True,
        ).run()
        assert stats.errors_detected > 0
        assert stats.recoveries == stats.errors_detected
        assert stats.committed == len(trace)

    def test_persistent_fault_stops_machine(self, mixed_trace, dup_config):
        program, trace = mixed_trace
        with pytest.raises(UnrecoverableFaultError):
            Pipeline(
                program, trace, dup_config,
                fault_model=BernoulliFaultModel(rate=1.0, seed=3),
            ).run()

    def test_clean_run_detects_nothing(self, mixed_trace, dup_config):
        program, trace = mixed_trace
        stats = Pipeline(program, trace, dup_config).run()
        assert stats.errors_detected == 0
        assert stats.sdc_commits == 0
