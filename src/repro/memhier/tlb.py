"""A small set-associative TLB model.

SimpleScalar charges a fixed penalty on TLB misses; we do the same.
The TLB sits logically in front of the D-cache: a data access latency
is ``tlb_latency + cache_latency`` where ``tlb_latency`` is 0 on a hit
and ``miss_penalty`` cycles on a miss.
"""

from __future__ import annotations

from typing import List


class TLB:
    """Set-associative translation lookaside buffer with LRU replacement."""

    def __init__(
        self,
        entries: int = 64,
        assoc: int = 4,
        page_size: int = 4096,
        miss_penalty: int = 30,
    ) -> None:
        if entries % assoc:
            raise ValueError("entries must be divisible by assoc")
        if page_size & (page_size - 1):
            raise ValueError("page_size must be a power of two")
        self.page_shift = page_size.bit_length() - 1
        self.n_sets = entries // assoc
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of TLB sets must be a power of two")
        self.assoc = assoc
        self.miss_penalty = miss_penalty
        # Each set is an LRU-ordered list of page tags (most recent last).
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate; returns the added latency (0 on hit)."""
        page = addr >> self.page_shift
        set_index = page & (self.n_sets - 1)
        tag = page >> (self.n_sets.bit_length() - 1)
        entry_set = self._sets[set_index]
        if tag in entry_set:
            self.hits += 1
            entry_set.remove(tag)
            entry_set.append(tag)
            return 0
        self.misses += 1
        entry_set.append(tag)
        if len(entry_set) > self.assoc:
            entry_set.pop(0)
        return self.miss_penalty

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def clone_state(self) -> "TLB":
        """An independent copy of entries and stats (cheap snapshot)."""
        clone = TLB.__new__(TLB)
        clone.page_shift = self.page_shift
        clone.n_sets = self.n_sets
        clone.assoc = self.assoc
        clone.miss_penalty = self.miss_penalty
        clone._sets = [list(entry_set) for entry_set in self._sets]
        clone.hits = self.hits
        clone.misses = self.misses
        return clone
