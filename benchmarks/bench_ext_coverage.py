"""Extension A — detection coverage vs. environmental-event duration.

The paper's §2 argument, made quantitative: if the cause of a soft
error persists for Δt and the P- and R-stream executions of an
instruction are separated by less than Δt, both are corrupted
identically and the error escapes.  We sweep Δt and report the escape
fraction; coverage must degrade monotonically (up to sampling noise)
as events outlast the P->R separation.
"""

from conftest import publish

from repro.harness import bench_scale, format_table
from repro.reese import EnvironmentalFaultModel
from repro.uarch import Pipeline, starting_config
from repro.workloads.suite import trace_for

DURATIONS = [1, 4, 16, 64, 256, 1024]
RATE = 2e-3


def run_sweep():
    program, trace = trace_for("ijpeg", scale=bench_scale())
    config = starting_config().with_reese()
    rows = []
    for duration in DURATIONS:
        detected = escaped = strikes = 0
        for seed in (5, 17, 91):
            model = EnvironmentalFaultModel(
                rate=RATE, duration=duration, seed=seed
            )
            stats = Pipeline(
                program, trace, config, fault_model=model,
                warm_caches=True, warm_predictor=True,
            ).run()
            detected += stats.errors_detected
            escaped += stats.errors_undetected_same_event
            strikes += model.strikes
        total = detected + escaped
        coverage = detected / total if total else 1.0
        rows.append((duration, strikes, detected, escaped, coverage))
    return rows


def test_coverage_vs_event_duration(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = [["dt (cycles)", "strikes", "detected", "escaped", "coverage"]]
    for duration, strikes, detected, escaped, coverage in rows:
        table.append([str(duration), str(strikes), str(detected),
                      str(escaped), f"{coverage:.1%}"])
    publish(
        "ext_coverage",
        "Extension A: detection coverage vs environmental-event "
        "duration dt\n" + format_table(table),
    )
    coverages = [row[4] for row in rows]
    # Short events: near-total coverage.  Long events: mostly escapes.
    assert coverages[0] >= 0.9
    assert coverages[-1] <= 0.5
    # Broadly monotonic decrease.
    assert coverages[0] >= coverages[-1]
