"""In-order functional emulator — the architectural oracle.

The emulator executes a :class:`~repro.isa.program.Program` with exact
ISA semantics and produces

* the final architectural state (registers, memory, output channel), and
* optionally the **dynamic trace** (:class:`~repro.arch.trace.DynInst`
  records) that drives the cycle-level timing models.

It is deliberately simple and strictly in order: it is the reference
against which both the baseline and REESE timing models are validated
(every timing simulation must commit exactly the instructions of this
trace, in this order), and the substrate for architectural fault-
injection campaigns (silent-data-corruption studies on a machine
*without* REESE).

Fault injection hooks: an ``inject`` callable, when provided, is invoked
with each :class:`DynInst` *after* its results are computed and *before*
they are committed architecturally.  The hook may mutate ``result``,
``store_value``, ``taken`` and ``target_index`` to model a soft error;
the emulator then commits the corrupted values, faithfully propagating
the error through the remainder of the program.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from ..isa.instructions import INST_SIZE, Instruction, Op, OPINFO, FUClass
from ..isa.program import Program, STACK_BASE, TEXT_BASE
from ..isa.registers import NUM_REGS, REG_SP
from ..isa.semantics import branch_taken, compute, to_i32
from .memory import Memory
from .trace import DynInst, Trace

Value = Union[int, float]

# Internal execution categories, precomputed per static instruction.
_CAT_NOP = 0
_CAT_COMPUTE = 1
_CAT_LOAD = 2
_CAT_STORE = 3
_CAT_COND_BRANCH = 4
_CAT_JUMP = 5
_CAT_JUMP_REG = 6
_CAT_HALT = 7
_CAT_PUT = 8


class EmulatorError(Exception):
    """Raised when a program performs an illegal action (bad PC, etc.)."""


class EmulationResult:
    """Outcome of one emulator run."""

    def __init__(
        self,
        program: Program,
        regs: List[Value],
        memory: Memory,
        output: List[int],
        trace: Optional[Trace],
        halted: bool,
        instructions: int,
    ) -> None:
        self.program = program
        self.regs = regs
        self.memory = memory
        self.output = output
        self.trace = trace
        #: True if the program reached ``halt`` (vs. hitting the instruction cap).
        self.halted = halted
        #: Number of instructions retired.
        self.instructions = instructions

    @property
    def int_regs(self) -> List[int]:
        """The 32 integer registers."""
        return self.regs[:32]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "halted" if self.halted else "capped"
        return (
            f"<EmulationResult {self.program.name!r}: "
            f"{self.instructions} insts, {status}>"
        )


def _decode_program(program: Program):
    """Precompute per-instruction dispatch tuples for the hot loop."""
    decoded = []
    for inst in program.code:
        info = OPINFO[inst.op]
        if info.is_halt:
            cat = _CAT_HALT
        elif inst.op in (Op.PUTINT, Op.PUTCH):
            cat = _CAT_PUT
        elif info.is_load:
            cat = _CAT_LOAD
        elif info.is_store:
            cat = _CAT_STORE
        elif info.is_cond_branch:
            cat = _CAT_COND_BRANCH
        elif inst.op in (Op.J, Op.JAL):
            cat = _CAT_JUMP
        elif inst.op in (Op.JR, Op.JALR):
            cat = _CAT_JUMP_REG
        elif inst.op is Op.NOP:
            cat = _CAT_NOP
        else:
            cat = _CAT_COMPUTE
        decoded.append((cat, inst, info))
    return decoded


class Emulator:
    """Functional executor for mini-ISA programs."""

    def __init__(
        self,
        program: Program,
        max_instructions: int = 2_000_000,
        inject: Optional[Callable[[DynInst], None]] = None,
    ) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.inject = inject

    def run(self, collect_trace: bool = True) -> EmulationResult:
        """Execute the program from its first instruction.

        Args:
            collect_trace: when True (the default), build the dynamic
                trace used by the timing models; turn off for pure
                architectural runs (fault campaigns) to save memory.

        Returns:
            An :class:`EmulationResult`.

        Raises:
            EmulatorError: on a jump outside the text segment.
        """
        program = self.program
        code = program.code
        decoded = _decode_program(program)
        n_code = len(code)

        regs: List[Value] = [0] * NUM_REGS
        for fp_index in range(32, NUM_REGS):
            regs[fp_index] = 0.0
        regs[REG_SP] = STACK_BASE
        memory = Memory(program.data)
        output: List[int] = []
        trace: Optional[Trace] = [] if collect_trace else None
        inject = self.inject

        idx = 0
        retired = 0
        halted = False
        max_insts = self.max_instructions

        while retired < max_insts:
            if not 0 <= idx < n_code:
                raise EmulatorError(
                    f"control transferred outside text segment: index {idx}"
                )
            cat, inst, info = decoded[idx]
            op = inst.op
            rs1 = inst.rs1
            rs2 = inst.rs2
            a = regs[rs1] if rs1 >= 0 else 0
            b = regs[rs2] if rs2 >= 0 else 0
            imm = inst.imm

            dyn: Optional[DynInst] = None
            if trace is not None or inject is not None:
                dyn = DynInst()
                dyn.seq = retired
                dyn.static_index = idx
                dyn.pc = TEXT_BASE + idx * INST_SIZE
                dyn.op = op
                dyn.fu = info.fu
                dyn.dst = inst.dst()
                dyn.srcs = inst.srcs()
                dyn.a = a
                dyn.b = b
                dyn.imm = imm

            next_idx = idx + 1

            if cat == _CAT_COMPUTE:
                result = compute(op, a, b, imm)
                if dyn is not None:
                    dyn.result = result
                    if inject is not None:
                        inject(dyn)
                        result = dyn.result
                if inst.rd > 0:
                    regs[inst.rd] = result
            elif cat == _CAT_LOAD:
                ea = (a + imm) & 0xFFFFFFFF
                if op is Op.LW:
                    result = memory.load_word(ea)
                elif op is Op.LB:
                    result = memory.load_byte(ea, signed=True)
                elif op is Op.LBU:
                    result = memory.load_byte(ea, signed=False)
                else:  # LWF
                    result = memory.load_float(ea)
                if dyn is not None:
                    dyn.is_load = True
                    dyn.ea = ea
                    dyn.result = result
                    if inject is not None:
                        inject(dyn)
                        result = dyn.result
                if inst.rd > 0:
                    regs[inst.rd] = result
            elif cat == _CAT_STORE:
                ea = (a + imm) & 0xFFFFFFFF
                value = b
                if dyn is not None:
                    dyn.is_store = True
                    dyn.ea = ea
                    dyn.store_value = value
                    if inject is not None:
                        inject(dyn)
                        ea = dyn.ea
                        value = dyn.store_value
                if op is Op.SW:
                    memory.store_word(ea, int(value))
                elif op is Op.SB:
                    memory.store_byte(ea, int(value))
                else:  # SWF
                    memory.store_float(ea, float(value))
            elif cat == _CAT_COND_BRANCH:
                taken = branch_taken(op, a, b)
                target = imm
                if dyn is not None:
                    dyn.is_branch = True
                    dyn.is_cond_branch = True
                    dyn.taken = taken
                    dyn.target_index = target
                    dyn.result = int(taken)
                    if inject is not None:
                        inject(dyn)
                        taken = bool(dyn.taken)
                        target = dyn.target_index
                if taken:
                    next_idx = target
            elif cat == _CAT_JUMP:
                target = imm
                link = TEXT_BASE + (idx + 1) * INST_SIZE
                if dyn is not None:
                    dyn.is_branch = True
                    dyn.taken = True
                    dyn.target_index = target
                    if op is Op.JAL:
                        dyn.result = link
                    if inject is not None:
                        inject(dyn)
                        target = dyn.target_index
                        if op is Op.JAL and dyn.result is not None:
                            link = int(dyn.result)
                if op is Op.JAL and inst.rd > 0:
                    regs[inst.rd] = link
                next_idx = target
            elif cat == _CAT_JUMP_REG:
                addr = int(a)
                if addr % INST_SIZE or addr < TEXT_BASE:
                    raise EmulatorError(f"jr to bad address {addr:#x}")
                target = (addr - TEXT_BASE) // INST_SIZE
                link = TEXT_BASE + (idx + 1) * INST_SIZE
                if dyn is not None:
                    dyn.is_branch = True
                    dyn.taken = True
                    dyn.target_index = target
                    if op is Op.JALR:
                        dyn.result = link
                    if inject is not None:
                        inject(dyn)
                        target = dyn.target_index
                        if op is Op.JALR and dyn.result is not None:
                            link = int(dyn.result)
                if op is Op.JALR and inst.rd > 0:
                    regs[inst.rd] = link
                next_idx = target
            elif cat == _CAT_PUT:
                value = to_i32(int(a))
                if op is Op.PUTCH:
                    value &= 0xFF
                output.append(value)
                if dyn is not None and inject is not None:
                    inject(dyn)
            elif cat == _CAT_HALT:
                if dyn is not None:
                    dyn.next_index = idx
                    if trace is not None:
                        trace.append(dyn)
                retired += 1
                halted = True
                break
            # _CAT_NOP: nothing to do.

            if dyn is not None:
                dyn.next_index = next_idx
                if trace is not None:
                    trace.append(dyn)
            retired += 1
            idx = next_idx

        return EmulationResult(
            program, regs, memory, output, trace, halted, retired
        )


def emulate(
    program: Program,
    max_instructions: int = 2_000_000,
    collect_trace: bool = True,
    inject: Optional[Callable[[DynInst], None]] = None,
) -> EmulationResult:
    """Convenience wrapper: run ``program`` on a fresh :class:`Emulator`."""
    emulator = Emulator(program, max_instructions=max_instructions, inject=inject)
    return emulator.run(collect_trace=collect_trace)
