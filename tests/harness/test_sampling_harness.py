"""Harness wiring of the sampled simulation engine.

Covers the interval-level SimJob fan-out, cache fingerprinting of
sampling parameters, per-interval fault-seed derivation and the
figure/sweep sampled entry points.
"""

import dataclasses

import pytest

from repro.harness.experiments import figure2_spec, run_figure
from repro.harness.parallel import (
    CACHE_VERSION,
    FaultSpec,
    ParallelRunner,
    SimJob,
    expand_sampled_job,
    interval_fault_spec,
    job_fingerprint,
    run_sampled_jobs,
)
from repro.harness.runner import run_sampled_benchmark
from repro.harness.sweep import run_sweep
from repro.uarch import SampledResult, SamplingSpec, run_sampled
from repro.uarch.config import starting_config
from repro.workloads.suite import trace_for

SCALE = 2000
SPEC = SamplingSpec(4, 120, warmup=30, cooldown=30)


@pytest.fixture
def runner(tmp_path):
    return ParallelRunner(jobs=1, cache_dir=tmp_path)


class TestFingerprint:
    def test_cache_version_covers_sampling(self):
        assert CACHE_VERSION >= 3

    def test_sampled_and_full_jobs_never_share_entries(self):
        cfg = starting_config()
        full = SimJob("li", cfg, SCALE)
        sampled = SimJob("li", cfg, SCALE, sampling=SPEC)
        assert job_fingerprint(full) != job_fingerprint(sampled)

    def test_every_spec_field_changes_the_fingerprint(self):
        cfg = starting_config()
        base = job_fingerprint(SimJob("li", cfg, SCALE, sampling=SPEC))
        for variant in (
            dataclasses.replace(SPEC, intervals=5),
            dataclasses.replace(SPEC, interval_length=150),
            dataclasses.replace(SPEC, warmup=31),
            dataclasses.replace(SPEC, cooldown=31),
            dataclasses.replace(SPEC, placement="end"),
            dataclasses.replace(SPEC, seed=99),
            dataclasses.replace(SPEC, index=0),
        ):
            other = job_fingerprint(SimJob("li", cfg, SCALE,
                                           sampling=variant))
            assert other != base, variant

    def test_interval_jobs_have_distinct_fingerprints(self):
        cfg = starting_config()
        fps = {
            job_fingerprint(
                SimJob("li", cfg, SCALE,
                       sampling=dataclasses.replace(SPEC, index=i))
            )
            for i in range(SPEC.intervals)
        }
        assert len(fps) == SPEC.intervals


class TestExpansion:
    def test_requires_sampling_spec(self):
        with pytest.raises(ValueError, match="sampling spec"):
            expand_sampled_job(SimJob("li", starting_config(), SCALE))

    def test_rejects_already_indexed_job(self):
        job = SimJob("li", starting_config(), SCALE,
                     sampling=dataclasses.replace(SPEC, index=1))
        with pytest.raises(ValueError, match="single-interval"):
            expand_sampled_job(job)

    def test_expands_one_job_per_interval(self):
        job = SimJob("li", starting_config(), SCALE, sampling=SPEC,
                     trace_path="out.jsonl")
        interval_jobs, total, profile = expand_sampled_job(job)
        _, trace = trace_for("li", SCALE)
        assert total == len(trace)
        assert profile is not None and len(profile) == total + 1
        assert [ij.sampling.index for ij in interval_jobs] == \
            list(range(len(interval_jobs)))
        # Trace-path side effects cannot be split across k pipelines.
        assert all(ij.trace_path is None for ij in interval_jobs)

    def test_injected_jobs_get_per_interval_seeds(self):
        fault = FaultSpec.make("environmental", rate=1e-4, duration=3,
                               seed=11)
        job = SimJob("li", starting_config(), SCALE, fault=fault,
                     sampling=SPEC)
        interval_jobs, _, _ = expand_sampled_job(job)
        seeds = {dict(ij.fault.params)["seed"] for ij in interval_jobs}
        assert len(seeds) == len(interval_jobs)


class TestIntervalFaultSpec:
    def test_deterministic_per_index(self):
        fault = FaultSpec.make("bernoulli", rate=1e-3, seed=5)
        assert interval_fault_spec(fault, 2) == interval_fault_spec(fault, 2)
        assert interval_fault_spec(fault, 2) != interval_fault_spec(fault, 3)

    def test_seedless_spec_passes_through(self):
        fault = FaultSpec.make("scheduled", events=((10, 2, 3),))
        assert interval_fault_spec(fault, 4) == fault


class TestRunSampledJobs:
    def test_matches_in_process_run_sampled(self, runner):
        cfg = starting_config().with_reese()
        [result] = run_sampled_jobs(
            [SimJob("li", cfg, SCALE, sampling=SPEC)], runner
        )
        program, trace = trace_for("li", SCALE)
        reference = run_sampled(program, trace, cfg, SPEC)
        assert isinstance(result, SampledResult)
        assert [s.state_dict() for s in result.interval_stats] == \
            [s.state_dict() for s in reference.interval_stats]
        assert result.ipc == reference.ipc

    def test_worker_count_invariant(self, tmp_path):
        cfg = starting_config()
        job = SimJob("go", cfg, SCALE, sampling=SPEC)
        [seq] = run_sampled_jobs(
            [job], ParallelRunner(jobs=1, cache_dir=tmp_path / "a")
        )
        [par] = run_sampled_jobs(
            [job], ParallelRunner(jobs=2, cache_dir=tmp_path / "b")
        )
        assert [s.state_dict() for s in seq.interval_stats] == \
            [s.state_dict() for s in par.interval_stats]

    def test_second_run_is_pure_cache_hit(self, runner):
        job = SimJob("li", starting_config(), SCALE, sampling=SPEC)
        run_sampled_jobs([job], runner)
        assert runner.telemetry.cache_hits == 0
        [again] = run_sampled_jobs([job], runner)
        assert runner.telemetry.cache_hits == runner.telemetry.jobs
        assert again.ipc > 0

    def test_whole_run_sampled_job_returns_merged_stats(self, runner):
        cfg = starting_config()
        job = SimJob("li", cfg, SCALE, sampling=SPEC)
        [merged] = runner.run([job])
        program, trace = trace_for("li", SCALE)
        reference = run_sampled(program, trace, cfg, SPEC)
        assert merged.state_dict() == reference.stats.state_dict()


class TestSampledEntryPoints:
    def test_run_sampled_benchmark(self):
        result = run_sampled_benchmark(
            "li", starting_config(), SPEC, scale=SCALE
        )
        assert isinstance(result, SampledResult)
        assert result.ipc > 0

    def test_run_figure_sampled_cells(self, runner):
        spec = dataclasses.replace(
            figure2_spec(), benchmarks=("li",),
            series=figure2_spec().series[:2],
        )
        result = run_figure(spec, scale=SCALE, runner=runner,
                            sampling=SPEC)
        for label, _ in spec.series:
            cell = result.cells["li"][label]
            assert isinstance(cell, SampledResult)
            assert result.ipc("li", label) == cell.ipc
        assert result.average_ipc(spec.series_labels[0]) > 0

    def test_run_sweep_sampled_cells(self, runner):
        cfg = starting_config()
        points = [("baseline", cfg), ("reese", cfg.with_reese())]
        results = run_sweep(points, benchmarks=["li"], scale=SCALE,
                            runner=runner, sampling=SPEC)
        assert all(
            isinstance(p.stats["li"], SampledResult) for p in results
        )
        assert results[0].average_ipc > 0
