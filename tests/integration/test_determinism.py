"""Determinism guarantees: identical inputs produce identical outputs.

Reproducibility is a stated design property (DESIGN.md §5): every
stochastic component is seeded, so simulations are bit-reproducible —
including under fault injection, recovery, and across all three
redundancy schemes.
"""

import pytest

from repro.harness import ParallelRunner, SimJob, run_sweep
from repro.reese import BernoulliFaultModel, EnvironmentalFaultModel
from repro.uarch import Pipeline, starting_config
from repro.workloads.suite import trace_for


def run_twice(config, fault_factory=None):
    program, trace = trace_for("perl", scale=3000)
    results = []
    for _ in range(2):
        fault = fault_factory() if fault_factory else None
        stats = Pipeline(
            program, trace, config, fault_model=fault,
            warm_caches=True, warm_predictor=True,
        ).run()
        results.append(stats.to_dict())
    return results


class TestBitReproducibility:
    def test_baseline(self):
        first, second = run_twice(starting_config())
        assert first == second

    def test_reese(self):
        first, second = run_twice(starting_config().with_reese())
        assert first == second

    def test_dispatch_dup(self):
        first, second = run_twice(starting_config().with_dispatch_dup())
        assert first == second

    def test_reese_with_environmental_faults(self):
        first, second = run_twice(
            starting_config().with_reese(),
            fault_factory=lambda: EnvironmentalFaultModel(
                rate=1e-3, duration=2, seed=77
            ),
        )
        assert first == second
        assert first["errors_detected"] == second["errors_detected"]

    def test_reese_with_bernoulli_faults(self):
        first, second = run_twice(
            starting_config().with_reese(),
            fault_factory=lambda: BernoulliFaultModel(rate=1e-4, seed=5),
        )
        assert first == second

    def test_different_fault_seeds_differ(self):
        program, trace = trace_for("perl", scale=3000)
        outcomes = set()
        for seed in (1, 2, 3, 4):
            stats = Pipeline(
                program, trace, starting_config().with_reese(),
                fault_model=EnvironmentalFaultModel(
                    rate=1e-3, duration=2, seed=seed
                ),
                warm_caches=True, warm_predictor=True,
            ).run()
            outcomes.add((stats.cycles, stats.errors_detected))
        assert len(outcomes) > 1  # seeds actually change behaviour


class TestParallelDeterminism:
    """The parallel layer must not perturb results in any way.

    Worker count, scheduling order and cache hits are all execution
    details; the (workload, config, seed) triple fully determines every
    Stats counter.
    """

    @classmethod
    def points(cls):
        base = starting_config()
        return [
            ("baseline", base),
            ("reese", base.with_reese()),
            ("reese+1alu", base.with_spares(1, 0).with_reese()),
        ]

    def test_sweep_jobs_1_vs_4_identical(self):
        kwargs = dict(benchmarks=["go", "perl"], scale=1500)
        sequential = run_sweep(self.points(), jobs=1, **kwargs)
        parallel = run_sweep(self.points(), jobs=4, **kwargs)
        assert len(sequential) == len(parallel)
        for seq_point, par_point in zip(sequential, parallel):
            assert seq_point.label == par_point.label
            assert {
                bench: stats.to_dict()
                for bench, stats in seq_point.stats.items()
            } == {
                bench: stats.to_dict()
                for bench, stats in par_point.stats.items()
            }

    def test_cache_hit_rerun_returns_equal_stats(self, tmp_path):
        kwargs = dict(benchmarks=["go"], scale=1500, cache=True,
                      cache_dir=tmp_path)
        cold = run_sweep(self.points(), jobs=2, **kwargs)
        warm = run_sweep(self.points(), jobs=2, **kwargs)
        for cold_point, warm_point in zip(cold, warm):
            for bench in cold_point.stats:
                assert (
                    cold_point.stats[bench].to_dict()
                    == warm_point.stats[bench].to_dict()
                )

    def test_cache_hit_rerun_simulates_nothing(self, tmp_path):
        runner = ParallelRunner(jobs=2, cache_dir=tmp_path)
        jobs = [
            SimJob(bench, config, 1500)
            for _, config in self.points()
            for bench in ("go", "perl")
        ]
        runner.run(jobs)
        assert runner.telemetry.cache_hits == 0
        runner.run(jobs)
        assert runner.telemetry.cache_hits == len(jobs)
        assert runner.telemetry.simulated == 0
