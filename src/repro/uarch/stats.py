"""Simulation statistics.

A plain attribute bag with integer counters incremented from the hot
loop (attribute store on a ``__slots__`` object is the cheapest thing
Python offers short of locals), plus derived metrics and a reporting
dict.  The headline metric throughout the paper is **committed IPC** —
committed *P-stream* instructions per cycle; REESE's R-stream
executions are accounted separately and never inflate IPC.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from .accounting import latency_summary, merge_accounting


def _merge_cache_level(
    into: Dict[str, float], other: Dict[str, Any]
) -> None:
    """Merge one cache/TLB stat block: sum counts, recompute rates."""
    for key, value in other.items():
        if key.endswith("rate"):
            continue
        if isinstance(value, (int, float)):
            into[key] = into.get(key, 0) + value
    accesses = into.get("accesses", into.get("hits", 0) + into.get("misses", 0))
    if "misses" in into:
        into["miss_rate"] = into["misses"] / accesses if accesses else 0.0


def _merge_stage_metrics(
    into: Dict[str, Any], other: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge two ``Stats.stage_metrics`` registries.

    Tolerant of empty/missing pieces: entries written by cache versions
    that predate a field (or runs where only one side was observed)
    merge as if the absent piece were zero.
    """
    if not other:
        return into
    if not into:
        return {key: _copy_json(value) for key, value in other.items()}
    into["schema"] = max(into.get("schema", 0), other.get("schema", 0))
    into["cycles_sampled"] = (
        into.get("cycles_sampled", 0) + other.get("cycles_sampled", 0)
    )
    occupancy = into.setdefault("occupancy", {})
    for structure, hist in other.get("occupancy", {}).items():
        merged = occupancy.setdefault(structure, {})
        for bin_key, count in hist.items():
            merged[bin_key] = merged.get(bin_key, 0) + count
    stalls = into.setdefault("stalls", {})
    for reason, count in other.get("stalls", {}).items():
        stalls[reason] = stalls.get(reason, 0) + count
    if "dropped_events" in into or "dropped_events" in other:
        into["dropped_events"] = (
            into.get("dropped_events", 0) + other.get("dropped_events", 0)
        )
    if "fu_issued" in other:
        fu = into.setdefault("fu_issued", {})
        for stream, counts in other["fu_issued"].items():
            merged = fu.setdefault(stream, {})
            for unit, count in counts.items():
                merged[unit] = merged.get(unit, 0) + count
    return into


def _copy_json(value: Any) -> Any:
    """Deep copy of a JSON-shaped value (dicts/lists/scalars)."""
    if isinstance(value, dict):
        return {key: _copy_json(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_copy_json(item) for item in value]
    return value


class Stats:
    """Counters for one simulation run."""

    __slots__ = (
        "cycles",
        "committed",
        "fetched",
        "fetched_wrong_path",
        "dispatched",
        "dispatched_wrong_path",
        "issued",
        "issued_wrong_path",
        "issued_r",
        "squashed",
        "branches",
        "cond_branches",
        "mispredictions",
        "loads",
        "stores",
        "load_forwards",
        "ifq_empty_cycles",
        "ruu_full_events",
        "lsq_full_events",
        "rqueue_full_events",
        "rqueue_moves",
        "rqueue_occ_sum",
        "rqueue_occ_max",
        "pr_separation_sum",
        "pr_separation_max",
        "pr_separation_count",
        "r_skipped_duty",
        "comparisons",
        "errors_detected",
        "errors_undetected_same_event",
        "sdc_commits",
        "recoveries",
        "unrecoverable",
        "halted",
        "bpred_accuracy",
        "fu_issues",
        "cache_stats",
        "stage_metrics",
        "accounting",
    )

    def __init__(self) -> None:
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.fetched_wrong_path = 0
        self.dispatched = 0
        self.dispatched_wrong_path = 0
        self.issued = 0
        self.issued_wrong_path = 0
        self.issued_r = 0
        self.squashed = 0
        self.branches = 0
        self.cond_branches = 0
        self.mispredictions = 0
        self.loads = 0
        self.stores = 0
        self.load_forwards = 0
        self.ifq_empty_cycles = 0
        self.ruu_full_events = 0
        self.lsq_full_events = 0
        self.rqueue_full_events = 0
        self.rqueue_moves = 0
        self.rqueue_occ_sum = 0
        self.rqueue_occ_max = 0
        self.pr_separation_sum = 0
        self.pr_separation_max = 0
        self.pr_separation_count = 0
        self.r_skipped_duty = 0
        self.comparisons = 0
        self.errors_detected = 0
        self.errors_undetected_same_event = 0
        self.sdc_commits = 0
        self.recoveries = 0
        self.unrecoverable = False
        self.halted = False
        self.bpred_accuracy = 0.0
        self.fu_issues: Dict[str, int] = {}
        self.cache_stats: Dict[str, Dict[str, float]] = {}
        #: Per-stage metrics registry (occupancy histograms, P/R FU
        #: split, stall reasons) — populated only when the run was
        #: observed (``repro.uarch.observe.StageMetrics``), empty
        #: otherwise.  JSON-serialisable by construction, so it rides
        #: the on-disk result cache with every other counter.
        self.stage_metrics: Dict[str, Any] = {}
        #: Top-down cycle/slot attribution account — populated only
        #: when the run was profiled
        #: (:class:`repro.uarch.accounting.CycleAccountant`), empty
        #: otherwise.  JSON-serialisable; rides the result cache.
        self.accounting: Dict[str, Any] = {}

    # -- derived metrics -------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed P-stream instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        return (
            self.mispredictions / self.cond_branches
            if self.cond_branches
            else 0.0
        )

    @property
    def rqueue_mean_occupancy(self) -> float:
        return self.rqueue_occ_sum / self.cycles if self.cycles else 0.0

    @property
    def mean_pr_separation(self) -> float:
        """Mean cycles between queue insertion and R-execution completion.

        The paper's §2 detection condition: an environmental event of
        duration Δt escapes exactly when the P and R executions both
        fall inside it, so this separation is the machine's effective
        coverage window (events shorter than it are always caught).
        """
        return (
            self.pr_separation_sum / self.pr_separation_count
            if self.pr_separation_count
            else 0.0
        )

    def detection_latency(self) -> Dict[str, Dict[str, float]]:
        """mean/p50/p99/max of the REESE detection-latency telemetry.

        Summarises the two lag histograms of :attr:`accounting`
        (``detect_latency``: queue insertion -> R-verify;
        ``rqueue_residency``: queue insertion -> final commit).  All
        zeros when the run was not profiled or not REESE.
        """
        return latency_summary(self.accounting)

    # -- aggregation (the sampled-simulation merge path) -----------------

    #: Counters combined by summation when merging interval Stats.
    _SUM_FIELDS = (
        "cycles", "committed", "fetched", "fetched_wrong_path",
        "dispatched", "dispatched_wrong_path", "issued",
        "issued_wrong_path", "issued_r", "squashed", "branches",
        "cond_branches", "mispredictions", "loads", "stores",
        "load_forwards", "ifq_empty_cycles", "ruu_full_events",
        "lsq_full_events", "rqueue_full_events", "rqueue_moves",
        "rqueue_occ_sum", "pr_separation_sum", "pr_separation_count",
        "r_skipped_duty", "comparisons", "errors_detected",
        "errors_undetected_same_event", "sdc_commits", "recoveries",
    )
    #: Watermarks combined by maximum.
    _MAX_FIELDS = ("rqueue_occ_max", "pr_separation_max")

    def merge(self, other: "Stats") -> "Stats":
        """Fold another run's counters into this one, in place.

        This is the aggregation path of the sampled-simulation engine
        (:mod:`repro.uarch.sampling`): per-interval Stats merge into one
        whole-run view.  Counters sum, watermarks take the maximum,
        ``unrecoverable`` ORs, ``halted`` ANDs (the merged run finished
        only if every interval did), predictor accuracy is weighted by
        conditional-branch count, and the nested registries
        (``fu_issues``, ``cache_stats``, ``stage_metrics`` histograms)
        merge key-wise — tolerating entries from older cache versions
        that lack newer fields.

        Returns ``self`` so reductions can chain.
        """
        own_weight = self.cond_branches
        other_weight = other.cond_branches
        total_weight = own_weight + other_weight
        if total_weight:
            self.bpred_accuracy = (
                self.bpred_accuracy * own_weight
                + other.bpred_accuracy * other_weight
            ) / total_weight
        for name in self._SUM_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in self._MAX_FIELDS:
            setattr(self, name, max(getattr(self, name), getattr(other, name)))
        self.unrecoverable = self.unrecoverable or other.unrecoverable
        self.halted = self.halted and other.halted
        for unit, count in (other.fu_issues or {}).items():
            self.fu_issues[unit] = self.fu_issues.get(unit, 0) + count
        for level, block in (other.cache_stats or {}).items():
            _merge_cache_level(self.cache_stats.setdefault(level, {}), block)
        self.stage_metrics = _merge_stage_metrics(
            self.stage_metrics, other.stage_metrics or {}
        )
        self.accounting = merge_accounting(
            self.accounting, other.accounting or {}
        )
        return self

    @classmethod
    def merged(cls, runs: Iterable["Stats"]) -> "Stats":
        """A fresh Stats holding the merge of every run in ``runs``."""
        total = cls()
        total.halted = True  # identity for the AND fold; empty input: True
        for stats in runs:
            total.merge(stats)
        return total

    def state_dict(self) -> Dict[str, Any]:
        """Raw counter state only — the JSON-serialisable cache payload."""
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "Stats":
        """Rebuild a Stats from :meth:`state_dict` (or :meth:`to_dict`).

        Tolerant by design — this is what loads on-disk result-cache
        entries, which may have been written by an older code version:
        unknown keys (e.g. the derived metrics ``to_dict`` adds) are
        ignored, missing counters keep their zero defaults, and a
        ``None`` where a registry dict belongs (``fu_issues``,
        ``cache_stats``, ``stage_metrics``) loads as empty instead of
        poisoning later ``merge()`` calls with ``KeyError``/
        ``TypeError``.
        """
        stats = cls()
        for name in cls.__slots__:
            if name in state and state[name] is not None:
                setattr(stats, name, state[name])
        return stats

    #: Backward-compatible alias (pre-sampling name).
    from_dict = from_state_dict

    def to_dict(self) -> Dict[str, Any]:
        """Flat reporting dict with counters and derived metrics."""
        out: Dict[str, Any] = self.state_dict()
        out["ipc"] = self.ipc
        out["misprediction_rate"] = self.misprediction_rate
        out["rqueue_mean_occupancy"] = self.rqueue_mean_occupancy
        out["mean_pr_separation"] = self.mean_pr_separation
        return out

    def summary(self) -> str:
        """A short human-readable summary line."""
        parts = [
            f"cycles={self.cycles}",
            f"committed={self.committed}",
            f"IPC={self.ipc:.3f}",
            f"mispred={self.misprediction_rate:.1%}",
        ]
        if self.issued_r:
            parts.append(f"R-issued={self.issued_r}")
        if self.errors_detected:
            parts.append(f"detected={self.errors_detected}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"<Stats {self.summary()}>"
