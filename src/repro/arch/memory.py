"""Flat byte-addressable memory for the functional machine.

The backing store maps word-aligned addresses to 32-bit unsigned words
(sparse — untouched memory reads as zero).  Byte accesses (``lb``/``sb``)
address little-endian bytes within those words.  Floating-point loads
and stores transfer IEEE-754 *single-precision* bit patterns through one
32-bit word; the round-trip is architecturally consistent (what a
program stores is exactly what it loads back), which is all the
integer-centric REESE experiments require.

Word accesses are required to be 4-byte aligned; the memory raises
:class:`MisalignedAccessError` otherwise, so workload bugs surface
immediately instead of corrupting results.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Tuple

from ..isa.semantics import to_i32, to_u32


class MisalignedAccessError(Exception):
    """A word access used a non-word-aligned effective address."""


class Memory:
    """Sparse flat memory with 32-bit words and byte sub-access."""

    __slots__ = ("_words",)

    def __init__(self, image: Dict[int, int] = None) -> None:
        self._words: Dict[int, int] = {}
        if image:
            for addr, value in image.items():
                self.store_word(addr, value)

    # -- word access -----------------------------------------------------

    def load_word(self, addr: int) -> int:
        """Load a signed 32-bit word from an aligned address."""
        if addr & 3:
            raise MisalignedAccessError(f"load_word at {addr:#x}")
        return to_i32(self._words.get(addr, 0))

    def store_word(self, addr: int, value: int) -> None:
        """Store a 32-bit word at an aligned address."""
        if addr & 3:
            raise MisalignedAccessError(f"store_word at {addr:#x}")
        self._words[addr] = to_u32(value)

    # -- byte access -----------------------------------------------------

    def load_byte(self, addr: int, signed: bool = True) -> int:
        """Load one byte (sign- or zero-extended to 32 bits)."""
        word = self._words.get(addr & ~3, 0)
        byte = (word >> ((addr & 3) * 8)) & 0xFF
        if signed and byte & 0x80:
            return byte - 0x100
        return byte

    def store_byte(self, addr: int, value: int) -> None:
        """Store the low byte of ``value``."""
        base = addr & ~3
        shift = (addr & 3) * 8
        word = self._words.get(base, 0)
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._words[base] = word

    # -- float access ------------------------------------------------------

    def load_float(self, addr: int) -> float:
        """Load a word and reinterpret it as an IEEE-754 float32."""
        bits = to_u32(self.load_word(addr))
        return struct.unpack("<f", struct.pack("<I", bits))[0]

    def store_float(self, addr: int, value: float) -> None:
        """Store ``value`` as an IEEE-754 float32 bit pattern."""
        try:
            bits = struct.unpack("<I", struct.pack("<f", value))[0]
        except OverflowError:
            bits = 0x7F800000 if value > 0 else 0xFF800000  # +/- infinity
        self.store_word(addr, bits)

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> Dict[int, int]:
        """A copy of all non-zero words (for state-comparison oracles)."""
        return {addr: word for addr, word in self._words.items() if word}

    def words(self) -> Iterable[Tuple[int, int]]:
        """Iterate (address, unsigned word) pairs of touched memory."""
        return self._words.items()

    def copy(self) -> "Memory":
        """An independent deep copy of this memory."""
        clone = Memory()
        clone._words = dict(self._words)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __len__(self) -> int:
        return len(self._words)
