"""Unit tests for machine configuration (Table 1 and variants)."""

import pytest

from repro.uarch import (
    LatencyConfig,
    MachineConfig,
    ReeseConfig,
    bigger_window_config,
    large_machine_config,
    more_mem_ports_config,
    starting_config,
    wide_datapath_config,
)


class TestTable1Preset:
    """The starting configuration must equal the paper's Table 1."""

    def test_fetch_queue(self):
        assert starting_config().fetch_queue_size == 16

    def test_widths(self):
        config = starting_config()
        assert config.fetch_width == 8
        assert config.decode_width == 8
        assert config.issue_width == 8
        assert config.commit_width == 8

    def test_window(self):
        config = starting_config()
        assert config.ruu_size == 16
        assert config.lsq_size == 8

    def test_functional_units(self):
        config = starting_config()
        assert config.int_alu == 4       # "4 IntAdd"
        assert config.int_mult == 1      # "1 IntM/D"
        assert config.fp_alu == 4        # "Same for FP"
        assert config.fp_mult == 1
        assert config.mem_ports == 2

    def test_predictor_is_gshare(self):
        assert starting_config().predictor == "gshare"

    def test_caches(self):
        mem = starting_config().mem
        assert mem.l1d.size == 32 * 1024 and mem.l1d.assoc == 2
        assert mem.l1d.hit_latency == 2
        assert mem.l2.size == 512 * 1024 and mem.l2.assoc == 4
        assert mem.l2.hit_latency == 12

    def test_reese_disabled_by_default(self):
        assert not starting_config().reese.enabled


class TestFigureVariants:
    def test_fig3_doubles_window(self):
        config = bigger_window_config()
        assert config.ruu_size == 32 and config.lsq_size == 16
        assert config.issue_width == 8  # widths unchanged

    def test_fig4_doubles_datapath(self):
        config = wide_datapath_config()
        assert config.issue_width == 16 and config.commit_width == 16
        assert config.ruu_size == 32  # keeps fig3's window

    def test_fig5_doubles_mem_ports(self):
        config = more_mem_ports_config()
        assert config.mem_ports == 4
        assert config.issue_width == 16

    def test_fig7_large_machines_grow_window_only(self):
        config = large_machine_config(256)
        assert config.ruu_size == 256 and config.lsq_size == 128
        assert config.issue_width == 8      # widths stay at Table 1
        assert config.int_alu == 4

    def test_fig7_extra_fus(self):
        config = large_machine_config(64, extra_fus=True)
        assert config.int_alu == 8
        assert config.int_mult == 2
        assert config.mem_ports == 4
        assert "fus" in config.name


class TestTransformations:
    def test_with_spares_adds_units(self):
        config = starting_config().with_spares(alu=2, mult=1)
        assert config.int_alu == 6
        assert config.int_mult == 2
        assert "+2alu" in config.name and "+1mult" in config.name

    def test_with_spares_zero_is_identity_counts(self):
        config = starting_config().with_spares()
        assert config.int_alu == 4

    def test_with_spares_rejects_negative(self):
        with pytest.raises(ValueError):
            starting_config().with_spares(alu=-1)

    def test_with_reese_enables(self):
        config = starting_config().with_reese()
        assert config.reese.enabled
        assert config.name.endswith("+reese")

    def test_with_reese_overrides(self):
        config = starting_config().with_reese(rqueue_size=64, r_duty_cycle=0.5)
        assert config.reese.rqueue_size == 64
        assert config.reese.r_duty_cycle == 0.5

    def test_without_reese(self):
        config = starting_config().with_reese().without_reese()
        assert not config.reese.enabled
        assert config.name == "starting"

    def test_replace(self):
        config = starting_config().replace(ruu_size=64, lsq_size=32)
        assert config.ruu_size == 64

    def test_configs_are_immutable(self):
        with pytest.raises(Exception):
            starting_config().ruu_size = 5


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(ruu_size=0),
            dict(issue_width=0),
            dict(mem_ports=0),
            dict(lsq_size=32),    # > ruu_size 16
            dict(int_mult=-1),
        ],
    )
    def test_machine_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            MachineConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rqueue_size=-1),
            dict(r_duty_cycle=0.0),
            dict(r_duty_cycle=1.5),
            dict(rqueue_size=8, high_water_margin=8),
            dict(r_issue_width=-1),
        ],
    )
    def test_reese_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ReeseConfig(**kwargs)

    def test_reese_auto_defaults(self):
        reese = ReeseConfig()
        assert reese.rqueue_size == 0       # auto: max(32, ruu)
        assert reese.r_issue_width == 0     # auto: issue width
        assert reese.r_duty_cycle == 1.0
        assert not reese.early_remove


class TestLatencies:
    def test_simplescalar_defaults(self):
        lat = LatencyConfig()
        assert lat.int_alu == 1
        assert (lat.int_mult, lat.int_mult_issue) == (3, 1)
        assert (lat.int_div, lat.int_div_issue) == (20, 19)
        assert (lat.fp_mult, lat.fp_div) == (4, 12)
