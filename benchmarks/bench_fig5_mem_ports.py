"""Figure 5 — additional memory ports.

Four memory ports on the 16-wide machine.  The paper: "the added
memory ports significantly improved the performance of REESE" — the R
stream re-executes every load, so port bandwidth is a REESE-specific
pressure point.  The R+2ALU+1Mult series is dropped, as in the paper
("the data was the same as if only 2 spare ALUs are present").
"""

from conftest import get_figure, publish

from repro.harness import (
    SERIES_R2A,
    SERIES_REESE,
    figure_report,
)
from repro.harness.expectations import check_spares_monotonic


def test_figure5_memory_ports(benchmark):
    result = benchmark.pedantic(
        lambda: get_figure("fig5"), rounds=1, iterations=1
    )
    fig4 = get_figure("fig4")
    checks = check_spares_monotonic(result)
    report = figure_report(result) + "\n\n" + "\n".join(map(str, checks))
    publish("fig5_mem_ports", report)

    # Extra ports help REESE at least as much as the baseline: the
    # spared-REESE gap must not widen vs the 2-port machine.
    assert result.gap(SERIES_R2A) <= fig4.gap(SERIES_R2A) + 0.02
    # Absolute REESE IPC improves with the ports.
    assert (
        result.average_ipc(SERIES_REESE)
        >= fig4.average_ipc(SERIES_REESE) - 0.02
    )
    assert not [c for c in checks if not c.passed]
