"""Property tests: the cycle-accounting completeness identities.

The profiler's whole value rests on two identities holding by
construction, for every machine model and execution mode:

* every cycle is charged to exactly one cycle cause
  (``sum(cycles) == cycles_total``), and
* every issue slot is charged to exactly one slot cause
  (``sum(slots) == width * cycles_total``).

Any generated program, baseline or REESE or dispatch-dup, fault-free
or fault-injected, full-detail or sampled — no residual, no double
charge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import emulate
from repro.reese.faults import EnvironmentalFaultModel
from repro.uarch import Pipeline, starting_config
from repro.uarch.accounting import (
    CycleAccountant,
    accounting_identity_errors,
    r_share_of_delta,
)
from repro.uarch.sampling import SamplingSpec, run_sampled
from repro.workloads import MixProfile, generate_program


@st.composite
def program_and_trace(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    profile = MixProfile(
        mul=draw(st.sampled_from([0.0, 0.1])),
        load=draw(st.sampled_from([0.1, 0.25])),
        store=draw(st.sampled_from([0.0, 0.1])),
        branch=draw(st.sampled_from([0.05, 0.15])),
        branch_predictability=draw(st.sampled_from([0.4, 0.9])),
    )
    program = generate_program(profile, n_dynamic=500, seed=seed)
    trace = emulate(program, max_instructions=6000).trace
    return program, trace


def _profiled_run(program, trace, config, fault_model=None):
    stats = Pipeline(
        program, trace, config, fault_model=fault_model,
        accountant=CycleAccountant(),
    ).run()
    return stats


def _assert_identities(stats):
    account = stats.accounting
    assert account, "profiled run produced no account"
    assert accounting_identity_errors(account) == []
    assert account["cycles_total"] == stats.cycles


class TestAccountingIdentity:
    @given(program_and_trace())
    @settings(max_examples=10, deadline=None)
    def test_baseline_identity(self, data):
        program, trace = data
        _assert_identities(
            _profiled_run(program, trace, starting_config())
        )

    @given(program_and_trace())
    @settings(max_examples=10, deadline=None)
    def test_reese_identity_and_r_share(self, data):
        program, trace = data
        base = _profiled_run(program, trace, starting_config())
        reese = _profiled_run(
            program, trace, starting_config().with_reese()
        )
        _assert_identities(base)
        _assert_identities(reese)
        r_delta, total = r_share_of_delta(base.accounting, reese.accounting)
        assert 0 <= r_delta <= total

    @given(program_and_trace())
    @settings(max_examples=6, deadline=None)
    def test_dispatch_dup_identity(self, data):
        program, trace = data
        _assert_identities(
            _profiled_run(
                program, trace, starting_config().with_dispatch_dup()
            )
        )

    @given(program_and_trace(),
           st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=6, deadline=None)
    def test_faulted_reese_identity(self, data, seed):
        program, trace = data
        model = EnvironmentalFaultModel(rate=2e-3, duration=2, seed=seed)
        _assert_identities(
            _profiled_run(
                program, trace, starting_config().with_reese(),
                fault_model=model,
            )
        )

    @given(program_and_trace())
    @settings(max_examples=4, deadline=None)
    def test_sampled_identity_survives_interval_merge(self, data):
        program, trace = data
        spec = SamplingSpec(intervals=3, interval_length=120, warmup=30)
        result = run_sampled(
            program, trace, starting_config().with_reese(), spec,
            profile_run=True,
        )
        _assert_identities(result.stats)

    @given(program_and_trace())
    @settings(max_examples=6, deadline=None)
    def test_unprofiled_run_carries_no_account(self, data):
        program, trace = data
        stats = Pipeline(program, trace, starting_config()).run()
        assert stats.accounting == {}
