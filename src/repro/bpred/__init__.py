"""Branch prediction: direction predictors, BTB and RAS.

:func:`make_predictor` builds a direction predictor from a
configuration name, used by :class:`repro.uarch.config.MachineConfig`.
"""

from __future__ import annotations

from .base import DirectionPredictor
from .bimodal import BimodalPredictor
from .btb import BTB, ReturnAddressStack
from .combining import CombiningPredictor
from .gshare import GSharePredictor
from .local import LocalPredictor
from .simple import PerfectPredictor, StaticPredictor

__all__ = [
    "DirectionPredictor",
    "BimodalPredictor",
    "BTB",
    "ReturnAddressStack",
    "CombiningPredictor",
    "GSharePredictor",
    "LocalPredictor",
    "PerfectPredictor",
    "StaticPredictor",
    "make_predictor",
]


def make_predictor(kind: str, **kwargs) -> DirectionPredictor:
    """Construct a direction predictor by name.

    Args:
        kind: one of ``gshare`` (the paper's predictor), ``bimodal``,
            ``combining``, ``local``, ``taken``, ``nottaken``,
            ``perfect``.
        **kwargs: forwarded to the predictor constructor.

    Raises:
        ValueError: on an unknown kind.
    """
    kind = kind.lower()
    if kind == "gshare":
        return GSharePredictor(**kwargs)
    if kind == "bimodal":
        return BimodalPredictor(**kwargs)
    if kind == "combining":
        return CombiningPredictor(**kwargs)
    if kind == "local":
        return LocalPredictor(**kwargs)
    if kind == "taken":
        return StaticPredictor(taken=True)
    if kind == "nottaken":
        return StaticPredictor(taken=False)
    if kind == "perfect":
        return PerfectPredictor()
    raise ValueError(f"unknown predictor kind: {kind!r}")
