"""Unit tests for the observability layer (repro.uarch.observe)."""

import json
from types import SimpleNamespace

import pytest

from repro.arch import emulate
from repro.isa.instructions import FUClass
from repro.reese.comparator import p_value
from repro.reese.faults import corrupt_value
from repro.reese.rqueue import REntry
from repro.uarch import Pipeline, starting_config
from repro.uarch.observe import (
    EVENT_KINDS,
    INVARIANTS,
    CallbackSink,
    EventTracer,
    InvariantChecker,
    InvariantViolation,
    JSONLSink,
    Observability,
    ObserveConfig,
    RingBufferSink,
    StageMetrics,
    TraceEvent,
    build_observability,
    occupancy_mean,
)


class TestTraceEvent:
    def test_to_dict_omits_none_fields(self):
        event = TraceEvent(7, "fetch", "P", seq=3)
        assert event.to_dict() == {
            "cycle": 7, "kind": "fetch", "stream": "P", "seq": 3
        }

    def test_to_json_is_canonical(self):
        event = TraceEvent(1, "commit", "P", seq=2, iseq=2, op="add",
                           fu="IALU")
        line = event.to_json()
        assert line == json.dumps(json.loads(line), sort_keys=True,
                                  separators=(",", ":"))
        # Sorted keys and no whitespace: byte-stable across runs.
        assert " " not in line

    def test_extra_fields_are_flattened(self):
        event = TraceEvent(1, "compare", "R", extra={"match": False})
        assert event.to_dict()["match"] is False


class TestSinks:
    def test_ring_buffer_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for cycle in range(5):
            sink.emit(TraceEvent(cycle, "fetch", "P"))
        assert sink.total == 5
        assert [e.cycle for e in sink.events()] == [2, 3, 4]

    def test_ring_buffer_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_sink_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JSONLSink(path)
        sink.emit(TraceEvent(1, "fetch", "P", seq=0))
        sink.emit(TraceEvent(2, "commit", "P", seq=0))
        sink.close()
        lines = path.read_text().splitlines()
        assert sink.lines == 2
        assert [json.loads(line)["kind"] for line in lines] == [
            "fetch", "commit"
        ]

    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(tmp_path / "events.jsonl")
        sink.close()
        sink.close()

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        event = TraceEvent(0, "fetch", "P")
        sink.emit(event)
        assert seen == [event]


class TestEventTracer:
    def _traced_run(self, program, trace, config):
        sink = RingBufferSink(capacity=100_000)
        pipe = Pipeline(program, trace, config,
                        observer=Observability(tracer=EventTracer(sink)))
        stats = pipe.run()
        return stats, sink.events()

    def test_all_kinds_are_catalogued(self, loop_trace, cfg):
        program, trace = loop_trace
        _, events = self._traced_run(program, trace, cfg.with_reese())
        assert {e.kind for e in events} <= set(EVENT_KINDS)

    def test_commit_events_match_commit_count(self, loop_trace, cfg):
        program, trace = loop_trace
        stats, events = self._traced_run(program, trace, cfg)
        commits = [e for e in events if e.kind == "commit"]
        assert len(commits) == stats.committed == len(trace)

    def test_reese_run_emits_r_stream_events(self, mixed_trace, cfg):
        program, trace = mixed_trace
        stats, events = self._traced_run(program, trace, cfg.with_reese())
        by_kind_stream = {(e.kind, e.stream) for e in events}
        assert ("rqueue_insert", "R") in by_kind_stream
        assert ("issue", "R") in by_kind_stream
        assert ("writeback", "R") in by_kind_stream
        assert ("compare", "R") in by_kind_stream
        compares = [e for e in events if e.kind == "compare"]
        assert all(e.extra["match"] for e in compares)
        assert len(compares) == stats.comparisons

    def test_baseline_run_has_no_r_stream(self, loop_trace, cfg):
        program, trace = loop_trace
        _, events = self._traced_run(program, trace, cfg)
        assert all(e.stream == "P" for e in events)


class TestStageMetrics:
    def test_histograms_sum_to_cycles(self, mixed_trace, cfg):
        program, trace = mixed_trace
        metrics = StageMetrics()
        stats = Pipeline(program, trace, cfg.with_reese(),
                         observer=Observability(metrics=metrics)).run()
        registry = stats.stage_metrics
        assert registry["cycles_sampled"] == stats.cycles
        for key in StageMetrics.STRUCTURES:
            hist = registry["occupancy"][key]
            assert sum(hist.values()) == stats.cycles
            # String bins (JSON cache round-trip safe).
            assert all(isinstance(bin_, str) for bin_ in hist)

    def test_fu_split_accounts_r_stream(self, mixed_trace, cfg):
        program, trace = mixed_trace
        stats = Pipeline(
            program, trace, cfg.with_reese(),
            observer=Observability(metrics=StageMetrics()),
        ).run()
        fu = stats.stage_metrics["fu_issued"]
        assert sum(fu["R"].values()) == stats.issued_r
        assert all(count >= 0 for count in fu["P"].values())

    def test_stall_counters_present(self, loop_trace, cfg):
        program, trace = loop_trace
        stats = Pipeline(program, trace, cfg,
                         observer=Observability(metrics=StageMetrics())).run()
        stalls = stats.stage_metrics["stalls"]
        assert set(stalls) == set(StageMetrics.STALLS)
        assert all(0 <= count <= stats.cycles for count in stalls.values())

    def test_occupancy_mean(self):
        assert occupancy_mean({"0": 2, "4": 2}) == pytest.approx(2.0)
        assert occupancy_mean({}) == 0.0


def _rentry_for(dyn, seq=None):
    return REntry(
        seq=dyn.seq if seq is None else seq,
        dyn=dyn,
        p_value=p_value(dyn),
        fu=FUClass.INT_ALU,
        inserted_cycle=0,
    )


class TestInvariantChecker:
    def test_clean_runs_pass(self, mixed_trace, cfg):
        program, trace = mixed_trace
        for config in (cfg, cfg.with_reese(), cfg.with_dispatch_dup()):
            checker = InvariantChecker()
            stats = Pipeline(program, trace, config,
                             observer=Observability(checker=checker)).run()
            assert stats.committed == len(trace)
            assert checker.violations == []
            assert checker.checks > 0

    def test_commit_order_violation(self, loop_trace):
        program, _ = loop_trace
        dyn = emulate(program).trace[5]
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.notify("commit", 10, rentry=_rentry_for(dyn))
        assert excinfo.value.invariant == "commit-order"
        assert excinfo.value.cycle == 10
        assert excinfo.value.trace_seq == 5

    def test_commit_oracle_catches_corrupted_value(self, loop_trace):
        program, _ = loop_trace
        trace = emulate(program).trace
        checker = InvariantChecker(collect=True)
        rentry = _rentry_for(trace[0])
        rentry.p_value = corrupt_value(rentry.p_value, 3)
        checker.notify("commit", 1, rentry=rentry)
        assert [v.invariant for v in checker.violations] == ["commit-oracle"]

    def test_r_issue_before_p_writeback(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.notify("r_issue", 4, trace_seq=7)
        assert excinfo.value.invariant == "r-before-p"

    def test_flush_residue(self):
        checker = InvariantChecker()
        checker.bind(SimpleNamespace(ifq=[object()], ruu=[], lsq=[],
                                     ready=[], create=[], rqueue=None))
        with pytest.raises(InvariantViolation) as excinfo:
            checker.notify("recover", 9)
        assert excinfo.value.invariant == "flush-residue"
        assert "ifq" in excinfo.value.detail

    def test_collect_mode_accumulates(self):
        checker = InvariantChecker(collect=True)
        checker.notify("r_issue", 1, trace_seq=1)
        checker.notify("r_issue", 2, trace_seq=2)
        assert len(checker.violations) == 2

    def test_violation_message_names_cycle_and_instruction(self):
        violation = InvariantViolation("commit-order", 42, 7, "details here")
        assert str(violation) == (
            "[commit-order] at cycle 42, instruction 7: details here"
        )
        assert violation.invariant in INVARIANTS


class TestObserveConfig:
    def test_disabled_by_default(self):
        assert not ObserveConfig().enabled
        assert build_observability(None) is None
        assert build_observability(ObserveConfig()) is None

    @pytest.mark.parametrize("kwargs", [
        dict(metrics=True),
        dict(check_invariants=True),
        dict(trace_path="x.jsonl"),
        dict(ring_capacity=16),
    ])
    def test_any_piece_enables(self, kwargs):
        assert ObserveConfig(**kwargs).enabled

    def test_build_composes_requested_pieces(self, tmp_path):
        observer = build_observability(ObserveConfig(
            metrics=True,
            check_invariants=True,
            trace_path=str(tmp_path / "t.jsonl"),
            ring_capacity=8,
        ))
        assert observer.metrics is not None
        assert observer.checker is not None
        assert observer.tracer is not None
        observer.tracer.sink.close()

    def test_full_stack_end_to_end(self, mixed_trace, cfg, tmp_path):
        program, trace = mixed_trace
        path = tmp_path / "trace.jsonl"
        observer = build_observability(ObserveConfig(
            metrics=True, check_invariants=True, trace_path=str(path)
        ))
        stats = Pipeline(program, trace, cfg.with_reese(),
                         observer=observer).run()
        assert stats.committed == len(trace)
        assert stats.stage_metrics["cycles_sampled"] == stats.cycles
        lines = path.read_text().splitlines()
        assert lines, "trace file must not be empty"
        assert all(json.loads(line)["kind"] in EVENT_KINDS for line in lines)
