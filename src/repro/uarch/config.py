"""Machine configuration: Table 1 of the paper, plus named variants.

:func:`starting_config` reproduces the REESE paper's "starting
configuration" (Table 1):

========================== =========================================
Fetch queue size            16
Max IPC for pipeline stages 8 (fetch/decode/issue/commit widths)
RUU / LSQ                   16 / 8 entries
Functional units            4 IntALU, 1 IntMult/Div, same for FP
Memory ports                2
L1 D-cache                  32 KB, 2-way, 2-cycle hit
L1 I-cache                  32 KB, 2-way, 2-cycle hit
L2 (unified, shared w/ D)   512 KB, 4-way, 12-cycle hit
Branch predictor            gshare [26]
Registers                   32 GP, 32 FP
========================== =========================================

The figures' hardware variations are expressed as transformations of
this config (see :mod:`repro.harness.experiments`):

* Figure 3: RUU 32 / LSQ 16;
* Figure 4: 16-wide datapath (keeps the larger RUU/LSQ);
* Figure 5: 4 memory ports;
* Figure 7: RUU 64/256 (LSQ half), optionally with extra FUs;
* spare-element variants: +1/+2 integer ALUs, +1 integer mult/div.

Functional-unit latencies follow SimpleScalar 2.0 defaults: IntALU 1;
IntMult 3 (pipelined) and IntDiv 20 (unpipelined) sharing one unit;
FPAdd 2; FPMult 4 and FPDiv 12 sharing one unit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..memhier.hierarchy import MemHierParams


@dataclass(frozen=True)
class LatencyConfig:
    """Operation and issue (reuse) latencies per functional-unit kind."""

    int_alu: int = 1
    int_mult: int = 3
    int_mult_issue: int = 1
    int_div: int = 20
    int_div_issue: int = 19      # unpipelined: unit blocked for the op
    fp_add: int = 2
    fp_add_issue: int = 1
    fp_mult: int = 4
    fp_mult_issue: int = 1
    fp_div: int = 12
    fp_div_issue: int = 12


@dataclass(frozen=True)
class ReeseConfig:
    """REESE-specific knobs.

    Attributes:
        enabled: run with the R-stream Queue and redundant execution.
        rqueue_size: capacity of the R-stream Queue.  ``0`` (the
            default) derives it as ``max(32, ruu_size)``: the paper
            starts at 32 entries for a 16-entry RUU and sizes the queue
            "slightly more area than the RUU" (§7), so large-RUU
            machines get a matching queue.
        early_remove: allow completed P instructions to leave the RUU
            into the R-stream Queue before reaching the RUU head — the
            paper's §4.3 "complex RUU/R-queue interaction" optimisation.
            Off by default: the paper's base design moves instructions
            that are "ready to be committed" (completed, at the head),
            and the optimisation is described speculatively; we provide
            it as an ablation (it extends the effective window and can
            make REESE *outperform* the baseline on small RUUs).
        r_duty_cycle: re-execute one in every ``round(1/r_duty_cycle)``
            instructions (1.0 = full duplication; the paper's §7
            future-work partial re-execution extension).
        high_water_margin: when R-queue occupancy reaches
            ``rqueue_size - high_water_margin``, R-stream instructions
            get issue priority for the cycle (the paper's overflow-
            avoiding scheduler counters).
        r_issue_width: maximum R-stream instructions dequeued for
            redundant execution per cycle.  ``0`` (the default) derives
            it as the machine's issue width: every functional unit in
            REESE carries its own result-comparison path, so R
            dispatch is bound by functional-unit and issue-slot
            availability rather than by dedicated dequeue ports (see
            EXPERIMENTS.md for the sensitivity sweep).
        max_retry: consecutive comparison failures of one instruction
            before the machine stops and reports an unrecoverable error.
    """

    enabled: bool = False
    rqueue_size: int = 0  # 0 = auto: max(32, ruu_size)
    early_remove: bool = False
    r_duty_cycle: float = 1.0
    high_water_margin: int = 8
    r_issue_width: int = 0  # 0 = auto-scale with commit width
    max_retry: int = 2

    def __post_init__(self) -> None:
        if self.rqueue_size < 0:
            raise ValueError("rqueue_size must be non-negative (0 = auto)")
        if not 0.0 < self.r_duty_cycle <= 1.0:
            raise ValueError("r_duty_cycle must be in (0, 1]")
        if self.rqueue_size and not 0 <= self.high_water_margin < self.rqueue_size:
            raise ValueError("high_water_margin must be < rqueue_size")
        if self.r_issue_width < 0:
            raise ValueError("r_issue_width must be non-negative (0 = auto)")


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of one simulated machine."""

    name: str = "starting"
    # Front end / widths ("Max IPC for other pipeline stages" in Table 1).
    fetch_queue_size: int = 16
    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    # Window.
    ruu_size: int = 16
    lsq_size: int = 8
    # Functional units.
    int_alu: int = 4
    int_mult: int = 1     # combined integer multiplier/divider units
    fp_alu: int = 4       # FP adders ("same for FP" in Table 1)
    fp_mult: int = 1      # combined FP multiplier/divider units
    mem_ports: int = 2
    latencies: LatencyConfig = field(default_factory=LatencyConfig)
    # Branch prediction.
    predictor: str = "gshare"
    predictor_kwargs: Dict[str, Any] = field(default_factory=dict)
    btb_entries: int = 512
    ras_depth: int = 16
    # Memory hierarchy.
    mem: MemHierParams = field(default_factory=MemHierParams)
    # REESE.
    reese: ReeseConfig = field(default_factory=ReeseConfig)
    # Alternative time-redundancy scheme from the related work (§3,
    # Franklin 1995): duplicate every instruction at the dynamic
    # scheduler so both copies occupy RUU/LSQ slots and issue slots,
    # comparing at commit.  Mutually exclusive with REESE; exists to
    # quantify why REESE's post-completion R-stream Queue is cheaper.
    dispatch_dup: bool = False

    def __post_init__(self) -> None:
        for attr in (
            "fetch_queue_size", "fetch_width", "decode_width", "issue_width",
            "commit_width", "ruu_size", "lsq_size", "int_alu", "mem_ports",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.int_mult < 0 or self.fp_alu < 0 or self.fp_mult < 0:
            raise ValueError("functional-unit counts must be non-negative")
        if self.lsq_size > self.ruu_size:
            raise ValueError("lsq_size cannot exceed ruu_size")
        if self.dispatch_dup and self.reese.enabled:
            raise ValueError("dispatch_dup and REESE are mutually exclusive")
        if self.dispatch_dup and (self.ruu_size < 2 or self.lsq_size < 2):
            raise ValueError("dispatch_dup needs RUU/LSQ sizes of at least 2")

    # -- derived transformations ---------------------------------------

    def replace(self, **changes) -> "MachineConfig":
        """A copy of this config with fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_reese(self, **reese_changes) -> "MachineConfig":
        """A copy with REESE enabled (and optional REESE knob changes)."""
        reese = dataclasses.replace(self.reese, enabled=True, **reese_changes)
        return dataclasses.replace(
            self, reese=reese, name=f"{self.base_name}+reese"
        )

    def without_reese(self) -> "MachineConfig":
        """A copy with REESE disabled (the baseline model)."""
        reese = dataclasses.replace(self.reese, enabled=False)
        return dataclasses.replace(
            self, reese=reese, dispatch_dup=False, name=self.base_name
        )

    def with_dispatch_dup(self) -> "MachineConfig":
        """A copy running the dispatch-duplication comparison scheme."""
        reese = dataclasses.replace(self.reese, enabled=False)
        return dataclasses.replace(
            self,
            reese=reese,
            dispatch_dup=True,
            name=f"{self.base_name}+dup",
        )

    def with_spares(self, alu: int = 0, mult: int = 0) -> "MachineConfig":
        """A copy with spare integer functional units added.

        This is the paper's *spare capacity*: extra integer ALUs and/or
        integer multiplier-dividers grafted onto an otherwise identical
        machine.
        """
        if alu < 0 or mult < 0:
            raise ValueError("spare counts must be non-negative")
        suffix = ""
        if alu:
            suffix += f"+{alu}alu"
        if mult:
            suffix += f"+{mult}mult"
        return dataclasses.replace(
            self,
            int_alu=self.int_alu + alu,
            int_mult=self.int_mult + mult,
            name=self.name + suffix,
        )

    @property
    def base_name(self) -> str:
        """Name stripped of the redundancy-scheme markers."""
        return self.name.replace("+reese", "").replace("+dup", "")


def starting_config(**overrides) -> MachineConfig:
    """The paper's Table 1 starting configuration."""
    return MachineConfig(**overrides) if overrides else MachineConfig()


def bigger_window_config() -> MachineConfig:
    """Figure 3's variation: RUU and LSQ doubled (32 / 16)."""
    return MachineConfig(name="ruu32", ruu_size=32, lsq_size=16)


def wide_datapath_config() -> MachineConfig:
    """Figure 4's variation: 16-wide datapath on the larger window."""
    return MachineConfig(
        name="wide16",
        ruu_size=32,
        lsq_size=16,
        fetch_width=16,
        decode_width=16,
        issue_width=16,
        commit_width=16,
    )


def more_mem_ports_config() -> MachineConfig:
    """Figure 5's variation: 4 memory ports (on the 16-wide machine)."""
    return MachineConfig(
        name="memports4",
        ruu_size=32,
        lsq_size=16,
        fetch_width=16,
        decode_width=16,
        issue_width=16,
        commit_width=16,
        mem_ports=4,
    )


def large_machine_config(
    ruu_size: int, extra_fus: bool = False
) -> MachineConfig:
    """Figure 7's large machines: RUU 64/256, LSQ = RUU/2, optional FUs.

    Only the window (and, with ``extra_fus``, the functional units) grow;
    widths and memory ports stay at the starting configuration's values,
    matching the paper's "we adjusted the RUU ... and compare the results
    of adding functional units in addition to the large RUU".  The paper
    does not state the "More FUs" counts; per DESIGN.md we use 8 integer
    ALUs, 2 integer multiplier/dividers, 4 memory ports (with matching FP
    units), documented in EXPERIMENTS.md.
    """
    name = f"ruu{ruu_size}" + ("+fus" if extra_fus else "")
    kwargs: Dict[str, Any] = dict(
        name=name,
        ruu_size=ruu_size,
        lsq_size=ruu_size // 2,
    )
    if extra_fus:
        kwargs.update(int_alu=8, int_mult=2, fp_alu=8, fp_mult=2, mem_ports=4)
    return MachineConfig(**kwargs)
