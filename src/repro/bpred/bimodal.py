"""Bimodal predictor: a PC-indexed table of 2-bit saturating counters."""

from __future__ import annotations

from ..isa.instructions import INST_SIZE
from .base import DirectionPredictor, _Counter2


class BimodalPredictor(DirectionPredictor):
    """Classic 2-bit-counter predictor (Smith, 1981)."""

    def __init__(self, table_size: int = 2048) -> None:
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError("table_size must be a positive power of two")
        super().__init__()
        self.table_size = table_size
        self._table = [_Counter2.WEAK_NOT_TAKEN] * table_size
        self._pc_shift = INST_SIZE.bit_length() - 1

    def _index(self, pc: int) -> int:
        return (pc >> self._pc_shift) & (self.table_size - 1)

    def predict(self, pc: int) -> bool:
        return _Counter2.is_taken(self._table[self._index(pc)])

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        self._table[index] = _Counter2.train(self._table[index], taken)
