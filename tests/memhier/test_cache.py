"""Unit tests for the set-associative cache model."""

import pytest

from repro.memhier import Cache, CacheParams


def make_cache(size=1024, assoc=2, line=32, hit=2, policy="lru",
               next_level=None, miss_latency=70):
    params = CacheParams("test", size, assoc, line, hit, policy)
    return Cache(params, next_level=next_level, miss_latency=miss_latency)


class TestParamsValidation:
    def test_valid(self):
        params = CacheParams("c", 32 * 1024, 2, 32, 2)
        assert params.n_sets == 512

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size=0),
            dict(assoc=0),
            dict(line_size=0),
            dict(line_size=24),           # not a power of two
            dict(size=1000),              # not divisible
            dict(size=96, assoc=1, line_size=32),  # 3 sets: not pow2
            dict(policy="clock"),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        base = dict(name="c", size=1024, assoc=2, line_size=32,
                    hit_latency=2, policy="lru")
        base.update({k: v for k, v in kwargs.items() if k != "name"})
        with pytest.raises(ValueError):
            CacheParams(**base)


class TestHitMiss:
    def test_first_access_misses(self):
        cache = make_cache()
        latency = cache.access(0x1000)
        assert latency == 2 + 70
        assert cache.misses == 1 and cache.hits == 0

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x1000) == 2
        assert cache.hits == 1

    def test_same_line_hits(self):
        cache = make_cache(line=32)
        cache.access(0x1000)
        assert cache.access(0x101F) == 2  # same 32-byte line
        assert cache.access(0x1020) > 2   # next line misses

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.access(0x1000)
        cache.access(0x2000)
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_probe_does_not_change_state(self):
        cache = make_cache()
        assert not cache.probe(0x1000)
        cache.access(0x1000)
        assert cache.probe(0x1000)
        assert cache.hits == 0 and cache.misses == 1  # probe uncounted


class TestReplacement:
    def test_lru_evicts_least_recent(self):
        # 2-way, set-mapped: three lines mapping to the same set.
        cache = make_cache(size=128, assoc=2, line=32)  # 2 sets
        set_stride = 64  # lines 0x0, 0x40 -> set 0
        a, b, c = 0x0, set_stride * 2, set_stride * 4
        cache.access(a)
        cache.access(b)
        cache.access(a)       # a is now most recent
        cache.access(c)       # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_fifo_evicts_oldest(self):
        cache = make_cache(size=128, assoc=2, line=32, policy="fifo")
        a, b, c = 0x0, 0x80, 0x100
        cache.access(a)
        cache.access(b)
        cache.access(a)       # re-access must NOT refresh FIFO order
        cache.access(c)       # evicts a (oldest insertion)
        assert not cache.probe(a)
        assert cache.probe(b)

    def test_random_policy_deterministic_with_seed(self):
        def run():
            cache = make_cache(policy="random")
            for i in range(200):
                cache.access((i * 3728) % 65536 & ~3)
            return cache.hits, cache.misses
        assert run() == run()

    def test_full_associativity_within_set(self):
        cache = make_cache(size=256, assoc=4, line=32, policy="lru")  # 2 sets
        addresses = [i * 64 for i in range(4)]  # all map to set 0
        for addr in addresses:
            cache.access(addr)
        for addr in addresses:
            assert cache.probe(addr)


class TestWriteback:
    def test_dirty_eviction_counted(self):
        cache = make_cache(size=64, assoc=1, line=32)  # 2 sets, direct-mapped
        cache.access(0x0, is_write=True)
        cache.access(0x40, is_write=False)  # evicts dirty line 0x0
        assert cache.evictions == 1
        assert cache.writebacks == 1

    def test_clean_eviction_not_written_back(self):
        cache = make_cache(size=64, assoc=1, line=32)
        cache.access(0x0, is_write=False)
        cache.access(0x40, is_write=False)
        assert cache.evictions == 1
        assert cache.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=64, assoc=1, line=32)
        cache.access(0x0, is_write=False)
        cache.access(0x4, is_write=True)   # write hit dirties the line
        cache.access(0x40)                 # evict
        assert cache.writebacks == 1


class TestMultiLevel:
    def test_miss_latency_includes_next_level(self):
        l2 = make_cache(size=4096, assoc=4, line=64, hit=12, miss_latency=70)
        l1 = make_cache(size=1024, assoc=2, line=32, hit=2, next_level=l2)
        # Cold: L1 miss + L2 miss + memory.
        assert l1.access(0x1000) == 2 + 12 + 70
        # L1 hit.
        assert l1.access(0x1000) == 2
        # Evict from L1 but still in L2: L1 miss + L2 hit.
        conflict = 0x1000 + 1024 // 2
        l1.access(conflict)
        l1.access(conflict + 1024)
        assert l1.access(0x1000) == 2 + 12

    def test_stats_reset(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.stat_dict()["misses"] == 0


class TestPrefetch:
    def test_next_line_prefetched_on_miss(self):
        params = CacheParams("pf", 1024, 2, 32, 2, prefetch_next_line=True)
        cache = Cache(params, miss_latency=70)
        cache.access(0x1000)          # miss; prefetches 0x1020
        assert cache.prefetches == 1
        assert cache.access(0x1020) == 2  # hit thanks to the prefetch

    def test_prefetch_skipped_when_resident(self):
        params = CacheParams("pf", 1024, 2, 32, 2, prefetch_next_line=True)
        cache = Cache(params, miss_latency=70)
        cache.access(0x1020)
        cache.access(0x1000)          # next line already resident
        # 0x1000's prefetch target (0x1020) was resident; only 0x1020's
        # own prefetch of 0x1040 counts.
        assert cache.prefetches == 1

    def test_prefetch_does_not_count_as_access(self):
        params = CacheParams("pf", 1024, 2, 32, 2, prefetch_next_line=True)
        cache = Cache(params, miss_latency=70)
        cache.access(0x1000)
        assert cache.accesses == 1

    def test_prefetch_warms_next_level_too(self):
        l2_params = CacheParams("l2", 4096, 4, 64, 12)
        l2 = Cache(l2_params, miss_latency=70)
        l1_params = CacheParams("l1", 1024, 2, 32, 2,
                                prefetch_next_line=True)
        l1 = Cache(l1_params, next_level=l2)
        l1.access(0x1000)
        assert l2.probe(0x1020)

    def test_sequential_walk_benefits(self):
        plain = Cache(CacheParams("a", 1024, 2, 32, 2), miss_latency=70)
        pf = Cache(CacheParams("b", 1024, 2, 32, 2,
                               prefetch_next_line=True), miss_latency=70)
        total_plain = sum(plain.access(addr) for addr in range(0, 512, 4))
        total_pf = sum(pf.access(addr) for addr in range(0, 512, 4))
        assert total_pf < total_plain

    def test_off_by_default(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.prefetches == 0
