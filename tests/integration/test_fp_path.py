"""Floating-point path: emulator, pipeline FP units, REESE verification.

The paper's Table 1 includes FP functional units ("Same for FP") even
though its experiments are integer-only; these tests keep the FP path
honest end-to-end.
"""

import struct

import pytest

from repro.arch import emulate
from repro.isa import DATA_BASE, assemble
from repro.isa.instructions import FUClass
from repro.uarch import Pipeline, starting_config
from repro.workloads import kernels


def f32(value: float) -> float:
    return struct.unpack("<f", struct.pack("<f", value))[0]


class TestSaxpyKernel:
    @pytest.fixture(scope="class")
    def run(self):
        program, expected = kernels.saxpy(n=24, a=1.75, seed=4)
        result = emulate(program)
        return program, expected, result

    def test_architectural_results_match_reference(self, run):
        program, expected, result = run
        y_base = DATA_BASE + 4 * 24  # yv follows xv
        values = [result.memory.load_float(y_base + 4 * i) for i in range(24)]
        assert values == expected

    def test_fp_ops_execute_on_fp_units(self, run):
        _, _, result = run
        fp_ops = [d for d in result.trace
                  if d.fu in (FUClass.FP_ADD, FUClass.FP_MULT)]
        assert len(fp_ops) >= 2 * 24

    def test_pipeline_commits_fp_trace(self, run):
        program, _, result = run
        stats = Pipeline(program, result.trace, starting_config()).run()
        assert stats.committed == len(result.trace)
        assert stats.fu_issues["fpadd"] > 0
        assert stats.fu_issues["fpmultdiv"] > 0

    def test_reese_verifies_fp_results(self, run):
        program, _, result = run
        config = starting_config().with_reese()
        stats = Pipeline(program, result.trace, config).run()
        assert stats.committed == len(result.trace)
        assert stats.errors_detected == 0  # fault-free FP compares equal

    def test_fp_fault_detected_bitwise(self, run):
        """A single-bit flip in an FP result must not escape."""
        from repro.reese import corrupt_value, p_value, reexecute, values_equal
        _, _, result = run
        from repro.isa.instructions import Op
        fmul = next(d for d in result.trace if d.op is Op.FMUL)
        for bit in (0, 23, 52, 63):
            corrupted = corrupt_value(p_value(fmul), bit)
            assert not values_equal(corrupted, reexecute(fmul))


class TestFpUnitContention:
    def test_fp_div_blocks_shared_unit_in_pipeline(self):
        source = """
        .data
        v: .word 1073741824   # 2.0f
        .text
        main:
            la   r1, v
            lwf  f1, 0(r1)
            li   r2, 40
        loop:
            fdiv f2, f1, f1
            fmul f3, f1, f1
            subi r2, r2, 1
            bnez r2, loop
            halt
        """
        program = assemble(source)
        result = emulate(program)
        stats = Pipeline(program, result.trace, starting_config()).run()
        # One shared FP mult/div unit; each unpipelined fdiv occupies it
        # for 12 cycles: the loop cannot beat ~12 cycles/iteration.
        assert stats.cycles >= 40 * 12

    def test_spare_fp_units_help(self):
        source = """
        .data
        v: .word 1073741824
        .text
        main:
            la   r1, v
            lwf  f1, 0(r1)
            li   r2, 60
        loop:
            fmul f2, f1, f1
            fmul f3, f1, f1
            fadd f4, f2, f3
            subi r2, r2, 1
            bnez r2, loop
            halt
        """
        program = assemble(source)
        result = emulate(program)
        base_cfg = starting_config()
        more_fp = base_cfg.replace(fp_mult=2)
        base = Pipeline(program, result.trace, base_cfg).run()
        spared = Pipeline(program, result.trace, more_fp).run()
        assert spared.cycles <= base.cycles
