"""Extension B — partial re-execution (the paper's §7 future work).

"Future work could explore the possibility of executing less than 100%
of P-stream instructions in the R stream ... This would speed up
execution, but it would decrease the number of soft errors that REESE
would be able to detect."

We sweep the re-execution duty cycle and measure both sides of that
trade-off: IPC recovered, and faults escaping as SDC.
"""

import statistics

from conftest import publish

from repro.harness import bench_scale, format_table
from repro.reese import BernoulliFaultModel
from repro.uarch import Pipeline, starting_config
from repro.workloads import BENCHMARK_ORDER
from repro.workloads.suite import trace_for

DUTIES = [1.0, 0.5, 0.25, 0.125]


def run_sweep():
    scale = bench_scale()
    traces = {n: trace_for(n, scale=scale) for n in BENCHMARK_ORDER}
    config = starting_config()
    base_ipc = statistics.mean(
        Pipeline(p, t, config, warm_caches=True, warm_predictor=True)
        .run().ipc
        for p, t in traces.values()
    )
    rows = []
    for duty in DUTIES:
        reese = config.with_reese(r_duty_cycle=duty)
        ipcs = []
        detected = escaped = 0
        for p, t in traces.values():
            stats = Pipeline(
                p, t, reese, warm_caches=True, warm_predictor=True
            ).run()
            ipcs.append(stats.ipc)
            # Coverage probe with per-execution faults.
            model = BernoulliFaultModel(rate=2e-4, seed=13)
            fault_stats = Pipeline(
                p, t, reese, fault_model=model,
                warm_caches=True, warm_predictor=True,
            ).run()
            detected += fault_stats.errors_detected
            escaped += fault_stats.sdc_commits
        total = detected + escaped
        coverage = detected / total if total else 1.0
        rows.append((duty, statistics.mean(ipcs), coverage))
    return base_ipc, rows


def test_partial_reexecution_tradeoff(benchmark):
    base_ipc, rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = [["duty cycle", "avg IPC", "gap vs base", "fault coverage"]]
    for duty, ipc, coverage in rows:
        table.append([
            f"{duty:.3f}", f"{ipc:.3f}",
            f"{1 - ipc / base_ipc:+.1%}", f"{coverage:.0%}",
        ])
    publish(
        "ext_partial_reexec",
        f"Extension B: partial re-execution (baseline IPC {base_ipc:.3f})\n"
        + format_table(table),
    )
    ipcs = [row[1] for row in rows]
    coverages = [row[2] for row in rows]
    # Lower duty -> faster ...
    assert ipcs[-1] >= ipcs[0]
    # ... but lower detection coverage, exactly the paper's trade-off.
    assert coverages[-1] < coverages[0]
    assert coverages[0] >= 0.95  # full duplication catches ~everything
