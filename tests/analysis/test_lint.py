"""Workload linter: one test per rule, plus the suite-wide gate."""

import pytest

from repro.isa import assemble
from repro.analysis import analyze_program
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import analyze_dataflow
from repro.analysis.lint import (
    GATING_SEVERITIES,
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    SEVERITIES,
    is_clean,
    lint_program,
)
from repro.analysis.masking import classify_sites
from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS


def lint_for(source, name="t"):
    cfg = build_cfg(assemble(source, name=name))
    dataflow = analyze_dataflow(cfg)
    return lint_program(cfg, dataflow, classify_sites(dataflow))


def rules_of(findings):
    return {f.rule for f in findings}


class TestRules:
    def test_falls_off_text(self):
        findings = lint_for("""
        main:
            li r1, 1
            putint r1
        """)
        errors = [f for f in findings if f.severity == SEV_ERROR]
        assert [f.rule for f in errors] == ["falls-off-text"]
        assert errors[0].index == 1

    def test_unreachable_block(self):
        findings = lint_for("""
        main:
            halt
        dead:
            li r3, 9
            halt
        """)
        hits = [f for f in findings if f.rule == "unreachable-block"]
        assert len(hits) == 1
        assert hits[0].severity == SEV_WARNING
        assert hits[0].index == 1

    def test_uninit_read(self):
        findings = lint_for("""
        main:
            add r2, r3, r4
            putint r2
            halt
        """)
        hits = [f for f in findings if f.rule == "uninit-read"]
        assert len(hits) == 2
        assert all(f.severity == SEV_WARNING for f in hits)

    def test_sp_reads_are_exempt(self):
        findings = lint_for("""
        main:
            addi r1, sp, 0
            putint r1
            halt
        """)
        assert "uninit-read" not in rules_of(findings)

    def test_unreachable_code_not_linted_for_uninit(self):
        # The read of r7 sits in dead code; only the unreachability is
        # reported, not the phantom uninitialised read.
        findings = lint_for("""
        main:
            halt
        dead:
            putint r7
            halt
        """)
        assert "unreachable-block" in rules_of(findings)
        assert "uninit-read" not in rules_of(findings)

    def test_indirect_no_targets(self):
        findings = lint_for("""
        main:
            li r1, 0
            jr r1
        end:
            halt
        """)
        hits = [f for f in findings if f.rule == "indirect-no-targets"]
        assert len(hits) == 1
        assert hits[0].index == 1

    def test_dead_write_is_info(self):
        findings = lint_for("""
        main:
            li r9, 3
            putint zero
            halt
        """)
        hits = [f for f in findings if f.rule == "dead-write"]
        assert len(hits) == 1
        assert hits[0].severity == SEV_INFO
        assert is_clean(findings)

    def test_store_never_loaded(self):
        findings = lint_for("""
        .data
        buf: .word 0, 0
        .text
        main:
            la r1, buf
            li r2, 9
            sw r2, 0(r1)
            halt
        """)
        hits = [f for f in findings if f.rule == "store-never-loaded"]
        assert len(hits) == 1
        assert hits[0].severity == SEV_INFO

    def test_store_that_is_loaded_back_not_flagged(self):
        findings = lint_for("""
        .data
        buf: .word 0
        .text
        main:
            la r1, buf
            li r2, 9
            sw r2, 0(r1)
            lw r3, 0(r1)
            putint r3
            halt
        """)
        assert "store-never-loaded" not in rules_of(findings)

    def test_unresolvable_load_disables_store_check(self):
        # The load base comes through an add, so addresses are unknown:
        # the check must give up rather than guess.
        findings = lint_for("""
        .data
        a: .word 1
        b: .word 2
        .text
        main:
            la  r1, a
            la  r2, b
            add r3, r1, zero
            lw  r4, 0(r3)
            sw  r4, 0(r2)
            putint r4
            halt
        """)
        assert "store-never-loaded" not in rules_of(findings)


class TestOrderingAndGating:
    def test_sorted_by_severity_then_index(self):
        findings = lint_for("""
        main:
            add r2, r3, r4
            putint r2
            li r9, 1
        """)
        ranks = [SEVERITIES.index(f.severity) for f in findings]
        assert ranks == sorted(ranks)

    def test_clean_program(self):
        findings = lint_for("""
        main:
            li r1, 1
            putint r1
            halt
        """)
        assert findings == []
        assert is_clean(findings)

    def test_gating_severities(self):
        assert GATING_SEVERITIES == {SEV_ERROR, SEV_WARNING}
        assert not is_clean(lint_for("""
        main:
            putint r3
            halt
        """))

    def test_render_mentions_rule_and_position(self):
        finding = lint_for("""
        main:
            putint r3
            halt
        """)[0]
        text = finding.render("prog")
        assert "prog:@0" in text and "uninit-read" in text


class TestSuiteGate:
    @pytest.mark.parametrize("bench", BENCHMARK_ORDER)
    def test_suite_workload_is_lint_clean(self, bench):
        program = BENCHMARKS[bench].build(scale=2000)
        result = analyze_program(program, use_cache=False)
        gating = [
            f for f in result.findings if f.severity in GATING_SEVERITIES
        ]
        assert gating == [], (
            f"{bench} has gating lint findings: "
            + "; ".join(f.render(bench) for f in gating)
        )
