"""Dataflow passes: known-answer tests for reaching defs and liveness."""

import pytest

from repro.isa import assemble
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    USE_BRANCH,
    USE_COMPUTE,
    USE_LOAD_ADDR,
    USE_OUTPUT,
    USE_STORE_ADDR,
    USE_STORE_DATA,
    analyze_dataflow,
    instruction_uses,
)


def dataflow_for(source, name="t"):
    return analyze_dataflow(build_cfg(assemble(source, name=name)))


@pytest.fixture
def loop_df():
    # 0: li r1,100  1: li r2,0  2: add r2,r2,r1  3: subi r1,r1,1
    # 4: bnez r1,2  5: putint r2  6: halt
    return dataflow_for("""
    main:
        li   r1, 100
        li   r2, 0
    loop:
        add  r2, r2, r1
        subi r1, r1, 1
        bnez r1, loop
        putint r2
        halt
    """)


class TestUseKinds:
    def test_kinds_per_op(self, loop_df):
        code = loop_df.cfg.program.code
        assert instruction_uses(code[2]) == (
            (2, USE_COMPUTE), (1, USE_COMPUTE),
        )
        assert instruction_uses(code[4]) == ((1, USE_BRANCH),)
        assert instruction_uses(code[5]) == ((2, USE_OUTPUT),)
        assert instruction_uses(code[6]) == ()

    def test_memory_kinds(self):
        df = dataflow_for("""
        .data
        buf: .word 1
        .text
        main:
            la r1, buf
            li r2, 9
            sw r2, 0(r1)
            lw r3, 0(r1)
            halt
        """)
        kinds = {(u.index, u.reg): u.kind for u in df.uses}
        assert kinds[(2, 1)] == USE_STORE_ADDR
        assert kinds[(2, 2)] == USE_STORE_DATA
        assert kinds[(3, 1)] == USE_LOAD_ADDR

    def test_zero_register_never_a_use(self):
        df = dataflow_for("""
        main:
            add r1, zero, zero
            putint r1
            halt
        """)
        assert all(u.reg != 0 for u in df.uses)


class TestReachingDefinitions:
    def test_loop_carried_defs_merge_at_header(self, loop_df):
        # add r2, r2, r1 at 2: r2 comes from 1 (entry) or 2 (back edge),
        # r1 from 0 (entry) or 3 (back edge).
        by_use = {(u.index, u.reg): u.defs for u in loop_df.uses}
        assert by_use[(2, 2)] == ((1, 2), (2, 2))
        assert by_use[(2, 1)] == ((0, 1), (3, 1))

    def test_in_block_kill(self, loop_df):
        # bnez at 4 reads r1; the in-block def at 3 kills both others.
        by_use = {(u.index, u.reg): u.defs for u in loop_df.uses}
        assert by_use[(4, 1)] == ((3, 1),)

    def test_killed_def_does_not_reach_exit(self, loop_df):
        # putint r2 at 5: the initial li (index 1) is killed by the add
        # at 2 on every path to 5.
        by_use = {(u.index, u.reg): u.defs for u in loop_df.uses}
        assert by_use[(5, 2)] == ((2, 2),)

    def test_du_chains_mirror_use_defs(self, loop_df):
        for use in loop_df.uses:
            for site in use.defs:
                assert use in loop_df.du_chains[site]

    def test_diamond_defs_merge_at_join(self):
        df = dataflow_for("""
        main:
            li   r1, 5
            beqz r1, else
            li   r2, 1
            j    join
        else:
            li   r2, 2
        join:
            putint r2
            halt
        """)
        by_use = {(u.index, u.reg): u.defs for u in df.uses}
        assert by_use[(5, 2)] == ((2, 2), (4, 2))

    def test_def_sites_enumerates_all_writes(self, loop_df):
        assert loop_df.def_sites() == [(0, 1), (1, 2), (2, 2), (3, 1)]


class TestUninitialisedReads:
    def test_reads_of_virgin_registers(self):
        df = dataflow_for("""
        main:
            add r2, r3, r4
            putint r2
            halt
        """)
        virgin = {(u.index, u.reg) for u in df.uninitialised_reads}
        assert virgin == {(0, 3), (0, 4)}

    def test_fully_initialised_program_has_none(self, loop_df):
        assert loop_df.uninitialised_reads == []


class TestLiveness:
    def test_live_across_loop(self, loop_df):
        # r1 and r2 are live out of both entry instructions and across
        # the loop body; nothing is live out of halt.
        assert {1, 2} <= loop_df.inst_live_out[1]
        assert {1, 2} <= loop_df.inst_live_out[3]
        assert loop_df.inst_live_out[6] == frozenset()

    def test_directly_dead_detection(self):
        # 0: li r1,1 (overwritten unread)  1: li r1,2  2: putint r1
        # 3: li r9,3 (never read)  4: halt
        df = dataflow_for("""
        main:
            li r1, 1
            li r1, 2
            putint r1
            li r9, 3
            halt
        """)
        assert df.directly_dead((0, 1))
        assert df.directly_dead((3, 9))
        assert not df.directly_dead((1, 1))

    def test_dead_intervals(self):
        df = dataflow_for("""
        main:
            li r1, 1
            li r1, 2
            putint r1
            li r9, 3
            halt
        """)
        spans = {(i.reg, i.start): i.end for i in df.dead_intervals()}
        assert spans == {(1, 0): 1, (9, 3): None}

    def test_loop_has_no_directly_dead_sites(self, loop_df):
        assert not any(
            df_site for df_site in loop_df.def_sites()
            if loop_df.directly_dead(df_site)
        )
