"""The repro mini-ISA: instruction set, assembler and program model.

Public surface:

* :class:`~repro.isa.instructions.Instruction`, :class:`~repro.isa.instructions.Op`,
  :class:`~repro.isa.instructions.FUClass` — the static instruction model;
* :func:`~repro.isa.assembler.assemble` — text assembler;
* :class:`~repro.isa.program.Program` — assembled program container;
* :mod:`~repro.isa.semantics` — pure dynamic semantics shared by the
  P-stream emulator and REESE's R-stream re-execution;
* :func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`
  — lossless binary encoding.
"""

from .assembler import AsmError, Assembler, assemble
from .encoding import decode, encode
from .instructions import INST_SIZE, Fmt, FUClass, Instruction, MNEMONICS, Op, OPINFO
from .program import DATA_BASE, Program, STACK_BASE, TEXT_BASE
from .registers import (
    FP_BASE,
    NO_REG,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    REG_RA,
    REG_SP,
    REG_ZERO,
    is_fp_reg,
    parse_reg,
    reg_name,
)

__all__ = [
    "AsmError",
    "Assembler",
    "assemble",
    "decode",
    "encode",
    "INST_SIZE",
    "Fmt",
    "FUClass",
    "Instruction",
    "MNEMONICS",
    "Op",
    "OPINFO",
    "DATA_BASE",
    "Program",
    "STACK_BASE",
    "TEXT_BASE",
    "FP_BASE",
    "NO_REG",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_REGS",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "is_fp_reg",
    "parse_reg",
    "reg_name",
]
