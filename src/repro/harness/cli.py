"""Command-line entry point (``repro-reese``).

Subcommands::

    repro-reese list                 # figures, benchmarks, configs
    repro-reese figure fig2          # reproduce one figure
    repro-reese summary              # Fig. 6 summary table
    repro-reese fig7                 # Fig. 7 large machines
    repro-reese check                # run the paper-shape expectations
    repro-reese bench gcc            # one benchmark on base + REESE
    repro-reese faults --rate 1e-4   # fault-injection demonstration
    repro-reese campaign gcc         # architectural SDC campaign
    repro-reese campaign gcc --sites # stratified site-level campaign
    repro-reese campaign gcc --static-oracle   # + fail on dead-site SDC
    repro-reese sweep                # spare-capacity design-space grid
    repro-reese compare li           # baseline vs REESE vs dispatch-dup
    repro-reese analyze gcc          # static CFG/dataflow/masking report
    repro-reese lint all             # workload linter over the suite
    repro-reese profile gcc          # top-down cycle-accounting profile
    repro-reese profile --markdown   # same, as markdown (whole suite)

``--scale N`` (or ``REPRO_BENCH_INSTRUCTIONS``) sets dynamic
instructions per benchmark; an explicit ``--scale`` always beats the
environment variable.  ``--jobs N`` fans the experiment grid over N
worker processes (default: all cores) and ``--no-cache`` disables the
on-disk result cache under ``.repro_cache/``.

Sampled simulation (see docs/INTERNALS.md §10): ``--sample N`` runs
every simulation as N detailed measurement intervals with functional
fast-forward between them — the same figures/sweeps/checks at a
fraction of the wall-clock, with a confidence interval on each IPC.
``--sample-interval K`` and ``--sample-warmup W`` tune the interval
length and per-interval detailed warm-up.

Observability (see docs/INTERNALS.md §8): ``--observe`` collects
per-stage metrics (occupancy histograms, stall reasons, P/R functional
unit split) and prints them after single-run commands;
``--check-invariants`` runs every simulation under the runtime
invariant checker (a violation aborts with a diagnostic);
``--trace PATH`` writes the structured event trace as JSONL — for
commands that run several simulations, each run gets its own file with
the run label spliced in before the extension.

Profiling (see docs/INTERNALS.md §12): ``--profile`` (or
``REPRO_PROFILE=1``) attaches the cycle-accounting profiler to every
simulation, so results carry the top-down slot/cycle attribution; the
``profile`` subcommand renders the full bottleneck report.
``--telemetry PATH`` persists per-job run telemetry (wall-clock,
cache hits, worker ids) as JSONL after each parallel run.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..reese.faults import EnvironmentalFaultModel
from ..uarch.config import starting_config
from ..uarch.observe import ObserveConfig
from ..uarch.sampling import SamplingSpec
from ..workloads.suite import BENCHMARK_ORDER, BENCHMARKS
from . import expectations, experiments, reporting
from .parallel import ParallelRunner, SimJob
from .runner import bench_scale, run_benchmark


def _runner_from(args) -> ParallelRunner:
    """The CLI's execution context: all cores and caching by default."""
    return ParallelRunner(
        jobs=args.jobs or (os.cpu_count() or 1),
        use_cache=not args.no_cache,
        observe=args.observe,
        check_invariants=args.check_invariants,
        profile=getattr(args, "profile", False),
        telemetry_path=getattr(args, "telemetry", None),
    )


def _profile_flag(args) -> Optional[bool]:
    """``--profile`` for the single-run paths: ``True`` when given,
    ``None`` otherwise so the ``REPRO_PROFILE`` env gate still applies."""
    return True if getattr(args, "profile", False) else None


def _sampling_from(args) -> Optional[SamplingSpec]:
    """The SamplingSpec the ``--sample*`` flags describe (or ``None``)."""
    if not getattr(args, "sample", None):
        return None
    return SamplingSpec(
        intervals=args.sample,
        interval_length=args.sample_interval,
        warmup=args.sample_warmup,
    )


def _trace_path(args, label: Optional[str] = None) -> Optional[str]:
    """Per-run trace destination: ``out.jsonl`` -> ``out.reese.jsonl``."""
    if not args.trace:
        return None
    if label is None:
        return args.trace
    root, ext = os.path.splitext(args.trace)
    return f"{root}.{label}{ext or '.jsonl'}"


def _observe_from(args, label: Optional[str] = None) -> Optional[ObserveConfig]:
    """Build the ObserveConfig the global flags describe (or ``None``)."""
    trace = _trace_path(args, label)
    if not (args.observe or args.check_invariants or trace):
        return None
    return ObserveConfig(
        metrics=args.observe,
        check_invariants=args.check_invariants,
        trace_path=trace,
    )


def _emit_metrics(args, label: str, stats) -> None:
    """Print the per-stage metrics block after a run (with --observe)."""
    if args.observe and stats.stage_metrics:
        print(f"\n[{label}] {reporting.metrics_report(stats)}")


def _emit_telemetry(runner: ParallelRunner) -> None:
    """One summary line on stderr; stdout stays byte-stable for diffs."""
    if runner.telemetry is not None:
        print(runner.telemetry.summary(), file=sys.stderr)


def _cmd_list(_args) -> int:
    print("figures:    fig2 fig3 fig4 fig5 (figure), summary (fig6), fig7")
    print("benchmarks:", " ".join(BENCHMARK_ORDER))
    for name in BENCHMARK_ORDER:
        workload = BENCHMARKS[name]
        print(f"  {name:7s} {workload.description}")
        print(f"  {'':7s} (paper input: {workload.paper_input})")
    return 0


def _cmd_figure(args) -> int:
    runner = _runner_from(args)
    spec = experiments.FIGURES[args.figure]()
    result = experiments.run_figure(spec, scale=args.scale, runner=runner,
                                    sampling=_sampling_from(args))
    print(reporting.figure_report(result))
    _emit_telemetry(runner)
    return 0


def _cmd_summary(args) -> int:
    runner = _runner_from(args)
    summary = experiments.run_summary_figure(scale=args.scale, runner=runner,
                                             sampling=_sampling_from(args))
    print("fig6: summary of results (average IPC per hardware variation)")
    print(reporting.summary_report(summary))
    _emit_telemetry(runner)
    return 0


def _cmd_fig7(args) -> int:
    runner = _runner_from(args)
    for spec in experiments.figure7_specs():
        result = experiments.run_figure(spec, scale=args.scale, runner=runner,
                                        sampling=_sampling_from(args))
        print(reporting.figure_report(result))
        print()
        _emit_telemetry(runner)
    return 0


def _cmd_check(args) -> int:
    runner = _runner_from(args)
    sampling = _sampling_from(args)
    fig_results = {}
    for name in ("fig2", "fig3"):
        spec = experiments.FIGURES[name]()
        fig_results[name] = experiments.run_figure(
            spec, scale=args.scale, runner=runner, sampling=sampling
        )
    for spec in experiments.figure7_specs():
        fig_results[spec.figure_id] = experiments.run_figure(
            spec, scale=args.scale, runner=runner, sampling=sampling
        )
    checks = expectations.check_all(fig_results)
    failed = 0
    for check in checks:
        print(check)
        failed += 0 if check.passed else 1
    print(f"\n{len(checks) - failed}/{len(checks)} expectations passed")
    return 1 if failed else 0


def _cmd_bench_sampled(args, sampling: SamplingSpec) -> int:
    """``bench`` under ``--sample``: interval fan-out via the runner."""
    from .parallel import SimJob, run_sampled_jobs

    runner = _runner_from(args)
    config = starting_config()
    scale = args.scale or bench_scale()
    base, reese = run_sampled_jobs(
        [
            SimJob(args.benchmark, config, scale, sampling=sampling),
            SimJob(args.benchmark, config.with_reese(), scale,
                   sampling=sampling),
        ],
        runner,
    )
    print(f"{args.benchmark}: baseline {base.summary()}")
    print(f"{args.benchmark}: reese    {reese.summary()}")
    print(f"IPC ratio reese/baseline = {reese.ipc / base.ipc:.3f}")
    _emit_telemetry(runner)
    return 0


def _cmd_bench(args) -> int:
    sampling = _sampling_from(args)
    if sampling is not None:
        return _cmd_bench_sampled(args, sampling)
    config = starting_config()
    base = run_benchmark(args.benchmark, config, scale=args.scale,
                         observe=_observe_from(args, "baseline"),
                         profile=_profile_flag(args))
    reese = run_benchmark(args.benchmark, config.with_reese(),
                          scale=args.scale,
                          observe=_observe_from(args, "reese"),
                          profile=_profile_flag(args))
    print(f"{args.benchmark}: baseline {base.summary()}")
    print(f"{args.benchmark}: reese    {reese.summary()}")
    print(f"IPC ratio reese/baseline = {reese.ipc / base.ipc:.3f}")
    _emit_metrics(args, "baseline", base)
    _emit_metrics(args, "reese", reese)
    return 0


def _cmd_faults(args) -> int:
    config = starting_config().with_reese()
    sampling = _sampling_from(args)
    if sampling is not None:
        from .parallel import FaultSpec, interval_fault_spec
        from .runner import run_sampled_benchmark

        spec = FaultSpec.make("environmental", rate=args.rate,
                              duration=args.duration, seed=args.seed)
        models = []

        def factory(index: int):
            model = interval_fault_spec(spec, index).build()
            models.append(model)
            return model

        result = run_sampled_benchmark(
            args.benchmark, config, sampling,
            scale=args.scale, fault_factory=factory,
        )
        stats = result.stats
        print(f"workload:            {args.benchmark} ({result.summary()})")
        print(f"fault events struck: {sum(m.strikes for m in models)}")
        print(f"errors detected:     {stats.errors_detected}")
        print(f"escapes (same event):{stats.errors_undetected_same_event}")
        print(f"recoveries:          {stats.recoveries}")
        print(f"final IPC:           {result.ipc:.3f}")
        return 0
    model = EnvironmentalFaultModel(
        rate=args.rate, duration=args.duration, seed=args.seed
    )
    stats = run_benchmark(
        args.benchmark, config, scale=args.scale, fault_model=model,
        observe=_observe_from(args),
    )
    print(f"workload:            {args.benchmark}")
    print(f"fault events struck: {model.strikes}")
    print(f"errors detected:     {stats.errors_detected}")
    print(f"escapes (same event):{stats.errors_undetected_same_event}")
    print(f"recoveries:          {stats.recoveries}")
    print(f"final IPC:           {stats.ipc:.3f}")
    return 0


def _cmd_export(args) -> int:
    from . import export

    runner = _runner_from(args)
    spec = experiments.FIGURES[args.figure]()
    result = experiments.run_figure(spec, scale=args.scale, runner=runner,
                                    sampling=_sampling_from(args))
    written = export.write_figure(result, args.out)
    for fmt, path in written.items():
        print(f"wrote {fmt}: {path}")
    _emit_telemetry(runner)
    return 0


def _cmd_campaign(args) -> int:
    from .campaign import run_campaign, run_site_campaign

    program = BENCHMARKS[args.benchmark].build(scale=args.scale or 5000)
    if args.sites or args.static_oracle or args.skip_dead:
        result = run_site_campaign(
            program, runs=args.runs, seed=args.seed,
            jobs=args.jobs or (os.cpu_count() or 1),
            skip_dead=args.skip_dead,
            use_analysis_cache=not args.no_cache,
        )
        print(result.report())
        if args.export_dir:
            from . import export

            written = export.write_site_campaign(result, args.export_dir)
            for fmt, path in written.items():
                print(f"wrote {fmt}: {path}")
        if args.static_oracle and result.mismatches:
            return 1
        return 0
    result = run_campaign(
        program, runs=args.runs, rate=args.rate, seed=args.seed,
        jobs=args.jobs or (os.cpu_count() or 1),
    )
    print(result.report())
    return 0


def _programs_from(args):
    """(name, program) pairs for a benchmark argument or ``all``."""
    names = BENCHMARK_ORDER if args.benchmark == "all" else [args.benchmark]
    scale = args.scale or 5000
    return [(name, BENCHMARKS[name].build(scale=scale)) for name in names]


def _cmd_analyze(args) -> int:
    from ..analysis import analyze_program

    blocks = []
    for _name, program in _programs_from(args):
        result = analyze_program(program, use_cache=not args.no_cache)
        blocks.append(reporting.analysis_report(result))
    print("\n\n".join(blocks))
    return 0


def _cmd_lint(args) -> int:
    from ..analysis import analyze_program

    dirty = 0
    for _name, program in _programs_from(args):
        result = analyze_program(program, use_cache=not args.no_cache)
        print(reporting.lint_report(result, verbose=args.verbose))
        if not result.clean:
            dirty += 1
    return 1 if dirty else 0


def _cmd_sweep(args) -> int:
    from .reporting import format_table
    from .sweep import run_sweep, spare_capacity_grid

    runner = _runner_from(args)
    base = starting_config()
    points = spare_capacity_grid(base, max_alu=args.max_alu,
                                 max_mult=args.max_mult)
    results = run_sweep(points, scale=args.scale, runner=runner,
                        sampling=_sampling_from(args))
    baseline_ipc = results[0].average_ipc
    rows = [["configuration", "avg IPC", "gap vs baseline"]]
    for point in results:
        gap = 1 - point.average_ipc / baseline_ipc
        rows.append([point.label, f"{point.average_ipc:.3f}", f"{gap:+.1%}"])
    print(format_table(rows))
    _emit_telemetry(runner)
    return 0


def _cmd_compare(args) -> int:
    config = starting_config()
    models = [
        ("baseline", config),
        ("REESE", config.with_reese()),
        ("dispatch-dup", config.with_dispatch_dup()),
    ]
    base_ipc = None
    observed = []
    for label, model_config in models:
        stats = run_benchmark(args.benchmark, model_config, scale=args.scale,
                              observe=_observe_from(args, label),
                              profile=_profile_flag(args))
        if base_ipc is None:
            base_ipc = stats.ipc
        gap = 1 - stats.ipc / base_ipc
        print(f"{label:14s} IPC {stats.ipc:.3f} ({gap:+.1%})  "
              f"cycles {stats.cycles}  R-execs {stats.issued_r}")
        observed.append((label, stats))
    for label, stats in observed:
        _emit_metrics(args, label, stats)
    return 0


def _cmd_profile(args) -> int:
    """Top-down cycle-accounting profile: where did the slots go?

    Runs the Baseline / REESE / R+2 ALU cells for one benchmark (or the
    whole suite) with the cycle accountant attached and renders the
    attribution report — the per-cause slot breakdown, the
    REESE-vs-baseline R-share, and the detection-latency telemetry.
    """
    runner = _runner_from(args)
    config = starting_config()
    series = [
        (experiments.SERIES_BASELINE, config),
        (experiments.SERIES_REESE, config.with_reese()),
        (experiments.SERIES_R2A, config.with_spares(2, 0).with_reese()),
    ]
    benches = (
        BENCHMARK_ORDER if args.benchmark == "all" else [args.benchmark]
    )
    scale = args.scale or bench_scale()
    jobs = [
        SimJob(bench, cfg, scale, profile=True)
        for bench in benches
        for _label, cfg in series
    ]
    all_stats = iter(runner.run(jobs))
    results = {
        bench: {label: next(all_stats) for label, _cfg in series}
        for bench in benches
    }
    print(reporting.profile_report(results, scale, markdown=args.markdown))
    _emit_telemetry(runner)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-reese",
        description="REESE (DSN 2001) reproduction harness",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help=f"dynamic instructions per benchmark (default {bench_scale()})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for experiment grids (default: all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="disable the on-disk result cache (.repro_cache/)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help="sampled simulation with N measurement intervals per run "
             "(default: full detailed runs)",
    )
    parser.add_argument(
        "--sample-interval",
        type=int,
        default=300,
        dest="sample_interval",
        metavar="K",
        help="measured instructions per interval (with --sample; "
             "default 300)",
    )
    parser.add_argument(
        "--sample-warmup",
        type=int,
        default=50,
        dest="sample_warmup",
        metavar="W",
        help="detailed warm-up instructions before each interval "
             "(with --sample; default 50)",
    )
    parser.add_argument(
        "--observe",
        action="store_true",
        help="collect per-stage metrics (occupancy, stalls, P/R FU split)",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        dest="check_invariants",
        help="validate pipeline legality every cycle (abort on violation)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the structured event trace to PATH as JSONL "
             "(multi-run commands splice the run label into the name)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach the cycle-accounting profiler to every simulation "
             "(top-down slot attribution + detection-latency telemetry; "
             "same switch as REPRO_PROFILE=1)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="write per-job run telemetry (timings, cache hits, worker "
             "ids) to PATH as JSONL after each parallel run",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list figures and benchmarks")
    fig = sub.add_parser("figure", help="reproduce one figure")
    fig.add_argument("figure", choices=sorted(experiments.FIGURES))
    sub.add_parser("summary", help="fig6 summary table")
    sub.add_parser("fig7", help="fig7 large machines")
    sub.add_parser("check", help="run paper-shape expectation checks")
    bench = sub.add_parser("bench", help="run one benchmark")
    bench.add_argument("benchmark", choices=BENCHMARK_ORDER)
    faults = sub.add_parser("faults", help="fault-injection demo")
    faults.add_argument("--benchmark", default="gcc", choices=BENCHMARK_ORDER)
    faults.add_argument("--rate", type=float, default=1e-4)
    faults.add_argument("--duration", type=int, default=3)
    faults.add_argument("--seed", type=int, default=2001)
    campaign = sub.add_parser("campaign", help="architectural SDC campaign")
    campaign.add_argument("benchmark", choices=BENCHMARK_ORDER)
    campaign.add_argument("--runs", type=int, default=40)
    campaign.add_argument("--rate", type=float, default=2e-3)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument(
        "--sites",
        action="store_true",
        help="stratified site-level campaign over analyzer-classified "
             "(instruction, register) fault sites",
    )
    oracle = campaign.add_mutually_exclusive_group()
    oracle.add_argument(
        "--static-oracle",
        action="store_true",
        dest="static_oracle",
        help="site campaign that exits non-zero when a dead-classified "
             "site shows visible corruption",
    )
    oracle.add_argument(
        "--skip-dead",
        action="store_true",
        dest="skip_dead",
        help="site campaign settling dead-classified samples statically "
             "(skips their emulations)",
    )
    campaign.add_argument(
        "--export",
        default=None,
        dest="export_dir",
        metavar="DIR",
        help="write the site campaign's json/csv under DIR",
    )
    analyze = sub.add_parser(
        "analyze", help="static CFG/dataflow/masking analysis"
    )
    analyze.add_argument(
        "benchmark", choices=list(BENCHMARK_ORDER) + ["all"]
    )
    lint = sub.add_parser("lint", help="workload linter (non-zero if dirty)")
    lint.add_argument("benchmark", choices=list(BENCHMARK_ORDER) + ["all"])
    lint.add_argument(
        "--verbose",
        action="store_true",
        help="show informational findings too",
    )
    sweep = sub.add_parser("sweep", help="spare-capacity design space")
    sweep.add_argument("--max-alu", type=int, default=3, dest="max_alu")
    sweep.add_argument("--max-mult", type=int, default=1, dest="max_mult")
    compare = sub.add_parser(
        "compare", help="baseline vs REESE vs dispatch-dup"
    )
    compare.add_argument("benchmark", choices=BENCHMARK_ORDER)
    profile_cmd = sub.add_parser(
        "profile", help="top-down cycle-accounting bottleneck profile"
    )
    profile_cmd.add_argument(
        "benchmark", nargs="?", default="all",
        choices=list(BENCHMARK_ORDER) + ["all"],
    )
    profile_cmd.add_argument(
        "--markdown",
        action="store_true",
        help="render the report as markdown tables",
    )
    export_cmd = sub.add_parser("export", help="export a figure (json/csv)")
    export_cmd.add_argument("figure", choices=sorted(experiments.FIGURES))
    export_cmd.add_argument("--out", default="results")
    return parser


_HANDLERS = {
    "list": _cmd_list,
    "figure": _cmd_figure,
    "summary": _cmd_summary,
    "fig7": _cmd_fig7,
    "check": _cmd_check,
    "bench": _cmd_bench,
    "faults": _cmd_faults,
    "campaign": _cmd_campaign,
    "analyze": _cmd_analyze,
    "lint": _cmd_lint,
    "sweep": _cmd_sweep,
    "compare": _cmd_compare,
    "export": _cmd_export,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
