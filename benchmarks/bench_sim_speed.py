"""Simulator throughput — the one bench about *our* code, not the paper.

Measures functional-emulation and cycle-simulation speed so regressions
in the hot loops are visible.  pytest-benchmark runs these several
times (unlike the single-shot figure benches).  The parallel-layer
bench at the bottom times a full figure cold/sequential vs parallel vs
warm-cache and publishes the comparison to ``results/``.
"""

import time

import pytest

from conftest import publish

from repro.arch import emulate
from repro.harness import ParallelRunner, format_table
from repro.harness.experiments import figure2_spec, run_figure
from repro.uarch import Pipeline, starting_config
from repro.workloads.suite import clear_trace_cache, trace_for


@pytest.fixture(scope="module")
def workload():
    return trace_for("vortex", scale=6000)


def test_emulator_throughput(benchmark, workload):
    program, trace = workload

    result = benchmark(
        lambda: emulate(program, max_instructions=100_000,
                        collect_trace=False)
    )
    assert result.halted
    benchmark.extra_info["instructions"] = result.instructions


def test_baseline_pipeline_throughput(benchmark, workload):
    program, trace = workload
    config = starting_config()

    stats = benchmark(lambda: Pipeline(program, trace, config).run())
    assert stats.committed == len(trace)
    benchmark.extra_info["cycles"] = stats.cycles


def test_reese_pipeline_throughput(benchmark, workload):
    program, trace = workload
    config = starting_config().with_reese()

    stats = benchmark(lambda: Pipeline(program, trace, config).run())
    assert stats.committed == len(trace)
    benchmark.extra_info["cycles"] = stats.cycles


def test_observed_pipeline_throughput(benchmark, workload):
    """Full observability on (metrics + invariant checker).

    Not a regression gate — observation is allowed to cost what it
    costs; this exists so its price stays *visible*.  The zero-cost
    claim for the observability-off path is what the tier-1 suite's
    throughput benches above effectively pin (they run unobserved).
    """
    from repro.uarch.observe import ObserveConfig, build_observability

    program, trace = workload
    config = starting_config().with_reese()
    observe = ObserveConfig(metrics=True, check_invariants=True)

    stats = benchmark(
        lambda: Pipeline(
            program, trace, config, observer=build_observability(observe)
        ).run()
    )
    assert stats.committed == len(trace)
    assert stats.stage_metrics["cycles_sampled"] == stats.cycles
    benchmark.extra_info["cycles"] = stats.cycles


def test_parallel_figure_cache_speedup(tmp_path_factory):
    """The parallel layer's acceptance bench: fig2 cold vs warm cache.

    Times the full 30-cell Figure 2 grid three ways — cold sequential
    (the pre-parallel-layer behaviour), cold through the worker pool,
    and a warm-cache rerun — and asserts the warm rerun is at least 2x
    faster than the cold sequential run while producing identical IPC
    tables.  A reduced scale keeps the bench minutes-free; the caching
    win only grows with scale (simulation time scales, cache reads
    don't).
    """
    scale = 2_500
    spec = figure2_spec()
    cache_dir = tmp_path_factory.mktemp("repro_cache")

    clear_trace_cache()
    start = time.perf_counter()
    cold_seq = run_figure(spec, scale=scale, jobs=1, cache=False)
    t_cold_seq = time.perf_counter() - start

    clear_trace_cache()
    runner = ParallelRunner(jobs=2, cache_dir=cache_dir)
    start = time.perf_counter()
    cold_par = run_figure(spec, scale=scale, runner=runner)
    t_cold_par = time.perf_counter() - start
    assert runner.telemetry.cache_hits == 0

    start = time.perf_counter()
    warm = run_figure(spec, scale=scale, runner=runner)
    t_warm = time.perf_counter() - start
    assert runner.telemetry.simulated == 0  # every cell served from disk

    assert cold_seq.rows() == cold_par.rows() == warm.rows()
    speedup = t_cold_seq / t_warm
    assert speedup >= 2.0, f"warm-cache speedup only {speedup:.1f}x"

    rows = [
        ["run", "seconds", "vs cold sequential"],
        ["cold sequential (jobs=1)", f"{t_cold_seq:.2f}", "1.0x"],
        ["cold parallel (jobs=2)", f"{t_cold_par:.2f}",
         f"{t_cold_seq / t_cold_par:.1f}x"],
        ["warm cache rerun", f"{t_warm:.2f}", f"{speedup:.1f}x"],
    ]
    publish(
        "sim_speed_parallel",
        "fig2 execution-layer comparison "
        f"({scale} dynamic instructions per benchmark, 30 cells)\n\n"
        + format_table(rows)
        + "\n\nIPC tables byte-identical across all three runs.",
    )
