"""Harness plumbing for the observability layer.

The observe module itself is unit-tested in tests/uarch/test_observe.py
and the golden traces in tests/integration/test_trace_goldens.py; this
file covers the glue: runner env gate, SimJob fingerprinting, CLI flags
and the metrics report.
"""

import json

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.parallel import ParallelRunner, SimJob, job_fingerprint
from repro.harness.reporting import metrics_report
from repro.harness.runner import _env_observe, run_benchmark
from repro.reese.faults import NoFaults, ScheduledFaultModel
from repro.uarch.config import starting_config
from repro.uarch.observe import ObserveConfig
from repro.uarch.stats import Stats


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestEnvGate:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        assert _env_observe(None) is None

    @pytest.mark.parametrize("value", ["", "0"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", value)
        assert _env_observe(None) is None

    def test_enabled_for_unfaulted_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        observe = _env_observe(None)
        assert observe is not None and observe.check_invariants
        assert _env_observe(NoFaults()) is not None

    def test_skips_faulted_runs(self, monkeypatch):
        """Fault-injected runs commit corrupted values on purpose; the
        smoke gate must not turn those into invariant failures."""
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert _env_observe(ScheduledFaultModel([(0, 5, 1)])) is None

    def test_gated_benchmark_run_passes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        stats = run_benchmark("go", starting_config().with_reese(),
                              scale=300)
        assert stats.committed > 0


class TestJobFingerprint:
    def test_observability_is_part_of_the_key(self):
        base = SimJob("go", starting_config(), 300)
        assert job_fingerprint(base) != job_fingerprint(
            SimJob("go", starting_config(), 300, observe=True)
        )
        assert job_fingerprint(base) != job_fingerprint(
            SimJob("go", starting_config(), 300, check_invariants=True)
        )

    def test_trace_path_is_not(self):
        """Trace destination is a side effect, not part of the result."""
        with_path = SimJob("go", starting_config(), 300,
                           trace_path="/tmp/a.jsonl")
        other_path = SimJob("go", starting_config(), 300,
                            trace_path="/tmp/b.jsonl")
        assert job_fingerprint(with_path) == job_fingerprint(other_path)
        assert job_fingerprint(with_path) == job_fingerprint(
            SimJob("go", starting_config(), 300)
        )


class TestRunnerObservability:
    def test_runner_flags_fold_into_jobs(self, tmp_path):
        runner = ParallelRunner(jobs=1, use_cache=False, observe=True)
        (stats,) = runner.run([SimJob("go", starting_config(), 300)])
        assert stats.stage_metrics["cycles_sampled"] == stats.cycles

    def test_observed_stats_round_trip_the_cache(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache_dir=tmp_path / "c",
                                observe=True)
        job = SimJob("go", starting_config(), 300)
        (cold,) = runner.run([job])
        (warm,) = runner.run([job])
        assert runner.telemetry.cache_hits == 1
        assert warm.stage_metrics == cold.stage_metrics

    def test_unobserved_job_keeps_empty_registry(self):
        runner = ParallelRunner(jobs=1, use_cache=False)
        (stats,) = runner.run([SimJob("go", starting_config(), 300)])
        assert stats.stage_metrics == {}


class TestCLIFlags:
    def test_parser_accepts_observability_flags(self):
        args = build_parser().parse_args(
            ["--observe", "--check-invariants", "--trace", "out.jsonl",
             "list"]
        )
        assert args.observe and args.check_invariants
        assert args.trace == "out.jsonl"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["list"])
        assert not args.observe and not args.check_invariants
        assert args.trace is None

    def test_observe_bench_prints_metrics(self, capsys):
        assert main(["--scale", "600", "--observe", "--check-invariants",
                     "bench", "go"]) == 0
        out = capsys.readouterr().out
        assert "stage metrics over" in out
        assert "FU issues (R-stream)" in out

    def test_trace_flag_writes_per_run_files(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["--scale", "600", "--trace", str(trace),
                     "bench", "go"]) == 0
        for label in ("baseline", "reese"):
            path = tmp_path / f"run.{label}.jsonl"
            assert path.exists(), f"missing {path.name}"
            first = json.loads(path.read_text().splitlines()[0])
            assert "kind" in first and "cycle" in first


class TestMetricsReport:
    def test_placeholder_for_unobserved_stats(self):
        assert "not observed" in metrics_report(Stats())

    def test_renders_occupancy_and_stalls(self):
        stats = Stats()
        stats.stage_metrics = {
            "schema": 1,
            "cycles_sampled": 10,
            "occupancy": {"ruu": {"0": 5, "8": 5}},
            "stalls": {"fetch_blocked": 3},
            "fu_issued": {"P": {"ialu": 7}, "R": {"ialu": 2}},
        }
        report = metrics_report(stats)
        assert "stage metrics over 10 cycles" in report
        assert "ruu" in report and "4.00" in report and "8" in report
        assert "fetch_blocked=3" in report
        assert "FU issues (P-stream): ialu=7" in report
        assert "FU issues (R-stream): ialu=2" in report
