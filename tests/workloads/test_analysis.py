"""Unit tests for trace characterisation."""

import pytest

from repro.arch import emulate
from repro.isa import assemble
from repro.workloads import BENCHMARK_ORDER, kernels
from repro.workloads.analysis import analyze_trace
from repro.workloads.suite import trace_for


class TestCriticalPath:
    def test_serial_chain_has_depth_near_length(self):
        program = assemble("""
        main:
            li r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            halt
        """)
        profile = analyze_trace(emulate(program).trace)
        # li + 4 dependent addi form a 5-deep chain.
        assert profile.critical_path == 5
        assert profile.ideal_ipc < 1.5

    def test_independent_ops_have_shallow_path(self):
        program = assemble("""
        main:
            li r1, 1
            li r2, 2
            li r3, 3
            li r4, 4
            halt
        """)
        profile = analyze_trace(emulate(program).trace)
        assert profile.critical_path == 1
        assert profile.ideal_ipc >= 4.0

    def test_ideal_ipc_upper_bounds_measured(self):
        from repro.uarch import Pipeline, starting_config
        program = kernels.ilp_block(200, 6)
        trace = emulate(program).trace
        profile = analyze_trace(trace)
        stats = Pipeline(program, trace, starting_config()).run()
        assert stats.ipc <= profile.ideal_ipc + 0.01


class TestDependenceDistances:
    def test_distance_one_for_back_to_back(self):
        program = assemble("""
        li r1, 5
        addi r2, r1, 1
        halt
        """)
        profile = analyze_trace(emulate(program).trace)
        assert profile.dep_distances[1] >= 1

    def test_mean_distance_larger_for_parallel_code(self):
        serial = analyze_trace(emulate(kernels.serial_chain(200)).trace)
        parallel = analyze_trace(
            emulate(kernels.ilp_block(100, 8)).trace
        )
        assert parallel.mean_dep_distance > serial.mean_dep_distance


class TestBranchProfile:
    def test_biased_loop_has_low_entropy(self):
        program, _ = kernels.vector_sum(64)
        profile = analyze_trace(emulate(program).trace)
        assert profile.branch.conditional >= 63
        assert profile.branch.taken_rate > 0.9
        assert profile.branch.mean_entropy < 0.3

    def test_random_branch_has_high_entropy(self):
        program = assemble("""
        main:
            li   r1, 200
            li   r2, 987654
            li   r5, 1103515245
        loop:
            mul  r2, r2, r5
            addi r2, r2, 12345
            srli r3, r2, 9
            andi r3, r3, 1
            beqz r3, skip
            nop
        skip:
            subi r1, r1, 1
            bnez r1, loop
            halt
        """)
        profile = analyze_trace(emulate(program).trace)
        assert profile.branch.mean_entropy > 0.4


class TestWorkingSets:
    def test_data_bytes_counted_in_lines(self):
        program = assemble("""
        .data
        buf: .space 256
        .text
        main:
            la r1, buf
            lw r2, 0(r1)
            lw r3, 128(r1)
            halt
        """)
        profile = analyze_trace(emulate(program).trace, line_size=32)
        assert profile.data_bytes_touched == 64  # two distinct lines

    def test_report_renders(self):
        program, _ = kernels.fibonacci(10)
        text = analyze_trace(emulate(program).trace).report()
        assert "ideal IPC" in text
        assert "working set" in text


class TestProxyCharacter:
    @pytest.fixture(scope="class")
    def profiles(self):
        return {
            name: analyze_trace(trace_for(name, scale=6000)[1])
            for name in BENCHMARK_ORDER
        }

    def test_entropy_ordering_matches_design(self, profiles):
        # gcc's tag dispatch and go's board comparisons are the
        # hard-to-predict proxies; ijpeg and vortex are regular.
        assert profiles["go"].branch.mean_entropy > 0.3
        assert profiles["gcc"].branch.mean_entropy > 0.3
        assert profiles["ijpeg"].branch.mean_entropy < 0.2
        assert profiles["vortex"].branch.mean_entropy < 0.2

    def test_every_proxy_has_bounded_ideal_ipc(self, profiles):
        # The serial recurrences keep ideal ILP finite — the property
        # that makes baseline IPC window-insensitive (DESIGN.md).
        for name, profile in profiles.items():
            assert profile.ideal_ipc < 40, name

    def test_working_sets_fit_l1(self, profiles):
        for name, profile in profiles.items():
            assert profile.data_bytes_touched <= 32 * 1024, name


class TestWindowedIlpAndBurstiness:
    def test_windowed_ilp_basic(self):
        from repro.workloads.analysis import windowed_ilp
        program = assemble("""
        main:
            li r1, 1
            li r2, 2
            li r3, 3
            li r4, 4
            halt
        """)
        ilps = windowed_ilp(emulate(program).trace, window=5)
        assert ilps and ilps[0] >= 4.0

    def test_windowed_ilp_validation(self):
        from repro.workloads.analysis import windowed_ilp
        with pytest.raises(ValueError):
            windowed_ilp([], window=0)

    def test_steady_loop_low_burstiness(self):
        from repro.workloads.analysis import burstiness
        trace = emulate(kernels.serial_chain(400)).trace
        assert burstiness(trace) < 0.25

    def test_bursty_proxies_exceed_steady_ones(self):
        from repro.workloads.analysis import burstiness
        bursty = burstiness(trace_for("gcc", scale=5000)[1])
        steady = burstiness(trace_for("vortex", scale=5000)[1])
        # gcc carries explicit expression-evaluation bursts.
        assert bursty > steady

    def test_burstiness_of_tiny_trace_is_zero(self):
        from repro.workloads.analysis import burstiness
        program = assemble("nop\nhalt")
        assert burstiness(emulate(program).trace) == 0.0
