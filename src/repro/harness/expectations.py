"""Paper-shape expectation checks.

Absolute IPC values cannot match the paper (different ISA, proxy
workloads, short runs), but the *shape* of every result can be checked:
who wins, roughly by how much, and how added hardware moves the gap.
Each check returns an :class:`Expectation` with a pass flag and the
measured evidence, so the bench suite and EXPERIMENTS.md can report
paper-vs-measured side by side.

The tolerance bands are deliberately loose (they assert direction and
rough magnitude, not point values) so the checks stay meaningful when
run lengths are scaled down via ``REPRO_BENCH_INSTRUCTIONS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .experiments import (
    FigureResult,
    SERIES_BASELINE,
    SERIES_R2A,
    SERIES_R2A1M,
    SERIES_REESE,
)


@dataclass
class Expectation:
    """One paper claim checked against measured data."""

    name: str
    paper_claim: str
    measured: str
    passed: bool

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.name}\n"
            f"    paper:    {self.paper_claim}\n"
            f"    measured: {self.measured}"
        )


def check_figure2(result: FigureResult) -> List[Expectation]:
    """Shape checks for the starting-configuration comparison."""
    checks: List[Expectation] = []
    reese_gap = result.gap(SERIES_REESE)
    spare_gap = result.gap(SERIES_R2A)
    checks.append(
        Expectation(
            "fig2/reese-costs-performance",
            "REESE average IPC is 11-16% below baseline (we accept 4-30%)",
            f"average REESE gap = {reese_gap:.1%}",
            0.04 <= reese_gap <= 0.30,
        )
    )
    checks.append(
        Expectation(
            "fig2/spares-shrink-gap",
            "two spare integer ALUs substantially reduce the gap",
            f"gap {reese_gap:.1%} -> {spare_gap:.1%} with +2 ALUs",
            spare_gap < reese_gap and spare_gap <= 0.6 * reese_gap + 0.02,
        )
    )
    # Per-benchmark character: the paper singles out erratic benchmarks.
    vortex_gap = 1 - (
        result.ipc("vortex", SERIES_REESE) / result.ipc("vortex", SERIES_BASELINE)
    )
    checks.append(
        Expectation(
            "fig2/vortex-anomaly",
            "vortex: REESE IPC is not below baseline (paper: REESE higher)",
            f"vortex REESE gap = {vortex_gap:.1%}",
            vortex_gap <= 0.03,
        )
    )
    gaps = {
        bench: 1
        - result.ipc(bench, SERIES_REESE) / result.ipc(bench, SERIES_BASELINE)
        for bench in result.spec.benchmarks
    }
    checks.append(
        Expectation(
            "fig2/gaps-vary-by-benchmark",
            "per-benchmark behaviour is erratic: some large gaps, some none",
            "; ".join(f"{b}={g:+.0%}" for b, g in gaps.items()),
            max(gaps.values()) - min(gaps.values()) >= 0.05,
        )
    )
    if SERIES_R2A1M in result.spec.series_labels:
        ijpeg_r2a = result.ipc("ijpeg", SERIES_R2A)
        ijpeg_r2a1m = result.ipc("ijpeg", SERIES_R2A1M)
        checks.append(
            Expectation(
                "fig2/mult-helps-ijpeg",
                "the spare multiplier/divider benefits the multiply-rich "
                "benchmark (ijpeg) specifically",
                f"ijpeg IPC {ijpeg_r2a:.3f} -> {ijpeg_r2a1m:.3f} with +1 Mult",
                ijpeg_r2a1m >= ijpeg_r2a,
            )
        )
    return checks


def check_spares_monotonic(result: FigureResult) -> List[Expectation]:
    """Adding spare elements never makes REESE meaningfully slower."""
    labels = [
        label
        for label in result.spec.series_labels
        if label != SERIES_BASELINE
    ]
    ipcs = [result.average_ipc(label) for label in labels]
    non_decreasing = all(
        later >= earlier - 0.02 * earlier
        for earlier, later in zip(ipcs, ipcs[1:])
    )
    return [
        Expectation(
            f"{result.spec.figure_id}/spares-monotonic",
            "each added spare element weakly improves REESE's average IPC",
            "; ".join(
                f"{lab}={ipc:.3f}" for lab, ipc in zip(labels, ipcs)
            ),
            non_decreasing,
        )
    ]


def check_figure7(
    results_by_name: Dict[str, FigureResult]
) -> List[Expectation]:
    """Fig. 7 shape: RUU alone keeps the gap; extra FUs collapse it."""
    checks: List[Expectation] = []
    for ruu_size in (64, 256):
        plain = results_by_name[f"fig7-ruu{ruu_size}"]
        extra = results_by_name[f"fig7-ruu{ruu_size}+fus"]
        plain_gap = plain.gap(SERIES_REESE)
        extra_gap = extra.gap(SERIES_REESE)
        checks.append(
            Expectation(
                f"fig7/ruu{ruu_size}-gap-persists",
                "the REESE gap remains large (~15%) when only the RUU grows",
                f"RUU={ruu_size}: gap = {plain_gap:.1%}",
                plain_gap >= 0.10,
            )
        )
        checks.append(
            Expectation(
                f"fig7/ruu{ruu_size}-fus-close-gap",
                "additional functional units shrink the difference to ~1.5% "
                "(we accept < half the RUU-only gap and < 12%)",
                f"RUU={ruu_size}: {plain_gap:.1%} -> {extra_gap:.1%} with FUs",
                extra_gap < 0.12 and extra_gap <= 0.5 * plain_gap,
            )
        )
    return checks


def check_summary(summary: Dict[str, Dict[str, float]]) -> List[Expectation]:
    """Fig. 6 shape: every variation shows a gap; spares shrink it."""
    checks: List[Expectation] = []
    reese_gaps = []
    spare_gaps = []
    for variation, cells in summary.items():
        base = cells[SERIES_BASELINE]
        reese_gaps.append(1 - cells[SERIES_REESE] / base)
        spare_gaps.append(1 - cells[SERIES_R2A] / base)
    mean_reese = sum(reese_gaps) / len(reese_gaps)
    mean_spare = sum(spare_gaps) / len(spare_gaps)
    checks.append(
        Expectation(
            "fig6/average-overhead-band",
            "average REESE overhead ~14% across variations (accept 6-30%)",
            f"mean REESE gap = {mean_reese:.1%}",
            0.06 <= mean_reese <= 0.30,
        )
    )
    checks.append(
        Expectation(
            "fig6/spares-shrink-average",
            "spares shrink the average overhead (paper: 14.0% -> 8.0%)",
            f"{mean_reese:.1%} -> {mean_spare:.1%} with +2 ALUs",
            mean_spare < mean_reese,
        )
    )
    return checks


def check_all(
    fig_results: Dict[str, FigureResult],
    summary: Optional[Dict[str, Dict[str, float]]] = None,
) -> List[Expectation]:
    """Run every applicable expectation against the collected results."""
    checks: List[Expectation] = []
    if "fig2" in fig_results:
        checks.extend(check_figure2(fig_results["fig2"]))
    for name, result in fig_results.items():
        if name.startswith("fig") and not name.startswith("fig7"):
            checks.extend(check_spares_monotonic(result))
    if any(name.startswith("fig7") for name in fig_results):
        fig7 = {
            name: result
            for name, result in fig_results.items()
            if name.startswith("fig7")
        }
        if len(fig7) == 4:
            checks.extend(check_figure7(fig7))
    if summary is not None:
        checks.extend(check_summary(summary))
    return checks
