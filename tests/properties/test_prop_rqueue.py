"""Property-based tests for R-stream Queue invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.arch.trace import DynInst
from repro.isa.instructions import FUClass, Op
from repro.reese import R_DONE, R_ISSUED, R_WAITING, REntry, RStreamQueue


def make_entry(seq):
    dyn = DynInst()
    dyn.seq = seq
    dyn.op = Op.ADD
    return REntry(seq, dyn, p_value=seq, fu=FUClass.INT_ALU, inserted_cycle=0)


class RQueueMachine(RuleBasedStateMachine):
    """Stateful model-check of the queue against a reference model."""

    def __init__(self):
        super().__init__()
        self.queue = RStreamQueue(capacity=8)
        self.model = {}           # seq -> state
        self.insertion = []       # insertion order of waiting entries
        self.next_seq = 0
        self.entries = {}

    @rule()
    def push(self):
        if self.queue.full:
            return
        entry = make_entry(self.next_seq)
        self.queue.push(entry)
        self.entries[self.next_seq] = entry
        self.model[self.next_seq] = R_WAITING
        self.insertion.append(self.next_seq)
        self.next_seq += 1

    @rule()
    def issue_head(self):
        entry = self.queue.peek_unissued()
        if entry is None:
            assert not any(s == R_WAITING for s in self.model.values())
            return
        # FIFO: head of pending must be the earliest-inserted waiting seq.
        waiting = [s for s in self.insertion if self.model.get(s) == R_WAITING]
        assert entry.seq == waiting[0]
        self.queue.mark_issued(entry)
        self.model[entry.seq] = R_ISSUED

    @rule(data=st.data())
    def complete_some_issued(self, data):
        issued = [s for s, state in self.model.items() if state == R_ISSUED]
        if not issued:
            return
        seq = data.draw(st.sampled_from(issued))
        self.entries[seq].state = R_DONE
        self.model[seq] = R_DONE

    @rule()
    def commit_oldest_done(self):
        if not self.model:
            return
        oldest = min(self.model)
        entry = self.queue.committable(oldest)
        if self.model[oldest] == R_DONE:
            assert entry is not None
            self.queue.pop(oldest)
            del self.model[oldest]
            self.insertion = [s for s in self.insertion if s != oldest]
        else:
            assert entry is None

    @rule()
    def flush(self):
        dropped = self.queue.clear()
        assert dropped == len(self.model)
        self.model.clear()
        self.insertion.clear()

    @invariant()
    def occupancy_matches_model(self):
        assert len(self.queue) == len(self.model)
        assert self.queue.full == (len(self.model) >= 8)

    @invariant()
    def entries_in_program_order(self):
        seqs = [entry.seq for entry in self.queue.entries()]
        assert seqs == sorted(self.model)

    @invariant()
    def waiting_set_consistent(self):
        waiting = {entry.seq for entry in self.queue.waiting_entries()}
        model_waiting = {
            seq for seq, state in self.model.items() if state == R_WAITING
        }
        assert waiting == model_waiting


TestRQueueStateMachine = RQueueMachine.TestCase
TestRQueueStateMachine.settings = settings(
    max_examples=60, stateful_step_count=60, deadline=None
)


class TestSimpleProperties:
    @given(st.lists(st.integers(0, 1000), unique=True, min_size=1,
                    max_size=32))
    def test_insertion_order_preserved_for_issue(self, seqs):
        queue = RStreamQueue(capacity=32)
        for seq in seqs:
            queue.push(make_entry(seq))
        issued = []
        while True:
            entry = queue.peek_unissued()
            if entry is None:
                break
            queue.mark_issued(entry)
            issued.append(entry.seq)
        assert issued == seqs
