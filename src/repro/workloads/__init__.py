"""Workloads: SPEC95-int proxies, kernels and random program generation."""

from .analysis import (BranchProfile, TraceProfile, analyze_trace,
                       burstiness, windowed_ilp)
from .generator import MixProfile, PROFILES, ProgramGenerator, generate_program
from .suite import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    Workload,
    clear_trace_cache,
    load,
    mix_report,
    trace_for,
)

__all__ = [
    "BranchProfile",
    "TraceProfile",
    "analyze_trace",
    "burstiness",
    "windowed_ilp",
    "MixProfile",
    "PROFILES",
    "ProgramGenerator",
    "generate_program",
    "BENCHMARK_ORDER",
    "BENCHMARKS",
    "Workload",
    "clear_trace_cache",
    "load",
    "mix_report",
    "trace_for",
]
