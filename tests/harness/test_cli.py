"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_flag(self):
        args = build_parser().parse_args(["--scale", "500", "list"])
        assert args.scale == 500

    def test_bench_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "mcf"])

    def test_figure_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "vortex" in out
        assert "scrabbl.pl" in out  # Table 2 provenance

    def test_bench(self, capsys):
        assert main(["--scale", "1200", "bench", "go"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "reese" in out
        assert "IPC ratio" in out

    def test_faults(self, capsys):
        code = main([
            "--scale", "1500", "faults",
            "--benchmark", "vortex", "--rate", "0.002", "--duration", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "errors detected" in out

    def test_figure_runs_small(self, capsys, monkeypatch):
        # Keep runtime sane: tiny scale; full 6-benchmark figure.
        assert main(["--scale", "800", "figure", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "AV." in out
        assert "Baseline" in out
