"""Table 2 — the benchmark programs and their inputs.

Regenerates the paper's benchmark table with our proxy substitutions,
reports each proxy's dynamic instruction mix, and times trace
generation (the functional-emulation side of every experiment).
"""

from conftest import publish

from repro.harness import bench_scale, format_table
from repro.workloads import (BENCHMARK_ORDER, BENCHMARKS, analyze_trace,
                             burstiness, mix_report)
from repro.workloads.suite import clear_trace_cache, trace_for


def test_table2_benchmark_programs(benchmark):
    scale = bench_scale()

    def build_all_traces():
        clear_trace_cache()
        return {
            name: trace_for(name, scale=scale) for name in BENCHMARK_ORDER
        }

    traces = benchmark.pedantic(build_all_traces, rounds=1, iterations=1)

    rows = [["benchmark", "paper input", "dyn insts",
             "ld", "st", "br", "mul", "idealILP", "burst", "entropy"]]
    for name in BENCHMARK_ORDER:
        workload = BENCHMARKS[name]
        _, trace = traces[name]
        mix = mix_report(trace)
        profile = analyze_trace(trace)
        rows.append([
            name,
            workload.paper_input,
            str(len(trace)),
            f"{mix['load']:.2f}",
            f"{mix['store']:.2f}",
            f"{mix['branch']:.2f}",
            f"{mix['mul_div']:.2f}",
            f"{profile.ideal_ipc:.1f}",
            f"{burstiness(trace):.2f}",
            f"{profile.branch.mean_entropy:.2f}",
        ])
    publish("table2_workloads",
            "Table 2: benchmark programs (proxy substitutions)\n"
            + format_table(rows))

    for name in BENCHMARK_ORDER:
        _, trace = traces[name]
        assert len(trace) > 0.2 * scale, f"{name} trace too short"
