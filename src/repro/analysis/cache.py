"""On-disk analysis cache keyed by a content hash of the program.

Static analysis of a workload depends only on its instruction stream
(and labels, which steer the indirect-jump over-approximation), so the
result is cached under ``.repro_cache/analysis/`` keyed by
:func:`program_fingerprint` — a sweep that re-analyses the same
assembled program (same benchmark, same scale/seed) pays the dataflow
fixpoints once.  The layout mirrors
:class:`repro.harness.parallel.ResultCache`: JSON entries in
fan-out subdirectories, atomic writes, unreadable or version-mismatched
entries treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import warnings
from typing import Any, Dict, Optional

from ..isa.program import Program

#: Bump when the analysis semantics or the cached payload change.
ANALYSIS_VERSION = 1

#: Subdirectory under the shared cache root.
ANALYSIS_SUBDIR = "analysis"


def program_fingerprint(program: Program) -> str:
    """Content hash of everything the static analysis can observe.

    Covers the instruction stream and the label table (labels feed the
    indirect-jump target fallback); excludes the program ``name`` and
    the initial data image, which the register-level analyses never
    read.
    """
    payload = {
        "version": ANALYSIS_VERSION,
        "code": [
            [int(inst.op), inst.rd, inst.rs1, inst.rs2, inst.imm]
            for inst in program.code
        ],
        "labels": sorted(
            (name, index) for name, index in program.labels.items()
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


class AnalysisCache:
    """Hash-keyed JSON store for serialised analysis results."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        base = pathlib.Path(
            root
            if root is not None
            else os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        )
        self.root = base / ANALYSIS_SUBDIR
        self._write_warned = False

    def path_for(self, fingerprint: str) -> pathlib.Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(self.path_for(fingerprint).read_text())
        except (OSError, ValueError):
            return None
        if data.get("version") != ANALYSIS_VERSION:
            return None
        if data.get("fingerprint") != fingerprint:
            return None
        return data

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        blob = json.dumps(
            {**payload, "version": ANALYSIS_VERSION,
             "fingerprint": fingerprint},
            sort_keys=True,
        )
        try:
            path = self.path_for(fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(blob)
            os.replace(tmp, path)
        except OSError as error:
            if not self._write_warned:
                self._write_warned = True
                warnings.warn(
                    f"analysis cache at {self.root} is not writable "
                    f"({error}); continuing without caching",
                    RuntimeWarning,
                    stacklevel=2,
                )
