"""repro — a reproduction of *REESE: A Method of Soft Error Detection in
Microprocessors* (Nickel & Somani, DSN 2001).

The package implements, from scratch:

* a small RISC ISA with assembler and functional emulator
  (:mod:`repro.isa`, :mod:`repro.arch`);
* a SimpleScalar-style cycle-level out-of-order superscalar core with
  RUU, LSQ, caches, TLB and branch prediction (:mod:`repro.uarch`,
  :mod:`repro.memhier`, :mod:`repro.bpred`);
* **REESE** — time-redundant soft-error detection via an R-stream
  Queue, idle-capacity redundant execution, result comparison and
  error recovery, plus transient-fault injection (:mod:`repro.reese`);
* six SPEC95-integer proxy workloads and a random program generator
  (:mod:`repro.workloads`);
* an experiment harness reproducing every table and figure of the
  paper's evaluation (:mod:`repro.harness`).

Quickstart::

    from repro import quick_compare
    report = quick_compare("gcc")          # baseline vs REESE IPC
    print(report)

or, at the shell::

    repro-reese figure fig2
"""

from __future__ import annotations

from .arch import EmulationResult, Emulator, Memory, emulate
from .harness import run_benchmark, run_figure, run_model
from .isa import Instruction, Op, Program, assemble
from .reese import (
    BernoulliFaultModel,
    EnvironmentalFaultModel,
    RStreamQueue,
    UnrecoverableFaultError,
)
from .uarch import (
    MachineConfig,
    Pipeline,
    ReeseConfig,
    Stats,
    starting_config,
)
from .workloads import BENCHMARKS, generate_program, load

__version__ = "1.0.0"

__all__ = [
    "EmulationResult",
    "Emulator",
    "Memory",
    "emulate",
    "run_benchmark",
    "run_figure",
    "run_model",
    "Instruction",
    "Op",
    "Program",
    "assemble",
    "BernoulliFaultModel",
    "EnvironmentalFaultModel",
    "RStreamQueue",
    "UnrecoverableFaultError",
    "MachineConfig",
    "Pipeline",
    "ReeseConfig",
    "Stats",
    "starting_config",
    "BENCHMARKS",
    "generate_program",
    "load",
    "quick_compare",
]


def quick_compare(benchmark: str = "gcc", scale: int = 20_000) -> str:
    """Run one benchmark on the baseline and REESE; return a report.

    This is the two-line demonstration of the paper's headline result.
    """
    config = starting_config()
    base = run_benchmark(benchmark, config, scale=scale)
    reese = run_benchmark(benchmark, config.with_reese(), scale=scale)
    spared = run_benchmark(
        benchmark, config.with_spares(alu=2).with_reese(), scale=scale
    )
    lines = [
        f"benchmark {benchmark!r} ({scale} dynamic instructions):",
        f"  baseline     IPC {base.ipc:.3f}",
        f"  REESE        IPC {reese.ipc:.3f} ({1 - reese.ipc / base.ipc:+.1%})",
        f"  REESE+2 ALUs IPC {spared.ipc:.3f} ({1 - spared.ipc / base.ipc:+.1%})",
    ]
    return "\n".join(lines)
