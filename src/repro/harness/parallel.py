"""Parallel experiment execution: fan simulation jobs over worker processes.

Every experiment in the reproduction — the figure suites, the
spare-capacity sweep, the fault campaigns — decomposes into independent
``(benchmark, config, seed, fault model)`` simulation jobs.  This module
is the single execution layer they all route through:

* :class:`SimJob` describes one simulation; :func:`job_fingerprint`
  derives a stable content hash of everything that determines its
  result (benchmark, scale, resolved seed, the full
  :class:`~repro.uarch.config.MachineConfig` contents minus the cosmetic
  ``name``, and the fault-model parameters).
* :class:`ResultCache` persists :class:`~repro.uarch.stats.Stats` under
  ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``) keyed by that
  fingerprint, so re-running a figure after an unrelated code change is
  a cache hit.
* :class:`ParallelRunner` executes a job list: cache lookups first, then
  the misses over a ``multiprocessing`` pool (in-process when one worker
  suffices).  Results come back in input order and are bit-identical
  regardless of worker count or scheduling, because each job is fully
  determined by its own fields — nothing is sampled from shared state.
* :class:`RunTelemetry` records per-job timing/outcome for
  :func:`repro.harness.reporting.telemetry_report`.
* Sampled simulation (:mod:`repro.uarch.sampling`) plugs in at two
  granularities.  A :class:`SimJob` whose ``sampling`` spec names a
  single interval (``spec.index`` set) simulates just that measurement
  window — a self-contained, cacheable unit.  :func:`run_sampled_jobs`
  expands whole sampled jobs into those interval jobs, runs them all in
  one flat batch (so every interval of every cell shares the pool), and
  merges each job's interval Stats back into a
  :class:`~repro.uarch.sampling.SampledResult`.

Worker lifecycle: each worker process keeps its own module-level
memoised trace cache (:func:`repro.workloads.suite.trace_for`), so a
worker pays trace generation once per ``(benchmark, scale, seed)`` and
amortises it across every config it simulates.  The cache is
LRU-bounded; long-lived workers that sweep many distinct workloads stay
within :data:`repro.workloads.suite.TRACE_CACHE_LIMIT` entries, and
:func:`repro.workloads.suite.clear_trace_cache` drops it entirely
between campaigns.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pathlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..reese.faults import (
    BernoulliFaultModel,
    EnvironmentalFaultModel,
    FaultModel,
    ScheduledFaultModel,
)
from ..uarch.config import MachineConfig
from ..uarch.observe import ObserveConfig, build_observability
from ..uarch.sampling import (
    SampledResult,
    SamplingSpec,
    mispredict_profile,
    run_interval,
    run_sampled,
    select_intervals,
)
from ..uarch.stats import Stats
from ..workloads.suite import BENCHMARKS
from .runner import _env_observe, _env_profile, run_model
from .telemetry import write_job_telemetry

#: Bump to invalidate every on-disk cache entry after a model change.
#: v2: Stats gained ``stage_metrics`` and jobs gained observability
#: fields that change the payload (observed runs populate the registry).
#: v3: jobs gained the ``sampling`` spec (every field of which changes
#: which instructions are simulated), so sampled and full runs — and
#: sampled runs with different specs — never share an entry.
#: v4: Stats gained ``accounting`` and jobs gained the ``profile``
#: flag (profiled runs populate the attribution account).
CACHE_VERSION = 4

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

_T = TypeVar("_T")
_R = TypeVar("_R")

_FAULT_KINDS: Dict[str, Callable[..., FaultModel]] = {
    "environmental": EnvironmentalFaultModel,
    "bernoulli": BernoulliFaultModel,
    "scheduled": ScheduledFaultModel,
}


@dataclass(frozen=True)
class FaultSpec:
    """A picklable, fingerprintable description of a fault model.

    Fault models themselves carry live RNG state, so jobs ship this
    spec instead and each worker builds a fresh model — which is also
    what makes injected runs reproducible across worker counts.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(_FAULT_KINDS)}"
            )

    @classmethod
    def make(cls, kind: str, **params: Any) -> "FaultSpec":
        return cls(kind, tuple(sorted(params.items())))

    def build(self) -> FaultModel:
        return _FAULT_KINDS[self.kind](**dict(self.params))


@dataclass(frozen=True)
class SimJob:
    """One simulation: a benchmark on a machine config, optionally faulted."""

    benchmark: str
    config: MachineConfig
    scale: int
    seed: Optional[int] = None
    fault: Optional[FaultSpec] = None
    warm: bool = True
    #: Collect per-stage metrics into ``Stats.stage_metrics``.
    observe: bool = False
    #: Run the pipeline under the runtime invariant checker.
    check_invariants: bool = False
    #: Write the structured event trace to this JSONL path.  Trace
    #: files are a side effect the result cache cannot replay, so jobs
    #: with a trace path always simulate (no cache read).
    trace_path: Optional[str] = None
    #: Sampled simulation (``None`` = full detailed run).  With
    #: ``sampling.index`` set the job simulates that one measurement
    #: interval; with ``index=None`` it runs the whole sampled
    #: simulation in process and returns the merged interval Stats
    #: (use :func:`run_sampled_jobs` to fan intervals over workers and
    #: keep the :class:`~repro.uarch.sampling.SampledResult` estimate).
    #: Observability attaches to interval jobs only — a whole-run
    #: sampled job spawns one pipeline per interval, which the
    #: single-observer plumbing does not model.
    sampling: Optional[SamplingSpec] = None
    #: Attach the cycle-accounting profiler: the job's Stats carry the
    #: top-down slot/cycle attribution account and detection-latency
    #: telemetry (``Stats.accounting``).  Sampled jobs profile each
    #: measurement interval and merge the accounts.
    profile: bool = False

    def resolved_seed(self) -> int:
        """The seed actually used (``None`` means the workload default)."""
        if self.seed is not None:
            return self.seed
        return BENCHMARKS[self.benchmark].default_seed


def derive_seed(base: int, *parts: Any) -> int:
    """Derive a per-job seed from a base seed and the job's identity.

    Stable across processes and Python versions (no ``hash()``), so a
    job's RNG stream depends only on what the job *is*, never on which
    worker runs it or in what order.
    """
    text = json.dumps([base, *[str(part) for part in parts]])
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


def job_fingerprint(job: SimJob) -> str:
    """Content hash of everything that determines a job's Stats.

    The config's cosmetic ``name`` is excluded: two configs that differ
    only in label simulate identically and share a cache entry.
    """
    config = dataclasses.asdict(job.config)
    config.pop("name", None)
    payload = {
        "version": CACHE_VERSION,
        "benchmark": job.benchmark,
        "scale": job.scale,
        "seed": job.resolved_seed(),
        "warm": job.warm,
        "config": config,
        "fault": (
            {"kind": job.fault.kind, "params": list(job.fault.params)}
            if job.fault
            else None
        ),
        # Observability changes the Stats payload (stage_metrics) but
        # not the simulated outcome; it is part of the key so observed
        # and unobserved runs never serve each other's entries.  The
        # trace path is a pure side-effect destination and is excluded.
        "observe": job.observe,
        "check_invariants": job.check_invariants,
        "sampling": (
            dataclasses.asdict(job.sampling) if job.sampling else None
        ),
        # Profiling likewise changes the payload (Stats.accounting):
        # profiled and unprofiled runs never share an entry.
        "profile": job.profile,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """On-disk Stats cache keyed by :func:`job_fingerprint`.

    Entries are JSON files under ``<root>/<fp[:2]>/<fp>.json``; writes
    go through a temp file + ``os.replace`` so concurrent workers never
    expose a torn entry.  Unreadable or version-mismatched entries are
    treated as misses.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(
            root
            if root is not None
            else os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )
        self._write_warned = False

    def path_for(self, fingerprint: str) -> pathlib.Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Stats]:
        try:
            data = json.loads(self.path_for(fingerprint).read_text())
        except (OSError, ValueError):
            return None
        if data.get("version") != CACHE_VERSION:
            return None
        try:
            return Stats.from_dict(data["stats"])
        except (KeyError, TypeError):
            return None

    def put(self, fingerprint: str, stats: Stats) -> None:
        blob = json.dumps(
            {
                "version": CACHE_VERSION,
                "fingerprint": fingerprint,
                "stats": stats.state_dict(),
            }
        )
        try:
            path = self.path_for(fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(blob)
            os.replace(tmp, path)
        except OSError as error:
            # A broken cache must never kill an hour-long sweep: results
            # are already in hand, so degrade to uncached and say so once.
            if not self._write_warned:
                self._write_warned = True
                warnings.warn(
                    f"result cache at {self.root} is not writable "
                    f"({error}); continuing without caching",
                    RuntimeWarning,
                    stacklevel=2,
                )


@dataclass
class JobRecord:
    """Telemetry for one executed (or cache-served) job."""

    index: int
    benchmark: str
    config: str
    scale: int
    seed: int
    cached: bool
    elapsed: float
    worker: int
    #: Simulated cycles of the job's Stats (cache hits report the
    #: cached run's count).  Defaulted so older positional callers
    #: keep constructing records unchanged.
    cycles: int = 0


@dataclass
class RunTelemetry:
    """Aggregate outcome of one :meth:`ParallelRunner.run` call."""

    jobs: int
    workers: int
    cache_hits: int
    wall_seconds: float
    records: List[JobRecord] = field(default_factory=list)

    @property
    def simulated(self) -> int:
        return self.jobs - self.cache_hits

    def summary(self) -> str:
        sim_time = sum(r.elapsed for r in self.records if not r.cached)
        return (
            f"[parallel] {self.jobs} jobs ({self.cache_hits} cache hits, "
            f"{self.simulated} simulated) on {self.workers} worker(s); "
            f"wall {self.wall_seconds:.2f}s, sim {sim_time:.2f}s"
        )


def _mp_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (workers inherit already-memoised traces for free)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def interval_fault_spec(fault: FaultSpec, index: int) -> FaultSpec:
    """The per-interval FaultSpec of a sampled fault-injection job.

    Fault models carry live RNG streams, so each measurement interval
    gets its own model seeded from ``(base seed, interval index)`` —
    a function of the interval's identity alone, which keeps interval
    jobs order-independent across workers and makes the in-process and
    fanned-out sampled paths draw identical fault sequences.  Specs
    without a ``seed`` parameter (e.g. ``scheduled``) pass through
    unchanged; their cycle offsets are relative to each interval's run.
    """
    params = dict(fault.params)
    if "seed" in params:
        params["seed"] = derive_seed(params["seed"], "interval", index)
    return FaultSpec.make(fault.kind, **params)


def _execute_sampled(job: SimJob, program, trace, observe) -> Stats:
    """Sampled branch of :func:`_execute_job` (spec index decides shape)."""
    spec = job.sampling
    if spec.index is not None:
        fault = job.fault.build() if job.fault else None
        if observe is None:
            observe = _env_observe(fault)
        return run_interval(
            program, trace, job.config, spec, spec.index,
            fault_model=fault, warm=job.warm,
            observer=build_observability(observe),
            profile_run=job.profile,
        )
    factory = None
    if job.fault is not None:
        base = job.fault

        def factory(index: int):
            return interval_fault_spec(base, index).build()

    result = run_sampled(program, trace, job.config, spec,
                         fault_factory=factory, warm=job.warm,
                         profile_run=job.profile)
    return result.stats


def _execute_job(job: SimJob) -> Tuple[Stats, float, int]:
    """Worker entry point: simulate one job, report timing and pid."""
    from ..workloads.suite import trace_for

    start = time.perf_counter()
    program, trace = trace_for(job.benchmark, job.scale, job.seed)
    observe = None
    if job.observe or job.check_invariants or job.trace_path:
        observe = ObserveConfig(
            metrics=job.observe,
            check_invariants=job.check_invariants,
            trace_path=job.trace_path,
        )
    if job.sampling is not None:
        stats = _execute_sampled(job, program, trace, observe)
    else:
        fault = job.fault.build() if job.fault else None
        # profile is passed explicitly (never None): the runner resolved
        # the REPRO_PROFILE gate into the job before fingerprinting, so
        # a worker-side env read would desynchronise payload and key.
        stats = run_model(program, trace, job.config, fault_model=fault,
                          warm=job.warm, observe=observe,
                          profile=job.profile)
    return stats, time.perf_counter() - start, os.getpid()


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = None,
) -> List[_R]:
    """Order-preserving pool map; runs in-process when one worker suffices.

    ``fn`` must be a picklable module-level callable.  Used by the
    fault-campaign driver; figure/sweep work should go through
    :class:`ParallelRunner` to get caching and telemetry.
    """
    items = list(items)
    workers = min(jobs or (os.cpu_count() or 1), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    with _mp_context().Pool(workers) as pool:
        return pool.map(fn, items)


class ParallelRunner:
    """Execute SimJobs over a worker pool with an on-disk result cache.

    Args:
        jobs: worker-process count; ``None`` means all cores.
        use_cache: consult/populate the on-disk result cache.
        cache_dir: cache location (default ``REPRO_CACHE_DIR`` or
            ``.repro_cache``).
        observe: collect per-stage metrics for every job (applied on
            top of each job's own ``observe`` field).
        check_invariants: run every job under the runtime invariant
            checker (likewise applied on top of per-job fields).
        profile: attach the cycle-accounting profiler to every job
            (applied on top of per-job fields; the ``REPRO_PROFILE``
            environment gate is folded in here, at job level, so cache
            fingerprints always reflect whether a run was profiled).
        telemetry_path: after every :meth:`run`, write the per-job
            records as an atomic JSONL file at this path (see
            :mod:`repro.harness.telemetry`).

    After each :meth:`run`, :attr:`telemetry` holds the
    :class:`RunTelemetry` for that call.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        use_cache: bool = True,
        cache_dir: Optional[os.PathLike] = None,
        observe: bool = False,
        check_invariants: bool = False,
        profile: bool = False,
        telemetry_path: Optional[os.PathLike] = None,
    ) -> None:
        self.jobs = max(1, int(jobs)) if jobs else (os.cpu_count() or 1)
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if use_cache else None
        )
        self.observe = observe
        self.check_invariants = check_invariants
        self.profile = profile or _env_profile()
        self.telemetry_path = telemetry_path
        self.telemetry: Optional[RunTelemetry] = None

    def _apply_defaults(self, job: SimJob) -> SimJob:
        """Fold runner-level observability/profiling flags into a job."""
        if (
            (self.observe and not job.observe)
            or (self.check_invariants and not job.check_invariants)
            or (self.profile and not job.profile)
        ):
            job = dataclasses.replace(
                job,
                observe=job.observe or self.observe,
                check_invariants=job.check_invariants or self.check_invariants,
                profile=job.profile or self.profile,
            )
        return job

    def run(self, sim_jobs: Sequence[SimJob]) -> List[Stats]:
        """Run every job; results are returned in input order."""
        start = time.perf_counter()
        sim_jobs = [self._apply_defaults(job) for job in sim_jobs]
        fingerprints = [job_fingerprint(job) for job in sim_jobs]
        results: List[Optional[Stats]] = [None] * len(sim_jobs)
        records: List[Optional[JobRecord]] = [None] * len(sim_jobs)

        pending: List[int] = []
        for index, (job, fp) in enumerate(zip(sim_jobs, fingerprints)):
            # A job that writes a trace file must actually run — a cache
            # hit would return the Stats but silently skip the trace.
            servable = self.cache is not None and job.trace_path is None
            cached = self.cache.get(fp) if servable else None
            if cached is not None:
                results[index] = cached
                records[index] = JobRecord(
                    index, job.benchmark, job.config.name, job.scale,
                    job.resolved_seed(), True, 0.0, os.getpid(),
                    cached.cycles,
                )
            else:
                pending.append(index)

        workers = max(1, min(self.jobs, len(pending)))
        if pending:
            batch = [sim_jobs[i] for i in pending]
            if workers == 1:
                outputs = [_execute_job(job) for job in batch]
            else:
                with _mp_context().Pool(workers) as pool:
                    outputs = pool.map(_execute_job, batch)
            for index, (stats, elapsed, pid) in zip(pending, outputs):
                job = sim_jobs[index]
                results[index] = stats
                records[index] = JobRecord(
                    index, job.benchmark, job.config.name, job.scale,
                    job.resolved_seed(), False, elapsed, pid,
                    stats.cycles,
                )
                if self.cache:
                    self.cache.put(fingerprints[index], stats)

        self.telemetry = RunTelemetry(
            jobs=len(sim_jobs),
            workers=workers if pending else 0,
            cache_hits=len(sim_jobs) - len(pending),
            wall_seconds=time.perf_counter() - start,
            records=[record for record in records if record is not None],
        )
        if self.telemetry_path is not None:
            write_job_telemetry(self.telemetry_path, self.telemetry)
        return [stats for stats in results if stats is not None]


def resolve_runner(
    runner: Optional[ParallelRunner],
    jobs: Optional[int],
    cache: bool,
    cache_dir: Optional[os.PathLike] = None,
) -> ParallelRunner:
    """The shared ``runner=None`` convention of the experiment drivers.

    An explicit runner wins; otherwise one is built from the scalar
    knobs (``jobs=None`` meaning *sequential* here — library callers
    opt into parallelism, only the CLI defaults to all cores).
    """
    if runner is not None:
        return runner
    return ParallelRunner(jobs=jobs or 1, use_cache=cache,
                          cache_dir=cache_dir)


def expand_sampled_job(
    job: SimJob,
) -> Tuple[List[SimJob], int, Optional[List[int]]]:
    """Interval-level SimJobs for one sampled job, plus its merge inputs.

    Returns ``(interval_jobs, trace_length, profile)`` where
    ``interval_jobs[i]`` simulates measurement interval ``i`` (its spec
    carries ``index=i`` and, for injected jobs, a per-interval derived
    fault seed) and ``profile`` is the mispredict prefix-sum list for
    ``"profile"`` placement (``None`` otherwise).  The trace length is
    returned because interval counts depend on it, and it is a property
    of the generated workload, not of ``scale`` (traces stop at program
    halt or continue past ``scale`` to a clean boundary).

    Trace-path side effects are dropped from interval jobs: one JSONL
    destination cannot serve k concurrent pipelines.
    """
    from ..workloads.suite import trace_for

    spec = job.sampling
    if spec is None:
        raise ValueError("expand_sampled_job needs a job with a sampling spec")
    if spec.index is not None:
        raise ValueError("job is already a single-interval job "
                         f"(index={spec.index})")
    program, trace = trace_for(job.benchmark, job.scale, job.seed)
    profile = None
    if spec.placement == "profile":
        profile = mispredict_profile(program, trace, job.config)
    bounds = select_intervals(len(trace), spec, profile)
    interval_jobs = []
    for index in range(len(bounds)):
        fault = interval_fault_spec(job.fault, index) if job.fault else None
        interval_jobs.append(
            dataclasses.replace(
                job,
                sampling=dataclasses.replace(spec, index=index),
                fault=fault,
                trace_path=None,
            )
        )
    return interval_jobs, len(trace), profile


def run_sampled_jobs(
    sim_jobs: Sequence[SimJob],
    runner: ParallelRunner,
) -> List[SampledResult]:
    """Run sampled jobs with interval-level parallelism.

    Expands every job into its per-interval SimJobs, executes them all
    as one flat batch — so the pool load-balances across intervals of
    *all* cells, not one cell at a time — and merges each job's
    interval Stats into a :class:`~repro.uarch.sampling.SampledResult`
    (point estimate plus confidence interval).  Interval jobs are
    cached individually, so re-running with a different grouping, job
    order or worker count is a pure cache hit, and results are
    bit-identical to :func:`~repro.uarch.sampling.run_sampled` in
    process.
    """
    expanded = [expand_sampled_job(job) for job in sim_jobs]
    flat = [ij for interval_jobs, _, _ in expanded for ij in interval_jobs]
    all_stats = runner.run(flat)
    results: List[SampledResult] = []
    cursor = 0
    for job, (interval_jobs, total, profile) in zip(sim_jobs, expanded):
        chunk = all_stats[cursor:cursor + len(interval_jobs)]
        cursor += len(interval_jobs)
        spec = dataclasses.replace(job.sampling, index=None)
        results.append(
            SampledResult.from_interval_stats(spec, total, chunk, profile)
        )
    return results
