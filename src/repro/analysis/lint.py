"""Workload linter: static sanity checks over assembled programs.

The same CFG/dataflow machinery the fault-masking classifier uses also
answers "is this workload well-formed?" — the checks below catch the
assembly mistakes that otherwise surface as baffling campaign results
(a fault campaign over dead code measures nothing).

Rules and severities:

=======================  ========  ===================================
``falls-off-text``       error     a reachable path can run past the
                                   last instruction (the emulator
                                   raises ``EmulatorError`` there)
``unreachable-block``    warning   code no execution can reach
``uninit-read``          warning   a register is (possibly) read
                                   before any write; it observes the
                                   machine's zeroed initial state
                                   (``sp`` is ABI-initialised and
                                   exempt)
``indirect-no-targets``  warning   ``jr``/``jalr`` with no call sites
                                   to return to — the CFG falls back
                                   to treating every label as a target
``dead-write``           info      a register write whose value can
                                   never reach a visible sink
``store-never-loaded``   info      a store to a constant-addressed
                                   region the program never loads
                                   back (visible only in the final
                                   memory image)
=======================  ========  ===================================

``error`` findings make :func:`repro.analysis.analyze_program`'s
``clean`` verdict false and give ``repro-reese lint`` a non-zero exit;
``warning`` findings do too.  ``info`` findings are advisory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import Op, OPINFO
from ..isa.program import DATA_BASE, Program
from ..isa.registers import REG_SP, reg_name
from .cfg import CFG
from .dataflow import DataflowResult, USE_LOAD_ADDR, USE_STORE_ADDR
from .masking import CLASS_DEAD, MaskingAnalysis

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"
SEVERITIES = (SEV_ERROR, SEV_WARNING, SEV_INFO)

#: Severities that make a program not lint-clean.
GATING_SEVERITIES = frozenset({SEV_ERROR, SEV_WARNING})


@dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic."""

    rule: str
    severity: str
    index: Optional[int]    # instruction index, or None for whole-program
    message: str

    def render(self, program_name: str = "") -> str:
        where = f"@{self.index}" if self.index is not None else "-"
        prefix = f"{program_name}:" if program_name else ""
        return f"{prefix}{where}: {self.severity}: {self.rule}: {self.message}"


def _check_falls_off_text(cfg: CFG) -> List[LintFinding]:
    findings = []
    program = cfg.program
    n = len(program.code)
    for block in cfg.blocks:
        if block.id not in cfg.reachable:
            continue
        term = block.terminator
        info = OPINFO[program.code[term].op]
        if info.is_halt:
            continue
        if not block.succs and term == n - 1:
            findings.append(LintFinding(
                "falls-off-text", SEV_ERROR, term,
                "a reachable path runs past the last instruction "
                "(no halt on this path)",
            ))
    return findings


def _check_unreachable(cfg: CFG) -> List[LintFinding]:
    return [
        LintFinding(
            "unreachable-block", SEV_WARNING, block.start,
            f"instructions {block.start}..{block.end - 1} are "
            f"unreachable from the entry",
        )
        for block in cfg.unreachable_blocks()
    ]


def _check_uninit_reads(cfg: CFG, dataflow: DataflowResult) -> List[LintFinding]:
    findings = []
    seen: Set[Tuple[int, int]] = set()
    for use in dataflow.uninitialised_reads:
        if use.reg == REG_SP:
            continue  # sp is initialised by the ABI (stack base)
        if cfg.block_of.get(use.index) not in cfg.reachable:
            continue
        key = (use.index, use.reg)
        if key in seen:
            continue
        seen.add(key)
        findings.append(LintFinding(
            "uninit-read", SEV_WARNING, use.index,
            f"{reg_name(use.reg)} may be read before any write "
            f"(observes the zeroed initial register state)",
        ))
    return findings


def _check_indirect_targets(cfg: CFG) -> List[LintFinding]:
    if cfg.return_points:
        return []
    findings = []
    for index, inst in enumerate(cfg.program.code):
        if inst.op in (Op.JR, Op.JALR):
            findings.append(LintFinding(
                "indirect-no-targets", SEV_WARNING, index,
                "indirect jump with no call sites to return to; "
                "the CFG assumes every label is a possible target",
            ))
    return findings


def _check_dead_writes(
    cfg: CFG, masking: MaskingAnalysis
) -> List[LintFinding]:
    findings = []
    for index, reg in masking.sites_of(CLASS_DEAD):
        if cfg.block_of.get(index) not in cfg.reachable:
            continue
        findings.append(LintFinding(
            "dead-write", SEV_INFO, index,
            f"value written to {reg_name(reg)} can never reach a "
            f"visible sink (un-ACE fault site)",
        ))
    return findings


def _constant_bases(dataflow: DataflowResult) -> Dict[int, int]:
    """def site index -> constant it materialises, for address constants.

    Recognises ``addi rd, zero, imm`` and ``lui rd, imm`` producing a
    value inside the data segment — the idiom ``la``/``li`` assemble to.
    """
    constants: Dict[int, int] = {}
    code = dataflow.cfg.program.code
    for index, inst in enumerate(code):
        value: Optional[int] = None
        if inst.op is Op.ADDI and inst.rs1 <= 0:
            value = inst.imm
        elif inst.op is Op.LUI:
            value = (inst.imm << 16) & 0xFFFFFFFF
        if value is not None and value >= DATA_BASE:
            constants[index] = value
    return constants


def _check_store_never_loaded(dataflow: DataflowResult) -> List[LintFinding]:
    """Stores to constant addresses the program never loads back.

    Only applies when every reaching definition of the base register is
    a recognised address constant (so the address is statically known);
    anything else is skipped rather than guessed at.
    """
    constants = _constant_bases(dataflow)
    code = dataflow.cfg.program.code

    def resolved_addresses(use) -> Optional[Set[int]]:
        if not use.defs:
            return None
        addresses: Set[int] = set()
        for def_index, _reg in use.defs:
            if def_index not in constants:
                return None
            addresses.add(
                (constants[def_index] + code[use.index].imm) & 0xFFFFFFFF
            )
        return addresses

    loaded: Set[int] = set()
    store_sites: List[Tuple[int, Set[int]]] = []
    for use in dataflow.uses:
        if use.kind == USE_LOAD_ADDR:
            addresses = resolved_addresses(use)
            if addresses is None:
                # Unknown load address: could alias anything — give up
                # on the whole check rather than report false positives.
                return []
            loaded |= addresses
        elif use.kind == USE_STORE_ADDR:
            addresses = resolved_addresses(use)
            if addresses is not None:
                store_sites.append((use.index, addresses))

    findings = []
    for index, addresses in store_sites:
        if addresses & loaded:
            continue
        findings.append(LintFinding(
            "store-never-loaded", SEV_INFO, index,
            f"store to {', '.join(f'{a:#x}' for a in sorted(addresses))} "
            f"is never loaded back (visible only in the final memory "
            f"image)",
        ))
    return findings


def lint_program(
    cfg: CFG,
    dataflow: DataflowResult,
    masking: MaskingAnalysis,
) -> List[LintFinding]:
    """Run every lint rule; findings sorted by severity then position."""
    findings: List[LintFinding] = []
    findings += _check_falls_off_text(cfg)
    findings += _check_unreachable(cfg)
    findings += _check_uninit_reads(cfg, dataflow)
    findings += _check_indirect_targets(cfg)
    findings += _check_dead_writes(cfg, masking)
    findings += _check_store_never_loaded(dataflow)
    order = {sev: rank for rank, sev in enumerate(SEVERITIES)}
    findings.sort(
        key=lambda f: (order[f.severity], f.index if f.index is not None
                       else -1, f.rule)
    )
    return findings


def is_clean(findings: List[LintFinding]) -> bool:
    """True when no finding gates (errors and warnings gate)."""
    return all(f.severity not in GATING_SEVERITIES for f in findings)
