"""Property-based guarantees of the sampled simulation engine.

Two families:

* statistical — the sampled IPC estimate converges towards the full
  detailed run's IPC as coverage grows, for generated programs as well
  as suite workloads;
* determinism — the harness fan-out produces byte-identical results
  for any worker count and any grouping of interval jobs.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import emulate
from repro.harness.parallel import ParallelRunner, SimJob, run_sampled_jobs
from repro.uarch import Pipeline, SamplingSpec, run_sampled, starting_config
from repro.workloads import MixProfile, generate_program
from repro.workloads.suite import trace_for


@st.composite
def program_and_trace(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    profile = MixProfile(
        mul=draw(st.sampled_from([0.0, 0.1])),
        load=draw(st.sampled_from([0.1, 0.25])),
        store=draw(st.sampled_from([0.0, 0.1])),
        branch=draw(st.sampled_from([0.05, 0.15])),
        branch_predictability=draw(st.sampled_from([0.4, 0.9])),
    )
    program = generate_program(profile, n_dynamic=2500, seed=seed)
    trace = emulate(program, max_instructions=30_000).trace
    return program, trace


class TestSamplingAccuracy:
    @given(program_and_trace())
    @settings(max_examples=6, deadline=None)
    def test_sampled_ipc_tracks_full_ipc(self, data):
        program, trace = data
        cfg = starting_config()
        full = Pipeline(program, trace, cfg, warm_caches=True,
                        warm_predictor=True).run()
        spec = SamplingSpec(6, 150, warmup=40, cooldown=40)
        result = run_sampled(program, trace, cfg, spec)
        assert result.ipc == pytest.approx(full.ipc, rel=0.10)

    def test_error_shrinks_as_coverage_grows(self):
        # Convergence on a suite workload: the largest spec must land
        # within the acceptance band, and growing coverage must not
        # blow the estimate up.
        program, trace = trace_for("li", 4000)
        cfg = starting_config()
        full = Pipeline(program, trace, cfg, warm_caches=True,
                        warm_predictor=True).run()
        errors = {}
        for k in (3, 6, 12):
            spec = SamplingSpec(k, 150, warmup=40, cooldown=40)
            result = run_sampled(program, trace, cfg, spec)
            errors[k] = abs(result.ipc - full.ipc) / full.ipc
        assert errors[12] <= 0.02
        assert errors[12] <= errors[3] + 0.01

    def test_full_coverage_matches_windowed_reference(self):
        # Degenerate contiguous sampling measures every instruction;
        # the only difference from one detailed run is the per-window
        # pipeline restart, a small documented windowing cost.
        program, trace = trace_for("go", 3000)
        cfg = starting_config()
        full = Pipeline(program, trace, cfg, warm_caches=True,
                        warm_predictor=True).run()
        spec = SamplingSpec(len(trace) // 300 + 1, 300)
        result = run_sampled(program, trace, cfg, spec)
        assert result.detail_fraction == 1.0
        assert result.stats.committed == full.committed
        assert result.ipc == pytest.approx(full.ipc, rel=0.05)


class TestSamplingDeterminism:
    def test_results_identical_across_worker_counts(self, tmp_path):
        # The acceptance property: --jobs 1 and --jobs 4 byte-identical.
        cfg = starting_config()
        spec = SamplingSpec(5, 120, warmup=30, cooldown=30)
        jobs = [
            SimJob("li", cfg, 2500, sampling=spec),
            SimJob("li", cfg.with_reese(), 2500, sampling=spec),
        ]
        results = {}
        for workers in (1, 4):
            runner = ParallelRunner(jobs=workers,
                                    cache_dir=tmp_path / str(workers))
            results[workers] = run_sampled_jobs(jobs, runner)
        for seq, par in zip(results[1], results[4]):
            assert [s.state_dict() for s in seq.interval_stats] == \
                [s.state_dict() for s in par.interval_stats]
            assert seq.ipc == par.ipc
            assert seq.ipc_ci == par.ipc_ci

    def test_grouping_invariant(self, tmp_path):
        # One batch of two sampled jobs vs two batches of one: the
        # per-interval jobs are self-contained, so grouping is free.
        cfg = starting_config()
        spec = SamplingSpec(4, 120)
        job_a = SimJob("go", cfg, 2500, sampling=spec)
        job_b = SimJob("go", cfg.with_reese(), 2500, sampling=spec)
        runner = ParallelRunner(jobs=1, cache_dir=tmp_path)
        both = run_sampled_jobs([job_a, job_b], runner)
        solo_a = run_sampled_jobs([job_a], runner)[0]
        solo_b = run_sampled_jobs([job_b], runner)[0]
        assert [s.state_dict() for s in both[0].interval_stats] == \
            [s.state_dict() for s in solo_a.interval_stats]
        assert [s.state_dict() for s in both[1].interval_stats] == \
            [s.state_dict() for s in solo_b.interval_stats]

    def test_interval_spec_index_only_differs(self):
        cfg = starting_config()
        spec = SamplingSpec(4, 120)
        job = SimJob("li", cfg, 2500, sampling=spec)
        from repro.harness.parallel import expand_sampled_job

        interval_jobs, _, _ = expand_sampled_job(job)
        for index, interval_job in enumerate(interval_jobs):
            assert interval_job.sampling == \
                dataclasses.replace(spec, index=index)
