"""Golden-value regression tests.

The simulator is deterministic, so the exact cycle counts of the proxy
benchmarks on the Table 1 machine are pinned here. These goldens exist
to catch *accidental* behavioural changes (a modelling bug introduced
by a refactor) — if you change the timing model **deliberately**,
re-generate them:

    python - <<'PY'
    from repro.workloads import BENCHMARK_ORDER
    from repro.workloads.suite import trace_for
    from repro.uarch import Pipeline, starting_config
    kw = dict(warm_caches=True, warm_predictor=True)
    for n in BENCHMARK_ORDER:
        p, t = trace_for(n, scale=3000)
        b = Pipeline(p, t, starting_config(), **kw).run()
        r = Pipeline(p, t, starting_config().with_reese(), **kw).run()
        d = Pipeline(p, t, starting_config().with_dispatch_dup(), **kw).run()
        print(n, len(t), b.cycles, r.cycles, d.cycles)
    PY

and update EXPERIMENTS.md if the figure shapes moved.
"""

import pytest

from repro.uarch import Pipeline, starting_config
from repro.workloads.suite import trace_for

GOLDEN = {
    "gcc": dict(trace_len=6934, baseline_cycles=2290, reese_cycles=3076,
                dup_cycles=4226),
    "go": dict(trace_len=2400, baseline_cycles=1699, reese_cycles=1701,
               dup_cycles=2132),
    "ijpeg": dict(trace_len=3155, baseline_cycles=1528, reese_cycles=1603,
                  dup_cycles=3491),
    "li": dict(trace_len=8087, baseline_cycles=4395, reese_cycles=4797,
               dup_cycles=6051),
    "perl": dict(trace_len=11069, baseline_cycles=4765, reese_cycles=5201,
                 dup_cycles=7380),
    "vortex": dict(trace_len=3133, baseline_cycles=2143, reese_cycles=2145,
                   dup_cycles=2776),
}

_WARM = dict(warm_caches=True, warm_predictor=True)


@pytest.mark.parametrize("name", sorted(GOLDEN))
class TestGoldens:
    def test_trace_length(self, name):
        _, trace = trace_for(name, scale=3000)
        assert len(trace) == GOLDEN[name]["trace_len"]

    def test_baseline_cycles(self, name):
        program, trace = trace_for(name, scale=3000)
        stats = Pipeline(program, trace, starting_config(), **_WARM).run()
        assert stats.cycles == GOLDEN[name]["baseline_cycles"]

    def test_reese_cycles(self, name):
        program, trace = trace_for(name, scale=3000)
        stats = Pipeline(
            program, trace, starting_config().with_reese(), **_WARM
        ).run()
        assert stats.cycles == GOLDEN[name]["reese_cycles"]

    def test_dispatch_dup_cycles(self, name):
        program, trace = trace_for(name, scale=3000)
        stats = Pipeline(
            program, trace, starting_config().with_dispatch_dup(), **_WARM
        ).run()
        assert stats.cycles == GOLDEN[name]["dup_cycles"]


class TestGoldenOrdering:
    """Scheme ordering must hold on every benchmark: base <= REESE <= dup."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_scheme_cost_ordering(self, name):
        values = GOLDEN[name]
        assert values["baseline_cycles"] <= values["reese_cycles"]
        assert values["reese_cycles"] <= values["dup_cycles"]
