#!/usr/bin/env python3
"""Watch REESE work, instruction by instruction.

Attaches a :class:`~repro.uarch.ptrace.PipeTrace` observer to the
pipeline and prints a SimpleScalar-ptrace-style stage timeline for a
small loop:

* ``F D I X``     — the normal out-of-order P-stream life cycle;
* ``Q``           — the instruction enters the R-stream Queue;
* ``R``           — its redundant execution issues into an idle slot;
* ``C``           — the P/R comparison passed and it finally commits.

A second run injects a fault so the flush-and-refetch recovery is
visible in the timeline (watch the repeated sequence numbers after the
recovery cycle).

Run:  python examples/pipeline_visualizer.py
"""

from repro import assemble, emulate, starting_config
from repro.reese import ScheduledFaultModel
from repro.uarch import Pipeline, PipeTrace

SOURCE = """
.data
vals: .word 5, 12, 7, 3
.text
main:
    la   r1, vals
    li   r2, 4
    li   r3, 0
loop:
    lw   r4, 0(r1)
    mul  r5, r4, r4
    add  r3, r3, r5
    addi r1, r1, 4
    subi r2, r2, 1
    bnez r2, loop
    putint r3
    halt
"""


def run(label: str, fault_model=None) -> None:
    print("=" * 72)
    print(label)
    print("=" * 72)
    program = assemble(SOURCE, name="vis")
    trace = emulate(program).trace
    tracer = PipeTrace(max_records=96)
    config = starting_config().with_reese()
    stats = Pipeline(
        program, trace, config, fault_model=fault_model, observer=tracer
    ).run()
    print(tracer.render(limit=40))
    print()
    print(f"cycles={stats.cycles}  committed={stats.committed}  "
          f"R-issued={stats.issued_r}  detected={stats.errors_detected}")
    print()


if __name__ == "__main__":
    run("Clean run: P stream -> R-queue -> redundant issue -> commit")
    run(
        "Faulty run: a transient event near cycle 20 triggers detection "
        "and refetch",
        fault_model=ScheduledFaultModel([(c, 2, 5) for c in range(12, 60, 4)]),
    )
