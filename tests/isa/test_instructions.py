"""Unit tests for opcode metadata and the Instruction model."""

import pytest

from repro.isa import NO_REG, REG_RA
from repro.isa.instructions import (
    Fmt,
    FUClass,
    INST_SIZE,
    Instruction,
    MNEMONICS,
    Op,
    OPINFO,
)


class TestOpInfoTable:
    def test_every_op_has_info(self):
        for op in Op:
            assert op in OPINFO, f"{op} missing from OPINFO"

    def test_mnemonics_unique_and_complete(self):
        assert len(MNEMONICS) == len(OPINFO)
        assert MNEMONICS["add"] is Op.ADD
        assert MNEMONICS["lw"] is Op.LW

    def test_loads_classified(self):
        for op in (Op.LW, Op.LB, Op.LBU, Op.LWF):
            info = OPINFO[op]
            assert info.is_load and not info.is_store
            assert info.fu is FUClass.MEM_PORT

    def test_stores_classified(self):
        for op in (Op.SW, Op.SB, Op.SWF):
            info = OPINFO[op]
            assert info.is_store and not info.is_load
            assert not info.writes_reg

    def test_branches_classified(self):
        for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTZ, Op.BGEZ):
            info = OPINFO[op]
            assert info.is_branch and info.is_cond_branch
            assert not info.writes_reg

    def test_jumps_are_branches_not_conditional(self):
        for op in (Op.J, Op.JAL, Op.JR, Op.JALR):
            info = OPINFO[op]
            assert info.is_branch and not info.is_cond_branch

    def test_jal_writes_link_register(self):
        assert OPINFO[Op.JAL].writes_reg
        assert OPINFO[Op.JALR].writes_reg
        assert not OPINFO[Op.J].writes_reg
        assert not OPINFO[Op.JR].writes_reg

    def test_mult_div_unit_classes(self):
        assert OPINFO[Op.MUL].fu is FUClass.INT_MULT
        assert OPINFO[Op.DIV].fu is FUClass.INT_DIV
        assert OPINFO[Op.REM].fu is FUClass.INT_DIV

    def test_fp_unit_classes(self):
        assert OPINFO[Op.FADD].fu is FUClass.FP_ADD
        assert OPINFO[Op.FMUL].fu is FUClass.FP_MULT
        assert OPINFO[Op.FDIV].fu is FUClass.FP_DIV
        assert OPINFO[Op.FSQRT].fu is FUClass.FP_DIV

    def test_halt_flag(self):
        assert OPINFO[Op.HALT].is_halt
        assert OPINFO[Op.HALT].fu is FUClass.NONE

    def test_nop_needs_no_unit(self):
        assert OPINFO[Op.NOP].fu is FUClass.NONE
        assert not OPINFO[Op.NOP].writes_reg


class TestInstSize:
    def test_pisa_style_8_bytes(self):
        assert INST_SIZE == 8


class TestInstruction:
    def test_srcs_excludes_zero_register(self):
        inst = Instruction(Op.ADD, rd=3, rs1=0, rs2=5)
        assert inst.srcs() == (5,)

    def test_srcs_excludes_unused(self):
        inst = Instruction(Op.ADDI, rd=3, rs1=4, imm=7)
        assert inst.srcs() == (4,)

    def test_store_sources_include_base_and_data(self):
        inst = Instruction(Op.SW, rs1=2, rs2=9, imm=4)
        assert set(inst.srcs()) == {2, 9}

    def test_dst_none_for_store(self):
        inst = Instruction(Op.SW, rs1=2, rs2=9)
        assert inst.dst() == NO_REG

    def test_dst_none_for_write_to_zero(self):
        inst = Instruction(Op.ADD, rd=0, rs1=1, rs2=2)
        assert inst.dst() == NO_REG

    def test_dst_for_alu(self):
        inst = Instruction(Op.ADD, rd=7, rs1=1, rs2=2)
        assert inst.dst() == 7

    def test_equality_and_hash(self):
        a = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        b = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        c = Instruction(Op.SUB, rd=1, rs1=2, rs2=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_flags_properties(self):
        load = Instruction(Op.LW, rd=1, rs1=2, imm=4)
        assert load.is_load and not load.is_store and not load.is_branch
        branch = Instruction(Op.BEQ, rs1=1, rs2=2, imm=5)
        assert branch.is_branch

    @pytest.mark.parametrize(
        "inst,expected",
        [
            (Instruction(Op.ADD, rd=1, rs1=2, rs2=3), "add r1, r2, r3"),
            (Instruction(Op.ADDI, rd=1, rs1=2, imm=-5), "addi r1, r2, -5"),
            (Instruction(Op.LW, rd=4, rs1=2, imm=8), "lw r4, 8(r2)"),
            (Instruction(Op.SW, rs1=2, rs2=4, imm=8), "sw r4, 8(r2)"),
            (Instruction(Op.BEQ, rs1=1, rs2=2, imm=7), "beq r1, r2, @7"),
            (Instruction(Op.NOP), "nop"),
            (Instruction(Op.JR, rs1=REG_RA), "jr r31"),
        ],
    )
    def test_str_rendering(self, inst, expected):
        assert str(inst) == expected

    def test_every_format_renders(self):
        # Smoke: str() must not raise for any opcode with dummy operands.
        for op in Op:
            inst = Instruction(op, rd=1, rs1=2, rs2=3, imm=4)
            assert isinstance(str(inst), str)


class TestFmtCoverage:
    def test_all_formats_used(self):
        used = {OPINFO[op].fmt for op in Op}
        assert Fmt.RRR in used
        assert Fmt.MEM_LOAD in used
        assert Fmt.MEM_STORE in used
        assert Fmt.BRANCH2 in used
        assert Fmt.JUMP in used
