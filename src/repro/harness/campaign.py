"""Architectural fault-injection campaigns (extension C in DESIGN.md).

Runs a program repeatedly on the *functional emulator* while injecting
single-bit faults, and classifies each run's architectural outcome —
the classic dependability-benchmarking taxonomy:

=========  =============================================================
masked      a fault struck but the program's outputs and memory match
            the golden run (the error was logically masked);
sdc         silent data corruption: outputs or final memory differ;
crash       the corrupted value caused an architectural exception
            (misaligned access, wild jump) — a detected-by-accident
            failure;
hang        the program exceeded its instruction budget;
clean       no fault struck this run.
=========  =============================================================

This is the "machine without REESE" side of the reproduction's fault
study; the timing-level REESE campaign (detection/recovery) lives in
the pipeline itself via :class:`repro.reese.faults.FaultModel`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.emulator import EmulatorError, emulate
from ..arch.memory import MisalignedAccessError
from ..isa.program import Program
from ..reese.faults import make_emulator_injector
from .parallel import parallel_map

#: Outcome labels in severity order.
OUTCOMES = ("clean", "masked", "sdc", "crash", "hang")


@dataclass
class CampaignResult:
    """Aggregated outcome counts of an injection campaign."""

    program_name: str
    runs: int
    rate: float
    outcomes: Counter = field(default_factory=Counter)
    injections: int = 0

    @property
    def sdc_fraction(self) -> float:
        struck = self.runs - self.outcomes["clean"]
        return self.outcomes["sdc"] / struck if struck else 0.0

    def report(self) -> str:
        lines = [
            f"fault campaign on {self.program_name!r}: "
            f"{self.runs} runs, per-instruction rate {self.rate:g}, "
            f"{self.injections} total injections",
        ]
        for outcome in OUTCOMES:
            count = self.outcomes.get(outcome, 0)
            lines.append(f"  {outcome:7s} {count:5d} ({count / self.runs:.0%})")
        return "\n".join(lines)


def _classify_run(
    program: Program,
    rate: float,
    run_seed: int,
    max_instructions: int,
    golden_state: Tuple,
) -> Tuple[str, int]:
    """One injected emulation: (outcome label, injections performed)."""
    hook, log = make_emulator_injector(rate=rate, seed=run_seed)
    try:
        outcome_run = emulate(
            program, max_instructions=max_instructions,
            collect_trace=False, inject=hook,
        )
    except (MisalignedAccessError, EmulatorError):
        return "crash", len(log)
    if not log:
        return "clean", len(log)
    if not outcome_run.halted:
        return "hang", len(log)
    if (outcome_run.output, outcome_run.memory.snapshot()) == golden_state:
        return "masked", len(log)
    return "sdc", len(log)


def _campaign_chunk(payload) -> Tuple[Counter, int]:
    """Pool worker: classify a contiguous chunk of run indices.

    Each run's RNG seed is ``seed + run_index`` — a function of the
    run's identity alone — so the aggregate is independent of how the
    index space is chunked or which worker draws which chunk.
    """
    program, rate, seed, max_instructions, golden_state, indices = payload
    outcomes: Counter = Counter()
    injections = 0
    for run_index in indices:
        outcome, injected = _classify_run(
            program, rate, seed + run_index, max_instructions, golden_state
        )
        outcomes[outcome] += 1
        injections += injected
    return outcomes, injections


def run_campaign(
    program: Program,
    runs: int = 50,
    rate: float = 1e-3,
    seed: int = 0,
    max_instructions: int = 200_000,
    jobs: Optional[int] = None,
) -> CampaignResult:
    """Inject faults over ``runs`` emulations and classify outcomes.

    Args:
        program: the workload (must normally halt within the budget).
        runs: number of injected runs.
        rate: per-instruction bit-flip probability.
        seed: base RNG seed; run ``i`` uses ``seed + i``.
        max_instructions: hang-detection budget.
        jobs: worker processes (``None``/``1`` = sequential).  Outcome
            counts are identical for any value.
    """
    golden = emulate(program, max_instructions=max_instructions,
                     collect_trace=False)
    if not golden.halted:
        raise ValueError("golden run did not halt; raise max_instructions")
    golden_state = (golden.output, golden.memory.snapshot())

    result = CampaignResult(program.name, runs, rate)
    chunks = _chunk_indices(runs, jobs or 1)
    payloads = [
        (program, rate, seed, max_instructions, golden_state, chunk)
        for chunk in chunks
    ]
    for outcomes, injections in parallel_map(_campaign_chunk, payloads, jobs):
        result.outcomes.update(outcomes)
        result.injections += injections
    return result


def _chunk_indices(runs: int, jobs: int) -> List[Sequence[int]]:
    """Split ``range(runs)`` into at most ``4 * jobs`` contiguous chunks.

    Over-decomposing (4x) keeps the pool load-balanced when run times
    vary (hangs cost the full instruction budget; crashes return early).
    """
    if runs <= 0:
        return []
    target = max(1, min(runs, 4 * max(1, jobs)))
    size, remainder = divmod(runs, target)
    chunks: List[Sequence[int]] = []
    start = 0
    for index in range(target):
        stop = start + size + (1 if index < remainder else 0)
        chunks.append(range(start, stop))
        start = stop
    return chunks
