"""Extension D — REESE vs. naive dispatch duplication (related work §3).

The paper positions REESE against Franklin-style schemes that duplicate
instructions "at the dynamic scheduler".  We implement that scheme too
(`MachineConfig.with_dispatch_dup()`) and race the three machines:
both redundancy schemes detect the same faults, but duplication at
dispatch halves the effective RUU/LSQ while REESE re-executes from a
queue *past* the window — which is the paper's whole design argument.
"""

import statistics

from conftest import publish

from repro.harness import bench_scale, format_table
from repro.uarch import Pipeline, starting_config
from repro.workloads import BENCHMARK_ORDER
from repro.workloads.suite import trace_for

_WARM = dict(warm_caches=True, warm_predictor=True)


def run_comparison():
    scale = bench_scale()
    traces = {n: trace_for(n, scale=scale) for n in BENCHMARK_ORDER}
    config = starting_config()
    rows = []
    for name in BENCHMARK_ORDER:
        program, trace = traces[name]
        base = Pipeline(program, trace, config, **_WARM).run()
        reese = Pipeline(program, trace, config.with_reese(), **_WARM).run()
        dup = Pipeline(
            program, trace, config.with_dispatch_dup(), **_WARM
        ).run()
        rows.append((name, base.ipc, reese.ipc, dup.ipc))
    return rows


def test_reese_vs_dispatch_duplication(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = [["benchmark", "Baseline", "REESE", "DispatchDup",
              "REESE gap", "Dup gap"]]
    for name, base, reese, dup in rows:
        table.append([
            name, f"{base:.3f}", f"{reese:.3f}", f"{dup:.3f}",
            f"{1 - reese / base:+.1%}", f"{1 - dup / base:+.1%}",
        ])
    base_avg = statistics.mean(row[1] for row in rows)
    reese_avg = statistics.mean(row[2] for row in rows)
    dup_avg = statistics.mean(row[3] for row in rows)
    table.append([
        "AV.", f"{base_avg:.3f}", f"{reese_avg:.3f}", f"{dup_avg:.3f}",
        f"{1 - reese_avg / base_avg:+.1%}", f"{1 - dup_avg / base_avg:+.1%}",
    ])
    publish(
        "ext_scheme_comparison",
        "Extension D: REESE vs dispatch-duplication (same detection, "
        "different cost)\n" + format_table(table),
    )
    # The design argument: REESE is strictly cheaper on every benchmark.
    for name, base, reese, dup in rows:
        assert reese >= dup - 1e-9, name
    assert (1 - dup_avg / base_avg) > 2 * (1 - reese_avg / base_avg)
