"""Figure 6 — summary of results.

Average IPC per hardware variation (None, RUU/LSQ 2X, execution width
2X, memory ports 2X) for baseline / REESE / REESE+2ALU — the paper's
bar-group summary of Figures 2-5.
"""

from conftest import publish

from repro.harness import run_summary_figure, summary_report
from repro.harness.expectations import check_summary


def test_figure6_summary(benchmark):
    summary = benchmark.pedantic(run_summary_figure, rounds=1, iterations=1)
    checks = check_summary(summary)
    report = (
        "fig6: summary of results (average IPC per hardware variation)\n"
        + summary_report(summary)
        + "\n\n"
        + "\n".join(map(str, checks))
    )
    publish("fig6_summary", report)
    assert not [check for check in checks if not check.passed]
