"""The benchmark suite registry (paper Table 2).

Maps the six SPECint95 benchmark names to their proxy builders, with
the inputs the paper used recorded for the reproduction ledger.  The
:func:`load` / :func:`trace_for` helpers are what the experiment
harness and the benches call; traces are memoised per
``(benchmark, scale, seed)`` because five machine models share each
workload's trace in every figure.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..arch.emulator import emulate
from ..arch.trace import Trace
from ..isa.program import Program
from . import profiles

#: Default dynamic-instruction target per benchmark run — the single
#: source of truth shared with the harness (``repro.harness.runner``
#: re-exports it).  Historically the suite defaulted to 30 000 while
#: the runner used 20 000, so callers mixing the two silently got
#: different traces (and distinct trace-cache entries) for "the same"
#: benchmark.
DEFAULT_SCALE = 20_000


def _trace_cache_limit() -> int:
    """Trace-cache LRU bound (``REPRO_TRACE_CACHE`` overrides)."""
    raw = os.environ.get("REPRO_TRACE_CACHE", "")
    if raw:
        try:
            parsed = int(raw)
            if parsed > 0:
                return parsed
            warnings.warn(
                f"REPRO_TRACE_CACHE={raw!r} is not positive; "
                f"using default {TRACE_CACHE_LIMIT}",
                RuntimeWarning,
                stacklevel=2,
            )
        except ValueError:
            warnings.warn(
                f"ignoring malformed REPRO_TRACE_CACHE={raw!r}; "
                f"using default {TRACE_CACHE_LIMIT}",
                RuntimeWarning,
                stacklevel=2,
            )
    return TRACE_CACHE_LIMIT


#: Default LRU bound of the memoised-trace cache.  Sized for the
#: largest in-repo study (6 benchmarks x a handful of scales/seeds);
#: a long sweep over many (benchmark, scale, seed) keys evicts the
#: least-recently-used trace instead of growing without limit.
TRACE_CACHE_LIMIT = 48


@dataclass(frozen=True)
class Workload:
    """One benchmark: builder plus provenance metadata."""

    name: str
    description: str
    paper_input: str
    builder: Callable[[int, int], Program]
    default_seed: int

    def build(self, scale: int = DEFAULT_SCALE, seed: int = None) -> Program:
        """Assemble the proxy program targeting ``scale`` dynamic insts."""
        if seed is None:
            seed = self.default_seed
        return self.builder(scale, seed)


#: Table 2 of the paper: benchmark -> input.  Our proxies substitute the
#: workloads; the paper's inputs are recorded for provenance.
BENCHMARKS: Dict[str, Workload] = {
    "gcc": Workload(
        "gcc",
        "pointer-chasing node list with tag dispatch (compiler flavour)",
        "stmt-protoize.i",
        profiles.build_gcc,
        101,
    ),
    "go": Workload(
        "go",
        "board evaluation with data-dependent branches",
        "train",
        profiles.build_go,
        202,
    ),
    "ijpeg": Workload(
        "ijpeg",
        "blocked multiply-rich dot products (image kernel flavour)",
        "specmun.ppm (train)",
        profiles.build_ijpeg,
        303,
    ),
    "li": Workload(
        "li",
        "recursive binary-tree reduction (lisp interpreter flavour)",
        "train.lsp",
        profiles.build_li,
        404,
    ),
    "perl": Workload(
        "perl",
        "byte-string hashing with open-addressing table",
        "scrabbl.pl",
        profiles.build_perl,
        505,
    ),
    "vortex": Workload(
        "vortex",
        "hashed record store: 4-word inserts + validating lookups",
        "train",
        profiles.build_vortex,
        606,
    ),
}

#: Paper ordering of the benchmarks in every figure.
BENCHMARK_ORDER: List[str] = ["gcc", "go", "ijpeg", "li", "perl", "vortex"]

#: LRU-ordered memoisation of (program, trace) per (benchmark, scale,
#: seed).  Most-recently-used entries live at the end; lookups refresh
#: recency and inserts evict from the front once the bound is reached.
_trace_cache: "OrderedDict[Tuple[str, int, int], Tuple[Program, Trace]]" = (
    OrderedDict()
)


def load(name: str, scale: int = DEFAULT_SCALE, seed: int = None) -> Program:
    """Build the proxy program for benchmark ``name``.

    Raises:
        KeyError: for an unknown benchmark name.
    """
    return BENCHMARKS[name].build(scale, seed)


def trace_for(
    name: str, scale: int = DEFAULT_SCALE, seed: int = None
) -> Tuple[Program, Trace]:
    """Program and dynamic trace for a benchmark (memoised, LRU-bounded)."""
    workload = BENCHMARKS[name]
    if seed is None:
        seed = workload.default_seed
    key = (name, scale, seed)
    if key in _trace_cache:
        _trace_cache.move_to_end(key)
        return _trace_cache[key]
    program = workload.build(scale, seed)
    result = emulate(program, max_instructions=max(scale * 4, 100_000))
    if result.trace is None:  # pragma: no cover - defensive
        raise RuntimeError("emulator did not produce a trace")
    _trace_cache[key] = (program, result.trace)
    limit = _trace_cache_limit()
    while len(_trace_cache) > limit:
        _trace_cache.popitem(last=False)
    return _trace_cache[key]


def clear_trace_cache() -> None:
    """Drop memoised traces.

    Part of the worker-lifecycle story of the parallel execution layer
    (:mod:`repro.harness.parallel`): each worker process accumulates its
    own trace cache, bounded by the LRU limit above; call this between
    campaigns (or in a pool initializer) to release the memory
    deterministically.  Tests that measure memory use call it too.
    """
    _trace_cache.clear()


def mix_report(trace: Trace) -> Dict[str, float]:
    """Instruction-class mix of a trace (fractions of dynamic count)."""
    total = len(trace)
    if not total:
        return {}
    counts = {"load": 0, "store": 0, "branch": 0, "mul_div": 0, "alu": 0}
    from ..isa.instructions import FUClass

    for dyn in trace:
        if dyn.is_load:
            counts["load"] += 1
        elif dyn.is_store:
            counts["store"] += 1
        elif dyn.is_branch:
            counts["branch"] += 1
        elif dyn.fu in (FUClass.INT_MULT, FUClass.INT_DIV):
            counts["mul_div"] += 1
        else:
            counts["alu"] += 1
    return {key: value / total for key, value in counts.items()}
