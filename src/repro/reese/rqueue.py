"""The R-stream Queue — REESE's central hardware structure.

Completed P-stream instructions leave the pipeline (the RUU) into this
queue, carrying their **operands and result** (paper §4.3: "An entry in
the R-stream Queue stores much more than just the instruction.  It
keeps the values of the instruction operands and the result of the
operation").  From here they are re-issued to idle functional units as
R-stream instructions; when the R execution completes, its result is
compared against the stored P result and, on a match, the instruction
finally commits architecturally.

The queue's default capacity is 32 entries (the paper's "initial
maximum").  When it is full, completed P instructions cannot leave the
RUU, which backs pressure up into dispatch — the only way the R-stream
Queue can inhibit the P stream (paper §4.3).

With the ``early_remove`` optimisation, instructions may enter the
queue out of program order (as soon as they complete), so the queue
tracks pending *issue* in insertion order while *commitment* remains in
program order via sequence-number lookup.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from ..arch.trace import DynInst
from ..isa.instructions import FUClass

# R-entry states.
R_WAITING = 0   # in queue, not yet issued to a functional unit
R_ISSUED = 1    # executing redundantly
R_DONE = 2      # R result available (or re-execution skipped)


class REntry:
    """One R-stream Queue entry: an instruction awaiting verification."""

    __slots__ = (
        "seq",           # program-order sequence number (trace index)
        "dyn",           # the DynInst (operands, immediates, trace results)
        "p_value",       # P-stream comparable value (possibly fault-corrupted)
        "r_value",       # R-stream comparable value, set at R completion
        "state",
        "skip_r",        # True when re-execution is skipped (nop/halt/duty)
        "fu",            # FUClass the R execution uses
        "inserted_cycle",
        "p_fault_bit",   # bit flipped in the P value by a fault, or None
        "r_fault_bit",   # bit flipped in the R value by a fault, or None
        "lsq_entry",     # stores: LSQ slot held until post-comparison commit
    )

    def __init__(
        self,
        seq: int,
        dyn: DynInst,
        p_value,
        fu: FUClass,
        inserted_cycle: int,
        skip_r: bool = False,
    ) -> None:
        self.seq = seq
        self.dyn = dyn
        self.p_value = p_value
        self.r_value = None
        self.state = R_DONE if skip_r else R_WAITING
        self.skip_r = skip_r
        self.fu = fu
        self.inserted_cycle = inserted_cycle
        self.p_fault_bit: Optional[int] = None
        self.r_fault_bit: Optional[int] = None
        self.lsq_entry = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<REntry seq={self.seq} {self.dyn.op.name} state={self.state}>"


class RStreamQueue:
    """Bounded queue of :class:`REntry` with FIFO issue, in-order commit."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._by_seq: Dict[int, REntry] = {}
        self._pending_issue: Deque[REntry] = deque()
        self.total_inserted = 0

    # -- capacity ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_seq)

    @property
    def full(self) -> bool:
        return len(self._by_seq) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._by_seq)

    # -- insertion (from the RUU) ------------------------------------------

    def push(self, entry: REntry) -> None:
        """Insert a completed P instruction.

        Raises:
            OverflowError: if the queue is full (callers must check
                :attr:`full`; a full queue stalls the RUU instead).
        """
        if self.full:
            raise OverflowError("R-stream Queue is full")
        if entry.seq in self._by_seq:
            raise ValueError(f"duplicate sequence number {entry.seq}")
        self._by_seq[entry.seq] = entry
        if entry.state == R_WAITING:
            self._pending_issue.append(entry)
        self.total_inserted += 1

    # -- R-stream issue ------------------------------------------------------

    def peek_unissued(self) -> Optional[REntry]:
        """The next entry awaiting R-stream issue (insertion order)."""
        while self._pending_issue:
            entry = self._pending_issue[0]
            # Entries may have been dropped by a flush; skip stale refs.
            if self._by_seq.get(entry.seq) is entry and entry.state == R_WAITING:
                return entry
            self._pending_issue.popleft()
        return None

    def waiting_entries(self) -> List[REntry]:
        """Entries awaiting issue, in insertion order (a safe snapshot).

        R-stream instructions carry their operands, so they have no
        dependences on one another; the issue stage may skip an entry
        whose functional unit is busy and issue a younger one (final
        commitment stays in program order regardless).  Stale references
        left behind by a flush are pruned here.
        """
        alive = [
            entry
            for entry in self._pending_issue
            if self._by_seq.get(entry.seq) is entry
            and entry.state == R_WAITING
        ]
        if len(alive) != len(self._pending_issue):
            self._pending_issue = deque(alive)
        return alive

    def mark_issued(self, entry: REntry) -> None:
        """Transition an entry to ISSUED and advance the issue pointer."""
        if entry.state != R_WAITING:
            raise ValueError(f"entry {entry.seq} is not waiting")
        entry.state = R_ISSUED
        if self._pending_issue and self._pending_issue[0] is entry:
            self._pending_issue.popleft()
        else:
            try:
                self._pending_issue.remove(entry)
            except ValueError:
                pass

    # -- commitment -----------------------------------------------------------

    def committable(self, seq: int) -> Optional[REntry]:
        """The entry for program-order position ``seq`` if it is DONE."""
        entry = self._by_seq.get(seq)
        if entry is not None and entry.state == R_DONE:
            return entry
        return None

    def pop(self, seq: int) -> REntry:
        """Remove and return the entry at ``seq`` (final commit)."""
        return self._by_seq.pop(seq)

    def contains(self, seq: int) -> bool:
        return seq in self._by_seq

    def get(self, seq: int) -> Optional[REntry]:
        """The live entry at ``seq``, or ``None`` (any state)."""
        return self._by_seq.get(seq)

    # -- introspection -----------------------------------------------------

    def validate(self) -> List[str]:
        """Internal-consistency audit for the runtime invariant checker.

        Returns a list of problem descriptions (empty when healthy):
        occupancy within capacity, the seq index keyed correctly, entry
        states legal, and every *live* entry still pending issue in
        ``R_WAITING`` state (stale flush leftovers in the pending deque
        are legal — they are pruned lazily).
        """
        problems: List[str] = []
        if len(self._by_seq) > self.capacity:
            problems.append(
                f"occupancy {len(self._by_seq)} exceeds capacity "
                f"{self.capacity}"
            )
        for seq, entry in self._by_seq.items():
            if entry.seq != seq:
                problems.append(
                    f"entry keyed at {seq} carries seq {entry.seq}"
                )
            if entry.state not in (R_WAITING, R_ISSUED, R_DONE):
                problems.append(
                    f"entry {seq} has illegal state {entry.state!r}"
                )
            if entry.skip_r and entry.state != R_DONE:
                problems.append(
                    f"entry {seq} skips re-execution but is not DONE"
                )
        for entry in self._pending_issue:
            if self._by_seq.get(entry.seq) is entry and entry.state != R_WAITING:
                problems.append(
                    f"live pending-issue entry {entry.seq} is in state "
                    f"{entry.state!r}, not WAITING"
                )
        return problems

    # -- flush -------------------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (error recovery); returns how many were dropped."""
        dropped = len(self._by_seq)
        self._by_seq.clear()
        self._pending_issue.clear()
        return dropped

    def entries(self) -> Iterable[REntry]:
        """Live entries in program order (for tests and introspection)."""
        return (self._by_seq[seq] for seq in sorted(self._by_seq))
