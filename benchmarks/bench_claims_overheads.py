"""§6.1 headline claims — average overheads across configurations.

The paper: "Average IPC for REESE is only 11-16% worse than the
baseline without any spare elements.  When spare elements are added,
this difference shrinks from an average of 14.0% to an average of 8.0%
over the hardware configurations shown in the previous figures."
"""

from conftest import get_figure, publish

from repro.harness import SERIES_R2A, SERIES_REESE, overhead_summary


def test_headline_overhead_claims(benchmark):
    results = benchmark.pedantic(
        lambda: [get_figure(fid) for fid in ("fig2", "fig3", "fig4", "fig5")],
        rounds=1,
        iterations=1,
    )
    lines = [overhead_summary(results), ""]
    for result in results:
        lines.append(
            f"  {result.spec.figure_id}: REESE {result.gap(SERIES_REESE):6.1%}"
            f" -> +2 ALUs {result.gap(SERIES_R2A):6.1%}"
        )
    publish("claims_overheads", "\n".join(lines))

    reese_gaps = [r.gap(SERIES_REESE) for r in results]
    spare_gaps = [r.gap(SERIES_R2A) for r in results]
    mean_reese = sum(reese_gaps) / len(reese_gaps)
    mean_spare = sum(spare_gaps) / len(spare_gaps)
    # Band checks (direction exact, magnitude loose; see EXPERIMENTS.md).
    assert 0.05 <= mean_reese <= 0.30       # paper: 14.0%
    assert mean_spare < mean_reese          # paper: shrinks to 8.0%
    assert mean_spare <= 0.7 * mean_reese + 0.02
