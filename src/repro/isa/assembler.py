"""Two-pass text assembler for the repro mini-ISA.

The assembler turns readable assembly text into a
:class:`~repro.isa.program.Program`.  It exists so workloads, tests and
examples can be written as real programs with loops, calls and data
structures rather than as hand-built instruction lists.

Syntax overview::

    # comment            (';' also starts a comment)
    .data
    arr:    .word 5, 12, -3      # 32-bit words, laid out consecutively
    buf:    .space 64            # N zeroed bytes
    .text
    main:
        la   r1, arr             # load address of a data label
        li   r2, 3               # load immediate
    loop:
        lw   r3, 0(r1)
        addi r1, r1, 4
        subi r2, r2, 1
        bnez r2, loop
        halt

Labels are resolved in a second pass: text labels become absolute
instruction indices (stored in ``imm``), data labels become byte
addresses in the data segment.  Pseudo-instructions (``li``, ``la``,
``mov``, ``b``, ``beqz``, ``bnez``, ``ble``, ``bgt``, ``neg``, ``not``,
``subi``, ``call``, ``ret``) expand to exactly one real instruction.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import Fmt, Instruction, MNEMONICS, Op, OPINFO
from .program import DATA_BASE, Program
from .registers import NO_REG, REG_RA, REG_ZERO, parse_reg


class AsmError(Exception):
    """Raised on any assembly syntax or semantic error."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(r"^(?P<imm>[^()]*)\((?P<reg>[^()]+)\)$")


def _parse_int(token: str, line_no: int) -> int:
    token = token.strip()
    try:
        if len(token) == 3 and token[0] == token[2] == "'":
            return ord(token[1])
        return int(token, 0)
    except ValueError:
        raise AsmError(f"not an integer: {token!r}", line_no) from None


class _PendingInst:
    """An instruction awaiting label resolution in pass 2."""

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "label", "label_kind", "line_no")

    def __init__(self, op, rd, rs1, rs2, imm, label, label_kind, line_no):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.label = label          # unresolved label name or None
        self.label_kind = label_kind  # 'text' | 'data' | 'any'
        self.line_no = line_no


class Assembler:
    """Two-pass assembler; use :func:`assemble` for the common case."""

    def __init__(self) -> None:
        self._text_labels: Dict[str, int] = {}
        self._data_labels: Dict[str, int] = {}
        self._pending: List[_PendingInst] = []
        self._data: Dict[int, int] = {}
        self._data_cursor = DATA_BASE
        self._section = ".text"

    # ------------------------------------------------------------------
    # pass 1: parse lines, collect labels and pending instructions
    # ------------------------------------------------------------------

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` into a :class:`Program`."""
        for line_no, raw in enumerate(source.splitlines(), start=1):
            self._parse_line(raw, line_no)
        code = [self._resolve(p) for p in self._pending]
        labels = dict(self._text_labels)
        return Program(code, data=self._data, labels=labels, name=name)

    def _parse_line(self, raw: str, line_no: int) -> None:
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            return
        # Leading labels (possibly several on one line).
        while ":" in line:
            label, rest = line.split(":", 1)
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AsmError(f"bad label name: {label!r}", line_no)
            self._define_label(label, line_no)
            line = rest.strip()
            if not line:
                return
        if line.startswith("."):
            self._directive(line, line_no)
        else:
            self._instruction(line, line_no)

    def _define_label(self, label: str, line_no: int) -> None:
        if label in self._text_labels or label in self._data_labels:
            raise AsmError(f"duplicate label: {label!r}", line_no)
        if self._section == ".text":
            self._text_labels[label] = len(self._pending)
        else:
            self._data_labels[label] = self._data_cursor

    def _directive(self, line: str, line_no: int) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        arg = parts[1] if len(parts) > 1 else ""
        if name in (".text", ".data"):
            self._section = name
            return
        if self._section != ".data":
            raise AsmError(f"{name} only allowed in .data section", line_no)
        if name == ".word":
            for token in arg.split(","):
                value = _parse_int(token, line_no)
                self._data[self._data_cursor] = value
                self._data_cursor += 4
        elif name == ".byte":
            for token in arg.split(","):
                value = _parse_int(token, line_no) & 0xFF
                self._poke_byte(value)
            self._data_cursor = (self._data_cursor + 3) & ~3
        elif name == ".asciiz":
            text = arg.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AsmError('.asciiz expects a "double-quoted" string',
                               line_no)
            try:
                decoded = text[1:-1].encode().decode("unicode_escape")
            except UnicodeDecodeError:
                raise AsmError("bad escape in string literal", line_no) from None
            for char in decoded.encode("latin-1"):
                self._poke_byte(char)
            self._poke_byte(0)
            self._data_cursor = (self._data_cursor + 3) & ~3
        elif name == ".space":
            size = _parse_int(arg, line_no)
            if size < 0:
                raise AsmError(".space size must be non-negative", line_no)
            self._data_cursor += (size + 3) & ~3  # keep word alignment
        elif name == ".align":
            power = _parse_int(arg, line_no)
            align = 1 << power
            self._data_cursor = (self._data_cursor + align - 1) & ~(align - 1)
        else:
            raise AsmError(f"unknown directive: {name}", line_no)

    def _poke_byte(self, value: int) -> None:
        """Append one byte to the data image (little-endian packing)."""
        word_addr = self._data_cursor & ~3
        shift = (self._data_cursor & 3) * 8
        word = self._data.get(word_addr, 0)
        self._data[word_addr] = (word & ~(0xFF << shift)) | (value << shift)
        self._data_cursor += 1

    # ------------------------------------------------------------------
    # instruction parsing
    # ------------------------------------------------------------------

    def _instruction(self, line: str, line_no: int) -> None:
        if self._section != ".text":
            raise AsmError("instructions only allowed in .text section", line_no)
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
        expanded = self._expand_pseudo(mnemonic, operands, line_no)
        if expanded is not None:
            mnemonic, operands = expanded
        op = MNEMONICS.get(mnemonic)
        if op is None:
            raise AsmError(f"unknown mnemonic: {mnemonic!r}", line_no)
        self._pending.append(self._parse_operands(op, operands, line_no))

    def _expand_pseudo(
        self, mn: str, ops: List[str], line_no: int
    ) -> Optional[Tuple[str, List[str]]]:
        """Rewrite a pseudo-instruction into a real one (1:1 expansion)."""
        def need(n: int) -> None:
            if len(ops) != n:
                raise AsmError(f"{mn} expects {n} operands", line_no)

        if mn == "li":
            need(2)
            return "addi", [ops[0], "zero", ops[1]]
        if mn == "la":
            need(2)
            return "addi", [ops[0], "zero", ops[1]]
        if mn == "mov":
            need(2)
            return "or", [ops[0], ops[1], "zero"]
        if mn == "neg":
            need(2)
            return "sub", [ops[0], "zero", ops[1]]
        if mn == "not":
            need(2)
            return "xori", [ops[0], ops[1], "-1"]
        if mn == "subi":
            need(3)
            imm = ops[2]
            neg = imm[1:] if imm.startswith("-") else "-" + imm
            return "addi", [ops[0], ops[1], neg]
        if mn == "b":
            need(1)
            return "j", ops
        if mn == "call":
            need(1)
            return "jal", ops
        if mn == "ret":
            need(0)
            return "jr", ["ra"]
        if mn == "beqz":
            need(2)
            return "beq", [ops[0], "zero", ops[1]]
        if mn == "bnez":
            need(2)
            return "bne", [ops[0], "zero", ops[1]]
        if mn == "ble":
            need(3)
            return "bge", [ops[1], ops[0], ops[2]]
        if mn == "bgt":
            need(3)
            return "blt", [ops[1], ops[0], ops[2]]
        return None

    def _imm_or_label(self, token: str, line_no: int, kind: str):
        """Return (imm, label, label_kind) for an immediate-or-label token."""
        token = token.strip()
        first = token[0] if token else ""
        if first.isdigit() or first in "-+'":
            return _parse_int(token, line_no), None, kind
        if not _LABEL_RE.match(token):
            raise AsmError(f"bad immediate or label: {token!r}", line_no)
        return 0, token, kind

    def _parse_operands(self, op: Op, ops: List[str], line_no: int) -> _PendingInst:
        fmt = OPINFO[op].fmt

        def reg(token: str) -> int:
            try:
                return parse_reg(token)
            except ValueError as exc:
                raise AsmError(str(exc), line_no) from None

        def need(n: int) -> None:
            if len(ops) != n:
                raise AsmError(
                    f"{OPINFO[op].mnemonic} expects {n} operands, got {len(ops)}",
                    line_no,
                )

        rd = rs1 = rs2 = NO_REG
        imm = 0
        label = None
        label_kind = "any"

        if fmt is Fmt.NONE:
            need(0)
        elif fmt is Fmt.RRR:
            need(3)
            rd, rs1, rs2 = reg(ops[0]), reg(ops[1]), reg(ops[2])
        elif fmt is Fmt.RRI:
            need(3)
            rd, rs1 = reg(ops[0]), reg(ops[1])
            imm, label, label_kind = self._imm_or_label(ops[2], line_no, "data")
        elif fmt is Fmt.RI:
            need(2)
            rd = reg(ops[0])
            imm, label, label_kind = self._imm_or_label(ops[1], line_no, "data")
        elif fmt in (Fmt.MEM_LOAD, Fmt.MEM_STORE):
            need(2)
            value_reg = reg(ops[0])
            match = _MEM_RE.match(ops[1].replace(" ", ""))
            if not match:
                raise AsmError(f"bad memory operand: {ops[1]!r}", line_no)
            rs1 = reg(match.group("reg"))
            imm_text = match.group("imm") or "0"
            imm = _parse_int(imm_text, line_no)
            if fmt is Fmt.MEM_LOAD:
                rd = value_reg
            else:
                rs2 = value_reg
        elif fmt is Fmt.BRANCH2:
            need(3)
            rs1, rs2 = reg(ops[0]), reg(ops[1])
            imm, label, label_kind = self._imm_or_label(ops[2], line_no, "text")
        elif fmt is Fmt.BRANCH1:
            need(2)
            rs1 = reg(ops[0])
            imm, label, label_kind = self._imm_or_label(ops[1], line_no, "text")
        elif fmt is Fmt.JUMP:
            need(1)
            imm, label, label_kind = self._imm_or_label(ops[0], line_no, "text")
            if op is Op.JAL:
                rd = REG_RA
        elif fmt is Fmt.JUMP_REG:
            need(1)
            rs1 = reg(ops[0])
        elif fmt is Fmt.RR:
            need(2)
            rd, rs1 = reg(ops[0]), reg(ops[1])
        elif fmt is Fmt.R:
            need(1)
            rs1 = reg(ops[0])
        else:  # pragma: no cover - all formats handled
            raise AssertionError(f"unhandled format {fmt}")

        return _PendingInst(op, rd, rs1, rs2, imm, label, label_kind, line_no)

    # ------------------------------------------------------------------
    # pass 2: label resolution
    # ------------------------------------------------------------------

    def _resolve(self, pending: _PendingInst) -> Instruction:
        imm = pending.imm
        if pending.label is not None:
            label = pending.label
            if pending.label_kind == "text":
                if label not in self._text_labels:
                    raise AsmError(f"undefined code label: {label!r}", pending.line_no)
                imm = self._text_labels[label]
            elif pending.label_kind == "data":
                if label in self._data_labels:
                    imm = self._data_labels[label]
                elif label in self._text_labels:
                    # A code label used as a value (e.g. a function
                    # pointer loaded with ``la``) yields its byte
                    # address, the form ``jr``/``jalr`` consume.
                    from .instructions import INST_SIZE
                    from .program import TEXT_BASE
                    imm = TEXT_BASE + self._text_labels[label] * INST_SIZE
                else:
                    raise AsmError(f"undefined label: {label!r}", pending.line_no)
            else:  # pragma: no cover - 'any' currently unused
                raise AssertionError
        return Instruction(pending.op, pending.rd, pending.rs1, pending.rs2, imm)


def assemble(source: str, name: str = "program") -> Program:
    """Assemble mini-ISA assembly text into a :class:`Program`."""
    return Assembler().assemble(source, name=name)
