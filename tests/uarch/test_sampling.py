"""Unit tests for the sampled + fast-forward simulation engine."""

import pytest

from repro.uarch import (
    Pipeline,
    SampledResult,
    SamplingSpec,
    Stats,
    WarmState,
    build_warm_state,
    mispredict_profile,
    run_interval,
    run_sampled,
    select_intervals,
    starting_config,
)
from repro.workloads.suite import trace_for

SCALE = 3000


@pytest.fixture(scope="module")
def workload():
    return trace_for("li", SCALE)


@pytest.fixture(scope="module")
def cfg():
    return starting_config()


class TestSamplingSpec:
    def test_defaults(self):
        spec = SamplingSpec(10)
        assert spec.interval_length == 300
        assert spec.placement == "profile"
        assert spec.index is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"intervals": 0},
            {"intervals": 4, "interval_length": 0},
            {"intervals": 4, "warmup": -1},
            {"intervals": 4, "cooldown": -1},
            {"intervals": 4, "placement": "stratified"},
            {"intervals": 4, "index": 4},
            {"intervals": 4, "index": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SamplingSpec(**kwargs)

    def test_index_in_range_ok(self):
        assert SamplingSpec(4, index=3).index == 3


class TestSelectIntervals:
    def test_profile_requires_prefix_sums(self):
        with pytest.raises(ValueError, match="profile"):
            select_intervals(10_000, SamplingSpec(4))

    def test_empty_trace(self):
        assert select_intervals(0, SamplingSpec(4, placement="end")) == []

    @pytest.mark.parametrize("placement", ["profile", "random", "end"])
    def test_degenerate_contiguous_partition(self, placement):
        # Requested coverage >= trace: every placement falls back to
        # the contiguous partition (full detailed simulation).
        spec = SamplingSpec(4, 300, placement=placement)
        bounds = select_intervals(1000, spec)
        assert bounds == [(0, 0, 300), (300, 300, 600), (600, 600, 900),
                          (900, 900, 1000)]

    @pytest.mark.parametrize("placement", ["random", "end"])
    def test_windows_ordered_and_disjoint(self, placement):
        spec = SamplingSpec(7, 100, warmup=30, placement=placement)
        bounds = select_intervals(10_000, spec)
        assert len(bounds) == 7
        previous_end = 0
        for warm_start, measure_start, end in bounds:
            assert previous_end <= warm_start <= measure_start < end
            assert end - measure_start <= spec.interval_length
            assert measure_start - warm_start <= spec.warmup
            previous_end = end

    def test_profile_placement_deterministic(self, workload, cfg):
        program, trace = workload
        profile = mispredict_profile(program, trace, cfg)
        spec = SamplingSpec(5, 150, warmup=40)
        first = select_intervals(len(trace), spec, profile)
        second = select_intervals(len(trace), spec, profile)
        assert first == second
        assert len(first) == 5
        previous_end = 0
        for warm_start, measure_start, end in first:
            assert previous_end <= warm_start <= measure_start < end
            previous_end = end

    def test_profile_spans_density_quantiles(self, workload, cfg):
        # The chosen windows must not all come from one density
        # extreme: with k windows over distinct densities, the picked
        # set spans more than one density value whenever the grid does.
        program, trace = workload
        profile = mispredict_profile(program, trace, cfg)
        spec = SamplingSpec(5, 150)
        bounds = select_intervals(len(trace), spec, profile)
        densities = {profile[end] - profile[m0] for _, m0, end in bounds}
        assert len(densities) > 1

    def test_random_placement_seeded(self):
        spec_a = SamplingSpec(5, 100, placement="random", seed=7)
        spec_b = SamplingSpec(5, 100, placement="random", seed=8)
        same = select_intervals(50_000, spec_a)
        assert same == select_intervals(50_000, spec_a)
        assert same != select_intervals(50_000, spec_b)


class TestMispredictProfile:
    def test_matches_detailed_pipeline_exactly(self, workload, cfg):
        # Mispredict events are a pure trace property (predictors train
        # at fetch with trace ground truth), so the functional replay
        # must reproduce the detailed simulator's count exactly.
        program, trace = workload
        profile = mispredict_profile(program, trace, cfg)
        assert len(profile) == len(trace) + 1
        stats = Pipeline(program, trace, cfg).run()
        assert profile[-1] == stats.mispredictions

    def test_prefix_sums_monotonic(self, workload, cfg):
        program, trace = workload
        profile = mispredict_profile(program, trace, cfg)
        assert profile[0] == 0
        assert all(a <= b for a, b in zip(profile, profile[1:]))


class TestWarmState:
    def test_snapshot_isolated_from_sweep(self, workload, cfg):
        program, trace = workload
        state = WarmState(program, cfg)
        state.advance(trace, 0, 500)
        snap = state.snapshot()
        state.advance(trace, 500, 1500)
        # The snapshot's structures are separate objects with their own
        # state; the sweep advancing must not have touched them.
        assert snap.predictor is not state.predictor
        assert snap.mem is not state.mem
        assert snap.btb is not state.btb
        other = WarmState(program, cfg)
        other.advance(trace, 0, 500)
        reference = other.snapshot()
        assert snap.btb._tags == reference.btb._tags
        assert snap.ras._stack == reference.ras._stack

    def test_snapshot_zeroes_statistics(self, workload, cfg):
        program, trace = workload
        state = WarmState(program, cfg)
        state.warm_full(trace)
        state.advance(trace, 0, 1000)
        snap = state.snapshot()
        assert snap.mem.l1d.accesses == 0
        assert snap.predictor.lookups == 0
        assert snap.btb.hits == 0 and snap.btb.misses == 0
        assert snap.ras.pushes == 0 and snap.ras.pops == 0

    def test_incremental_equals_from_scratch(self, workload, cfg):
        # The warm fold is associative over trace prefixes: advancing
        # incrementally must land in the same state as one shot.
        program, trace = workload
        incremental = WarmState(program, cfg)
        incremental.warm_full(trace)
        incremental.advance(trace, 0, 700)
        incremental.advance(trace, 700, 1400)
        reference = build_warm_state(program, cfg, trace, 1400)
        snap = incremental.snapshot()
        assert snap.btb._tags == reference.btb._tags
        assert snap.btb._targets == reference.btb._targets
        assert snap.ras._stack == reference.ras._stack
        assert snap.mem.l1d._tags == reference.mem.l1d._tags


class TestRunSampled:
    def test_intervals_match_fanout_byte_identical(self, workload, cfg):
        program, trace = workload
        spec = SamplingSpec(4, 150, warmup=40, cooldown=40)
        result = run_sampled(program, trace, cfg, spec)
        for index in range(4):
            solo = run_interval(program, trace, cfg, spec, index)
            assert solo.state_dict() == \
                result.interval_stats[index].state_dict()

    def test_from_interval_stats_round_trip(self, workload, cfg):
        program, trace = workload
        spec = SamplingSpec(4, 150)
        profile = mispredict_profile(program, trace, cfg)
        result = run_sampled(program, trace, cfg, spec)
        rebuilt = SampledResult.from_interval_stats(
            spec, len(trace), result.interval_stats, profile
        )
        assert rebuilt.ipc == result.ipc
        assert rebuilt.ipc_ci == result.ipc_ci
        assert rebuilt.intervals == result.intervals

    def test_from_interval_stats_length_mismatch(self, workload, cfg):
        program, trace = workload
        spec = SamplingSpec(4, 150)
        profile = mispredict_profile(program, trace, cfg)
        with pytest.raises(ValueError, match="interval Stats"):
            SampledResult.from_interval_stats(
                spec, len(trace), [Stats()], profile
            )

    def test_reasonable_accuracy_vs_full_run(self, workload, cfg):
        program, trace = workload
        full = Pipeline(program, trace, cfg, warm_caches=True,
                        warm_predictor=True).run()
        spec = SamplingSpec(6, 200, warmup=50, cooldown=50)
        result = run_sampled(program, trace, cfg, spec)
        assert result.ipc == pytest.approx(full.ipc, rel=0.05)

    def test_degenerate_covers_everything(self, workload, cfg):
        program, trace = workload
        spec = SamplingSpec(len(trace) // 300 + 1, 300)
        result = run_sampled(program, trace, cfg, spec)
        assert result.measured_instructions == len(trace)
        assert result.detail_fraction == 1.0
        # Full coverage: the ratio estimate is used (regression would
        # have nothing to extrapolate).
        assert "ratio" in result.summary()

    def test_observable_metadata(self, workload, cfg):
        program, trace = workload
        spec = SamplingSpec(4, 150)
        result = run_sampled(program, trace, cfg, spec)
        assert result.total_instructions == len(trace)
        assert 0.0 < result.detail_fraction < 1.0
        assert result.simulated_fraction >= result.detail_fraction
        assert len(result.interval_ipcs) == 4
        assert result.ipc_ci >= 0.0
        assert "sampled 4x150" in result.summary()


class TestEstimators:
    def _stats(self, committed, cycles):
        stats = Stats()
        stats.committed = committed
        stats.cycles = cycles
        stats.halted = True
        return stats

    def test_regression_recovers_exact_linear_model(self):
        # cycles = 2*insts + 10*mispredicts, constructed exactly.
        spec = SamplingSpec(3, 100)
        intervals = [(0, 0, 100), (400, 400, 500), (800, 800, 900)]
        mispredicts = [0, 10, 30]
        interval_stats = [
            self._stats(100, 2 * 100 + 10 * m) for m in mispredicts
        ]
        result = SampledResult(
            spec, 1000, intervals, interval_stats,
            interval_mispredicts=mispredicts, total_mispredicts=50,
        )
        expected_cycles = 2 * 1000 + 10 * 50
        assert result.estimated_cycles == pytest.approx(expected_cycles)
        assert result.ipc == pytest.approx(1000 / expected_cycles)
        # A perfect fit has zero residual, hence a zero CI.
        assert result.ipc_ci == pytest.approx(0.0, abs=1e-9)

    def test_ratio_fallback_without_regressors(self):
        spec = SamplingSpec(2, 100, placement="end")
        intervals = [(0, 0, 100), (400, 400, 500)]
        interval_stats = [self._stats(100, 50), self._stats(100, 150)]
        result = SampledResult(spec, 1000, intervals, interval_stats)
        assert result.estimated_cycles == pytest.approx(
            200 * 1000 / 200
        )
        assert result.ipc == pytest.approx(result.stats.ipc)

    def test_ratio_fallback_on_degenerate_mispredict_spread(self):
        # Identical mispredict counts cannot identify b: fall back.
        spec = SamplingSpec(2, 100)
        intervals = [(0, 0, 100), (400, 400, 500)]
        interval_stats = [self._stats(100, 120), self._stats(100, 130)]
        result = SampledResult(
            spec, 1000, intervals, interval_stats,
            interval_mispredicts=[5, 5], total_mispredicts=50,
        )
        assert result.ipc == pytest.approx(result.stats.ipc)

    def test_single_interval_has_zero_ci(self):
        spec = SamplingSpec(1, 100, placement="end")
        result = SampledResult(
            spec, 1000, [(0, 0, 100)], [self._stats(100, 80)]
        )
        assert result.ipc_ci == 0.0
