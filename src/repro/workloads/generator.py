"""Profile-driven random program generator.

Generates structurally valid, always-terminating programs with a
controlled instruction mix — used by property-based tests (any
generated program must emulate and simulate identically under baseline
and REESE) and by design-space sweeps that need workloads off the
six-benchmark grid.

A generated program is a single counted loop whose body is ``block_size``
randomly drawn instructions:

* computational ops pick sources among recently written registers
  (geometric dependence distance, so ILP is tunable);
* loads/stores address a private working-set region with random offsets;
* ``div`` guards its divisor with ``ori 1`` so semantics never trap;
* branches are short *forward* skips conditioned either on the loop
  counter (predictable) or on data values (hard to predict), per
  ``branch_predictability``.

The register file is partitioned: r1 = loop counter, r2 = working-set
base, r3 = scratch, r8..r25 = the rotating data registers.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List

from ..isa.assembler import assemble
from ..isa.program import Program

_DATA_REGS = list(range(8, 26))


@dataclass(frozen=True)
class MixProfile:
    """Target dynamic instruction mix for generated programs.

    Fractions need not sum to 1; the remainder becomes plain ALU ops.
    """

    name: str = "default"
    mul: float = 0.04
    div: float = 0.005
    load: float = 0.22
    store: float = 0.10
    branch: float = 0.12
    #: fraction of branches conditioned on predictable state
    branch_predictability: float = 0.7
    #: mean dependence distance (higher = more ILP)
    dep_distance: float = 4.0
    working_set_words: int = 1024
    block_size: int = 40

    def __post_init__(self) -> None:
        total = self.mul + self.div + self.load + self.store + self.branch
        if total > 0.95:
            raise ValueError("mix fractions leave no room for ALU ops")
        for frac in (self.mul, self.div, self.load, self.store, self.branch):
            if frac < 0:
                raise ValueError("mix fractions must be non-negative")
        if not 0 <= self.branch_predictability <= 1:
            raise ValueError("branch_predictability must be in [0, 1]")
        if self.working_set_words <= 0 or self.working_set_words & 3:
            raise ValueError("working_set_words must be positive, multiple of 4")
        if self.block_size < 8:
            raise ValueError("block_size must be >= 8")


#: A few ready-made profiles for sweeps.
PROFILES: Dict[str, MixProfile] = {
    "default": MixProfile(),
    "ilp_rich": MixProfile(name="ilp_rich", dep_distance=8.0, branch=0.08,
                           branch_predictability=0.95),
    "branchy": MixProfile(name="branchy", branch=0.25,
                          branch_predictability=0.4),
    "memory_bound": MixProfile(name="memory_bound", load=0.35, store=0.18,
                               working_set_words=65536),
    "mul_heavy": MixProfile(name="mul_heavy", mul=0.15, div=0.02),
}


class ProgramGenerator:
    """Deterministic random program generator for one profile."""

    def __init__(self, profile: MixProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    def generate(self, n_dynamic: int = 10_000) -> Program:
        """Build a program retiring roughly ``n_dynamic`` instructions."""
        profile = self.profile
        # zlib.crc32 is stable across processes (hash() is randomised).
        rng = random.Random(
            (self.seed << 16) ^ zlib.crc32(profile.name.encode())
        )
        block = self._build_block(rng)
        # +2 for the loop counter update and back edge.
        per_iter = len(block) + 2
        iters = max(1, n_dynamic // per_iter)

        init = [f"    li r{reg}, {rng.randrange(1, 1000)}" for reg in _DATA_REGS]
        lines = [
            ".data",
            f"ws: .space {4 * profile.working_set_words}",
            ".text",
            "main:",
            f"    li   r1, {iters}",
            "    la   r2, ws",
            *init,
            "loop:",
            *block,
            "    subi r1, r1, 1",
            "    bnez r1, loop",
            f"    add  r3, r{_DATA_REGS[0]}, r{_DATA_REGS[1]}",
            "    putint r3",
            "    halt",
        ]
        name = f"gen_{profile.name}_{self.seed}"
        return assemble("\n".join(lines), name=name)

    # ------------------------------------------------------------------

    def _pick_src(self, rng: random.Random, cursor: int) -> int:
        """A source register at a geometric distance behind the cursor."""
        distance = 1 + min(
            int(rng.expovariate(1.0 / self.profile.dep_distance)),
            len(_DATA_REGS) - 1,
        )
        return _DATA_REGS[(cursor - distance) % len(_DATA_REGS)]

    def _build_block(self, rng: random.Random) -> List[str]:
        profile = self.profile
        lines: List[str] = []
        cursor = 0
        ws_mask = (profile.working_set_words - 1) * 4
        pending = profile.block_size
        skip_id = 0
        while pending > 0:
            draw = rng.random()
            dst = _DATA_REGS[cursor % len(_DATA_REGS)]
            src_a = self._pick_src(rng, cursor)
            src_b = self._pick_src(rng, cursor)
            if draw < profile.mul:
                lines.append(f"    mul  r{dst}, r{src_a}, r{src_b}")
            elif draw < profile.mul + profile.div:
                lines.append(f"    ori  r3, r{src_b}, 1")
                lines.append(f"    div  r{dst}, r{src_a}, r3")
                pending -= 1
            elif draw < profile.mul + profile.div + profile.load:
                offset = rng.randrange(0, ws_mask + 1, 4)
                lines.append(f"    lw   r{dst}, {offset}(r2)")
            elif draw < (
                profile.mul + profile.div + profile.load + profile.store
            ):
                offset = rng.randrange(0, ws_mask + 1, 4)
                lines.append(f"    sw   r{src_a}, {offset}(r2)")
                cursor -= 1  # stores write no register
            elif (
                draw
                < profile.mul + profile.div + profile.load + profile.store
                + profile.branch
            ):
                skip_id += 1
                label = f"skip_{self.seed}_{skip_id}"
                if rng.random() < profile.branch_predictability:
                    # Condition on the loop counter: learnable pattern.
                    lines.append(f"    andi r3, r1, {rng.choice([1, 3, 7])}")
                    lines.append(f"    bnez r3, {label}")
                else:
                    # Condition on data: effectively random direction.
                    lines.append(f"    andi r3, r{src_a}, 1")
                    lines.append(f"    bnez r3, {label}")
                lines.append(f"    addi r{dst}, r{dst}, {rng.randrange(1, 64)}")
                lines.append(f"{label}:")
                pending -= 2
            else:
                op = rng.choice(["add", "sub", "xor", "and", "or"])
                lines.append(f"    {op}  r{dst}, r{src_a}, r{src_b}")
            cursor += 1
            pending -= 1
        return lines


def generate_program(
    profile: MixProfile, n_dynamic: int = 10_000, seed: int = 0
) -> Program:
    """Convenience wrapper around :class:`ProgramGenerator`."""
    return ProgramGenerator(profile, seed=seed).generate(n_dynamic)
