"""Self-tests for tools/determinism_lint.py (the CI determinism gate)."""

import importlib.util
import pathlib
import sys
import textwrap

import pytest

_TOOL = (
    pathlib.Path(__file__).resolve().parents[2]
    / "tools" / "determinism_lint.py"
)
_spec = importlib.util.spec_from_file_location("determinism_lint", _TOOL)
determinism_lint = importlib.util.module_from_spec(_spec)
sys.modules["determinism_lint"] = determinism_lint
_spec.loader.exec_module(determinism_lint)

lint_source = determinism_lint.lint_source
lint_paths = determinism_lint.lint_paths


def findings_for(source):
    return lint_source(textwrap.dedent(source), "mod.py")


def rules_of(findings):
    return [f.rule for f in findings]


class TestUnseededRandom:
    def test_flags_module_level_draws(self):
        findings = findings_for("""
            import random
            x = random.random()
            y = random.randrange(10)
        """)
        assert rules_of(findings) == ["unseeded-random", "unseeded-random"]

    def test_allows_seeded_instances(self):
        findings = findings_for("""
            import random
            rng = random.Random(42)
            x = rng.random()
            y = rng.randrange(10)
        """)
        assert findings == []

    def test_flags_from_imports(self):
        findings = findings_for("""
            from random import randrange
            x = randrange(10)
        """)
        assert rules_of(findings) == ["unseeded-random"]

    def test_from_import_of_random_class_is_fine(self):
        findings = findings_for("""
            from random import Random
            rng = Random(7)
            x = rng.random()
        """)
        assert findings == []


class TestWallClock:
    def test_flags_time_time(self):
        findings = findings_for("""
            import time
            t = time.time()
        """)
        assert rules_of(findings) == ["wall-clock"]

    def test_flags_datetime_now_both_spellings(self):
        findings = findings_for("""
            import datetime
            from datetime import datetime as dt
            a = datetime.datetime.now()
            b = dt.now()
        """)
        assert rules_of(findings) == ["wall-clock", "wall-clock"]

    def test_allows_telemetry_clocks(self):
        findings = findings_for("""
            import time
            a = time.perf_counter()
            b = time.process_time()
            c = time.monotonic()
        """)
        assert findings == []

    def test_flags_from_import_time(self):
        findings = findings_for("""
            from time import time
            t = time()
        """)
        assert rules_of(findings) == ["wall-clock"]


class TestSetIteration:
    def test_flags_for_over_set_call(self):
        findings = findings_for("""
            for x in set([3, 1, 2]):
                print(x)
        """)
        assert rules_of(findings) == ["set-iteration"]

    def test_flags_for_over_set_literal(self):
        findings = findings_for("""
            for x in {3, 1, 2}:
                print(x)
        """)
        assert rules_of(findings) == ["set-iteration"]

    def test_flags_comprehension_over_set_comp(self):
        findings = findings_for("""
            out = [x for x in {y for y in range(3)}]
        """)
        assert rules_of(findings) == ["set-iteration"]

    def test_allows_sorted_sets(self):
        findings = findings_for("""
            for x in sorted(set([3, 1, 2])):
                print(x)
        """)
        assert findings == []

    def test_allows_set_membership(self):
        findings = findings_for("""
            table = set([1, 2])
            hits = sum(1 for key in [1, 2, 3] if key in set(table))
        """)
        assert findings == []


class TestRunner:
    def test_findings_carry_position(self):
        finding = findings_for("""
            import time
            t = time.time()
        """)[0]
        assert finding.path == "mod.py"
        assert finding.line == 3
        assert "wall clock" in finding.render()

    def test_lint_paths_over_files(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        good = tmp_path / "good.py"
        good.write_text("import random\nrng = random.Random(1)\n")
        findings = lint_paths([tmp_path])
        assert [f.path for f in findings] == [str(bad)]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 3\n")
        assert determinism_lint.main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        assert determinism_lint.main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out

    def test_simulator_sources_are_clean(self):
        src = _TOOL.parents[1] / "src" / "repro"
        assert lint_paths([src]) == []
