"""Setuptools shim for environments without the `wheel` package.

Allows `pip install -e . --no-build-isolation` (legacy editable path) when
PEP 517 editable builds are unavailable; configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
