"""Pure instruction semantics for the repro mini-ISA.

All dynamic behaviour is expressed as side-effect-free functions over
operand values.  This module is the *single* definition of what each
operation computes; it is shared by

* the in-order functional emulator (:mod:`repro.arch.emulator`), which
  produces the P-stream results, and
* REESE's R-stream re-execution (:mod:`repro.reese`), which recomputes
  results from operands captured in the R-stream Queue.

Sharing one implementation guarantees that, absent an injected fault,
the P-stream and R-stream computations of an instruction are identical —
the property the REESE comparator relies on.

Integer arithmetic wraps to 32-bit two's complement.  Division by zero
is architecturally defined to produce 0 (quotient) / the dividend
(remainder), so programs never trap.  Floating-point values are Python
floats (IEEE-754 doubles); fault injection manipulates their bit
patterns via :func:`float_to_bits` / :func:`bits_to_float`.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, Union

from .instructions import Op

Value = Union[int, float]

_MASK32 = 0xFFFFFFFF


def to_u32(value: int) -> int:
    """Truncate an int to its unsigned 32-bit representation."""
    return value & _MASK32


def to_i32(value: int) -> int:
    """Truncate an int to signed 32-bit two's complement."""
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def float_to_bits(value: float) -> int:
    """IEEE-754 double bit pattern of ``value`` as an unsigned 64-bit int."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    return struct.unpack("<d", struct.pack("<Q", bits & (2**64 - 1)))[0]


def _shamt(value: int) -> int:
    return value & 31


def _div(a: int, b: int) -> int:
    if b == 0:
        return 0
    # C-style truncating division.
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem(a: int, b: int) -> int:
    if b == 0:
        return to_i32(a)
    return to_i32(a - _div(a, b) * b)


# ---------------------------------------------------------------------------
# ALU / FP computation.  Each entry maps (a, b, imm) -> result, where a and b
# are the values of rs1 and rs2 (0 / 0.0 when the slot is unused).
# ---------------------------------------------------------------------------

_COMPUTE: Dict[Op, Callable[[Value, Value, int], Value]] = {
    Op.ADD: lambda a, b, i: to_i32(a + b),
    Op.SUB: lambda a, b, i: to_i32(a - b),
    Op.AND: lambda a, b, i: to_i32(to_u32(a) & to_u32(b)),
    Op.OR: lambda a, b, i: to_i32(to_u32(a) | to_u32(b)),
    Op.XOR: lambda a, b, i: to_i32(to_u32(a) ^ to_u32(b)),
    Op.SLL: lambda a, b, i: to_i32(to_u32(a) << _shamt(b)),
    Op.SRL: lambda a, b, i: to_i32(to_u32(a) >> _shamt(b)),
    Op.SRA: lambda a, b, i: to_i32(to_i32(a) >> _shamt(b)),
    Op.SLT: lambda a, b, i: int(to_i32(a) < to_i32(b)),
    Op.SLTU: lambda a, b, i: int(to_u32(a) < to_u32(b)),
    Op.ADDI: lambda a, b, i: to_i32(a + i),
    Op.ANDI: lambda a, b, i: to_i32(to_u32(a) & to_u32(i)),
    Op.ORI: lambda a, b, i: to_i32(to_u32(a) | to_u32(i)),
    Op.XORI: lambda a, b, i: to_i32(to_u32(a) ^ to_u32(i)),
    Op.SLLI: lambda a, b, i: to_i32(to_u32(a) << _shamt(i)),
    Op.SRLI: lambda a, b, i: to_i32(to_u32(a) >> _shamt(i)),
    Op.SRAI: lambda a, b, i: to_i32(to_i32(a) >> _shamt(i)),
    Op.SLTI: lambda a, b, i: int(to_i32(a) < to_i32(i)),
    Op.LUI: lambda a, b, i: to_i32(to_u32(i) << 16),
    Op.MUL: lambda a, b, i: to_i32(to_i32(a) * to_i32(b)),
    Op.MULHU: lambda a, b, i: to_i32((to_u32(a) * to_u32(b)) >> 32),
    Op.DIV: lambda a, b, i: to_i32(_div(to_i32(a), to_i32(b))),
    Op.REM: lambda a, b, i: _rem(to_i32(a), to_i32(b)),
    Op.FADD: lambda a, b, i: float(a) + float(b),
    Op.FSUB: lambda a, b, i: float(a) - float(b),
    Op.FMUL: lambda a, b, i: float(a) * float(b),
    Op.FDIV: lambda a, b, i: float(a) / float(b) if b else math.inf,
    Op.FSQRT: lambda a, b, i: math.sqrt(abs(float(a))),
    Op.FNEG: lambda a, b, i: -float(a),
    Op.FCMPLT: lambda a, b, i: int(float(a) < float(b)),
    Op.CVTIF: lambda a, b, i: float(to_i32(a)),
    Op.CVTFI: lambda a, b, i: to_i32(int(float(a))),
}


def compute(op: Op, a: Value = 0, b: Value = 0, imm: int = 0) -> Value:
    """Evaluate a computational (non-memory, non-control) operation.

    Args:
        op: the opcode.
        a: value of ``rs1`` (0 if unused).
        b: value of ``rs2`` (0 if unused).
        imm: the instruction's immediate.

    Returns:
        The architectural result (int for integer ops, float for FP ops).

    Raises:
        KeyError: if ``op`` is not a computational operation.
    """
    return _COMPUTE[op](a, b, imm)


def has_compute(op: Op) -> bool:
    """True if :func:`compute` can evaluate ``op``."""
    return op in _COMPUTE


# ---------------------------------------------------------------------------
# Control flow.
# ---------------------------------------------------------------------------

_BRANCH_TAKEN: Dict[Op, Callable[[int, int], bool]] = {
    Op.BEQ: lambda a, b: to_i32(a) == to_i32(b),
    Op.BNE: lambda a, b: to_i32(a) != to_i32(b),
    Op.BLT: lambda a, b: to_i32(a) < to_i32(b),
    Op.BGE: lambda a, b: to_i32(a) >= to_i32(b),
    Op.BLTZ: lambda a, b: to_i32(a) < 0,
    Op.BGEZ: lambda a, b: to_i32(a) >= 0,
}


def branch_taken(op: Op, a: int = 0, b: int = 0) -> bool:
    """Resolve a conditional branch's direction from its operand values.

    Unconditional control transfers (``j``/``jal``/``jr``/``jalr``) are
    always taken.

    Raises:
        KeyError: if ``op`` is not a control-flow operation.
    """
    if op in (Op.J, Op.JAL, Op.JR, Op.JALR):
        return True
    return _BRANCH_TAKEN[op](a, b)


def effective_address(base: int, imm: int) -> int:
    """Compute a load/store effective address (wraps at 32 bits)."""
    return to_u32(base + imm)
