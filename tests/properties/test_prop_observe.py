"""Property-based tests of the observability layer.

For any generated program and machine variant:

* the runtime invariant checker passes on an unfaulted pipeline —
  legality is not an artefact of the hand-written workloads;
* every per-stage occupancy histogram sums to exactly the cycle count
  (each cycle is sampled once, no cycle twice).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import emulate
from repro.uarch import Pipeline, starting_config
from repro.uarch.observe import Observability, InvariantChecker, StageMetrics
from repro.workloads import MixProfile, generate_program


@st.composite
def program_and_trace(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    profile = MixProfile(
        mul=draw(st.sampled_from([0.0, 0.05, 0.1])),
        load=draw(st.sampled_from([0.1, 0.25])),
        store=draw(st.sampled_from([0.0, 0.1])),
        branch=draw(st.sampled_from([0.05, 0.15])),
        branch_predictability=draw(st.sampled_from([0.4, 0.9])),
    )
    program = generate_program(profile, n_dynamic=600, seed=seed)
    trace = emulate(program, max_instructions=8000).trace
    return program, trace


def _config_variants():
    base = starting_config()
    return st.sampled_from([
        base,
        base.with_reese(),
        base.with_reese(early_remove=True),
        base.with_reese(r_duty_cycle=0.5),
        base.with_dispatch_dup(),
    ])


class TestInvariantProperties:
    @given(program_and_trace(), _config_variants())
    @settings(max_examples=15, deadline=None)
    def test_checker_passes_on_unfaulted_pipelines(self, data, config):
        program, trace = data
        checker = InvariantChecker()
        stats = Pipeline(program, trace, config,
                         observer=Observability(checker=checker)).run()
        assert stats.committed == len(trace)
        assert checker.violations == []

    @given(program_and_trace())
    @settings(max_examples=10, deadline=None)
    def test_occupancy_histograms_sum_to_cycles(self, data):
        program, trace = data
        metrics = StageMetrics()
        stats = Pipeline(program, trace, starting_config().with_reese(),
                         observer=Observability(metrics=metrics)).run()
        registry = stats.stage_metrics
        assert registry["cycles_sampled"] == stats.cycles
        for hist in registry["occupancy"].values():
            assert sum(hist.values()) == stats.cycles

    @given(program_and_trace())
    @settings(max_examples=8, deadline=None)
    def test_observed_run_matches_unobserved(self, data):
        """Attaching the full observer never perturbs the simulation."""
        program, trace = data
        config = starting_config().with_reese()
        plain = Pipeline(program, trace, config).run()
        observed = Pipeline(
            program, trace, config,
            observer=Observability(metrics=StageMetrics(),
                                   checker=InvariantChecker()),
        ).run()
        assert observed.cycles == plain.cycles
        assert observed.committed == plain.committed
        assert observed.issued_r == plain.issued_r
