"""Static-analysis throughput and the skip-dead campaign speedup.

Two questions about the analysis subsystem's cost model:

* how fast is a full fresh analysis (CFG + dataflow fixpoints + masking
  + lint), in instructions/second — it runs once per distinct workload
  and must stay negligible next to simulation;
* how much fault-campaign wall clock does ``skip_dead`` save by
  settling dead-classified samples statically instead of emulating
  them — the REESE-adjacent payoff of ACE-style masking prediction.

Both reports are published to ``benchmarks/results/``.
"""

import time

import pytest

from conftest import publish

from repro.analysis import analyze_program
from repro.harness import format_table
from repro.harness.campaign import run_site_campaign
from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS

ANALYSIS_SCALE = 5000
CAMPAIGN_SCALE = 3000
CAMPAIGN_RUNS = 60


@pytest.fixture(scope="module")
def programs():
    return {
        name: BENCHMARKS[name].build(scale=ANALYSIS_SCALE)
        for name in BENCHMARK_ORDER
    }


def test_analysis_throughput(benchmark, programs):
    """Fresh (uncached) analysis speed over the whole suite."""
    def analyze_suite():
        return [
            analyze_program(program, use_cache=False)
            for program in programs.values()
        ]

    results = benchmark(analyze_suite)
    instructions = sum(r.instructions for r in results)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["instructions"] = instructions
    benchmark.extra_info["insts_per_sec"] = round(instructions / seconds)

    rows = [["benchmark", "insts", "blocks", "sites", "dead"]]
    for name, result in zip(programs, results):
        rows.append([
            name, str(result.instructions), str(result.blocks),
            str(len(result.site_classes)),
            str(result.class_counts.get("dead", 0)),
        ])
    publish("bench_analysis_throughput", "\n".join([
        f"full static analysis of the {len(programs)}-workload suite: "
        f"{seconds * 1e3:.1f} ms/pass "
        f"({instructions / seconds:,.0f} insts/sec)",
        "",
        format_table(rows),
    ]))


def test_skip_dead_campaign_speedup(programs):
    """Wall-clock saved by settling dead sites without emulation."""
    program = BENCHMARKS["gcc"].build(scale=CAMPAIGN_SCALE)

    start = time.perf_counter()
    full = run_site_campaign(program, runs=CAMPAIGN_RUNS, seed=1,
                             use_analysis_cache=False)
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    skipped = run_site_campaign(program, runs=CAMPAIGN_RUNS, seed=1,
                                skip_dead=True, use_analysis_cache=False)
    skip_seconds = time.perf_counter() - start

    # Equivalence first: identical aggregate outcomes, oracle intact.
    assert full.mismatches == []
    assert skipped.outcomes == full.outcomes
    assert skipped.emulations == full.emulations - skipped.skipped_dead

    speedup = full_seconds / skip_seconds if skip_seconds else float("inf")
    publish("bench_analysis_skip_dead", "\n".join([
        f"site campaign on 'gcc' ({CAMPAIGN_RUNS} stratified injections, "
        f"scale {CAMPAIGN_SCALE}):",
        f"  emulate everything   {full_seconds:8.3f} s "
        f"({full.emulations} emulations)",
        f"  skip dead sites      {skip_seconds:8.3f} s "
        f"({skipped.emulations} emulations, "
        f"{skipped.skipped_dead} settled statically)",
        f"  speedup              {speedup:8.2f}x",
        "",
        skipped.report(),
    ]))
    assert skipped.emulations <= full.emulations
