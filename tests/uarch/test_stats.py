"""Unit tests for the statistics container."""

import pytest

from repro.uarch import Stats


class TestDerivedMetrics:
    def test_ipc(self):
        stats = Stats()
        stats.cycles = 100
        stats.committed = 250
        assert stats.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert Stats().ipc == 0.0

    def test_misprediction_rate(self):
        stats = Stats()
        stats.cond_branches = 10
        stats.mispredictions = 3
        assert stats.misprediction_rate == pytest.approx(0.3)

    def test_rqueue_mean_occupancy(self):
        stats = Stats()
        stats.cycles = 4
        stats.rqueue_occ_sum = 10
        assert stats.rqueue_mean_occupancy == pytest.approx(2.5)


class TestReporting:
    def test_to_dict_contains_counters_and_derived(self):
        stats = Stats()
        stats.cycles = 10
        stats.committed = 15
        data = stats.to_dict()
        assert data["cycles"] == 10
        assert data["ipc"] == pytest.approx(1.5)
        assert "misprediction_rate" in data

    def test_summary_mentions_ipc(self):
        stats = Stats()
        stats.cycles = 10
        stats.committed = 20
        assert "IPC=2.000" in stats.summary()

    def test_summary_shows_detection_when_present(self):
        stats = Stats()
        stats.cycles = 1
        stats.errors_detected = 2
        assert "detected=2" in stats.summary()

    def test_summary_shows_r_issues_when_present(self):
        stats = Stats()
        stats.cycles = 1
        stats.issued_r = 9
        assert "R-issued=9" in stats.summary()

    def test_repr_embeds_summary(self):
        stats = Stats()
        stats.cycles = 10
        stats.committed = 20
        assert repr(stats) == f"<Stats {stats.summary()}>"


class TestRoundTrip:
    def _populated(self):
        stats = Stats()
        stats.cycles = 123
        stats.committed = 456
        stats.issued_r = 78
        stats.fu_issues = {"ialu": 5}
        stats.cache_stats = {"il1": {"hit_rate": 0.9}}
        stats.stage_metrics = {
            "schema": 1,
            "cycles_sampled": 123,
            "occupancy": {"ruu": {"0": 3, "16": 120}},
            "stalls": {"fetch_blocked": 4},
            "fu_issued": {"P": {"ialu": 5}, "R": {"ialu": 2}},
        }
        return stats

    def test_state_dict_covers_every_slot(self):
        state = Stats().state_dict()
        assert set(state) == set(Stats.__slots__)
        assert "stage_metrics" in state

    def test_from_dict_state_dict_round_trip(self):
        original = self._populated()
        rebuilt = Stats.from_dict(original.state_dict())
        assert rebuilt.state_dict() == original.state_dict()
        assert rebuilt.stage_metrics == original.stage_metrics

    def test_from_dict_accepts_to_dict(self):
        """Derived-metric keys from to_dict() are ignored on load."""
        original = self._populated()
        rebuilt = Stats.from_dict(original.to_dict())
        assert rebuilt.state_dict() == original.state_dict()

    def test_from_dict_tolerates_missing_new_fields(self):
        """Cache entries written before stage_metrics existed still load."""
        state = self._populated().state_dict()
        del state["stage_metrics"]
        rebuilt = Stats.from_dict(state)
        assert rebuilt.stage_metrics == {}
        assert rebuilt.cycles == 123

    def test_from_state_dict_is_the_canonical_name(self):
        """``from_dict`` is the backward-compatible alias."""
        assert Stats.from_dict.__func__ is Stats.from_state_dict.__func__
        state = self._populated().state_dict()
        assert Stats.from_state_dict(state).state_dict() == state

    def test_from_dict_ignores_unknown_keys(self):
        """Entries from newer code versions load on older ones."""
        state = self._populated().state_dict()
        state["counter_from_the_future"] = 99
        rebuilt = Stats.from_dict(state)
        assert not hasattr(rebuilt, "counter_from_the_future")
        assert rebuilt.cycles == 123

    def test_from_dict_null_registries_load_empty_and_merge(self):
        """A ``None`` registry (older writer) must not poison merge()."""
        state = self._populated().state_dict()
        state["fu_issues"] = None
        state["cache_stats"] = None
        state["stage_metrics"] = None
        rebuilt = Stats.from_dict(state)
        assert rebuilt.fu_issues == {}
        assert rebuilt.cache_stats == {}
        assert rebuilt.stage_metrics == {}
        merged = Stats.merged([rebuilt, self._populated()])
        assert merged.cycles == 2 * 123
        assert merged.fu_issues == {"ialu": 5}

    def test_merged_interval_stats_sum_counters(self):
        """The sampling engine's merge path: counters add up."""
        parts = [self._populated(), self._populated(), self._populated()]
        for part in parts:
            part.halted = True
        merged = Stats.merged(parts)
        assert merged.cycles == 3 * 123
        assert merged.committed == 3 * 456
        assert merged.fu_issues == {"ialu": 15}
        # halted is an AND fold: all parts completed => merged did.
        assert merged.halted
